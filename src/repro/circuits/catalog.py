"""Registry of benchmark circuits (paper stand-ins, figures, generators)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..circuit import Circuit
from . import figures, generators, standins


@dataclass(frozen=True)
class BenchmarkEntry:
    """One catalog entry: constructor plus paper-side metadata."""

    name: str
    build: Callable[[], Circuit]
    paper_gates: Optional[int] = None
    description: str = ""


_CATALOG: Dict[str, BenchmarkEntry] = {}


def _register(entry: BenchmarkEntry) -> None:
    _CATALOG[entry.name] = entry


_register(BenchmarkEntry("c17", generators.c17, paper_gates=None,
                         description="ISCAS-85 c17 (exact netlist)"))
_register(BenchmarkEntry("fig1a", figures.fig1_circuit,
                         description="Fig. 1(a) illustration stand-in"))
_register(BenchmarkEntry("fig2", figures.fig2_circuit,
                         description="Fig. 2 worked-example stand-in"))
_register(BenchmarkEntry("x2", standins.x2, paper_gates=56,
                         description="MCNC x2 stand-in"))
_register(BenchmarkEntry("cu", standins.cu, paper_gates=59,
                         description="MCNC cu stand-in"))
_register(BenchmarkEntry("b9", standins.b9, paper_gates=210,
                         description="MCNC b9 stand-in"))
_register(BenchmarkEntry("b9_low_fanout", standins.b9_low_fanout,
                         description="Fig. 8 low-fanout b9 synthesis"))
_register(BenchmarkEntry("b9_high_fanout", standins.b9_high_fanout,
                         description="Fig. 8 high-fanout b9 synthesis"))
_register(BenchmarkEntry("c499", standins.c499, paper_gates=650,
                         description="ISCAS-85 c499 stand-in (32-bit SEC)"))
_register(BenchmarkEntry("c1355", standins.c1355, paper_gates=653,
                         description="ISCAS-85 c1355 stand-in (c499 in NANDs)"))
_register(BenchmarkEntry("c1908", standins.c1908, paper_gates=699,
                         description="ISCAS-85 c1908 stand-in"))
_register(BenchmarkEntry("c2670", standins.c2670, paper_gates=756,
                         description="ISCAS-85 c2670 stand-in"))
_register(BenchmarkEntry("frg2", standins.frg2, paper_gates=1024,
                         description="MCNC frg2 stand-in"))
_register(BenchmarkEntry("c3540", standins.c3540, paper_gates=1466,
                         description="ISCAS-85 c3540 stand-in"))
_register(BenchmarkEntry("i10", standins.i10, paper_gates=2643,
                         description="i10 stand-in"))
_register(BenchmarkEntry("c432", standins.c432,
                         description="ISCAS-85 c432 stand-in (not in the "
                                     "paper's Table 2)"))
_register(BenchmarkEntry("c880", standins.c880,
                         description="ISCAS-85 c880 stand-in (not in the "
                                     "paper's Table 2)"))
_register(BenchmarkEntry("c6288", standins.c6288,
                         description="ISCAS-85 c6288 stand-in: a real "
                                     "16x16 array multiplier"))

#: The ten circuits of the paper's Table 2, in row order.
TABLE2_BENCHMARKS: List[str] = [
    "x2", "cu", "b9", "c499", "c1355", "c1908", "c2670", "frg2",
    "c3540", "i10",
]

# Large-netlist presets live in their own registry: they are scaling
# substrate, not paper benchmarks, and list_benchmarks() (which several
# exhaustive test loops iterate) must not suddenly include 100k-gate
# builds.  get_benchmark() still resolves them so the CLI can say
# ``repro analyze rand50k``.
_LARGE: Dict[str, BenchmarkEntry] = {}

for _entry in (
    BenchmarkEntry("rand10k", generators.rand10k, paper_gates=None,
                   description="10k-gate seeded random logic + probe cones"),
    BenchmarkEntry("rand50k", generators.rand50k, paper_gates=None,
                   description="50k-gate seeded random logic + probe cones"),
    BenchmarkEntry("rand100k", generators.rand100k, paper_gates=None,
                   description="100k-gate seeded random logic + probe cones"),
):
    _LARGE[_entry.name] = _entry
del _entry


def large_catalog() -> List[str]:
    """Names of the large-netlist presets (smallest first)."""
    return ["rand10k", "rand50k", "rand100k"]


def get_benchmark(name: str) -> Circuit:
    """Build the named benchmark circuit (deterministic)."""
    entry = _CATALOG.get(name) or _LARGE.get(name)
    if entry is None:
        raise KeyError(
            f"unknown benchmark {name!r}; known: "
            f"{sorted(_CATALOG) + large_catalog()}")
    return entry.build()


def benchmark_entry(name: str) -> BenchmarkEntry:
    """Catalog metadata for one benchmark (large presets included)."""
    entry = _CATALOG.get(name) or _LARGE.get(name)
    if entry is None:
        raise KeyError(name)
    return entry


def list_benchmarks() -> List[str]:
    """All registered benchmark names."""
    return sorted(_CATALOG)
