"""Sequential benchmark fixtures (counters, LFSRs, accumulators).

These live in their own registry, **not** in :func:`~repro.circuits.
catalog.list_benchmarks` — the combinational catalog is iterated by
analyses that have no frame axis, so mixing stateful designs in would
break every "all benchmarks" sweep.  :func:`repro.engine.session.
resolve_circuit` falls back to this registry after the combinational
catalog, so ``repro.analyze("seq_counter3", 0.01, frames=4)`` and
``repro analyze seq_counter3 --frames 4`` resolve like any other name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..circuit import SequentialBuilder, SequentialCircuit


def seq_counter3() -> SequentialCircuit:
    """3-bit ripple-enable counter: classic DFF + XOR/AND increment.

    ``q0..q2`` count clock cycles while ``en`` is high; ``msb`` exposes
    the next-state of the top bit, ``wrap`` the carry out of it.
    """
    b = SequentialBuilder("seq_counter3")
    en = b.input("en")
    q0, q1, q2 = b.dff("q0"), b.dff("q1"), b.dff("q2")
    d0 = b.xor(q0, en, name="d0")
    c0 = b.and_(q0, en, name="c0")
    d1 = b.xor(q1, c0, name="d1")
    c1 = b.and_(q1, c0, name="c1")
    d2 = b.xor(q2, c1, name="d2")
    wrap = b.and_(q2, c1, name="wrap")
    b.next_state(q0, d0)
    b.next_state(q1, d1)
    b.next_state(q2, d2)
    b.outputs(d2, wrap)
    return b.build_sequential()


def seq_lfsr4() -> SequentialCircuit:
    """4-bit Fibonacci LFSR (taps 4,3) with a serial scramble input.

    ``fb = q3 XOR q2 XOR sin`` shifts in; ``q1'..q3'`` shift along.  The
    output is the scrambled serial stream ``fb``.
    """
    b = SequentialBuilder("seq_lfsr4")
    sin = b.input("sin")
    q0, q1, q2, q3 = (b.dff("q0"), b.dff("q1"), b.dff("q2"), b.dff("q3"))
    fb = b.xor(b.xor(q3, q2, name="tap"), sin, name="fb")
    b.next_state(q0, fb)
    b.next_state(q1, q0)
    b.next_state(q2, q1)
    b.next_state(q3, q2)
    b.output(fb)
    return b.build_sequential()


def seq_parity_acc() -> SequentialCircuit:
    """Serial parity accumulator: ``q' = q XOR d``, gated by ``valid``.

    The running parity of the ``d`` stream (while ``valid`` is high) —
    the smallest circuit whose output error genuinely accumulates over
    cycles, since a flipped state bit never heals.
    """
    b = SequentialBuilder("seq_parity_acc")
    d = b.input("d")
    valid = b.input("valid")
    q = b.dff("q")
    bit = b.and_(d, valid, name="bit")
    par = b.xor(q, bit, name="par")
    b.next_state(q, par)
    b.output(par)
    return b.build_sequential()


@dataclass(frozen=True)
class SequentialBenchmarkEntry:
    """One sequential-catalog entry: constructor plus metadata."""

    name: str
    build: Callable[[], SequentialCircuit]
    flops: int
    description: str = ""


_SEQ_CATALOG: Dict[str, SequentialBenchmarkEntry] = {}


def _register(entry: SequentialBenchmarkEntry) -> None:
    _SEQ_CATALOG[entry.name] = entry


_register(SequentialBenchmarkEntry(
    "seq_counter3", seq_counter3, flops=3,
    description="3-bit enable counter (DFF + XOR/AND increment)"))
_register(SequentialBenchmarkEntry(
    "seq_lfsr4", seq_lfsr4, flops=4,
    description="4-bit Fibonacci LFSR scrambler (taps 4,3)"))
_register(SequentialBenchmarkEntry(
    "seq_parity_acc", seq_parity_acc, flops=1,
    description="serial parity accumulator (q' = q xor d)"))


def get_sequential_benchmark(name: str) -> SequentialCircuit:
    """Build the named sequential benchmark (deterministic)."""
    try:
        return _SEQ_CATALOG[name].build()
    except KeyError:
        raise KeyError(
            f"unknown sequential benchmark {name!r}; known: "
            f"{sorted(_SEQ_CATALOG)}") from None


def sequential_benchmark_entry(name: str) -> SequentialBenchmarkEntry:
    """Catalog metadata for one sequential benchmark."""
    return _SEQ_CATALOG[name]


def list_sequential_benchmarks() -> List[str]:
    """All registered sequential benchmark names."""
    return sorted(_SEQ_CATALOG)
