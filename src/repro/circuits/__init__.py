"""Benchmark circuits: generators, paper stand-ins, and figure circuits."""

from .generators import (
    array_multiplier,
    c17,
    equality_comparator,
    full_adder,
    majority_voter,
    large_random_netlist,
    mux_tree,
    one_hot_decoder,
    parity_tree,
    rand10k,
    rand50k,
    rand100k,
    random_circuit,
    ripple_carry_adder,
    sec_circuit,
)
from .datapath import (
    ALU_OPS,
    alu_slice,
    barrel_shifter,
    carry_lookahead_adder,
    kogge_stone_adder,
    priority_encoder,
)
from .figures import fig1_circuit, fig2_circuit
from .catalog import (
    TABLE2_BENCHMARKS,
    BenchmarkEntry,
    benchmark_entry,
    get_benchmark,
    large_catalog,
    list_benchmarks,
)
from .sequential import (
    SequentialBenchmarkEntry,
    get_sequential_benchmark,
    list_sequential_benchmarks,
    seq_counter3,
    seq_lfsr4,
    seq_parity_acc,
    sequential_benchmark_entry,
)
from . import standins

__all__ = [
    "array_multiplier", "c17", "equality_comparator", "full_adder",
    "majority_voter", "mux_tree", "one_hot_decoder", "parity_tree",
    "large_random_netlist", "rand10k", "rand50k", "rand100k",
    "random_circuit", "ripple_carry_adder", "sec_circuit",
    "ALU_OPS", "alu_slice", "barrel_shifter", "carry_lookahead_adder",
    "kogge_stone_adder", "priority_encoder",
    "fig1_circuit", "fig2_circuit",
    "TABLE2_BENCHMARKS", "BenchmarkEntry", "benchmark_entry",
    "get_benchmark", "large_catalog", "list_benchmarks", "standins",
    "SequentialBenchmarkEntry", "get_sequential_benchmark",
    "list_sequential_benchmarks", "sequential_benchmark_entry",
    "seq_counter3", "seq_lfsr4", "seq_parity_acc",
]
