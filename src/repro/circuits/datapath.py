"""Datapath generators: fast adders, shifters, encoders, an ALU slice.

These complement :mod:`repro.circuits.generators` with the structures that
dominate real datapaths; all are deterministic, functionally verified in
the test suite, and double as workloads for the examples and ablation
benchmarks (e.g. ripple vs Kogge-Stone reliability under the same eps —
prefix adders trade depth for extra gates and fanout, which the analyses
quantify).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..circuit import Circuit, CircuitBuilder, GateType
from .generators import full_adder


def carry_lookahead_adder(width: int, name: Optional[str] = None) -> Circuit:
    """``width``-bit single-level carry-lookahead adder.

    Generate/propagate per bit; each carry computed as an explicit
    sum-of-products over all lower generates — shallow but fanout-heavy,
    the structural opposite of the ripple-carry adder.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    b = CircuitBuilder(name or f"cla{width}")
    a_bus = b.input_bus("a", width)
    b_bus = b.input_bus("b", width)
    cin = b.input("cin")
    g = [b.and_(a_bus[i], b_bus[i]) for i in range(width)]
    p = [b.xor(a_bus[i], b_bus[i]) for i in range(width)]
    carries = [cin]
    for i in range(width):
        # c_{i+1} = g_i + p_i g_{i-1} + ... + p_i ... p_0 c_0
        terms = [g[i]]
        for j in range(i - 1, -1, -1):
            factor = g[j]
            for t in range(j + 1, i + 1):
                factor = b.and_(factor, p[t])
            terms.append(factor)
        chain = carries[0]
        for t in range(0, i + 1):
            chain = b.and_(chain, p[t])
        terms.append(chain)
        acc = terms[0]
        for term in terms[1:]:
            acc = b.or_(acc, term)
        carries.append(acc)
    for i in range(width):
        b.outputs(**{f"sum{i}": b.xor(p[i], carries[i])})
    b.outputs(cout=carries[width])
    return b.build()


def kogge_stone_adder(width: int, name: Optional[str] = None) -> Circuit:
    """``width``-bit Kogge-Stone parallel-prefix adder.

    Logarithmic depth, heavy wiring/fanout — the canonical fast-adder
    topology.  Produces ``sum0..sum{w-1}`` and ``cout``.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    b = CircuitBuilder(name or f"ks{width}")
    a_bus = b.input_bus("a", width)
    b_bus = b.input_bus("b", width)
    cin = b.input("cin")
    g = [b.and_(a_bus[i], b_bus[i]) for i in range(width)]
    p = [b.xor(a_bus[i], b_bus[i]) for i in range(width)]
    # Prefix network over (g, p) pairs.
    gg: List[str] = list(g)
    pp: List[str] = list(p)
    distance = 1
    while distance < width:
        new_g = list(gg)
        new_p = list(pp)
        for i in range(distance, width):
            # (g, p)_i = (g_i + p_i g_{i-d}, p_i p_{i-d})
            new_g[i] = b.or_(gg[i], b.and_(pp[i], gg[i - distance]))
            new_p[i] = b.and_(pp[i], pp[i - distance])
        gg, pp = new_g, new_p
        distance *= 2
    carries = [cin]
    for i in range(width):
        carries.append(b.or_(gg[i], b.and_(pp[i], cin)))
    for i in range(width):
        b.outputs(**{f"sum{i}": b.xor(p[i], carries[i])})
    b.outputs(cout=carries[width])
    return b.build()


def barrel_shifter(width_bits: int, name: Optional[str] = None) -> Circuit:
    """Logical-left barrel shifter: ``2**width_bits`` data bits.

    Shift amount ``s`` (``width_bits`` select inputs) rotates zeros in
    from the right: ``y = d << s`` truncated to the data width.
    """
    if width_bits < 1:
        raise ValueError("width_bits must be >= 1")
    width = 1 << width_bits
    b = CircuitBuilder(name or f"bshift{width}")
    data = b.input_bus("d", width)
    sel = b.input_bus("s", width_bits)
    zero = b.const(0, name="zero")
    layer = list(data)
    for stage in range(width_bits):
        shift = 1 << stage
        s = sel[stage]
        s_n = b.not_(s)
        nxt = []
        for i in range(width):
            unshifted = b.and_(layer[i], s_n)
            source = layer[i - shift] if i - shift >= 0 else zero
            shifted = b.and_(source, s)
            nxt.append(b.or_(unshifted, shifted))
        layer = nxt
    for i in range(width):
        b.outputs(**{f"y{i}": layer[i]})
    return b.build()


def priority_encoder(width: int, name: Optional[str] = None) -> Circuit:
    """Priority encoder: index of the highest asserted input, plus valid.

    Outputs ``y0..`` (binary index, MSB priority) and ``valid``.
    """
    if width < 2:
        raise ValueError("width must be >= 2")
    bits = max(1, (width - 1).bit_length())
    b = CircuitBuilder(name or f"prio{width}")
    xs = b.input_bus("x", width)
    # grant_i = x_i AND none of the higher inputs.
    grants: List[str] = []
    higher_none: Optional[str] = None
    for i in range(width - 1, -1, -1):
        if higher_none is None:
            grants.append(xs[i])
            higher_none = b.not_(xs[i])
        else:
            grants.append(b.and_(xs[i], higher_none))
            if i > 0:
                higher_none = b.and_(higher_none, b.not_(xs[i]))
    grants.reverse()  # grants[i] corresponds to input i
    valid = grants[0]
    for gr in grants[1:]:
        valid = b.or_(valid, gr)
    for bit in range(bits):
        members = [grants[i] for i in range(width) if (i >> bit) & 1]
        if not members:
            b.outputs(**{f"y{bit}": b.const(0)})
            continue
        acc = members[0]
        for m in members[1:]:
            acc = b.or_(acc, m)
        b.outputs(**{f"y{bit}": acc})
    b.outputs(valid=valid)
    return b.build()


#: ALU opcode encoding used by :func:`alu_slice`.
ALU_OPS = ("and", "or", "xor", "add")


def alu_slice(width: int, name: Optional[str] = None) -> Circuit:
    """A tiny ``width``-bit ALU: AND / OR / XOR / ADD selected by 2 bits.

    Opcode ``(op1, op0)``: 00 = AND, 01 = OR, 10 = XOR, 11 = ADD (with
    carry-in and carry-out).  A realistic mixed-structure workload for the
    reliability analyses.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    b = CircuitBuilder(name or f"alu{width}")
    a_bus = b.input_bus("a", width)
    b_bus = b.input_bus("b", width)
    op0 = b.input("op0")
    op1 = b.input("op1")
    cin = b.input("cin")
    op0_n = b.not_(op0)
    op1_n = b.not_(op1)
    sel_and = b.and_(op1_n, op0_n)
    sel_or = b.and_(op1_n, op0)
    sel_xor = b.and_(op1, op0_n)
    sel_add = b.and_(op1, op0)
    carry = cin
    for i in range(width):
        f_and = b.and_(a_bus[i], b_bus[i])
        f_or = b.or_(a_bus[i], b_bus[i])
        f_xor = b.xor(a_bus[i], b_bus[i])
        f_add, carry = full_adder(b, a_bus[i], b_bus[i], carry)
        picked = b.or_(
            b.or_(b.and_(f_and, sel_and), b.and_(f_or, sel_or)),
            b.or_(b.and_(f_xor, sel_xor), b.and_(f_add, sel_add)))
        b.outputs(**{f"r{i}": picked})
    b.outputs(cout=b.and_(carry, sel_add))
    return b.build()
