"""Illustration circuits for the paper's figures.

The original Fig. 1(a) and Fig. 2 schematics are images we do not have;
these stand-ins realize every property the surrounding text relies on (see
DESIGN.md, substitutions).  The exact numeric constants the paper quotes
for its own figure (e.g. 46/256) are recomputed for these circuits by the
exhaustive-exact engine and pinned in the test suite.
"""

from __future__ import annotations

from ..circuit import Circuit, GateType


def fig1_circuit() -> Circuit:
    """Stand-in for Fig. 1(a): the observability-distortion example.

    Required properties (Sec. 3.1):

    * a gate ``Gx`` in the transitive fanin of another gate ``Gy`` — so the
      independence assumption ``o_x (1 - o_y) > 0`` is provably wrong
      (``Gx`` is observable only if ``Gy`` is);
    * a gate ``Gz`` whose failure modulates the propagation of ``Gx``
      failures (their joint failure effect differs from the closed form);
    * reconvergent fanout.
    """
    c = Circuit("fig1a")
    for pi in ("p", "q", "r", "s"):
        c.add_input(pi)
    c.add_gate("Gx", GateType.AND, ["p", "q"])
    c.add_gate("Gz", GateType.OR, ["r", "s"])
    c.add_gate("Gy", GateType.OR, ["Gx", "r"])
    c.add_gate("y", GateType.NAND, ["Gy", "Gz"])
    c.set_output("y")
    return c


def fig2_circuit() -> Circuit:
    """Stand-in for Fig. 2: the worked single-pass example.

    Required properties (Sec. 4): six 2-input gates numbered in processing
    order; the fanout at gate 2 reconverges at gate 6 via gates 4 and 5;
    gate 1's weight vector is uniform (0.25 each) because it is fed by
    primary inputs directly.
    """
    c = Circuit("fig2")
    for pi in ("a", "b", "cc", "d"):
        c.add_input(pi)
    c.add_gate("n1", GateType.AND, ["a", "b"])
    c.add_gate("n2", GateType.OR, ["cc", "d"])
    c.add_gate("n3", GateType.NAND, ["n1", "cc"])
    c.add_gate("n4", GateType.AND, ["n2", "n1"])
    c.add_gate("n5", GateType.NAND, ["n2", "n3"])
    c.add_gate("n6", GateType.OR, ["n4", "n5"])
    c.set_output("n6")
    return c
