"""Stand-in circuits for the paper's Table 2 benchmark suite.

The original ISCAS-85 / MCNC netlists are not redistributable here, so each
benchmark is replaced by a deterministic synthetic circuit with the same
gate count and comparable structure (see DESIGN.md, substitutions):

* ``c499`` is a 32-bit single-error-correcting decoder — the real c499's
  function — with the syndrome fanning out to all 32 correctors (heavy
  reconvergence, the paper's hardest accuracy case);
* ``c1355`` is the same circuit with every XOR expanded into NAND logic,
  exactly how the real pair is related;
* the remaining benchmarks are seeded random multilevel logic with the
  paper's gate counts and published I/O counts.

Every constructor is deterministic; gate counts are pinned by tests.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..circuit import Circuit, limit_fanout, strip_buffers, expand_xor
from .generators import fanin_network, random_circuit, sec_circuit


def x2() -> Circuit:
    """Stand-in for MCNC x2: 56 gates, 10 inputs, 7 outputs."""
    return random_circuit(10, 56, 7, seed=1002, name="x2",
                          depth_bias=0.55, window=10)


def cu() -> Circuit:
    """Stand-in for MCNC cu: 59 gates, 14 inputs, 11 outputs."""
    return random_circuit(14, 59, 11, seed=1003, name="cu",
                          depth_bias=0.5, window=10)


def b9() -> Circuit:
    """Stand-in for MCNC b9: 210 gates, 41 inputs, 21 outputs."""
    return random_circuit(41, 210, 21, seed=1009, name="b9",
                          depth_bias=0.55, window=16)


def b9_low_fanout() -> Circuit:
    """Shallow b9-scale synthesis for the Fig. 8 study (balanced trees).

    Computes *exactly the same Boolean functions* as
    :func:`b9_high_fanout` with the same gate count; only the logic depth
    differs (wide output operations realized as balanced trees instead of
    chains).  This isolates the levels-of-logic covariate the paper
    credits for the Fig. 8 reliability gap.
    """
    return fanin_network(41, 63, 21, leaves_per_output=8, seed=809,
                         balanced=True, name="b9_shallow")


def b9_high_fanout() -> Circuit:
    """Deep b9-scale synthesis for the Fig. 8 study (skewed chains).

    Same functions and gate count as :func:`b9_low_fanout`, more logic
    levels — the Fig. 8 "more levels of noise" candidate.
    """
    return fanin_network(41, 63, 21, leaves_per_output=8, seed=809,
                         balanced=False, name="b9_deep")


def c499() -> Circuit:
    """Stand-in for ISCAS-85 c499: 32-bit SEC decoder, XOR-dominated."""
    circuit = sec_circuit(data_bits=32, check_bits=8, name="c499", seed=499)
    return circuit


def c1355() -> Circuit:
    """Stand-in for ISCAS-85 c1355: c499 with XORs expanded to NANDs."""
    expanded = expand_xor(c499(), name="c1355")
    return strip_buffers(expanded, name="c1355")


def c1908() -> Circuit:
    """Stand-in for ISCAS-85 c1908: 699 gates, 33 inputs, 25 outputs."""
    return random_circuit(33, 699, 25, seed=1908, name="c1908",
                          depth_bias=0.6, window=24, xor_weight=0.18)


def c2670() -> Circuit:
    """Stand-in for ISCAS-85 c2670: 756 gates, 157 inputs, 64 outputs."""
    return random_circuit(157, 756, 64, seed=2670, name="c2670",
                          depth_bias=0.5, window=32)


def frg2() -> Circuit:
    """Stand-in for MCNC frg2: 1024 gates, 143 inputs, 139 outputs."""
    return random_circuit(143, 1024, 139, seed=3042, name="frg2",
                          depth_bias=0.5, window=32)


def c3540() -> Circuit:
    """Stand-in for ISCAS-85 c3540: 1466 gates, 50 inputs, 22 outputs."""
    return random_circuit(50, 1466, 22, seed=3540, name="c3540",
                          depth_bias=0.65, window=32, xor_weight=0.1)


def i10() -> Circuit:
    """Stand-in for i10: 2643 gates, 257 inputs, 224 outputs."""
    return random_circuit(257, 2643, 224, seed=4210, name="i10",
                          depth_bias=0.6, window=40)


def c432() -> Circuit:
    """Stand-in for ISCAS-85 c432 (priority/interrupt logic): 160 gates."""
    return random_circuit(36, 160, 7, seed=432, name="c432",
                          depth_bias=0.65, window=14, xor_weight=0.12)


def c880() -> Circuit:
    """Stand-in for ISCAS-85 c880 (8-bit ALU): 383 gates."""
    return random_circuit(60, 383, 26, seed=880, name="c880",
                          depth_bias=0.6, window=20)


def c6288() -> Circuit:
    """Stand-in for ISCAS-85 c6288 — which *is* a 16x16 array multiplier.

    Built from the real structure (:func:`array_multiplier`), not random
    logic: 1440 gates of carry-save adder array with the multiplier's
    notorious deep reconvergence (the real c6288 counts 2406 gates in a
    NOR-heavy mapping of the same array).
    """
    from .generators import array_multiplier
    return array_multiplier(16, name="c6288")
