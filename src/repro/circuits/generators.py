"""Parameterized circuit generators.

Structured arithmetic/datapath generators (adders, multipliers, parity
trees, decoders, comparators, voters) plus a seeded random multilevel-logic
generator.  All generators are deterministic functions of their arguments,
so benchmark results are reproducible bit-for-bit.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..circuit import Circuit, CircuitBuilder, GateType


def c17() -> Circuit:
    """The ISCAS-85 c17 benchmark (6 NAND gates) — reproduced exactly.

    c17 is small enough that its published netlist is universally known;
    it anchors the stand-in catalog with one true ISCAS circuit.
    """
    c = Circuit("c17")
    for pi in ("1", "2", "3", "6", "7"):
        c.add_input(pi)
    c.add_gate("10", GateType.NAND, ["1", "3"])
    c.add_gate("11", GateType.NAND, ["3", "6"])
    c.add_gate("16", GateType.NAND, ["2", "11"])
    c.add_gate("19", GateType.NAND, ["11", "7"])
    c.add_gate("22", GateType.NAND, ["10", "16"])
    c.add_gate("23", GateType.NAND, ["16", "19"])
    c.set_output("22")
    c.set_output("23")
    return c


def full_adder(b: CircuitBuilder, a: str, bb: str, cin: str) -> tuple:
    """Emit one full adder; returns (sum, carry) node names."""
    axb = b.xor(a, bb)
    s = b.xor(axb, cin)
    cout = b.or_(b.and_(a, bb), b.and_(axb, cin))
    return s, cout


def ripple_carry_adder(width: int, name: Optional[str] = None) -> Circuit:
    """A ``width``-bit ripple-carry adder: a + b + cin -> sum, cout."""
    if width < 1:
        raise ValueError("width must be >= 1")
    b = CircuitBuilder(name or f"rca{width}")
    a_bus = b.input_bus("a", width)
    b_bus = b.input_bus("b", width)
    carry = b.input("cin")
    sums: List[str] = []
    for i in range(width):
        s, carry = full_adder(b, a_bus[i], b_bus[i], carry)
        sums.append(s)
    for i, s in enumerate(sums):
        b.outputs(**{f"sum{i}": s})
    b.outputs(cout=carry)
    return b.build()


def parity_tree(width: int, name: Optional[str] = None) -> Circuit:
    """Balanced XOR tree computing the parity of ``width`` inputs."""
    if width < 2:
        raise ValueError("width must be >= 2")
    b = CircuitBuilder(name or f"parity{width}")
    layer = list(b.input_bus("x", width))
    while len(layer) > 1:
        nxt = []
        for i in range(0, len(layer) - 1, 2):
            nxt.append(b.xor(layer[i], layer[i + 1]))
        if len(layer) % 2:
            nxt.append(layer[-1])
        layer = nxt
    b.outputs(parity=layer[0])
    return b.build()


def mux_tree(select_bits: int, name: Optional[str] = None) -> Circuit:
    """A ``2**select_bits``-to-1 multiplexer built from 2-to-1 muxes."""
    if select_bits < 1:
        raise ValueError("select_bits must be >= 1")
    b = CircuitBuilder(name or f"mux{1 << select_bits}")
    data = b.input_bus("d", 1 << select_bits)
    sel = b.input_bus("s", select_bits)
    layer = list(data)
    for level in range(select_bits):
        s = sel[level]
        s_n = b.not_(s)
        nxt = []
        for i in range(0, len(layer), 2):
            lo = b.and_(layer[i], s_n)
            hi = b.and_(layer[i + 1], s)
            nxt.append(b.or_(lo, hi))
        layer = nxt
    b.outputs(y=layer[0])
    return b.build()


def equality_comparator(width: int, name: Optional[str] = None) -> Circuit:
    """``width``-bit equality comparator: out = 1 iff a == b."""
    if width < 1:
        raise ValueError("width must be >= 1")
    b = CircuitBuilder(name or f"cmp{width}")
    a_bus = b.input_bus("a", width)
    b_bus = b.input_bus("b", width)
    eq_bits = [b.xnor(a_bus[i], b_bus[i]) for i in range(width)]
    acc = eq_bits[0]
    for bit in eq_bits[1:]:
        acc = b.and_(acc, bit)
    b.outputs(eq=acc)
    return b.build()


def one_hot_decoder(select_bits: int, name: Optional[str] = None) -> Circuit:
    """``select_bits``-to-``2**select_bits`` one-hot decoder."""
    if select_bits < 1:
        raise ValueError("select_bits must be >= 1")
    b = CircuitBuilder(name or f"dec{select_bits}")
    sel = b.input_bus("s", select_bits)
    sel_n = [b.not_(s) for s in sel]
    for code in range(1 << select_bits):
        lits = [sel[t] if (code >> t) & 1 else sel_n[t]
                for t in range(select_bits)]
        acc = lits[0]
        for lit in lits[1:]:
            acc = b.and_(acc, lit)
        b.outputs(**{f"y{code}": acc})
    return b.build()


def majority_voter(n: int = 3, name: Optional[str] = None) -> Circuit:
    """Majority-of-n voter (n odd), as OR of minimal AND terms."""
    if n < 3 or n % 2 == 0:
        raise ValueError("n must be odd and >= 3")
    from itertools import combinations
    b = CircuitBuilder(name or f"maj{n}")
    xs = b.input_bus("x", n)
    k = n // 2 + 1
    terms = []
    for combo in combinations(range(n), k):
        acc = xs[combo[0]]
        for t in combo[1:]:
            acc = b.and_(acc, xs[t])
        terms.append(acc)
    acc = terms[0]
    for t in terms[1:]:
        acc = b.or_(acc, t)
    b.outputs(maj=acc)
    return b.build()


def array_multiplier(width: int, name: Optional[str] = None) -> Circuit:
    """``width x width`` unsigned array multiplier (carry-save rows)."""
    if width < 2:
        raise ValueError("width must be >= 2")
    b = CircuitBuilder(name or f"mult{width}")
    a_bus = b.input_bus("a", width)
    b_bus = b.input_bus("b", width)
    # Partial products.
    pp = [[b.and_(a_bus[i], b_bus[j]) for i in range(width)]
          for j in range(width)]
    # Row-by-row ripple accumulation.
    acc = list(pp[0])  # bits 0..width-1 of the running sum
    outs = [acc.pop(0)]  # product bit 0
    carry: Optional[str] = None
    for j in range(1, width):
        row = pp[j]
        new_acc: List[str] = []
        carry = None
        for i in range(width):
            x = row[i]
            y = acc[i] if i < len(acc) else None
            if y is None and carry is None:
                s = x
            elif y is None:
                s = b.xor(x, carry)
                carry = b.and_(x, carry)
            elif carry is None:
                s = b.xor(x, y)
                carry = b.and_(x, y)
            else:
                s, carry = full_adder(b, x, y, carry)
            new_acc.append(s)
        outs.append(new_acc.pop(0))
        acc = new_acc + ([carry] if carry else [])
    for bit in acc:
        outs.append(bit)
    for i, o in enumerate(outs):
        b.outputs(**{f"p{i}": o})
    return b.build()


_DEFAULT_GATE_MIX = (
    (GateType.NAND, 0.28),
    (GateType.NOR, 0.18),
    (GateType.AND, 0.16),
    (GateType.OR, 0.14),
    (GateType.NOT, 0.10),
    (GateType.XOR, 0.08),
    (GateType.XNOR, 0.06),
)


def random_circuit(n_inputs: int,
                   n_gates: int,
                   n_outputs: int,
                   seed: int,
                   name: Optional[str] = None,
                   max_fanout: Optional[int] = None,
                   depth_bias: float = 0.6,
                   window: int = 24,
                   xor_weight: Optional[float] = None,
                   gate_mix: Sequence = _DEFAULT_GATE_MIX) -> Circuit:
    """Seeded random multilevel logic with controlled structure.

    The generator maintains the invariant that every gate is eventually
    consumed: while more nodes are *unused* than the target output count,
    each new gate is forced to consume at least one unused node.  Sampling
    the remaining fanins from a recent-node window (probability
    ``depth_bias``) rather than uniformly produces deep, reconvergent
    multilevel structure resembling mapped random logic.

    Parameters
    ----------
    max_fanout:
        Optional hard bound on every node's fanout (realizes the Fig. 8
        low-fanout synthesis flavor).
    depth_bias:
        Probability of drawing a fanin from the most recent ``window``
        eligible nodes; higher values give deeper circuits.
    xor_weight:
        Override the combined XOR/XNOR share of the gate mix (0 disables
        parity gates; large values emulate the XOR-dominated c499 family).
    """
    if n_inputs < 2 or n_gates < 1 or n_outputs < 1:
        raise ValueError("need >= 2 inputs, >= 1 gate, >= 1 output")
    rng = np.random.default_rng(seed)
    mix = list(gate_mix)
    if xor_weight is not None:
        non_xor = [(t, w) for t, w in mix
                   if t not in (GateType.XOR, GateType.XNOR)]
        total_non_xor = sum(w for _, w in non_xor)
        scale = (1.0 - xor_weight) / total_non_xor
        mix = ([(t, w * scale) for t, w in non_xor]
               + [(GateType.XOR, xor_weight / 2),
                  (GateType.XNOR, xor_weight / 2)])
    types = [t for t, _ in mix]
    weights = np.array([w for _, w in mix], dtype=float)
    weights /= weights.sum()

    circuit = Circuit(name or f"rand_{n_inputs}x{n_gates}x{n_outputs}_s{seed}")
    nodes: List[str] = [circuit.add_input(f"pi{i}") for i in range(n_inputs)]
    fanout = {n: 0 for n in nodes}
    unused = list(nodes)

    def eligible(pool: List[str]) -> List[str]:
        if max_fanout is None:
            return pool
        return [n for n in pool if fanout[n] < max_fanout]

    for k in range(n_gates):
        gate_type = types[int(rng.choice(len(types), p=weights))]
        arity = 1 if gate_type in (GateType.NOT, GateType.BUF) else 2
        chosen: List[str] = []
        # Drain unused nodes while we have more than we can expose as
        # outputs at the end.
        gates_left = n_gates - k
        if len(unused) > max(n_outputs, 1) and unused:
            pool = eligible(unused)
            if pool:
                chosen.append(pool[int(rng.integers(len(pool)))])
        while len(chosen) < arity:
            pool = eligible(nodes)
            if not pool:
                pool = nodes  # relax the bound rather than fail
            if rng.random() < depth_bias and len(pool) > window:
                candidate = pool[len(pool) - 1 - int(rng.integers(window))]
            else:
                candidate = pool[int(rng.integers(len(pool)))]
            if candidate in chosen:
                continue
            chosen.append(candidate)
        gate_name = f"g{k}"
        circuit.add_gate(gate_name, gate_type, chosen)
        for fi in chosen:
            fanout[fi] += 1
            if fi in unused:
                unused.remove(fi)
        nodes.append(gate_name)
        fanout[gate_name] = 0
        unused.append(gate_name)
        del gates_left

    # Outputs: every unused gate (no dead logic), topped up with the
    # deepest used gates if the target is not met.
    sink_gates = [n for n in unused
                  if circuit.node(n).gate_type.is_logic]
    outputs = list(sink_gates)
    if len(outputs) < n_outputs:
        extra = [n for n in reversed(nodes)
                 if circuit.node(n).gate_type.is_logic and n not in outputs]
        outputs.extend(extra[:n_outputs - len(outputs)])
    for o in outputs:
        circuit.set_output(o)
    circuit.validate()
    return circuit


def fanin_network(n_inputs: int,
                  n_stems: int,
                  n_outputs: int,
                  leaves_per_output: int,
                  seed: int,
                  balanced: bool,
                  name: Optional[str] = None) -> Circuit:
    """Multi-output network whose *function* is independent of ``balanced``.

    A shared layer of ``n_stems`` random 2-input gates is built over the
    inputs; each output is then a wide associative operation (alternating
    AND/OR per output) over a seeded choice of stem/input leaves.  With
    ``balanced=False`` the wide op is realized as a skewed chain (deep, many
    logic levels); with ``balanced=True`` as a balanced tree (shallow).
    Same seed => identical leaves => identical Boolean functions and gate
    counts — the controlled version of the paper's Fig. 8 levels-of-logic
    study.
    """
    rng = np.random.default_rng(seed)
    suffix = "bal" if balanced else "chain"
    b = CircuitBuilder(name or f"fanin_{n_inputs}x{n_outputs}_{suffix}")
    pool: List[str] = list(b.input_bus("pi", n_inputs))
    stem_types = [GateType.AND, GateType.OR, GateType.NAND, GateType.NOR,
                  GateType.XOR]
    for _ in range(n_stems):
        t = stem_types[int(rng.integers(len(stem_types)))]
        i = int(rng.integers(len(pool)))
        j = int(rng.integers(len(pool) - 1))
        if j >= i:
            j += 1
        pool.append(b.gate(t, pool[i], pool[j]))

    for out_idx in range(n_outputs):
        op = b.and_ if out_idx % 2 == 0 else b.or_
        chosen = rng.choice(len(pool), size=leaves_per_output, replace=False)
        leaves = [pool[int(c)] for c in chosen]
        if balanced:
            layer = leaves
            while len(layer) > 1:
                nxt = []
                for i in range(0, len(layer) - 1, 2):
                    nxt.append(op(layer[i], layer[i + 1]))
                if len(layer) % 2:
                    nxt.append(layer[-1])
                layer = nxt
            result = layer[0]
        else:
            result = leaves[0]
            for leaf in leaves[1:]:
                result = op(result, leaf)
        b.outputs(**{f"po{out_idx}": result})
    return b.build()


def sec_circuit(data_bits: int = 32, check_bits: int = 8,
                name: Optional[str] = None,
                seed: int = 499) -> Circuit:
    """Single-error-correcting decode circuit (our c499 stand-in).

    Structure (mirrors the real c499's function): ``data_bits`` data inputs
    and ``check_bits`` received check inputs; XOR trees recompute each check
    bit over a seeded parity-check matrix and XOR it with the received one
    to form the syndrome; each data output is the data bit XOR-ed with the
    full AND-decode of its syndrome pattern.  The syndrome wires fan out to
    every decoder — massive reconvergent fanout, the property that makes
    the real c499/c1355 the hardest rows of the paper's Table 2.
    """
    rng = np.random.default_rng(seed)
    b = CircuitBuilder(name or "sec")
    data = b.input_bus("d", data_bits)
    checks = b.input_bus("c", check_bits)
    enable = b.input("en")  # correction enable (c499 has 41 inputs)
    # Assign each data bit a distinct nonzero syndrome pattern with >= 2
    # set bits (so patterns differ from single-check-error syndromes).
    patterns: List[int] = []
    candidates = [p for p in range(1, 1 << check_bits)
                  if bin(p).count("1") >= 2]
    order = rng.permutation(len(candidates))
    for idx in order:
        patterns.append(candidates[idx])
        if len(patterns) == data_bits:
            break
    if len(patterns) < data_bits:
        raise ValueError("check_bits too small for data_bits")

    # Recomputed check bits: XOR tree over the data bits in each check.
    syndrome: List[str] = []
    for j in range(check_bits):
        members = [data[i] for i in range(data_bits)
                   if (patterns[i] >> j) & 1]
        acc = members[0]
        for m in members[1:]:
            acc = b.xor(acc, m)
        syndrome.append(b.xor(acc, checks[j]))
    syndrome_n = [b.not_(s) for s in syndrome]

    # Correct each data bit when the syndrome matches its pattern.
    for i in range(data_bits):
        lits = [syndrome[j] if (patterns[i] >> j) & 1 else syndrome_n[j]
                for j in range(check_bits)]
        acc = lits[0]
        for lit in lits[1:]:
            acc = b.and_(acc, lit)
        gated = b.and_(acc, enable)
        corrected = b.xor(data[i], gated)
        b.outputs(**{f"q{i}": corrected})
    return b.build()


# ---------------------------------------------------------------------------
# Large-netlist presets (the docs/scaling.md substrate)
# ---------------------------------------------------------------------------

def _attach_probe(circuit: Circuit, label: str, width: int) -> None:
    """Graft a balanced ``width``-input tree output named ``label``.

    The tree reduces the circuit's first ``width`` primary inputs
    pairwise (NAND with an XOR every third gate, so signal probabilities
    are non-trivial) and exposes the root as an extra primary output.
    Its cone is exactly ``width`` inputs and ``width - 1`` gates
    regardless of the surrounding netlist — a guaranteed-small cone that
    restricted analysis and the SAT tier can target deterministically.
    """
    layer = list(circuit.inputs[:width])
    counter = 0
    while len(layer) > 1:
        nxt: List[str] = []
        for j in range(0, len(layer) - 1, 2):
            counter += 1
            gname = label if len(layer) == 2 else f"{label}_n{counter}"
            gate_type = GateType.XOR if counter % 3 == 0 else GateType.NAND
            circuit.add_gate(gname, gate_type, [layer[j], layer[j + 1]])
            nxt.append(gname)
        if len(layer) % 2:
            nxt.append(layer[-1])
        layer = nxt
    circuit.set_output(layer[0])


def large_random_netlist(n_gates: int, seed: int,
                         name: Optional[str] = None) -> Circuit:
    """Deterministic large random-logic preset with probe outputs.

    Inputs and outputs scale with the gate count (``max(32, n//50)``
    inputs, ``max(8, n//500)`` outputs), matching mapped-random-logic
    proportions.  Two probe outputs are grafted on top of the random
    core (see :func:`_attach_probe`):

    * ``probe_small`` — an 8-input cone, resolved exactly by every tier;
    * ``probe_mid`` — a 20-input cone, sized to exercise the XOR-hash
      approximate counting path of the ``sat`` weight tier.
    """
    circuit = random_circuit(max(32, n_gates // 50), n_gates,
                             max(8, n_gates // 500), seed, name=name)
    _attach_probe(circuit, "probe_small", 8)
    _attach_probe(circuit, "probe_mid", 20)
    circuit.validate()
    return circuit


def rand10k(name: Optional[str] = None) -> Circuit:
    """10k-gate large-netlist preset (seeded, deterministic)."""
    return large_random_netlist(10_000, seed=101, name=name or "rand10k")


def rand50k(name: Optional[str] = None) -> Circuit:
    """50k-gate large-netlist preset (seeded, deterministic)."""
    return large_random_netlist(50_000, seed=505, name=name or "rand50k")


def rand100k(name: Optional[str] = None) -> Circuit:
    """100k-gate large-netlist preset (seeded, deterministic)."""
    return large_random_netlist(100_000, seed=1009, name=name or "rand100k")
