"""ECO-style incremental analysis: a circuit plus live derived artifacts.

A :class:`CircuitWorkspace` owns a :class:`~repro.circuit.Circuit` together
with everything the analyses derive from it — simulation packs, weight
vectors / signal probabilities, the correlation
:class:`~repro.probability.correlation.PairStructure`, and the compiled
plans of both kernels — and keeps all of it consistent under a typed edit
log (:mod:`repro.incremental.edits`).  Each edit computes its *dirty cone*
(the transitive fanout of the touched nodes) and recomputes only:

* the simulation packs of dirty nodes (one
  :func:`~repro.sim.simulator.evaluate_gate_words` call each, in
  topological order);
* the signal probabilities of dirty nodes and the weight vectors of gates
  with a dirty fanin — by exact popcount recount over the retained packs,
  which reproduces :func:`~repro.probability.weights._weights_from_packs`
  integer-for-integer, so incremental results are *bit-identical* to a
  from-scratch analysis of the mutated circuit;
* the compiled plans, along a patch-vs-relower ladder: ``set_eps``
  invalidates nothing (eps enters at run time), a type-only ``swap_gate``
  patches the plain plan's arrays in place and re-lowers the correlated
  plan against the retained ``PairStructure``, and node-set-changing edits
  (rewires, add/remove, triplicate) drop the plans for lazy re-lowering
  over the incrementally maintained weights.

The weight maintenance deliberately resolves ``weight_method="auto"`` to
``"exhaustive"`` (≤ 20 uniform inputs) or ``"sampled"`` — never ``"bdd"``,
whose symbolic state cannot be patched per-cone.  On > 20-input circuits a
from-scratch ``auto`` analysis may therefore pick BDD weights where the
workspace samples; pass an explicit method when that distinction matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from ..circuit.circuit import Circuit, CircuitError, Node
from ..circuit.gate import GateType
from ..circuit.transform import triplicate_gates
from ..obs import metrics as obs_metrics
from ..obs import trace_span
from ..probability.correlation import PairStructure
from ..probability.weight_cache import (
    WORKSPACE_STATE_FORMAT_VERSION,
    structural_hash,
)
from ..probability.weights import WeightData, _weights_from_packs
from ..reliability.closed_form import (
    MultiOutputObservabilityModel,
    ObservabilityModel,
)
from ..reliability.compiled_pass import (
    CompiledCorrelatedPass,
    CompiledPassUnsupported,
    CompiledSinglePass,
)
from ..reliability.single_pass import SinglePassAnalyzer, SinglePassResult
from ..sim import patterns
from ..sim.simulator import (
    evaluate_gate_words,
    exhaustive_simulate,
    simulate,
)
from ..spec import DEFAULT_KEY, EpsilonSpec, epsilon_of, parse_epsilon
from .edits import (
    AddGate,
    Edit,
    RemoveGate,
    SetEps,
    SwapGate,
    Triplicate,
    edit_to_dict,
    parse_edit,
)

__all__ = ["CircuitWorkspace", "EditReport"]

#: Plan-slot sentinel: not lowered yet (next use re-lowers lazily).
_UNBUILT = object()

#: Human-readable plan-slot names used in :class:`EditReport` entries.
_PLAN_NAMES = {False: "plain", True: "correlated"}


@dataclass
class EditReport:
    """What one applied edit invalidated and how the plans reacted.

    ``plans`` maps ``"plain"`` / ``"correlated"`` to one of:

    * ``"reused"`` — the lowered plan survived the edit untouched;
    * ``"patched"`` — its integer-indexed arrays were updated in place;
    * ``"relowered"`` — a previously built plan was dropped and will be
      re-lowered lazily (reusing retained structure where possible);
    * ``"unbuilt"`` — there was no lowered plan to preserve.
    """

    kind: str
    #: Nodes whose simulation packs were recomputed (the dirty cone).
    dirty_nodes: int
    #: Gates whose weight vectors were recounted.
    reweighted_gates: int
    plans: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "dirty_nodes": self.dirty_nodes,
                "reweighted_gates": self.reweighted_gates,
                "plans": dict(self.plans)}


class CircuitWorkspace:
    """A mutable circuit whose analysis artifacts update per edit.

    Parameters mirror :class:`~repro.reliability.single_pass.
    SinglePassAnalyzer` where they overlap.  ``eps`` seeds the workspace's
    failure-probability state, which later ``set_eps`` edits mutate;
    :meth:`analyze` / :meth:`sweep` default to that state.

    Every mutation goes through :meth:`apply`; a rejected edit (unknown
    node, arity violation, forward-referencing rewire, …) raises before
    any state is touched, leaving the workspace intact.
    """

    def __init__(self, circuit: Circuit,
                 eps: EpsilonSpec = 0.05,
                 weight_method: str = "auto",
                 n_patterns: int = 1 << 16,
                 seed: int = 0,
                 input_probs: Optional[Mapping[str, float]] = None,
                 input_errors: Optional[Mapping[str, Any]] = None,
                 use_correlation: bool = True,
                 max_correlation_pairs: int = 1_000_000,
                 max_correlation_level_gap: Optional[int] = None,
                 compiled: str = "auto"):
        circuit.validate()
        if compiled not in ("auto", "off"):
            raise ValueError(f"compiled must be 'auto' or 'off', "
                             f"got {compiled!r}")
        self.circuit = circuit
        self.input_probs = dict(input_probs) if input_probs else None
        self.input_errors = dict(input_errors or {})
        self.use_correlation = bool(use_correlation)
        self.max_correlation_pairs = max_correlation_pairs
        self.max_correlation_level_gap = max_correlation_level_gap
        self.compiled = compiled
        self.seed = seed

        self.weight_method = self._resolve_method(weight_method)
        with trace_span("incremental.init", circuit=circuit.name,
                        method=self.weight_method):
            if self.weight_method == "exhaustive":
                # Mirrors exhaustive_weight_vectors, retaining the packs.
                self._values = exhaustive_simulate(circuit)
                self.n_patterns = max(64, 1 << len(circuit.inputs))
            else:
                # Mirrors sampled_weight_vectors, retaining the packs.
                rng = np.random.default_rng(seed)
                n_words = patterns.words_for_patterns(n_patterns)
                pack = patterns.random_pack(circuit.inputs, n_words, rng,
                                            self.input_probs)
                self._values = simulate(circuit, pack)
                self.n_patterns = n_patterns
            self._n_words = patterns.words_for_patterns(self.n_patterns)
            self._weights = _weights_from_packs(
                circuit, self._values, self.n_patterns, self.weight_method)

        self._eps: Dict[str, float] = self._initial_eps(eps)
        self._plans: Dict[bool, Any] = {}
        self._pair_structure: Optional[PairStructure] = None
        self._analyzers: Dict[bool, SinglePassAnalyzer] = {}
        self._closed: Dict[Optional[str], Any] = {}
        self._edit_log: List[Edit] = []

    # -- construction helpers ------------------------------------------
    def _resolve_method(self, method: str) -> str:
        if method == "bdd":
            raise ValueError(
                "weight_method='bdd' cannot be incrementally maintained; "
                "use 'exhaustive', 'sampled', or 'auto'")
        if method == "auto":
            if len(self.circuit.inputs) <= 20 and not self.input_probs:
                return "exhaustive"
            return "sampled"
        if method == "exhaustive":
            if self.input_probs:
                raise ValueError(
                    "exhaustive weights assume uniform inputs; use sampled")
            if len(self.circuit.inputs) > 26:
                raise ValueError("exhaustive simulation limited to 26 inputs")
            return method
        if method == "sampled":
            return method
        raise ValueError(f"unknown weight method {method!r}")

    def _initial_eps(self, eps: EpsilonSpec) -> Dict[str, float]:
        spec = parse_epsilon(eps)
        if isinstance(spec, Mapping):
            state = dict(spec)
        else:
            state = {DEFAULT_KEY: float(spec)}
        for gate, value in state.items():
            self._check_eps_entry(gate if gate != DEFAULT_KEY else None,
                                  value)
        return state

    def _check_eps_entry(self, gate: Optional[str], value: float) -> None:
        if gate is not None:
            node = self.circuit.node(gate)
            if not node.gate_type.is_logic:
                raise ValueError(
                    f"epsilon given for non-gate node {gate!r} "
                    "(inputs are noise-free in the BSC model)")
        if not 0.0 <= float(value) <= 0.5:
            raise ValueError(
                f"epsilon[{gate!r}] = {value} outside [0, 0.5]")

    # -- eps state ------------------------------------------------------
    def current_eps(self) -> Dict[str, float]:
        """The live failure-probability map (``"default"`` key included)."""
        return dict(self._eps)

    # -- edit application ----------------------------------------------
    def apply(self, edit) -> EditReport:
        """Apply one edit (typed record or its dict form); see module doc."""
        edit = parse_edit(edit)
        with trace_span("incremental.apply", circuit=self.circuit.name,
                        kind=edit.kind):
            if isinstance(edit, SetEps):
                report = self._apply_set_eps(edit)
            elif isinstance(edit, SwapGate):
                report = self._apply_swap(edit)
            elif isinstance(edit, AddGate):
                report = self._apply_add(edit)
            elif isinstance(edit, RemoveGate):
                report = self._apply_remove(edit)
            else:
                report = self._apply_triplicate(edit)
        self._edit_log.append(edit)
        if obs_metrics.is_enabled():
            labels = {"circuit": self.circuit.name, "kind": edit.kind}
            obs_metrics.inc("incremental.edits", **labels)
            obs_metrics.set_gauge("incremental.dirty_nodes",
                                  report.dirty_nodes, **labels)
            obs_metrics.inc("incremental.reweighted_gates",
                            report.reweighted_gates, **labels)
            for plan, decision in report.plans.items():
                obs_metrics.inc("incremental.plan_decisions", plan=plan,
                                decision=decision,
                                circuit=self.circuit.name)
        return report

    @property
    def edit_log(self) -> List[Edit]:
        """The edits applied so far, in order (a copy)."""
        return list(self._edit_log)

    # -- individual edit kinds -----------------------------------------
    def _apply_set_eps(self, edit: SetEps) -> EditReport:
        self._check_eps_entry(edit.gate, edit.eps)
        self._eps[edit.gate if edit.gate is not None
                  else DEFAULT_KEY] = float(edit.eps)
        plans = {_PLAN_NAMES[m]: ("reused" if self._built(m) else "unbuilt")
                 for m in (False, True)}
        return EditReport(kind=edit.kind, dirty_nodes=0, reweighted_gates=0,
                          plans=plans)

    def _apply_swap(self, edit: SwapGate) -> EditReport:
        node = self.circuit.node(edit.gate)
        if not node.gate_type.is_logic:
            raise CircuitError(f"cannot swap non-gate node {edit.gate!r}")
        fanins = node.fanins if edit.fanins is None else tuple(edit.fanins)
        type_only = fanins == node.fanins
        if type_only and edit.gate_type is node.gate_type:
            plans = {_PLAN_NAMES[m]:
                     ("reused" if self._built(m) else "unbuilt")
                     for m in (False, True)}
            return EditReport(kind=edit.kind, dirty_nodes=0,
                              reweighted_gates=0, plans=plans)
        replacement = Node(edit.gate, edit.gate_type, fanins)
        new_circuit = self._rebuild(replace={edit.gate: replacement})
        dirty = self._transitive_fanout(new_circuit, [edit.gate])

        self._commit(new_circuit)
        self._resimulate(dirty)
        reweight = set(dirty)
        if type_only:
            reweight.discard(edit.gate)  # own fanins (and packs) unchanged
        self._reweight(reweight)

        plans: Dict[str, str] = {}
        plain = self._plans.get(False, _UNBUILT)
        if type_only and plain is not _UNBUILT and plain is not None:
            patched = plain.patch_weights(
                self.circuit, self._weights,
                changed_gates=sorted(reweight),
                retruthed_gates=[edit.gate])
            if patched:
                plans["plain"] = "patched"
            else:
                self._plans[False] = _UNBUILT
                plans["plain"] = "relowered"
        else:
            plans["plain"] = "relowered" if self._built(False) else "unbuilt"
            self._plans[False] = _UNBUILT
        plans["correlated"] = ("relowered" if self._built(True)
                               else "unbuilt")
        self._plans[True] = _UNBUILT
        if not type_only:
            self._pair_structure = None  # supports changed with the rewire
        return EditReport(kind=edit.kind, dirty_nodes=len(dirty),
                          reweighted_gates=len(reweight), plans=plans)

    def _apply_add(self, edit: AddGate) -> EditReport:
        if not edit.gate_type.is_logic:
            raise CircuitError(
                f"add_gate requires a logic gate type, got "
                f"{edit.gate_type.value!r}")
        if edit.eps is not None:
            self._check_eps_entry(None, edit.eps)
        new_circuit = self._rebuild(
            append=[Node(edit.name, edit.gate_type, tuple(edit.fanins))],
            extra_outputs=[edit.name] if edit.output else ())
        plans = self._drop_plans_structural()
        self._commit(new_circuit)
        self._resimulate([edit.name])
        self._reweight([edit.name])
        if edit.eps is not None:
            self._eps[edit.name] = float(edit.eps)
        return EditReport(kind=edit.kind, dirty_nodes=1, reweighted_gates=1,
                          plans=plans)

    def _apply_remove(self, edit: RemoveGate) -> EditReport:
        node = self.circuit.node(edit.gate)
        if not node.gate_type.is_logic:
            raise CircuitError(f"cannot remove non-gate node {edit.gate!r}")
        if self.circuit.fanouts(edit.gate):
            raise CircuitError(
                f"cannot remove gate {edit.gate!r}: it still drives "
                f"{list(self.circuit.fanouts(edit.gate))}")
        if edit.gate in self.circuit.outputs:
            raise CircuitError(
                f"cannot remove gate {edit.gate!r}: it is a primary output")
        new_circuit = self._rebuild(drop={edit.gate})
        plans = self._drop_plans_structural()
        self._commit(new_circuit)
        del self._values[edit.gate]
        del self._weights.weights[edit.gate]
        del self._weights.signal_prob[edit.gate]
        self._eps.pop(edit.gate, None)
        return EditReport(kind=edit.kind, dirty_nodes=0, reweighted_gates=0,
                          plans=plans)

    def _apply_triplicate(self, edit: Triplicate) -> EditReport:
        if not edit.gates:
            raise ValueError("triplicate needs at least one gate")
        if edit.voter_eps is not None:
            self._check_eps_entry(None, edit.voter_eps)
        protected = list(dict.fromkeys(edit.gates))
        old_eps = {g: epsilon_of(self._eps, g) for g in protected}
        roles: Dict[str, tuple] = {}
        new_circuit = triplicate_gates(self.circuit, protected,
                                       name=self.circuit.name, roles=roles)
        plans = self._drop_plans_structural()
        self._commit(new_circuit)
        # The voter reclaiming each protected name computes the identical
        # function, so its recomputed pack is bit-equal to the old one and
        # nothing downstream of the TMR islands is dirty.
        touched = [n for n in new_circuit.topological_order() if n in roles]
        self._resimulate(touched)
        self._reweight(touched)
        for node_name, (role, prot) in roles.items():
            if role == "voter" and edit.voter_eps is not None:
                self._eps[node_name] = float(edit.voter_eps)
            else:
                self._eps[node_name] = old_eps[prot]
        return EditReport(kind=edit.kind, dirty_nodes=len(touched),
                          reweighted_gates=len(touched), plans=plans)

    # -- dirty-cone machinery ------------------------------------------
    def _rebuild(self, replace: Optional[Mapping[str, Node]] = None,
                 drop: Iterable[str] = (),
                 append: Sequence[Node] = (),
                 extra_outputs: Sequence[str] = ()) -> Circuit:
        """Re-enter the netlist through the public Circuit API.

        Rebuilding (rather than mutating in place) makes every edit pass
        the same construction-time validation as a parsed netlist: fanins
        must precede their gate, arities must match, names are unique.
        Raises before any workspace state changes.
        """
        dropped = set(drop)
        out = Circuit(self.circuit.name)
        for node in self.circuit:
            if node.name in dropped:
                continue
            node = (replace or {}).get(node.name, node)
            if node.gate_type.is_input:
                out.add_input(node.name)
            elif node.gate_type.is_constant:
                out.add_const(
                    node.name,
                    1 if node.gate_type is GateType.CONST1 else 0)
            else:
                out.add_gate(node.name, node.gate_type, node.fanins)
        for node in append:
            out.add_gate(node.name, node.gate_type, node.fanins)
        for o in self.circuit.outputs:
            if o not in dropped:
                out.set_output(o)
        for o in extra_outputs:
            out.set_output(o)
        out.validate()
        return out

    def _commit(self, new_circuit: Circuit) -> None:
        """Adopt the rebuilt circuit; cached analyzers/models are stale."""
        self.circuit = new_circuit
        self._analyzers = {}
        self._closed = {}

    @staticmethod
    def _transitive_fanout(circuit: Circuit,
                           roots: Iterable[str]) -> Set[str]:
        dirty = set(roots)
        stack = list(dirty)
        while stack:
            for fo in circuit.fanouts(stack.pop()):
                if fo not in dirty:
                    dirty.add(fo)
                    stack.append(fo)
        return dirty

    def _resimulate(self, dirty: Iterable[str]) -> None:
        """Recompute the packs of the dirty cone, in topological order."""
        dirty = set(dirty)
        order = [n for n in self.circuit.topological_order() if n in dirty]
        with trace_span("incremental.resimulate", nodes=len(order)):
            for name in order:
                node = self.circuit.node(name)
                self._values[name] = evaluate_gate_words(
                    node.gate_type,
                    [self._values[f] for f in node.fanins], self._n_words)
            for name in order:
                self._weights.signal_prob[name] = (
                    patterns.masked_popcount(self._values[name],
                                             self.n_patterns)
                    / self.n_patterns)

    def _reweight(self, gates: Iterable[str]) -> None:
        """Recount the weight vectors of gates with changed fanin packs.

        The per-vector AND/popcount recount produces the same integer
        counts as ``_weights_from_packs``'s Möbius transform, so dividing
        by the same ``n_patterns`` yields bit-identical float vectors —
        the foundation of the from-scratch parity guarantee.
        """
        gates = list(gates)
        with trace_span("incremental.reweight", gates=len(gates)):
            for gate in gates:
                self._weights.weights[gate] = self._recount(gate)

    def _recount(self, gate: str) -> np.ndarray:
        fanins = self.circuit.fanins(gate)
        k = len(fanins)
        base = patterns.ones(self._n_words)
        base[-1] &= patterns.tail_mask(self.n_patterns)
        fan = [self._values[f][:self._n_words] for f in fanins]
        counts = np.empty(1 << k, dtype=np.int64)
        for v in range(1 << k):
            acc = base.copy()
            for t in range(k):
                if (v >> t) & 1:
                    np.bitwise_and(acc, fan[t], out=acc)
                else:
                    # The complement's garbage bits beyond the tail are
                    # already zeroed in ``acc``, so no extra masking.
                    np.bitwise_and(acc, np.bitwise_not(fan[t]), out=acc)
            counts[v] = patterns.popcount(acc)
        return counts / self.n_patterns

    # -- plan maintenance ----------------------------------------------
    def _built(self, mode: bool) -> bool:
        plan = self._plans.get(mode, _UNBUILT)
        return plan is not _UNBUILT and plan is not None

    def _drop_plans_structural(self) -> Dict[str, str]:
        """Node-set-changing edit: both plans re-lower, structure drops."""
        plans = {_PLAN_NAMES[m]:
                 ("relowered" if self._built(m) else "unbuilt")
                 for m in (False, True)}
        self._plans = {}
        self._pair_structure = None
        return plans

    def _ensure_plan(self, mode: bool):
        """The lowered plan for one mode, (re)building it lazily.

        Returns ``None`` when the circuit cannot be lowered (the analyzer
        then runs the scalar pass over the maintained weights).  A
        correlated re-lowering after a type-only swap reuses the retained
        :class:`PairStructure` — supports, topological positions, and
        levels are untouched by such an edit.
        """
        plan = self._plans.get(mode, _UNBUILT)
        if plan is not _UNBUILT:
            return plan
        try:
            if mode:
                plan = CompiledCorrelatedPass(
                    self.circuit, self._weights,
                    input_errors=self.input_errors,
                    max_pairs=self.max_correlation_pairs,
                    max_level_gap=self.max_correlation_level_gap,
                    structure=self._pair_structure)
                self._pair_structure = plan.structure
            else:
                plan = CompiledSinglePass(self.circuit, self._weights,
                                          input_errors=self.input_errors)
        except CompiledPassUnsupported:
            plan = None
        self._plans[mode] = plan
        return plan

    # -- analysis surface ----------------------------------------------
    def analyzer(self, use_correlation: Optional[bool] = None
                 ) -> SinglePassAnalyzer:
        """A single-pass analyzer wired to the workspace's live artifacts.

        The analyzer shares the workspace's weight data and its lowered
        plan (patched or re-lowered as the edit log dictates); it is
        rebuilt whenever an edit replaces the circuit.
        """
        mode = bool(self.use_correlation if use_correlation is None
                    else use_correlation)
        analyzer = self._analyzers.get(mode)
        if analyzer is None:
            analyzer = SinglePassAnalyzer(
                self.circuit, weights=self._weights, use_correlation=mode,
                input_errors=self.input_errors,
                max_correlation_pairs=self.max_correlation_pairs,
                max_correlation_level_gap=self.max_correlation_level_gap,
                compiled=self.compiled)
            self._analyzers[mode] = analyzer
        if self.compiled != "off":
            plan = self._ensure_plan(mode)
            analyzer._plan = plan
            analyzer._plan_unsupported = plan is None
        return analyzer

    def analyze(self, eps: Optional[EpsilonSpec] = None,
                eps10: Optional[EpsilonSpec] = None,
                use_correlation: Optional[bool] = None) -> SinglePassResult:
        """One single-pass run; ``eps=None`` uses the workspace eps state."""
        spec = self.current_eps() if eps is None else eps
        return self.analyzer(use_correlation).run(spec, eps10)

    def sweep(self, eps_values: Sequence[EpsilonSpec],
              eps10_values: Optional[Sequence[EpsilonSpec]] = None,
              use_correlation: Optional[bool] = None,
              jobs: int = 1):
        """A multi-point sweep over the workspace's live artifacts."""
        return self.analyzer(use_correlation).sweep(
            eps_values, eps10_values, jobs=jobs)

    def closed_form(self, output: Optional[str] = None,
                    n_patterns: int = 1 << 12):
        """Closed-form observability model of the *current* circuit.

        Cached per output; edits that change the circuit invalidate the
        cache (observabilities are structural, not eps-dependent).
        """
        model = self._closed.get(output)
        if model is None:
            with trace_span("incremental.closed_form",
                            circuit=self.circuit.name):
                if output is None and len(self.circuit.outputs) > 1:
                    model = MultiOutputObservabilityModel(
                        self.circuit, n_patterns=n_patterns, seed=self.seed)
                else:
                    model = ObservabilityModel(
                        self.circuit, output=output, n_patterns=n_patterns,
                        seed=self.seed)
            self._closed[output] = model
        return model

    @property
    def weights(self) -> WeightData:
        """The live weight vectors / signal probabilities (read-only use)."""
        return self._weights

    # -- branching ------------------------------------------------------
    def fork(self) -> "CircuitWorkspace":
        """An independent workspace continuing from the current state.

        Packs and weight vectors are shared structurally (both sides
        replace entries wholesale, never mutate arrays in place), so a
        fork is O(nodes) dict copying.  Compiled plans are *not* shared —
        in-place patching in one branch must not corrupt the other — but
        the :class:`PairStructure` is (it is immutable and still valid
        for the identical circuit).
        """
        ws = CircuitWorkspace.__new__(CircuitWorkspace)
        ws.circuit = self.circuit.copy()
        ws.input_probs = dict(self.input_probs) if self.input_probs else None
        ws.input_errors = dict(self.input_errors)
        ws.use_correlation = self.use_correlation
        ws.max_correlation_pairs = self.max_correlation_pairs
        ws.max_correlation_level_gap = self.max_correlation_level_gap
        ws.compiled = self.compiled
        ws.seed = self.seed
        ws.weight_method = self.weight_method
        ws.n_patterns = self.n_patterns
        ws._n_words = self._n_words
        ws._values = dict(self._values)
        ws._weights = WeightData(weights=dict(self._weights.weights),
                                 signal_prob=dict(self._weights.signal_prob),
                                 source=self._weights.source)
        ws._eps = dict(self._eps)
        ws._plans = {}
        ws._pair_structure = self._pair_structure
        ws._analyzers = {}
        ws._closed = {}
        ws._edit_log = list(self._edit_log)
        return ws

    # -- persistence ----------------------------------------------------
    def to_state(self) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        """Serialize the live state into ``(manifest, arrays)``.

        The manifest is JSON-safe metadata — the mutated netlist, the
        estimator parameters, the eps state, and the typed edit log in its
        :func:`~repro.incremental.edits.edit_to_dict` wire form.  The
        arrays carry the bulk artifacts: the retained simulation packs
        (truncated to the live word count), the weight vectors flattened
        the same way the weight disk cache stores them, and the signal
        probabilities.  Compiled plans are *not* serialized: they re-lower
        deterministically from the restored weights (and the correlated
        plan's pair table lives in the correlation-plan disk cache), so
        :meth:`from_state` round-trips to a workspace whose analyses are
        bit-identical without persisting kernel internals.
        """
        pack_nodes = list(self._values)
        weight_gates = list(self._weights.weights)
        prob_nodes = list(self._weights.signal_prob)
        vectors = [np.asarray(self._weights.weights[g], dtype=np.float64)
                   for g in weight_gates]
        manifest: Dict[str, Any] = {
            "format": WORKSPACE_STATE_FORMAT_VERSION,
            "kind": "workspace_state",
            "circuit": {
                "name": self.circuit.name,
                "nodes": [[node.name, node.gate_type.value,
                           list(node.fanins)] for node in self.circuit],
                "outputs": list(self.circuit.outputs),
            },
            "structural_hash": structural_hash(self.circuit),
            "weight_method": self.weight_method,
            "weights_source": self._weights.source,
            "n_patterns": int(self.n_patterns),
            "n_words": int(self._n_words),
            "seed": int(self.seed),
            "input_probs": sorted((self.input_probs or {}).items()),
            "input_errors": {str(k): (list(v) if isinstance(v, tuple)
                                      else v)
                             for k, v in self.input_errors.items()},
            "use_correlation": self.use_correlation,
            "max_correlation_pairs": int(self.max_correlation_pairs),
            "max_correlation_level_gap": self.max_correlation_level_gap,
            "compiled": self.compiled,
            "eps": {str(k): float(v) for k, v in self._eps.items()},
            "edit_log": [edit_to_dict(e) for e in self._edit_log],
            "pack_nodes": pack_nodes,
            "weight_gates": weight_gates,
            "prob_nodes": prob_nodes,
        }
        arrays = {
            "packs": (np.stack(
                [np.asarray(self._values[n][:self._n_words],
                            dtype=np.uint64) for n in pack_nodes])
                if pack_nodes
                else np.empty((0, self._n_words), dtype=np.uint64)),
            "weights_flat": (np.concatenate(vectors) if vectors
                             else np.empty(0, dtype=np.float64)),
            "weights_len": np.asarray([len(v) for v in vectors],
                                      dtype=np.int64),
            "signal_prob": np.asarray(
                [self._weights.signal_prob[n] for n in prob_nodes],
                dtype=np.float64),
        }
        return manifest, arrays

    @classmethod
    def from_state(cls, manifest: Mapping[str, Any],
                   arrays: Mapping[str, np.ndarray]) -> "CircuitWorkspace":
        """Rebuild a workspace from :meth:`to_state` output.

        The netlist is re-entered through the public ``Circuit`` API (the
        same validation path as a parsed file) and cross-checked against
        the recorded structural hash; array layouts are validated before
        any state is adopted.  Raises :class:`ValueError` on any mismatch
        — callers treating persisted state as a cache should catch it and
        fall back to a cold build.
        """
        spec = manifest["circuit"]
        circuit = Circuit(spec["name"])
        for name, type_value, fanins in spec["nodes"]:
            gate_type = GateType(type_value)
            if gate_type.is_input:
                circuit.add_input(name)
            elif gate_type.is_constant:
                circuit.add_const(
                    name, 1 if gate_type is GateType.CONST1 else 0)
            else:
                circuit.add_gate(name, gate_type, fanins)
        for o in spec["outputs"]:
            circuit.set_output(o)
        circuit.validate()
        if structural_hash(circuit) != manifest["structural_hash"]:
            raise ValueError("workspace state: structural hash mismatch")

        n_words = int(manifest["n_words"])
        pack_nodes = [str(n) for n in manifest["pack_nodes"]]
        packs = np.asarray(arrays["packs"], dtype=np.uint64)
        if packs.shape != (len(pack_nodes), n_words):
            raise ValueError("workspace state: pack layout mismatch")
        weight_gates = [str(g) for g in manifest["weight_gates"]]
        lengths = np.asarray(arrays["weights_len"], dtype=np.int64)
        flat = np.asarray(arrays["weights_flat"], dtype=np.float64)
        if len(lengths) != len(weight_gates) or lengths.sum() != len(flat):
            raise ValueError("workspace state: weight layout mismatch")
        offsets = np.concatenate(([0], np.cumsum(lengths)))
        weights = {}
        for i, gate in enumerate(weight_gates):
            vec = flat[offsets[i]:offsets[i + 1]].copy()
            if len(vec) == 0 or len(vec) & (len(vec) - 1):
                raise ValueError("workspace state: weight vector not "
                                 "2**k long")
            weights[gate] = vec
        prob_nodes = [str(n) for n in manifest["prob_nodes"]]
        signal = np.asarray(arrays["signal_prob"], dtype=np.float64)
        if len(signal) != len(prob_nodes):
            raise ValueError("workspace state: signal_prob length mismatch")

        ws = cls.__new__(cls)
        ws.circuit = circuit
        input_probs = {str(k): float(v)
                       for k, v in (manifest.get("input_probs") or [])}
        ws.input_probs = input_probs or None
        ws.input_errors = {
            str(k): (tuple(v) if isinstance(v, (list, tuple)) else v)
            for k, v in (manifest.get("input_errors") or {}).items()}
        ws.use_correlation = bool(manifest["use_correlation"])
        ws.max_correlation_pairs = int(manifest["max_correlation_pairs"])
        gap = manifest["max_correlation_level_gap"]
        ws.max_correlation_level_gap = None if gap is None else int(gap)
        ws.compiled = str(manifest["compiled"])
        ws.seed = int(manifest["seed"])
        ws.weight_method = str(manifest["weight_method"])
        ws.n_patterns = int(manifest["n_patterns"])
        ws._n_words = n_words
        ws._values = {n: packs[i].copy() for i, n in enumerate(pack_nodes)}
        ws._weights = WeightData(
            weights=weights,
            signal_prob={n: float(p) for n, p in zip(prob_nodes, signal)},
            source=str(manifest["weights_source"]))
        ws._eps = {str(k): float(v) for k, v in manifest["eps"].items()}
        ws._plans = {}
        ws._pair_structure = None
        ws._analyzers = {}
        ws._closed = {}
        ws._edit_log = [parse_edit(d) for d in manifest["edit_log"]]
        return ws

    def __repr__(self) -> str:
        return (f"CircuitWorkspace({self.circuit.name!r}: "
                f"{self.circuit.num_gates} gates, "
                f"{len(self._edit_log)} edits applied)")
