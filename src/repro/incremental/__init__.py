"""Incremental (ECO-style) analysis: edit a circuit, pay only the cone.

See docs/incremental.md for the edit model, the dirty-cone rules, and the
patch-vs-relower ladder.
"""

from .edits import (
    AddGate,
    Edit,
    RemoveGate,
    SetEps,
    SwapGate,
    Triplicate,
    edit_to_dict,
    parse_edit,
)
from .workspace import CircuitWorkspace, EditReport

__all__ = [
    "AddGate",
    "CircuitWorkspace",
    "Edit",
    "EditReport",
    "RemoveGate",
    "SetEps",
    "SwapGate",
    "Triplicate",
    "edit_to_dict",
    "parse_edit",
]
