"""The typed edit log applied by :class:`~repro.incremental.CircuitWorkspace`.

Every ECO-style mutation of a workspace is one of five frozen edit
records.  Each edit carries exactly the information needed to (a) rebuild
the circuit through the public :class:`~repro.circuit.Circuit` API — the
workspace never mutates a netlist in place — and (b) compute the edit's
*dirty cone*, the set of nodes whose simulation packs, weight vectors, or
compiled-plan entries the edit invalidates (see docs/incremental.md).

The records round-trip through plain dicts (:func:`parse_edit` /
:func:`edit_to_dict`) so the same objects drive the Python API and the
``repro serve`` ``edit`` request's JSON ``edits`` list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Union

from ..circuit import GateType

__all__ = [
    "AddGate",
    "Edit",
    "RemoveGate",
    "SetEps",
    "SwapGate",
    "Triplicate",
    "edit_to_dict",
    "parse_edit",
]


def _coerce_gate_type(value: Union[GateType, str]) -> GateType:
    if isinstance(value, GateType):
        return value
    try:
        return GateType(str(value).lower())
    except ValueError:
        raise ValueError(f"unknown gate type {value!r}") from None


@dataclass(frozen=True)
class SetEps:
    """Change the failure probability of one gate (or the default).

    ``gate=None`` updates the spec's ``"default"`` entry.  Pure analysis
    state: no pack, weight, or plan is invalidated.
    """

    eps: float
    gate: Optional[str] = None

    kind = "set_eps"


@dataclass(frozen=True)
class SwapGate:
    """Replace a gate's function (and optionally its fanins) in place.

    With ``fanins=None`` only the gate type changes — the cheapest
    structural edit: the node set, every level, and the swapped gate's own
    weight vector are all preserved, so the plain compiled plan is patched
    rather than re-lowered.  Supplying ``fanins`` rewires the gate; the
    new fanins must be defined earlier in the netlist order.
    """

    gate: str
    gate_type: Union[GateType, str]
    fanins: Optional[Tuple[str, ...]] = None

    kind = "swap_gate"

    def __post_init__(self):
        object.__setattr__(self, "gate_type",
                           _coerce_gate_type(self.gate_type))
        if self.fanins is not None:
            object.__setattr__(self, "fanins",
                               tuple(str(f) for f in self.fanins))


@dataclass(frozen=True)
class AddGate:
    """Append a new gate at the end of the netlist.

    The fanins must already exist; ``output=True`` additionally declares
    the new node as a primary output.  Nothing existing is invalidated —
    the new node has no fanouts yet — but the node set changes, so the
    compiled plans are re-lowered lazily.
    """

    name: str
    gate_type: Union[GateType, str]
    fanins: Tuple[str, ...]
    output: bool = False
    eps: Optional[float] = None

    kind = "add_gate"

    def __post_init__(self):
        object.__setattr__(self, "gate_type",
                           _coerce_gate_type(self.gate_type))
        object.__setattr__(self, "fanins",
                           tuple(str(f) for f in self.fanins))


@dataclass(frozen=True)
class RemoveGate:
    """Delete a dangling gate (no fanouts, not a primary output)."""

    gate: str

    kind = "remove_gate"


@dataclass(frozen=True)
class Triplicate:
    """Selective TMR on the chosen gates via
    :func:`~repro.circuit.transform.triplicate_gates`.

    The transform is function-preserving: the voter output reclaims the
    protected gate's name and computes the identical value, so downstream
    packs and weight vectors stay bit-identical — only the inserted
    copies/voters are dirty.  Inserted copies inherit the protected
    gate's current eps; voters get ``voter_eps`` (or, pessimistically,
    the protected gate's eps when ``None``).
    """

    gates: Tuple[str, ...]
    voter_eps: Optional[float] = None

    kind = "triplicate"

    def __post_init__(self):
        object.__setattr__(self, "gates",
                           tuple(str(g) for g in self.gates))


Edit = Union[SetEps, SwapGate, AddGate, RemoveGate, Triplicate]

_EDIT_TYPES = {cls.kind: cls
               for cls in (SetEps, SwapGate, AddGate, RemoveGate, Triplicate)}


def parse_edit(data: Union[Edit, Dict[str, Any]]) -> Edit:
    """One JSON edit object → one typed edit record.

    Accepts an already-typed edit unchanged.  The dict form carries a
    ``"kind"`` discriminator plus that edit's fields, e.g.
    ``{"kind": "swap_gate", "gate": "g5", "gate_type": "nor"}``.
    """
    if isinstance(data, tuple(_EDIT_TYPES.values())):
        return data
    if not isinstance(data, dict):
        raise ValueError(f"edit must be a JSON object, got "
                         f"{type(data).__name__}")
    kind = data.get("kind")
    cls = _EDIT_TYPES.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown edit kind {kind!r}: expected one of "
            f"{', '.join(sorted(_EDIT_TYPES))}")
    fields = {k: v for k, v in data.items() if k != "kind"}
    if cls is SwapGate and "fanins" in fields and fields["fanins"] is not None:
        fields["fanins"] = tuple(fields["fanins"])
    if cls is AddGate:
        fields["fanins"] = tuple(fields.get("fanins") or ())
    if cls is Triplicate:
        fields["gates"] = tuple(fields.get("gates") or ())
    try:
        return cls(**fields)
    except TypeError as exc:
        raise ValueError(f"bad {kind!r} edit: {exc}") from None


def edit_to_dict(edit: Edit) -> Dict[str, Any]:
    """One typed edit record → its JSON wire form (parse_edit inverse)."""
    if isinstance(edit, SetEps):
        return {"kind": edit.kind, "eps": edit.eps, "gate": edit.gate}
    if isinstance(edit, SwapGate):
        data: Dict[str, Any] = {"kind": edit.kind, "gate": edit.gate,
                                "gate_type": edit.gate_type.value}
        if edit.fanins is not None:
            data["fanins"] = list(edit.fanins)
        return data
    if isinstance(edit, AddGate):
        data = {"kind": edit.kind, "name": edit.name,
                "gate_type": edit.gate_type.value,
                "fanins": list(edit.fanins), "output": edit.output}
        if edit.eps is not None:
            data["eps"] = edit.eps
        return data
    if isinstance(edit, RemoveGate):
        return {"kind": edit.kind, "gate": edit.gate}
    if isinstance(edit, Triplicate):
        data = {"kind": edit.kind, "gates": list(edit.gates)}
        if edit.voter_eps is not None:
            data["voter_eps"] = edit.voter_eps
        return data
    raise ValueError(f"not an edit: {edit!r}")
