"""Large-netlist substrate: lazy per-cone weights, restricted analysis.

The scaling tier (docs/scaling.md) combines three pieces:

* :class:`LazyWeightData` — a drop-in weight store that materializes
  weight vectors one output cone at a time, on first touch;
* per-cone disk persistence through the ``conewt-`` namespace of
  :mod:`repro.probability.weight_cache`;
* ``outputs=``-restricted analysis in
  :class:`~repro.reliability.single_pass.SinglePassAnalyzer` and the
  engine/CLI on top of it, which only ever touches the union cone.
"""

from .lazy_weights import (
    LazyWeightData,
    cone_weight_vectors,
    full_circuit_pack,
    resolve_lazy_method,
)

__all__ = [
    "LazyWeightData",
    "cone_weight_vectors",
    "full_circuit_pack",
    "resolve_lazy_method",
]
