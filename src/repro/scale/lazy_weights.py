"""Lazy per-cone weight store for large netlists.

Weight vectors are the expensive eps-independent artifact: on a 50k-gate
netlist even the sampled estimator simulates every gate, and the BDD
route is hopeless.  But a query restricted to a few outputs only ever
*reads* the weights of the union output cone — often a tiny fraction of
the circuit.  :class:`LazyWeightData` is a drop-in
:class:`~repro.probability.weights.WeightData` whose ``weights`` /
``signal_prob`` mappings materialize one cone at a time, on first touch,
and persist each materialized cone through the ``conewt-`` namespace of
:mod:`repro.probability.weight_cache`.

Bit-identity contract
---------------------
A cone materialized here must carry *exactly* the numbers a full-circuit
:func:`~repro.probability.weights.compute_weights` run would have
produced for the same nodes — that is what makes ``outputs=``-restricted
analysis answers bit-identical to full runs.  Per method:

* ``exhaustive`` — joint counts over the cone's ``2**m`` input vectors
  and over the full circuit's ``2**n`` differ by the exact factor
  ``2**(n-m)`` in both numerator and denominator, so the (correctly
  rounded) float ratios coincide bit-for-bit.
* ``sampled`` — :func:`~repro.sim.patterns.random_pack` draws one
  stream, per input, in full-circuit input order.  The cone path draws
  the pack for the *full* input list (keeping the stream aligned), keeps
  the cone's columns, and simulates only the cone; per-gate counting is
  batch-independent, so every shared node gets identical words.
* ``sat`` — every per-node value is derived from that node's own cone
  with a name-derived seed, so it never depends on which region of the
  circuit is being materialized.
* ``bdd`` — per-cone BDDs are isomorphic to the full build with the
  variable order restricted (relative input order is preserved by
  ``subcircuit``), so probabilities match; the one divergence is the
  node limit, which a cone may fit while the full build overflows (see
  docs/scaling.md).
* ``auto`` — resolved once against the **full** circuit (exhaustive for
  <= 20 inputs, else sampled).  The full-circuit ``auto`` ladder would
  try BDDs in between; the lazy path skips that rung because per-cone
  BDD success where the full build overflows would break region
  independence.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence

import numpy as np

from ..circuit import Circuit
from ..obs import trace_span
from ..sim import patterns
from ..sim.simulator import simulate
from ..probability.weights import (
    WeightData,
    _weights_from_packs,
    bdd_weight_vectors,
    exhaustive_weight_vectors,
)

__all__ = ["LazyWeightData", "cone_weight_vectors", "resolve_lazy_method"]


def resolve_lazy_method(circuit: Circuit, method: str,
                        input_probs: Optional[Mapping[str, float]]) -> str:
    """Resolve ``"auto"`` against the *full* circuit (see module docs)."""
    if method != "auto":
        return method
    if len(circuit.inputs) <= 20 and not input_probs:
        return "exhaustive"
    return "sampled"


def cone_weight_vectors(circuit: Circuit, cone: Circuit, *,
                        method: str = "auto",
                        n_patterns: int = 1 << 16,
                        seed: int = 0,
                        input_probs: Optional[Dict[str, float]] = None,
                        pack: Optional[Mapping[str, np.ndarray]] = None
                        ) -> WeightData:
    """Weights for one cone, bit-identical to a full-circuit computation.

    ``circuit`` is the full netlist the cone was cut from (its input
    list anchors the sampled path's pattern stream and the ``auto``
    resolution); ``cone`` is a :meth:`~repro.circuit.Circuit.subcircuit`
    of it.  ``pack``, when given, must be the full circuit's
    ``random_pack`` for ``(n_patterns, seed, input_probs)`` — callers
    materializing many cones pass it to amortize pattern generation.
    """
    method = resolve_lazy_method(circuit, method, input_probs)
    if method == "exhaustive":
        if input_probs:
            raise ValueError(
                "exhaustive weights assume uniform inputs; use bdd/sampled")
        return exhaustive_weight_vectors(cone)
    if method == "bdd":
        return bdd_weight_vectors(cone, input_probs=input_probs)
    if method == "sat":
        from ..probability.sat_weights import sat_weight_vectors
        return sat_weight_vectors(cone, n_patterns=n_patterns, seed=seed,
                                  input_probs=input_probs)
    if method == "sampled":
        if pack is None:
            pack = full_circuit_pack(circuit, n_patterns, seed, input_probs)
        values = simulate(cone, {name: pack[name] for name in cone.inputs})
        return _weights_from_packs(cone, values, n_patterns, "sampled")
    raise ValueError(f"unknown weight method {method!r}")


def full_circuit_pack(circuit: Circuit, n_patterns: int, seed: int,
                      input_probs: Optional[Mapping[str, float]]
                      ) -> Dict[str, np.ndarray]:
    """The full circuit's input pack — the sampled tier's shared stream."""
    rng = np.random.default_rng(seed)
    n_words = patterns.words_for_patterns(n_patterns)
    return patterns.random_pack(circuit.inputs, n_words, rng,
                                dict(input_probs) if input_probs else None)


class _LazyMap(Mapping):
    """Read-only mapping over a fixed key list, filled cone-by-cone."""

    def __init__(self, store: "LazyWeightData", keys: Sequence[str],
                 table: Dict[str, object]):
        self._store = store
        self._keys = list(keys)
        self._keyset = frozenset(self._keys)
        self._table = table

    def __getitem__(self, key: str):
        if key not in self._table:
            if key not in self._keyset:
                raise KeyError(key)
            self._store.materialize([key])
        return self._table[key]

    def __contains__(self, key: object) -> bool:
        return key in self._keyset

    def __iter__(self):
        return iter(self._keys)

    def __len__(self) -> int:
        return len(self._keys)


class LazyWeightData(WeightData):
    """A :class:`WeightData` whose vectors materialize per output cone.

    Construction costs nothing beyond a topological walk.  Touching
    ``weights[g]`` (or ``signal_prob[n]``) cuts node ``g``'s cone out of
    the circuit, computes that cone's weights with the full-circuit
    bit-identity contract (see module docs), and retains them; repeat
    touches inside an already-materialized cone are plain dict hits.
    :meth:`restrict` is the bulk form the ``outputs=`` analysis path
    uses: one union cone, one cache entry, one plain
    :class:`WeightData` back.

    Iterating the mappings (e.g. ``dict(data.signal_prob)``) touches
    every node and therefore materializes the whole circuit — the
    restricted analyzer avoids that by operating on :meth:`restrict`'s
    plain snapshot instead.
    """

    def __init__(self, circuit: Circuit, *,
                 method: str = "auto",
                 n_patterns: int = 1 << 16,
                 seed: int = 0,
                 input_probs: Optional[Mapping[str, float]] = None,
                 cache_dir: Optional[str] = None):
        self.circuit = circuit
        self.method = resolve_lazy_method(circuit, method, input_probs)
        self.n_patterns = int(n_patterns)
        self.seed = int(seed)
        self.input_probs = dict(input_probs) if input_probs else None
        self.cache_dir = cache_dir
        self._weight_table: Dict[str, np.ndarray] = {}
        self._signal_table: Dict[str, float] = {}
        self._pack: Optional[Dict[str, np.ndarray]] = None
        #: Cone materializations performed (cache hits included).
        self.cones_materialized = 0
        super().__init__(
            weights=_LazyMap(self, circuit.topological_gates(),
                             self._weight_table),
            signal_prob=_LazyMap(self, circuit.topological_order(),
                                 self._signal_table),
            source=f"lazy-{self.method}")

    # -- materialization -----------------------------------------------
    @property
    def materialized_gates(self) -> int:
        """Gates whose weight vectors exist right now."""
        return len(self._weight_table)

    def materialize(self, roots: Iterable[str]) -> None:
        """Ensure every node of the union cone of ``roots`` is resident."""
        missing = [r for r in dict.fromkeys(roots)
                   if r not in self._signal_table
                   or (self.circuit.node(r).gate_type.is_logic
                       and r not in self._weight_table)]
        if not missing:
            return
        with trace_span("lazy_weights.materialize",
                        circuit=self.circuit.name, roots=len(missing)):
            cone = self.circuit.subcircuit(missing)
            data = self._cone_data(cone, ",".join(sorted(missing)))
        # setdefault: overlapping cones recompute identical values (the
        # bit-identity contract), so first-writer-wins is safe.
        for gate, vec in data.weights.items():
            self._weight_table.setdefault(gate, vec)
        for node, p in data.signal_prob.items():
            self._signal_table.setdefault(node, p)
        self.cones_materialized += 1

    def restrict(self, outputs: Sequence[str]) -> WeightData:
        """A plain :class:`WeightData` covering the union cone of
        ``outputs`` — the snapshot restricted analysis runs on."""
        cone = self.circuit.subcircuit(outputs)
        self.materialize(list(outputs))
        return WeightData(
            weights={g: self._weight_table[g]
                     for g in cone.topological_gates()},
            signal_prob={n: self._signal_table[n]
                         for n in cone.topological_order()},
            source=self.method)

    # -- internals ------------------------------------------------------
    def _cone_data(self, cone: Circuit, label: str) -> WeightData:
        if self.cache_dir is not None:
            from ..probability import weight_cache
            cached = weight_cache.load_cone_weights(
                self.cache_dir, self.circuit, label, self.method,
                self.n_patterns, self.seed, self.input_probs)
            if cached is not None:
                return cached
        data = cone_weight_vectors(
            self.circuit, cone, method=self.method,
            n_patterns=self.n_patterns, seed=self.seed,
            input_probs=self.input_probs, pack=self._shared_pack())
        if self.cache_dir is not None:
            from ..probability import weight_cache
            weight_cache.store_cone_weights(
                self.cache_dir, self.circuit, label, self.method,
                self.n_patterns, self.seed, self.input_probs, data)
        return data

    def _shared_pack(self) -> Optional[Dict[str, np.ndarray]]:
        if self.method != "sampled":
            return None
        if self._pack is None:
            self._pack = full_circuit_pack(
                self.circuit, self.n_patterns, self.seed, self.input_probs)
        return self._pack
