"""Markdown reliability report generation.

Bundles the library's analyses into one human-readable document per
circuit: structure statistics, a delta(eps) table (single-pass vs Monte
Carlo), the most critical gates, the per-node error asymmetry, and a
random-pattern testability summary.  Used by ``python -m repro report``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .circuit import Circuit, circuit_stats
from .reliability import ObservabilityModel, SinglePassAnalyzer
from .sim import monte_carlo_reliability


@dataclass
class ReportConfig:
    """Knobs for :func:`reliability_report`."""

    eps_values: Sequence[float] = (0.001, 0.01, 0.05, 0.1, 0.2)
    mc_patterns: int = 1 << 14
    top_critical: int = 8
    include_testability: bool = True
    testability_patterns: int = 1 << 12
    correlation_level_gap: Optional[int] = 8
    seed: int = 0


def reliability_report(circuit: Circuit,
                       config: Optional[ReportConfig] = None) -> str:
    """Build the markdown reliability report for one circuit."""
    cfg = config or ReportConfig()
    stats = circuit_stats(circuit)
    lines: List[str] = [
        f"# Reliability report — {circuit.name}",
        "",
        "## Structure",
        "",
        f"| inputs | outputs | gates | depth | max fanout | "
        f"fanout stems | reconvergent gates |",
        f"|---|---|---|---|---|---|---|",
        f"| {stats.num_inputs} | {stats.num_outputs} | {stats.num_gates} | "
        f"{stats.depth} | {stats.max_fanout} | {stats.num_fanout_stems} | "
        f"{stats.num_reconvergent_gates} |",
        "",
        "## Output error probability delta(eps)",
        "",
        "Mean over all outputs; single-pass analysis (Sec. 4, with "
        "correlation coefficients) vs Monte Carlo fault injection "
        f"({cfg.mc_patterns} patterns).",
        "",
        "| eps | single-pass | monte carlo |",
        "|---|---|---|",
    ]
    analyzer = SinglePassAnalyzer(
        circuit, seed=cfg.seed,
        max_correlation_level_gap=cfg.correlation_level_gap)
    for i, eps in enumerate(cfg.eps_values):
        sp = analyzer.run(eps)
        mc = monte_carlo_reliability(circuit, eps,
                                     n_patterns=cfg.mc_patterns,
                                     seed=cfg.seed + 17 * i + 1)
        sp_mean = float(np.mean(list(sp.per_output.values())))
        mc_mean = float(np.mean(list(mc.per_output.values())))
        lines.append(f"| {eps:g} | {sp_mean:.5f} | {mc_mean:.5f} |")

    mid_eps = cfg.eps_values[len(cfg.eps_values) // 2]
    output = circuit.outputs[0]
    model = ObservabilityModel(circuit, output=output, method="sampled",
                               n_patterns=cfg.mc_patterns, seed=cfg.seed)
    grad = model.gradient(mid_eps)
    ranked = sorted(grad, key=grad.get, reverse=True)[:cfg.top_critical]
    lines += [
        "",
        f"## Critical gates (output {output}, eps = {mid_eps:g})",
        "",
        "Ranked by the closed-form derivative d delta / d eps_g — where "
        "hardening buys the most.",
        "",
        "| gate | observability | d delta / d eps |",
        "|---|---|---|",
    ]
    for gate in ranked:
        lines.append(f"| {gate} | {model.observabilities[gate]:.4f} "
                     f"| {grad[gate]:.4f} |")

    result = analyzer.run(mid_eps)
    asym = []
    for gate in circuit.topological_gates():
        ep = result.node_errors[gate]
        asym.append((abs(ep.p01 - ep.p10), gate, ep))
    asym.sort(reverse=True)
    lines += [
        "",
        f"## Error asymmetry (eps = {mid_eps:g})",
        "",
        "Gates whose 0->1 and 1->0 error probabilities differ most — "
        "targets for one-sided (quadded-style) redundancy.",
        "",
        "| gate | Pr(0->1) | Pr(1->0) |",
        "|---|---|---|",
    ]
    for _, gate, ep in asym[:cfg.top_critical]:
        lines.append(f"| {gate} | {ep.p01:.4f} | {ep.p10:.4f} |")

    if cfg.include_testability:
        from .testing import full_fault_list, simulate_faults
        sim = simulate_faults(circuit, full_fault_list(circuit),
                              n_patterns=cfg.testability_patterns,
                              seed=cfg.seed,
                              exhaustive=len(circuit.inputs) <= 16)
        hard = sorted(sim.detections, key=sim.detections.get)[:5]
        lines += [
            "",
            "## Random-pattern testability",
            "",
            f"Fault coverage at {sim.n_patterns} patterns: "
            f"{sim.coverage() * 100:.1f}% "
            f"({len(sim.undetected_faults)} undetected of "
            f"{len(sim.detections)}).",
            "",
            "Hardest faults:",
            "",
        ]
        for fault in hard:
            lines.append(f"- `{fault}` — detection probability "
                         f"{sim.detection_probability(fault):.5f}")
    lines.append("")
    return "\n".join(lines)
