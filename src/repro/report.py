"""Reliability report generation: one structured artifact per circuit.

Bundles the library's analyses into a :class:`ReliabilityReport` — circuit
structure statistics, a delta(eps) table (single-pass vs Monte Carlo), the
most critical gates, the per-node error asymmetry, and a random-pattern
testability summary — which renders as markdown (``python -m repro
report``) or serializes as JSON (``to_dict()`` / ``to_json()``) so the
``repro.obs.runlog`` run reports and ``repro analyze --json`` can embed
results without re-deriving them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from .circuit import Circuit, circuit_stats
from .obs import trace_span
from .reliability import ObservabilityModel, SinglePassAnalyzer
from .reliability.single_pass import SinglePassResult
from .sim import monte_carlo_reliability


@dataclass
class ReportConfig:
    """Knobs for :func:`build_report` / :func:`reliability_report`."""

    eps_values: Sequence[float] = (0.001, 0.01, 0.05, 0.1, 0.2)
    mc_patterns: int = 1 << 14
    top_critical: int = 8
    include_testability: bool = True
    testability_patterns: int = 1 << 12
    correlation_level_gap: Optional[int] = 8
    seed: int = 0
    #: Persistent weight-vector cache directory (``--weights-cache``).
    weights_cache_dir: Optional[str] = None


def single_pass_result_to_dict(result: SinglePassResult,
                               include_nodes: bool = False) -> Dict[str, Any]:
    """Serialize one :class:`SinglePassResult` (for ``--json`` / runlogs).

    Thin alias for ``result.to_dict(include_nodes=...)`` — the
    serialization now lives on the result object itself (shared
    :class:`~repro.reliability.protocol.ResultProtocol` surface).
    """
    return result.to_dict(include_nodes=include_nodes)


@dataclass
class ReliabilityReport:
    """The full analysis bundle for one circuit, in serializable form."""

    circuit: str
    structure: Dict[str, Any]
    #: Rows {eps, single_pass, monte_carlo} (mean delta over all outputs).
    delta_table: List[Dict[str, float]]
    #: The output the critical-gate / asymmetry sections analyze.
    focus_output: str
    #: eps the focus sections were evaluated at.
    focus_eps: float
    #: Rows {gate, observability, gradient}, most critical first.
    critical_gates: List[Dict[str, Any]]
    #: Rows {gate, p01, p10}, largest |p01 - p10| first.
    asymmetry: List[Dict[str, Any]]
    #: Random-pattern testability summary, or None when skipped.
    testability: Optional[Dict[str, Any]] = None
    config: Dict[str, Any] = field(default_factory=dict)

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "circuit": self.circuit,
            "structure": self.structure,
            "delta_table": self.delta_table,
            "focus_output": self.focus_output,
            "focus_eps": self.focus_eps,
            "critical_gates": self.critical_gates,
            "asymmetry": self.asymmetry,
            "testability": self.testability,
            "config": self.config,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def to_markdown(self) -> str:
        """Render the human-readable markdown document."""
        s = self.structure
        lines: List[str] = [
            f"# Reliability report — {self.circuit}",
            "",
            "## Structure",
            "",
            f"| inputs | outputs | gates | depth | max fanout | "
            f"fanout stems | reconvergent gates |",
            f"|---|---|---|---|---|---|---|",
            f"| {s['inputs']} | {s['outputs']} | {s['gates']} | "
            f"{s['depth']} | {s['max_fanout']} | {s['fanout_stems']} | "
            f"{s['reconvergent_gates']} |",
            "",
            "## Output error probability delta(eps)",
            "",
            "Mean over all outputs; single-pass analysis (Sec. 4, with "
            "correlation coefficients) vs Monte Carlo fault injection "
            f"({self.config.get('mc_patterns', '?')} patterns).",
            "",
            "| eps | single-pass | monte carlo |",
            "|---|---|---|",
        ]
        for row in self.delta_table:
            lines.append(f"| {row['eps']:g} | {row['single_pass']:.5f} "
                         f"| {row['monte_carlo']:.5f} |")
        lines += [
            "",
            f"## Critical gates (output {self.focus_output}, "
            f"eps = {self.focus_eps:g})",
            "",
            "Ranked by the closed-form derivative d delta / d eps_g — where "
            "hardening buys the most.",
            "",
            "| gate | observability | d delta / d eps |",
            "|---|---|---|",
        ]
        for row in self.critical_gates:
            lines.append(f"| {row['gate']} | {row['observability']:.4f} "
                         f"| {row['gradient']:.4f} |")
        lines += [
            "",
            f"## Error asymmetry (eps = {self.focus_eps:g})",
            "",
            "Gates whose 0->1 and 1->0 error probabilities differ most — "
            "targets for one-sided (quadded-style) redundancy.",
            "",
            "| gate | Pr(0->1) | Pr(1->0) |",
            "|---|---|---|",
        ]
        for row in self.asymmetry:
            lines.append(f"| {row['gate']} | {row['p01']:.4f} "
                         f"| {row['p10']:.4f} |")
        if self.testability is not None:
            t = self.testability
            lines += [
                "",
                "## Random-pattern testability",
                "",
                f"Fault coverage at {t['n_patterns']} patterns: "
                f"{t['coverage'] * 100:.1f}% "
                f"({t['undetected']} undetected of {t['total_faults']}).",
                "",
                "Hardest faults:",
                "",
            ]
            for fault in t["hardest"]:
                lines.append(f"- `{fault['fault']}` — detection probability "
                             f"{fault['detection_probability']:.5f}")
        lines.append("")
        return "\n".join(lines)


def build_report(circuit: Circuit,
                 config: Optional[ReportConfig] = None) -> ReliabilityReport:
    """Run every analysis and assemble a :class:`ReliabilityReport`."""
    cfg = config or ReportConfig()
    stats = circuit_stats(circuit)
    structure = {
        "inputs": stats.num_inputs,
        "outputs": stats.num_outputs,
        "gates": stats.num_gates,
        "depth": stats.depth,
        "max_fanout": stats.max_fanout,
        "fanout_stems": stats.num_fanout_stems,
        "reconvergent_gates": stats.num_reconvergent_gates,
    }

    with trace_span("report.delta_table", circuit=circuit.name):
        analyzer = SinglePassAnalyzer(
            circuit, seed=cfg.seed,
            max_correlation_level_gap=cfg.correlation_level_gap,
            weights_cache_dir=cfg.weights_cache_dir)
        delta_table = []
        for i, eps in enumerate(cfg.eps_values):
            sp = analyzer.run(eps)
            mc = monte_carlo_reliability(circuit, eps,
                                         n_patterns=cfg.mc_patterns,
                                         seed=cfg.seed + 17 * i + 1)
            delta_table.append({
                "eps": float(eps),
                "single_pass": float(np.mean(list(sp.per_output.values()))),
                "monte_carlo": float(np.mean(list(mc.per_output.values()))),
            })

    mid_eps = cfg.eps_values[len(cfg.eps_values) // 2]
    output = circuit.outputs[0]
    with trace_span("report.critical_gates", circuit=circuit.name):
        model = ObservabilityModel(circuit, output=output, method="sampled",
                                   n_patterns=cfg.mc_patterns, seed=cfg.seed)
        grad = model.gradient(mid_eps)
        ranked = sorted(grad, key=grad.get, reverse=True)[:cfg.top_critical]
        critical = [{"gate": gate,
                     "observability": float(model.observabilities[gate]),
                     "gradient": float(grad[gate])}
                    for gate in ranked]

    with trace_span("report.asymmetry", circuit=circuit.name):
        result = analyzer.run(mid_eps)
        asym = []
        for gate in circuit.topological_gates():
            ep = result.node_errors[gate]
            asym.append((abs(ep.p01 - ep.p10), gate, ep))
        asym.sort(reverse=True)
        asymmetry = [{"gate": gate, "p01": float(ep.p01), "p10": float(ep.p10)}
                     for _, gate, ep in asym[:cfg.top_critical]]

    testability = None
    if cfg.include_testability:
        from .testing import full_fault_list, simulate_faults
        with trace_span("report.testability", circuit=circuit.name):
            sim = simulate_faults(circuit, full_fault_list(circuit),
                                  n_patterns=cfg.testability_patterns,
                                  seed=cfg.seed,
                                  exhaustive=len(circuit.inputs) <= 16)
            hard = sorted(sim.detections, key=sim.detections.get)[:5]
            testability = {
                "n_patterns": sim.n_patterns,
                "coverage": float(sim.coverage()),
                "undetected": len(sim.undetected_faults),
                "total_faults": len(sim.detections),
                "hardest": [
                    {"fault": str(fault),
                     "detection_probability":
                         float(sim.detection_probability(fault))}
                    for fault in hard],
            }

    return ReliabilityReport(
        circuit=circuit.name,
        structure=structure,
        delta_table=delta_table,
        focus_output=output,
        focus_eps=float(mid_eps),
        critical_gates=critical,
        asymmetry=asymmetry,
        testability=testability,
        config={"eps_values": [float(e) for e in cfg.eps_values],
                "mc_patterns": cfg.mc_patterns,
                "top_critical": cfg.top_critical,
                "testability_patterns": cfg.testability_patterns,
                "correlation_level_gap": cfg.correlation_level_gap,
                "seed": cfg.seed},
    )


def reliability_report(circuit: Circuit,
                       config: Optional[ReportConfig] = None) -> str:
    """Build the markdown reliability report for one circuit."""
    return build_report(circuit, config).to_markdown()
