"""Command-line interface: ``python -m repro <command>`` (or ``repro``).

Commands
--------
``info``         circuit structure statistics
``analyze``      single-pass reliability for one or more eps values
``mc``           Monte Carlo reliability (fault injection baseline)
``closed``       observability-based closed-form reliability
``curve``        delta(eps) sweep comparing single-pass and Monte Carlo
``stratified``   rare-event (small-eps) stratified estimate
``testability``  stuck-at fault simulation profile
``harden``       budgeted reliability-driven hardening allocation
``compare``      every estimator side by side at one eps
``report``       full markdown/JSON reliability report
``convert``      netlist format conversion (.bench / .blif / .v)
``bench``        list the built-in benchmark catalog
``serve``        persistent engine answering JSON requests (stdio / TCP)
``batch``        run a requests.jsonl through the engine scheduler
``top``          live stats table polled from a serving engine
``profile``      one traced analysis: phase breakdown + Chrome trace

Circuits are referenced either by a file path (``.bench`` or ``.blif``) or
by a built-in catalog name (``repro bench`` lists them).  The full
flag-by-flag reference lives in ``docs/cli.md`` (cross-checked by
``tests/test_docs.py``).

Every subcommand also accepts the observability flags (see
docs/observability.md): ``-v/-vv`` for structured logging,
``--metrics-out FILE`` for a JSON-lines run report with per-phase span
timings and engine metrics, and ``--trace-out FILE`` for a Chrome
``chrome://tracing`` timeline.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from . import obs
from .circuit import Circuit, circuit_stats, is_sequential
from .circuits import (
    benchmark_entry,
    get_benchmark,
    get_sequential_benchmark,
    list_benchmarks,
    list_sequential_benchmarks,
    sequential_benchmark_entry,
)
from .io import load_bench, load_blif, save_bench, save_blif, save_verilog
from .obs import runlog as obs_runlog
from .obs import trace_span
from .spec import parse_eps_list
from .reliability import ObservabilityModel, SinglePassAnalyzer
from .sim import monte_carlo_reliability

log = obs.get_logger("cli")


class _ObsSession:
    """Per-invocation observability plumbing shared by every subcommand.

    Created by :func:`main` from the common ``-v`` / ``--metrics-out`` /
    ``--trace-out`` flags; stored on the parsed namespace so command
    handlers can emit one runlog record per unit of work (e.g. per eps
    point).  ``finish`` writes a catch-all record for commands that never
    emitted and dumps the Chrome trace.
    """

    def __init__(self, command: str,
                 metrics_out: Optional[str],
                 trace_out: Optional[str],
                 verbose: int):
        self.command = command
        self.metrics_out = metrics_out
        self.trace_out = trace_out
        self.records_emitted = 0
        self._prev_phases: Dict[str, float] = {}
        self.enabled = bool(metrics_out or trace_out)
        if verbose:
            obs.configure_logging(verbose)
        if self.enabled:
            obs.reset()
            obs.enable()
            # Fail fast on unwritable paths before any analysis runs
            # (--trace-out is only written at the very end of the run).
            for label, out in (("--metrics-out", metrics_out),
                               ("--trace-out", trace_out)):
                if not out:
                    continue
                try:  # also truncates, so one file holds exactly one run
                    Path(out).write_text("")
                except OSError as exc:
                    raise SystemExit(f"cannot write {label} file "
                                     f"{out!r}: {exc}") from exc

    def emit(self, circuit=None,
             params: Optional[Dict[str, Any]] = None,
             results: Optional[Dict[str, Any]] = None) -> None:
        """Append one runlog record covering the work since the last emit."""
        if not self.metrics_out:
            return
        record = obs_runlog.build_record(self.command, circuit=circuit,
                                         params=params, results=results)
        # Phase entries are tracer totals; report this record's share only.
        now = {p["name"]: p["duration_s"] for p in record.phases}
        record.phases = [
            {"name": name, "duration_s": duration - self._prev_phases.get(
                name, 0.0)}
            for name, duration in sorted(now.items())
            if duration - self._prev_phases.get(name, 0.0) > 0.0]
        self._prev_phases = now
        obs_runlog.append_record(self.metrics_out, record)
        self.records_emitted += 1

    def finish(self) -> None:
        if not self.enabled:
            return
        if self.metrics_out and self.records_emitted == 0:
            self.emit()
        if self.trace_out:
            obs.get_tracer().write_chrome_trace(self.trace_out)
            log.info("wrote Chrome trace to %s", self.trace_out)
        if self.metrics_out:
            log.info("wrote %d runlog record(s) to %s",
                     self.records_emitted, self.metrics_out)
        obs.disable()


def _load_netlist(ref: str):
    """Load a :class:`Circuit` or :class:`SequentialCircuit` by path/name."""
    path = Path(ref)
    with trace_span("cli.load_circuit", ref=ref):
        if path.exists():
            if path.suffix == ".bench":
                return load_bench(path)
            if path.suffix == ".blif":
                return load_blif(path)
            raise SystemExit(f"unsupported netlist extension: {path.suffix}")
        try:
            circuit = get_benchmark(ref)
        except KeyError:
            try:
                circuit = get_sequential_benchmark(ref)
            except KeyError:
                raise SystemExit(
                    f"{ref!r} is neither a file nor a known benchmark "
                    f"(try: repro bench)") from None
            log.info("loaded sequential benchmark %s (%d flops)", ref,
                     circuit.num_flops)
            return circuit
        log.info("loaded benchmark %s (%d nodes)", ref, len(circuit))
        return circuit


def _load_circuit(ref: str, frames: Optional[int] = None) -> Circuit:
    """Load and, for sequential netlists, unroll into ``frames`` frames.

    A stateful netlist without ``frames`` exits with the same guidance
    the library raises (``pass frames=k ...``) instead of a traceback.
    """
    from .engine.session import resolve_analysis_circuit
    raw = _load_netlist(ref)
    try:
        return resolve_analysis_circuit(raw, frames)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _eps_list(spec: str) -> List[float]:
    # One canonical parser (repro.spec); the CLI only converts its
    # ValueError messages into exit-status errors.
    try:
        return parse_eps_list(spec)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _cmd_info(args: argparse.Namespace) -> int:
    circuit = _load_circuit(args.circuit)
    stats = circuit_stats(circuit)
    print(stats.as_row())
    print(f"outputs: {', '.join(circuit.outputs[:12])}"
          + (" ..." if len(circuit.outputs) > 12 else ""))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    for name in list_benchmarks():
        entry = benchmark_entry(name)
        paper = f"paper-gates={entry.paper_gates}" if entry.paper_gates else ""
        print(f"{name:16s} {entry.description} {paper}")
    for name in list_sequential_benchmarks():
        entry = sequential_benchmark_entry(name)
        print(f"{name:16s} {entry.description} flops={entry.flops} "
              f"(use --frames)")
    if getattr(args, "large", False):
        from .circuits import large_catalog
        for name in large_catalog():
            entry = benchmark_entry(name)
            print(f"{name:16s} {entry.description} "
                  f"(large preset; try --outputs probe_small)")
    return 0


def _analyze_steady_state(args: argparse.Namespace, seq) -> int:
    """The ``analyze --steady-state`` path: fixed point of the frame
    recurrence instead of a k-frame unroll."""
    from .reliability import SequentialAnalyzer
    if not is_sequential(seq):
        raise SystemExit(
            f"--steady-state requires a sequential circuit; "
            f"{seq.name!r} has no state elements")
    analyzer = SequentialAnalyzer(
        seq, use_correlation=not args.no_correlation,
        weight_method=args.weights, seed=args.seed,
        max_correlation_level_gap=args.level_gap,
        compiled=args.compiled,
        weights_cache_dir=args.weights_cache,
        backend=None if args.backend == "auto" else args.backend)
    points = []
    for eps in _eps_list(args.eps):
        t0 = time.perf_counter()
        ss = analyzer.steady_state(eps)
        elapsed = time.perf_counter() - t0
        points.append({"eps": eps, **ss.to_dict()})
        if not args.json:
            status = "converged" if ss.converged else "NOT converged"
            print(f"eps={eps}: steady state after {ss.iterations} frame(s) "
                  f"({status}, residual {ss.residual:.2e}, "
                  f"{elapsed * 1000:.1f} ms)")
            for q, p in ss.state_flip.items():
                print(f"  flip[{q}] = {p:.6f}")
            for out, delta in ss.per_output.items():
                print(f"  delta[{out}] = {delta:.6f}")
        args.obs_session.emit(
            circuit=seq.core,
            params={"eps": eps, "seed": args.seed,
                    "weights": args.weights,
                    "no_correlation": args.no_correlation,
                    "steady_state": True},
            results=ss.to_dict())
    if args.json:
        print(json.dumps({"circuit": seq.name, "command": "analyze",
                          "steady_state": True, "points": points}, indent=2))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .engine.requests import analyze_payload
    from .engine.session import resolve_analysis_circuit
    raw = _load_netlist(args.circuit)
    outputs = ([o for o in args.outputs.split(",") if o]
               if args.outputs else None)
    if args.steady_state:
        if outputs:
            raise SystemExit("--outputs is not supported with "
                             "--steady-state")
        return _analyze_steady_state(args, raw)
    try:
        circuit = resolve_analysis_circuit(raw, args.frames)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    try:
        analyzer = SinglePassAnalyzer(
            circuit, use_correlation=not args.no_correlation,
            weight_method=args.weights, seed=args.seed,
            max_correlation_level_gap=args.level_gap,
            compiled=args.compiled,
            weights_cache_dir=args.weights_cache,
            backend=None if args.backend == "auto" else args.backend,
            frames=args.frames, outputs=outputs)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    log.info("analyzer ready (weights: %s)", analyzer.weights.source)
    eps_values = _eps_list(args.eps)
    results = []
    timings = []

    def report_point(eps: float, result, elapsed: float) -> None:
        results.append(result)
        timings.append(elapsed)
        if not args.json:
            print(f"eps={eps}: ({elapsed * 1000:.1f} ms, "
                  f"{result.correlation_pairs} corr pairs)")
            per_frame = result.per_frame
            if per_frame is not None:
                for t, frame in enumerate(per_frame):
                    for out, delta in frame.items():
                        print(f"  frame {t}: delta[{out}] = {delta:.6f}")
            else:
                for out, delta in result.per_output.items():
                    print(f"  delta[{out}] = {delta:.6f}")
        params = {"eps": eps, "seed": args.seed,
                  "weights": args.weights,
                  "no_correlation": args.no_correlation,
                  "level_gap": args.level_gap,
                  "compiled": args.compiled,
                  "jobs": args.jobs}
        if args.frames is not None:
            params["frames"] = args.frames
        if outputs:
            params["outputs"] = list(outputs)
        args.obs_session.emit(
            circuit=circuit,
            params=params,
            results=result.to_dict())

    if analyzer.uses_compiled and args.jobs > 1:
        print("warning: --jobs ignored: the compiled kernel evaluates all "
              "eps points in one vectorized sweep (use --compiled off to "
              "force the scalar process pool)", file=sys.stderr)
    # One batched sweep when the compiled kernel handles it (or when the
    # scalar points fan out over a process pool); otherwise per-point runs
    # so each point's timing and phases are individually attributable.
    if analyzer.uses_compiled or args.jobs > 1:
        t0 = time.perf_counter()
        sweep = analyzer.sweep(eps_values, jobs=args.jobs)
        elapsed = (time.perf_counter() - t0) / len(eps_values)
        for j, eps in enumerate(eps_values):
            report_point(eps, sweep.point(j), elapsed)
    else:
        for eps in eps_values:
            t0 = time.perf_counter()
            result = analyzer.run(eps)
            report_point(eps, result, time.perf_counter() - t0)
    if args.json:
        # Same payload builder `repro serve` envelopes use, so a serve
        # "result" byte-matches this document minus the timing list.
        doc = analyze_payload(circuit.name, eps_values, results)
        doc["elapsed_s"] = timings
        print(json.dumps(doc, indent=2))
    return 0


def _cmd_mc(args: argparse.Namespace) -> int:
    circuit = _load_circuit(args.circuit)
    for eps in _eps_list(args.eps):
        t0 = time.perf_counter()
        result = monte_carlo_reliability(circuit, eps,
                                         n_patterns=args.patterns,
                                         seed=args.seed)
        elapsed = time.perf_counter() - t0
        print(f"eps={eps}: ({elapsed:.2f} s, {args.patterns} patterns)")
        for out, delta in result.per_output.items():
            print(f"  delta[{out}] = {delta:.6f}")
        print(f"  any-output = {result.any_output:.6f}")
        args.obs_session.emit(
            circuit=circuit,
            params={"eps": eps, "patterns": args.patterns,
                    "seed": args.seed},
            results={"per_output": {o: float(d) for o, d
                                    in result.per_output.items()},
                     "any_output": float(result.any_output),
                     "n_patterns": result.n_patterns})
    return 0


def _cmd_closed(args: argparse.Namespace) -> int:
    circuit = _load_circuit(args.circuit)
    output = args.output or circuit.outputs[0]
    model = ObservabilityModel(circuit, output=output, seed=args.seed)
    for eps in _eps_list(args.eps):
        print(f"eps={eps}: delta[{output}] = {model.delta(eps):.6f}")
    return 0


def _cmd_curve(args: argparse.Namespace) -> int:
    circuit = _load_circuit(args.circuit)
    output = args.output or circuit.outputs[0]
    analyzer = SinglePassAnalyzer(
        circuit, seed=args.seed,
        max_correlation_level_gap=args.level_gap,
        compiled=args.compiled,
        weights_cache_dir=args.weights_cache,
        backend=None if args.backend == "auto" else args.backend)
    eps_values = [args.max_eps * i / (args.points - 1)
                  for i in range(args.points)]
    if analyzer.uses_compiled and args.jobs > 1:
        print("warning: --jobs ignored: the compiled kernel evaluates all "
              "eps points in one vectorized sweep (use --compiled off to "
              "force the scalar process pool)", file=sys.stderr)
    # The whole single-pass column is one sweep: a single vectorized pass
    # on the compiled path, a process-pool fan-out with --jobs otherwise.
    sp_curve = analyzer.curve(eps_values, output=output, jobs=args.jobs)
    print(f"# {circuit.name} output={output}")
    print(f"{'eps':>8s} {'single-pass':>12s} {'monte-carlo':>12s}")
    for i, eps in enumerate(eps_values):
        mc = monte_carlo_reliability(circuit, eps, n_patterns=args.patterns,
                                     seed=args.seed + i).per_output[output]
        print(f"{eps:8.4f} {sp_curve[eps]:12.6f} {mc:12.6f}")
    return 0


def _cmd_testability(args: argparse.Namespace) -> int:
    from .testing import full_fault_list, simulate_faults
    circuit = _load_circuit(args.circuit)
    faults = full_fault_list(circuit)
    sim = simulate_faults(circuit, faults, n_patterns=args.patterns,
                          seed=args.seed,
                          exhaustive=len(circuit.inputs) <= args.exhaustive_limit)
    print(f"{len(faults)} stuck-at faults, "
          f"{sim.n_patterns} patterns, coverage {sim.coverage() * 100:.1f}%")
    hard = sorted(sim.detections, key=sim.detections.get)[:args.top]
    print(f"hardest {len(hard)} faults:")
    for fault in hard:
        print(f"  {str(fault):16s} detection prob = "
              f"{sim.detection_probability(fault):.5f}")
    return 0


def _cmd_stratified(args: argparse.Namespace) -> int:
    from .sim import StratifiedEstimator
    circuit = _load_circuit(args.circuit)
    estimator = StratifiedEstimator(circuit, max_failures=args.max_failures,
                                    n_patterns=args.patterns,
                                    samples_per_stratum=args.samples,
                                    seed=args.seed)
    for eps in _eps_list(args.eps):
        result = estimator.evaluate(eps)
        print(f"eps={eps:g}: any-output = {result.any_output:.3e} "
              f"(tail bound {result.tail_bound:.1e})")
        for out, delta in result.per_output.items():
            print(f"  delta[{out}] = {delta:.3e}")
        args.obs_session.emit(
            circuit=circuit,
            params={"eps": eps, "max_failures": args.max_failures,
                    "patterns": args.patterns, "samples": args.samples,
                    "seed": args.seed},
            results={"per_output": {o: float(d) for o, d
                                    in result.per_output.items()},
                     "any_output": float(result.any_output),
                     "tail_bound": float(result.tail_bound)})
    return 0


def _cmd_harden(args: argparse.Namespace) -> int:
    from .apps import allocate_hardening
    from .reliability import ObservabilityModel
    circuit = _load_circuit(args.circuit)
    output = args.output or circuit.outputs[0]
    model = ObservabilityModel(circuit, output=output, seed=args.seed)
    result = allocate_hardening(model, args.eps_value, args.budget)
    upgraded = [g for g, u in result.upgrades.items() if u is not None]
    print(f"output {output}: delta {result.delta_before:.6f} -> "
          f"{result.delta_after:.6f} "
          f"({result.improvement * 100:.1f}% better), "
          f"spent {result.spent:.1f}/{args.budget:g}")
    print(f"upgraded {len(upgraded)} gates: "
          + ", ".join(sorted(upgraded)[:12])
          + (" ..." if len(upgraded) > 12 else ""))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .reliability import compare_methods
    circuit = _load_circuit(args.circuit)
    eps_values = _eps_list(args.eps)
    for eps in eps_values:
        comparison = compare_methods(circuit, eps,
                                     mc_patterns=args.patterns,
                                     seed=args.seed)
        print(comparison.as_table())
        if eps != eps_values[-1]:
            print()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .report import ReportConfig, build_report
    circuit = _load_circuit(args.circuit)
    config = ReportConfig(mc_patterns=args.patterns, seed=args.seed,
                          include_testability=not args.no_testability,
                          weights_cache_dir=args.weights_cache)
    report = build_report(circuit, config)
    text = report.to_json() if args.json else report.to_markdown()
    args.obs_session.emit(circuit=circuit,
                          params={"patterns": args.patterns,
                                  "seed": args.seed},
                          results=report.to_dict())
    if args.out:
        Path(args.out).write_text(text)
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    # Conversion is netlist-to-netlist: state elements pass through
    # unchanged (.bench DFF lines <-> BLIF .latch), no unrolling.
    circuit = _load_netlist(args.circuit)
    out = Path(args.out)
    if out.suffix == ".bench":
        save_bench(circuit, out)
    elif out.suffix == ".blif":
        save_blif(circuit, out)
    elif out.suffix in (".v", ".sv"):
        if is_sequential(circuit):
            raise SystemExit(
                f"Verilog export does not support state elements yet; "
                f"convert {args.circuit!r} to .bench or .blif instead")
        save_verilog(circuit, out)
    else:
        raise SystemExit(f"unsupported output extension: {out.suffix}")
    print(f"wrote {out}")
    return 0


def _make_engine(args: argparse.Namespace) -> "AnalysisEngine":
    from .engine import AnalysisEngine
    if getattr(args, "backend", "auto") != "auto":
        # Process-wide: every session's kernels (and the cross-circuit
        # tensor batches) resolve through this default.
        from .backend import set_default_backend
        set_default_backend(args.backend)
    state_dir = getattr(args, "state_dir", None)
    # A state directory doubles as the warm artifact store: unless the
    # weight cache is pointed elsewhere, replicas sharing one --state-dir
    # also share weight vectors and correlation plans through it.
    return AnalysisEngine(
        max_sessions=args.max_sessions,
        weights_cache_dir=args.weights_cache or state_dir,
        jobs=args.jobs,
        default_timeout_s=args.timeout,
        state_dir=state_dir)


def _cmd_serve(args: argparse.Namespace) -> int:
    from .engine import serve_stream, serve_tcp, serve_tcp_threaded
    engine = _make_engine(args)
    if engine.state_dir:
        summary = engine.load_state()
        if summary["found"]:
            log.info("restored %d edit session(s) from %s",
                     summary["sessions"], engine.state_dir)
            for err in summary["errors"]:
                log.warning("state restore skipped: %s", err)
    try:
        if args.tcp:
            host, _, port = args.tcp.rpartition(":")
            if not host:
                raise SystemExit(
                    f"invalid --tcp address {args.tcp!r}: expected HOST:PORT")
            try:
                port_num = int(port)
            except ValueError:
                raise SystemExit(
                    f"invalid --tcp port {port!r}: expected an integer"
                ) from None

            def ready(bound_port: int) -> None:
                # Machine-parseable readiness line: supervisors (and the
                # crash-resume test) read the bound port from stdout.
                print(f"serving on {host}:{bound_port}", flush=True)

            if args.threaded:
                serve_tcp_threaded(engine, host, port_num,
                                   ready_callback=ready)
            else:
                serve_tcp(engine, host, port_num, ready_callback=ready,
                          max_inflight=args.max_inflight,
                          snapshot_interval=args.snapshot_interval)
        else:
            served = serve_stream(engine, sys.stdin, sys.stdout)
            log.info("served %d request(s)", served)
    except KeyboardInterrupt:
        pass
    finally:
        if engine.state_dir:
            try:
                engine.save_state()
            except Exception as exc:  # noqa: BLE001 - shutdown best-effort
                log.warning("final state snapshot failed: %s", exc)
        engine.close()
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from .engine import run_batch
    path = Path(args.requests)
    if not path.exists():
        raise SystemExit(f"no such requests file: {args.requests}")
    lines = path.read_text().splitlines()
    engine = _make_engine(args)
    batch_kwargs = dict(jobs=args.jobs, state_dir=engine.state_dir,
                        resume=args.resume,
                        checkpoint_every=args.checkpoint_every)
    try:
        if args.out:
            with open(args.out, "w") as fh:
                failures = run_batch(engine, lines, fh, **batch_kwargs)
            log.info("wrote envelopes to %s", args.out)
        else:
            failures = run_batch(engine, lines, sys.stdout, **batch_kwargs)
    finally:
        engine.close()
    if failures:
        log.warning("%d request(s) failed", failures)
    return 1 if failures else 0


def _render_top(address: str, stats: Dict[str, Any]) -> str:
    """One ``repro top`` frame: header, per-op SLOs, caches, lanes."""
    rolling = stats.get("rolling", {})
    lines = [
        f"repro top — {address} — v{stats.get('version', '?')} — "
        f"up {stats.get('uptime_s', 0.0):.1f}s",
        f"requests {stats.get('requests_served', 0)}   "
        f"sessions {stats.get('sessions', 0)}/{stats.get('max_sessions', 0)}"
        f" (+{stats.get('edit_sessions', 0)} named)   "
        f"hits {stats.get('session_hits', 0)}  "
        f"misses {stats.get('session_misses', 0)}   "
        f"lanes {stats.get('lanes', 0)}",
    ]
    ops = rolling.get("ops", {})
    if ops:
        # The frames column only appears once sequential (framed) traffic
        # has been seen, so combinational-only servers keep the old table.
        framed = any("framed" in entry for entry in ops.values())
        lines.append("")
        header = (f"{'op':<12s} {'count':>7s} {'win':>5s} {'mean':>10s} "
                  f"{'p50':>10s} {'p95':>10s} {'p99':>10s} {'errs':>5s}")
        if framed:
            header += f" {'frames':>6s}"
        lines.append(header)
        for op, entry in ops.items():
            row = (
                f"{op:<12s} {entry['count']:>7d} {entry['window']:>5d} "
                f"{entry['mean_ms']:>8.2f}ms {entry['p50_ms']:>8.2f}ms "
                f"{entry['p95_ms']:>8.2f}ms {entry['p99_ms']:>8.2f}ms "
                f"{entry['errors']:>5d}")
            if framed:
                row += f" {entry.get('framed', 0):>6d}"
            lines.append(row)
    cache = rolling.get("cache", {})
    if cache:
        lines.append("")
        lines.append(f"{'cache tier':<12s} {'window':>7s} {'hit rate':>9s}")
        for tier, entry in cache.items():
            rate = ("-" if entry["hit_rate"] is None
                    else f"{entry['hit_rate'] * 100:.1f}%")
            lines.append(f"{tier:<12s} {entry['window']:>7d} {rate:>9s}")
    lanes = rolling.get("lanes", {})
    if lanes:
        lines.append("")
        lines.append(f"{'lane':<6s} {'requests':>9s} {'busy_s':>9s} "
                     f"{'util':>6s}")
        for lane, entry in lanes.items():
            lines.append(f"{lane:<6s} {entry['requests']:>9d} "
                         f"{entry['busy_s']:>9.3f} "
                         f"{entry['utilization'] * 100:>5.1f}%")
    admission = stats.get("admission")
    if admission:
        lines.append("")
        lines.append(
            f"admission    inflight {admission.get('inflight', 0)}"
            f"/{admission.get('limit', 0)}   "
            f"accepted {admission.get('accepted', 0)}  "
            f"rejected {admission.get('rejected', 0)}   "
            f"service ~{admission.get('service_ewma_ms', 0.0):.2f}ms")
    return "\n".join(lines)


def _top_frame(address: str, envelope: Dict[str, Any]):
    """One poll's display text plus an optional retry-after hint.

    An overloaded server answers the ``stats`` op with an overload
    envelope (``ok=False`` with an ``overload`` block and no ``stats``
    payload); render that as a frame and back off for ``retry_after_s``
    instead of crashing on the missing payload.
    """
    overload = envelope.get("overload")
    if not envelope.get("ok") and overload is not None:
        retry_after = overload.get("retry_after_s")
        text = (
            f"repro top — {address} — OVERLOADED\n"
            f"inflight {overload.get('inflight', '?')}"
            f"/{overload.get('limit', '?')}   "
            f"accepted {overload.get('accepted', 0)}  "
            f"rejected {overload.get('rejected', 0)}   "
            f"retry after {retry_after}s")
        return text, retry_after
    if not envelope.get("ok"):
        raise SystemExit(f"stats op failed: {envelope.get('error')}")
    return _render_top(address, envelope.get("stats") or {}), None


def _cmd_top(args: argparse.Namespace) -> int:
    import socket
    host, _, port = args.address.rpartition(":")
    if not host:
        raise SystemExit(
            f"invalid address {args.address!r}: expected HOST:PORT")
    try:
        port_num = int(port)
    except ValueError:
        raise SystemExit(
            f"invalid port {port!r}: expected an integer") from None
    try:
        sock = socket.create_connection((host, port_num), timeout=10)
    except OSError as exc:
        raise SystemExit(
            f"cannot connect to {args.address}: {exc}") from None
    stream = sock.makefile("rwb")
    polls = 0
    try:
        while True:
            stream.write(b'{"op": "stats"}\n')
            stream.flush()
            line = stream.readline()
            if not line:
                raise SystemExit("server closed the connection")
            envelope = json.loads(line)
            frame, retry_after = _top_frame(args.address, envelope)
            if polls:
                print()
            print(frame)
            polls += 1
            if args.iterations and polls >= args.iterations:
                break
            # An overload frame carries the server's own back-off hint;
            # honor it when it is longer than the polling interval.
            time.sleep(max(args.interval, retry_after or 0.0))
    except KeyboardInterrupt:
        pass
    finally:
        sock.close()
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .engine import AnalysisEngine
    # Tracing is forced on for the whole run — that is the point of the
    # command — regardless of the --metrics-out/--trace-out obs flags.
    obs.reset()
    obs.enable()
    circuit = _load_circuit(args.circuit)
    eps_values = _eps_list(args.eps)
    options: Dict[str, Any] = {"seed": args.seed}
    if args.weights != "auto":
        options["weights"] = args.weights
    if args.weights_cache:
        options["weights_cache_dir"] = args.weights_cache
    engine = AnalysisEngine(max_sessions=4,
                            weights_cache_dir=args.weights_cache,
                            jobs=args.jobs)
    t0 = time.perf_counter()
    try:
        responses = engine.submit_many(
            [{"op": "analyze", "circuit": args.circuit, "eps": [eps],
              "id": i, "options": dict(options)}
             for i, eps in enumerate(eps_values)],
            jobs=args.jobs)
    finally:
        engine.close()
    wall = time.perf_counter() - t0
    failed = [r for r in responses if not r.ok]
    for response in failed:
        print(f"error: {response.error}", file=sys.stderr)
    print(f"# profile {circuit.name}: {len(eps_values)} eps point(s), "
          f"{wall * 1e3:.1f} ms wall, jobs={args.jobs}")
    print(f"{'phase':<44s} {'total':>10s} {'% wall':>7s}")
    tracer = obs.get_tracer()
    for name, total in sorted(tracer.phase_timings().items(),
                              key=lambda kv: -kv[1]):
        share = min(total / wall, 1.0) * 100 if wall > 0 else 0.0
        print(f"{name:<44s} {total * 1e3:>8.2f}ms {share:>6.1f}%")
    print()
    for response in responses:
        telemetry = response.telemetry or {}
        print(f"request {telemetry.get('request_id')}: "
              f"ladder={telemetry.get('ladder')} "
              f"kernel={telemetry.get('kernel_ms')}ms "
              f"total={telemetry.get('total_ms')}ms "
              f"lane={telemetry.get('lane')} "
              f"cache={telemetry.get('cache')}")
    out = args.trace_out or f"{Path(args.circuit).stem}.trace.json"
    tracer.write_chrome_trace(out)
    print(f"wrote Chrome trace to {out}")
    obs.disable()
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reliability analysis of logic circuits (DATE 2007 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_obs(p: argparse.ArgumentParser) -> None:
        p.add_argument("-v", "--verbose", action="count", default=0,
                       help="structured logging (-v info, -vv debug)")
        p.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="write a JSON-lines run report (enables "
                            "metrics + tracing)")
        p.add_argument("--trace-out", default=None, metavar="FILE",
                       help="write a Chrome chrome://tracing JSON timeline")

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("circuit", help="netlist path or benchmark name")
        p.add_argument("--seed", type=int, default=0)
        add_obs(p)

    p = sub.add_parser("info", help="circuit structure statistics")
    add_common(p)
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser("bench", help="list built-in benchmarks")
    p.add_argument("--large", action="store_true",
                   help="also list the large-netlist presets (10k-100k "
                        "gates; analyze them with --outputs/--weights sat)")
    add_obs(p)
    p.set_defaults(func=_cmd_bench)

    def add_jobs(p: argparse.ArgumentParser) -> None:
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for scalar eps sweeps "
                            "(only used when the sweep falls back to the "
                            "scalar path, e.g. with --compiled off; the "
                            "vectorized kernels are faster single-process)")

    def add_compiled(p: argparse.ArgumentParser) -> None:
        p.add_argument("--compiled", default="auto",
                       choices=["auto", "off"],
                       help="'auto' dispatches every mode (correlation "
                            "on or off) to the vectorized kernels; 'off' "
                            "forces the scalar reference path (the "
                            "parity oracle)")

    def add_weights_cache(p: argparse.ArgumentParser) -> None:
        p.add_argument("--weights-cache", default=None, metavar="DIR",
                       help="persistent weight-vector cache directory "
                            "(keyed by circuit structure + estimator "
                            "parameters)")

    def add_backend(p: argparse.ArgumentParser) -> None:
        p.add_argument("--backend", default="auto",
                       choices=["auto", "numpy", "cupy", "torch"],
                       help="array backend for the vectorized independence "
                            "kernel ('auto' follows REPRO_ARRAY_BACKEND, "
                            "else numpy); an absent library falls back to "
                            "numpy with a warning")

    p = sub.add_parser("analyze", help="single-pass reliability analysis")
    add_common(p)
    p.add_argument("--eps", default="0.05",
                   help="comma-separated gate failure probabilities")
    p.add_argument("--no-correlation", action="store_true",
                   help="disable Sec. 4.1 correlation coefficients")
    p.add_argument("--weights", default="auto",
                   choices=["auto", "bdd", "exhaustive", "sampled", "sat"])
    p.add_argument("--outputs", default=None, metavar="O1,O2,...",
                   help="restrict the analysis to these primary outputs: "
                        "only their union cone is weighted and lowered "
                        "(bit-identical results for the selected outputs; "
                        "the large-netlist path, see docs/scaling.md)")
    p.add_argument("--level-gap", type=int, default=None,
                   help="locality cap for correlation pairs")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable JSON instead of text")
    p.add_argument("--frames", type=int, default=None, metavar="K",
                   help="unroll a sequential netlist into K time frames "
                        "before analysis (required for circuits with "
                        "flip-flops; results gain a per-frame view)")
    p.add_argument("--steady-state", action="store_true",
                   help="iterate the sequential frame recurrence to its "
                        "fixed point instead of unrolling: reports "
                        "per-flop steady-state flip probabilities and "
                        "the converged per-output deltas")
    add_compiled(p)
    add_jobs(p)
    add_weights_cache(p)
    add_backend(p)
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser("mc", help="Monte Carlo fault-injection baseline")
    add_common(p)
    p.add_argument("--eps", default="0.05")
    p.add_argument("--patterns", type=int, default=1 << 16)
    p.set_defaults(func=_cmd_mc)

    p = sub.add_parser("closed", help="observability closed-form analysis")
    add_common(p)
    p.add_argument("--eps", default="0.05")
    p.add_argument("--output", default=None)
    p.set_defaults(func=_cmd_closed)

    p = sub.add_parser("curve", help="delta(eps) sweep: single-pass vs MC")
    add_common(p)
    p.add_argument("--output", default=None)
    p.add_argument("--points", type=int, default=11)
    p.add_argument("--max-eps", type=float, default=0.5)
    p.add_argument("--patterns", type=int, default=1 << 14)
    p.add_argument("--level-gap", type=int, default=8)
    add_compiled(p)
    add_jobs(p)
    add_weights_cache(p)
    add_backend(p)
    p.set_defaults(func=_cmd_curve)

    p = sub.add_parser("testability",
                       help="stuck-at fault simulation profile")
    add_common(p)
    p.add_argument("--patterns", type=int, default=1 << 13)
    p.add_argument("--top", type=int, default=10,
                   help="how many hardest faults to list")
    p.add_argument("--exhaustive-limit", type=int, default=16,
                   help="use exhaustive patterns up to this input count")
    p.set_defaults(func=_cmd_testability)

    p = sub.add_parser("stratified",
                       help="rare-event (small-eps) reliability estimate")
    add_common(p)
    p.add_argument("--eps", default="1e-6")
    p.add_argument("--max-failures", type=int, default=3)
    p.add_argument("--patterns", type=int, default=1 << 12)
    p.add_argument("--samples", type=int, default=200,
                   help="failure-set samples per stratum")
    p.set_defaults(func=_cmd_stratified)

    p = sub.add_parser("harden",
                       help="budgeted reliability-driven hardening")
    add_common(p)
    p.add_argument("--eps-value", type=float, default=0.01,
                   help="baseline per-gate failure probability")
    p.add_argument("--budget", type=float, default=10.0)
    p.add_argument("--output", default=None)
    p.set_defaults(func=_cmd_harden)

    p = sub.add_parser("compare",
                       help="run every estimator side by side")
    add_common(p)
    p.add_argument("--eps", default="0.05")
    p.add_argument("--patterns", type=int, default=1 << 16)
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("report", help="full markdown reliability report")
    add_common(p)
    p.add_argument("--out", default=None, help="write to file")
    p.add_argument("--patterns", type=int, default=1 << 14)
    p.add_argument("--no-testability", action="store_true")
    p.add_argument("--json", action="store_true",
                   help="emit the report as JSON instead of markdown")
    add_weights_cache(p)
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("convert", help="convert netlist formats")
    add_common(p)
    p.add_argument("out", help="output path (.bench / .blif / .v)")
    p.set_defaults(func=_cmd_convert)

    def add_engine(p: argparse.ArgumentParser) -> None:
        p.add_argument("--max-sessions", type=int, default=8, metavar="N",
                       help="hot circuit sessions kept in the engine's "
                            "LRU registry")
        p.add_argument("--jobs", type=int, default=0, metavar="N",
                       help="worker-process lanes for fanning independent "
                            "circuits out (0 = in-process)")
        p.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="default per-request timeout in seconds; on "
                            "expiry the engine falls back down the "
                            "compiled → scalar → closed-form ladder")
        p.add_argument("--state-dir", default=None, metavar="DIR",
                       help="durable warm-state directory: edit sessions "
                            "are snapshotted here and restored on start; "
                            "doubles as the weight cache when "
                            "--weights-cache is unset")
        add_weights_cache(p)
        add_backend(p)
        add_obs(p)

    p = sub.add_parser("serve",
                       help="persistent engine serving JSON requests")
    p.add_argument("--tcp", default=None, metavar="HOST:PORT",
                   help="listen on TCP instead of stdio (e.g. "
                        "127.0.0.1:7777; port 0 picks a free port)")
    p.add_argument("--threaded", action="store_true",
                   help="use the legacy thread-per-connection TCP server "
                        "instead of the asyncio front-end (no admission "
                        "control, no cross-client micro-batching)")
    p.add_argument("--max-inflight", type=int, default=256, metavar="N",
                   help="admission limit for the asyncio front-end: "
                        "requests in flight beyond this are answered "
                        "with an overload envelope carrying a "
                        "retry_after_s hint")
    p.add_argument("--snapshot-interval", type=float, default=300.0,
                   metavar="S",
                   help="seconds between periodic engine-state snapshots "
                        "when --state-dir is set (asyncio front-end "
                        "only; a final snapshot is always taken on "
                        "shutdown)")
    add_engine(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("batch",
                       help="run a requests.jsonl through the engine")
    p.add_argument("requests", help="path to a line-delimited JSON "
                                    "request file")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="write envelopes here instead of stdout")
    p.add_argument("--resume", action="store_true",
                   help="with --state-dir: replay the journal of a "
                        "previously interrupted run of the same request "
                        "file and execute only the remainder")
    p.add_argument("--checkpoint-every", type=int, default=32, metavar="N",
                   help="with --state-dir: journal envelopes and snapshot "
                        "engine state after every N requests")
    add_engine(p)
    p.set_defaults(func=_cmd_batch)

    p = sub.add_parser("top",
                       help="live stats table from a serving engine")
    p.add_argument("address", metavar="HOST:PORT",
                   help="TCP address of a running `repro serve --tcp` "
                        "engine")
    p.add_argument("--interval", type=float, default=2.0, metavar="S",
                   help="seconds between stats polls")
    p.add_argument("--iterations", type=int, default=0, metavar="N",
                   help="stop after N polls (0 = run until interrupted)")
    add_obs(p)
    p.set_defaults(func=_cmd_top)

    p = sub.add_parser("profile",
                       help="run one traced analysis: phase breakdown "
                            "table + spliced Chrome trace")
    add_common(p)
    p.add_argument("--eps", default="0.01,0.05,0.1",
                   help="comma-separated eps points to profile")
    p.add_argument("--weights", default="auto",
                   choices=["auto", "bdd", "exhaustive", "sampled", "sat"])
    p.add_argument("--jobs", type=int, default=0, metavar="N",
                   help="worker-process lanes to fan the profiled "
                        "requests across (0 = in-process); worker spans "
                        "are spliced into the parent trace")
    add_weights_cache(p)
    p.set_defaults(func=_cmd_profile)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    session = _ObsSession(
        command=args.command,
        metrics_out=getattr(args, "metrics_out", None),
        trace_out=getattr(args, "trace_out", None),
        verbose=getattr(args, "verbose", 0))
    args.obs_session = session
    try:
        with trace_span(f"cli.{args.command}"):
            return args.func(args)
    finally:
        session.finish()


if __name__ == "__main__":
    sys.exit(main())
