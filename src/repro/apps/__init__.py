"""Applications built on the reliability analyses (paper Sec. 5.1)."""

from .ser import GateSerModel, SerReport, estimate_ser, uniform_ser_model
from .redundancy import (
    HardeningOutcome,
    asymmetric_targets,
    hardening_sweep,
    selective_tmr,
)
from .explorer import CandidateScore, explain_ranking, score_candidates
from .sequential import (
    SequentialSerReport,
    SequentialSerRow,
    sequential_ser_row,
    sequential_ser_table,
)
from .optimize import (
    DEFAULT_LADDER,
    AllocationResult,
    HardeningOption,
    allocate_hardening,
    hardening_frontier,
)

__all__ = [
    "GateSerModel", "SerReport", "estimate_ser", "uniform_ser_model",
    "HardeningOutcome", "asymmetric_targets", "hardening_sweep",
    "selective_tmr",
    "CandidateScore", "explain_ranking", "score_candidates",
    "SequentialSerReport", "SequentialSerRow",
    "sequential_ser_row", "sequential_ser_table",
    "DEFAULT_LADDER", "AllocationResult", "HardeningOption",
    "allocate_hardening", "hardening_frontier",
]
