"""Soft error rate (SER) estimation via observability-based analysis.

Sec. 5.1 of the paper: the closed-form expression is "directly applicable
for soft-error rate estimation in logic circuits because failures due to
single-event upsets are usually localized to the gate that is the site of
the strike".  In that regime each gate has a tiny per-cycle upset
probability derived from its particle-strike cross-section, and the output
failure probability is dominated by single faults — exactly where Eqn. (3)
is exact.

This module converts physical strike rates to per-cycle failure
probabilities, evaluates the output failure probability and the circuit's
FIT (failures in time), and ranks gates by SER contribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..circuit import Circuit
from ..reliability.closed_form import ObservabilityModel

#: Hours per billion hours; FIT is failures per 1e9 device-hours.
_FIT_HOURS = 1e9
_SECONDS_PER_HOUR = 3600.0


@dataclass(frozen=True)
class GateSerModel:
    """Physical upset model of one gate.

    ``upset_rate_per_sec`` is the rate of particle-induced output flips
    (already derated by charge-collection efficiency and latching-window
    masking — this library adds the *logical* masking via observability).
    """

    upset_rate_per_sec: float

    def per_cycle_epsilon(self, clock_hz: float) -> float:
        """Per-clock-cycle flip probability (rate x cycle time)."""
        return min(0.5, self.upset_rate_per_sec / clock_hz)


@dataclass
class SerReport:
    """Per-output SER estimates for a circuit."""

    #: Per-cycle output failure probability, per output.
    per_output_failure_probability: Dict[str, float]
    #: FIT per output (failures per 1e9 hours at the given clock).
    per_output_fit: Dict[str, float]
    #: Gate ranking by contribution to the chosen output's failure rate.
    gate_contributions: Dict[str, float]
    clock_hz: float


def estimate_ser(circuit: Circuit,
                 gate_models: Mapping[str, GateSerModel],
                 clock_hz: float = 1e9,
                 output: Optional[str] = None,
                 observability_method: str = "auto",
                 default_rate: float = 0.0,
                 seed: int = 0) -> SerReport:
    """Estimate per-output soft error rates with the closed form.

    Parameters
    ----------
    gate_models:
        Map from gate name to its :class:`GateSerModel`; missing gates use
        ``default_rate``.
    clock_hz:
        Clock frequency used to convert strike rates into per-cycle flip
        probabilities (and back into FIT).
    output:
        Rank gate contributions against this output (default: first).
    """
    eps = {}
    for gate in circuit.topological_gates():
        model = gate_models.get(gate)
        rate = model.upset_rate_per_sec if model else default_rate
        eps[gate] = GateSerModel(rate).per_cycle_epsilon(clock_hz)

    per_output_p: Dict[str, float] = {}
    models: Dict[str, ObservabilityModel] = {}
    for out in circuit.outputs:
        model = ObservabilityModel(circuit, output=out,
                                   method=observability_method, seed=seed)
        models[out] = model
        per_output_p[out] = model.delta(eps)

    cycles_per_billion_hours = clock_hz * _SECONDS_PER_HOUR * _FIT_HOURS
    per_output_fit = {out: p * cycles_per_billion_hours
                      for out, p in per_output_p.items()}

    ranked_output = output or circuit.outputs[0]
    grad = models[ranked_output].gradient(eps)
    contributions = {g: grad[g] * eps[g] for g in grad}
    return SerReport(
        per_output_failure_probability=per_output_p,
        per_output_fit=per_output_fit,
        gate_contributions=contributions,
        clock_hz=clock_hz,
    )


def uniform_ser_model(circuit: Circuit,
                      upset_rate_per_sec: float) -> Dict[str, GateSerModel]:
    """Assign the same upset rate to every gate (a common first-cut model)."""
    return {g: GateSerModel(upset_rate_per_sec)
            for g in circuit.topological_gates()}
