"""Sequential soft-error-rate tables: multi-cycle SER for stateful designs.

The combinational SER application (:mod:`repro.apps.ser`) answers "what is
the chance this cycle's output is wrong given a strike this cycle".  A
flip-flop changes the question: a latched upset *persists*, feeding error
probability back into the next cycle until the logic masks it out (or it
reaches a fixed point).  This module runs
:class:`~repro.reliability.sequential.SequentialAnalyzer` to its steady
state for each circuit and renders the classic SER summary table —
per-flop residency (steady-state flip probability), per-output delta, and
FIT at a given clock — over the sequential benchmark fixtures or any list
of :class:`~repro.circuit.SequentialCircuit` designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..circuit import SequentialCircuit
from ..circuits import get_sequential_benchmark, list_sequential_benchmarks
from ..reliability.sequential import SequentialAnalyzer, SteadyStateResult

#: FIT is failures per 1e9 device-hours.
_FIT_HOURS = 1e9
_SECONDS_PER_HOUR = 3600.0


@dataclass
class SequentialSerRow:
    """One circuit's multi-cycle SER summary at one eps."""

    circuit: str
    flops: int
    eps: float
    #: Cycles the recurrence took to converge (or the cap, if it didn't).
    frames_to_converge: int
    converged: bool
    #: Steady-state flip probability per flop (state-bit residency).
    state_flip: Dict[str, float]
    #: Steady-state per-output delta.
    per_output: Dict[str, float]
    #: Worst output's steady-state delta.
    max_delta: float
    #: FIT of the worst output at the given clock.
    max_fit: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "circuit": self.circuit,
            "flops": self.flops,
            "eps": self.eps,
            "frames_to_converge": self.frames_to_converge,
            "converged": self.converged,
            "state_flip": dict(self.state_flip),
            "per_output": dict(self.per_output),
            "max_delta": self.max_delta,
            "max_fit": self.max_fit,
        }


@dataclass
class SequentialSerReport:
    """Steady-state SER rows for a set of sequential circuits."""

    rows: List[SequentialSerRow]
    eps: float
    clock_hz: float

    def to_dict(self) -> Dict[str, Any]:
        return {"eps": self.eps, "clock_hz": self.clock_hz,
                "rows": [row.to_dict() for row in self.rows]}

    def as_table(self) -> str:
        """Fixed-width text table (same style as the paper tables)."""
        lines = [
            f"# sequential SER @ eps={self.eps:g}, "
            f"clock={self.clock_hz:.3g} Hz",
            f"{'circuit':<16s} {'flops':>5s} {'frames':>6s} {'conv':>4s} "
            f"{'max flip':>10s} {'max delta':>10s} {'FIT':>10s}",
        ]
        for row in self.rows:
            worst_flip = max(row.state_flip.values(), default=0.0)
            lines.append(
                f"{row.circuit:<16s} {row.flops:>5d} "
                f"{row.frames_to_converge:>6d} "
                f"{'yes' if row.converged else 'NO':>4s} "
                f"{worst_flip:>10.6f} {row.max_delta:>10.6f} "
                f"{row.max_fit:>10.3g}")
        return "\n".join(lines)


def sequential_ser_row(seq: SequentialCircuit, eps: float,
                       clock_hz: float = 1e9,
                       tol: float = 1e-10,
                       max_frames: int = 1024,
                       analyzer: Optional[SequentialAnalyzer] = None,
                       ) -> SequentialSerRow:
    """Steady-state SER summary of one sequential circuit.

    ``eps`` is the uniform per-gate, per-cycle upset probability (use
    :meth:`repro.apps.ser.GateSerModel.per_cycle_epsilon` to derive it
    from a physical strike rate).  Pass ``analyzer`` to reuse a warm
    :class:`SequentialAnalyzer` (weights computed once) across eps points.
    """
    if analyzer is None:
        analyzer = SequentialAnalyzer(seq)
    result: SteadyStateResult = analyzer.steady_state(
        eps, tol=tol, max_frames=max_frames)
    max_delta = max(result.per_output.values(), default=0.0)
    cycles_per_billion_hours = clock_hz * _SECONDS_PER_HOUR * _FIT_HOURS
    return SequentialSerRow(
        circuit=seq.name,
        flops=seq.num_flops,
        eps=float(eps),
        frames_to_converge=result.iterations,
        converged=result.converged,
        state_flip=dict(result.state_flip),
        per_output=dict(result.per_output),
        max_delta=float(max_delta),
        max_fit=float(max_delta * cycles_per_billion_hours),
    )


def sequential_ser_table(circuits: Optional[Iterable[Any]] = None,
                         eps: float = 1e-5,
                         clock_hz: float = 1e9,
                         tol: float = 1e-10,
                         max_frames: int = 1024) -> SequentialSerReport:
    """Steady-state SER table over sequential designs.

    ``circuits`` may mix :class:`SequentialCircuit` objects and sequential
    benchmark names; the default None covers the whole sequential fixture
    catalog (:func:`repro.circuits.list_sequential_benchmarks`).
    """
    resolved: List[SequentialCircuit] = []
    names: Sequence[Any] = (list_sequential_benchmarks()
                            if circuits is None else list(circuits))
    for item in names:
        if isinstance(item, SequentialCircuit):
            resolved.append(item)
        else:
            resolved.append(get_sequential_benchmark(str(item)))
    rows = [sequential_ser_row(seq, eps, clock_hz=clock_hz, tol=tol,
                               max_frames=max_frames)
            for seq in resolved]
    return SequentialSerReport(rows=rows, eps=float(eps),
                               clock_hz=float(clock_hz))
