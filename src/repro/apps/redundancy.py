"""Selective and asymmetric redundancy insertion (paper Sec. 5.1).

The paper positions single-pass analysis as the driver for *fine-grained*
hardening: instead of triplicating every gate, harden only the gates whose
failures dominate the output error.  This module implements that loop:

1. rank gates by single-pass sensitivity (or closed-form gradient);
2. triplicate the top-k gates (:func:`selective_tmr`);
3. re-analyze and report the reliability improvement per added gate.

The loop runs on a :class:`~repro.incremental.CircuitWorkspace`: the
weight vectors of the unhardened logic are computed once, each candidate
hardening is a :class:`~repro.incremental.Triplicate` edit on a fork, and
only the TMR islands are resimulated/recounted.  ``hardening_sweep``
shares one baseline workspace across all budgets.

It also exposes the asymmetric-redundancy signal: per-node ``0→1`` versus
``1→0`` error probabilities, which quadded-style schemes exploit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..circuit import Circuit
from ..incremental import CircuitWorkspace, Triplicate
from ..sim.montecarlo import monte_carlo_reliability
from ..spec import EpsilonSpec
from ..reliability.single_pass import SinglePassAnalyzer
from ..reliability.sensitivity import rank_critical_gates


@dataclass
class HardeningOutcome:
    """Before/after comparison for one selective-hardening experiment."""

    hardened_gates: List[str]
    baseline_delta: Dict[str, float]
    hardened_delta: Dict[str, float]
    gate_overhead: int

    @property
    def mean_improvement(self) -> float:
        """Mean relative reduction of output error probability."""
        ratios = []
        for out, before in self.baseline_delta.items():
            after = self.hardened_delta[out]
            if before > 0.0:
                ratios.append(1.0 - after / before)
        return sum(ratios) / len(ratios) if ratios else 0.0


def selective_tmr(circuit: Circuit,
                  eps: EpsilonSpec,
                  top_k: int,
                  output: Optional[str] = None,
                  analyzer: Optional[SinglePassAnalyzer] = None,
                  voter_eps: Optional[float] = None,
                  evaluate: str = "single_pass",
                  mc_patterns: int = 1 << 16,
                  seed: int = 0,
                  workspace: Optional[CircuitWorkspace] = None
                  ) -> HardeningOutcome:
    """Harden the ``top_k`` most critical gates with local TMR.

    ``voter_eps`` sets the failure probability of the inserted voter gates
    (the three copies stay as noisy as the logic they replicate).  ``None``
    makes voters as noisy as the protected gate — pessimistic, and at
    uniform eps it makes TMR a net *loss* (the voter's own failures
    dominate; the analysis quantifies this honestly).  Real
    selective-hardening flows use oversized / radiation-hardened voter
    cells, i.e. a small ``voter_eps``.

    ``evaluate`` selects how the *hardened* circuit is measured:
    ``"single_pass"`` (fast, but TMR's identical-fanin copies are the
    worst case for the pairwise correlation approximation) or
    ``"monte_carlo"`` (sampled, unbiased; recommended for final numbers).

    ``workspace`` lets callers share one baseline
    :class:`~repro.incremental.CircuitWorkspace` across repeated calls
    (see :func:`hardening_sweep`); the hardened candidate is always
    evaluated on a fork, so the shared workspace is never mutated.
    """
    if evaluate not in ("single_pass", "monte_carlo"):
        raise ValueError("evaluate must be 'single_pass' or 'monte_carlo'")
    if workspace is None:
        workspace = CircuitWorkspace(circuit, eps=eps, seed=seed)
    ranking = analyzer or workspace.analyzer()
    baseline = ranking.run(eps)
    ranked = rank_critical_gates(ranking, eps, output=output, top_k=top_k)
    chosen = [g for g, _ in ranked]

    # One Triplicate edit on a fork: only the TMR islands are dirty, the
    # rest of the baseline's packs/weights carry over untouched.  The edit
    # also installs the hardened eps state (copies as noisy as the gate
    # they replicate, voters at ``voter_eps`` or the pessimistic default).
    hardened = workspace.fork()
    hardened.apply(Triplicate(gates=tuple(chosen), voter_eps=voter_eps))

    if evaluate == "monte_carlo":
        mc = monte_carlo_reliability(hardened.circuit, hardened.current_eps(),
                                     n_patterns=mc_patterns, seed=seed)
        after_delta = dict(mc.per_output)
    else:
        after_delta = dict(hardened.analyze().per_output)
    return HardeningOutcome(
        hardened_gates=chosen,
        baseline_delta=dict(baseline.per_output),
        hardened_delta=after_delta,
        gate_overhead=hardened.circuit.num_gates - circuit.num_gates,
    )


def hardening_sweep(circuit: Circuit,
                    eps: EpsilonSpec,
                    k_values: List[int],
                    output: Optional[str] = None,
                    voter_eps: Optional[float] = None,
                    evaluate: str = "single_pass",
                    seed: int = 0) -> List[Tuple[int, HardeningOutcome]]:
    """Evaluate selective TMR over several protection budgets.

    All budgets fork the same baseline workspace, so the unhardened
    circuit is simulated and weighted exactly once.
    """
    workspace = CircuitWorkspace(circuit, eps=eps, seed=seed)
    return [(k, selective_tmr(circuit, eps, k, output=output,
                              voter_eps=voter_eps, evaluate=evaluate,
                              seed=seed, workspace=workspace))
            for k in k_values]


def asymmetric_targets(circuit: Circuit,
                       eps: EpsilonSpec,
                       direction: str = "0to1",
                       top_k: int = 10,
                       seed: int = 0) -> List[Tuple[str, float]]:
    """Gates with the largest directional error probability.

    ``direction`` is ``"0to1"`` or ``"1to0"``.  Quadded-style redundancy
    mitigates the two directions with different structures; this is the
    target list for inserting the cheaper one-sided protection first.
    """
    if direction not in ("0to1", "1to0"):
        raise ValueError("direction must be '0to1' or '1to0'")
    analyzer = SinglePassAnalyzer(circuit, seed=seed)
    result = analyzer.run(eps)
    scored = []
    for gate in circuit.topological_gates():
        ep = result.node_errors[gate]
        p1 = result.signal_prob[gate]
        weight = (1.0 - p1) * ep.p01 if direction == "0to1" else p1 * ep.p10
        scored.append((gate, weight))
    scored.sort(key=lambda kv: kv[1], reverse=True)
    return scored[:top_k]
