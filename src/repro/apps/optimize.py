"""Reliability-driven design optimization (paper conclusions, Sec. 5.1).

Given a hardening cost model — each gate can be upgraded to a lower
failure probability at some area/power cost (gate sizing, hardened cell
swap) — allocate a budget to minimize the closed-form output error.

Because Eqn. (3) gives ``delta = 1/2 (1 - exp(sum_i log(1 - 2 eps_i o_i)))``,
minimizing delta is maximizing ``sum_i log(1 - 2 eps_i o_i)``: the
objective is *separable* per gate, so a greedy ladder over upgrade options
ranked by log-gain per unit cost is optimal for the continuous relaxation
and near-optimal for discrete ladders (the classic knapsack-greedy
argument).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..circuit import Circuit
from ..incremental import CircuitWorkspace, SetEps
from ..reliability.closed_form import ObservabilityModel
from ..spec import DEFAULT_KEY, EpsilonSpec, epsilon_of, parse_epsilon


@dataclass(frozen=True)
class HardeningOption:
    """One upgrade step: multiply the gate's eps by ``eps_factor``.

    ``cost`` is in arbitrary budget units (e.g. relative area).  Options
    with ``eps_factor >= 1`` are rejected.
    """

    eps_factor: float
    cost: float

    def __post_init__(self):
        if not 0.0 <= self.eps_factor < 1.0:
            raise ValueError("eps_factor must be in [0, 1)")
        if self.cost <= 0.0:
            raise ValueError("cost must be positive")


#: A typical cell-swap ladder: each step halves eps at growing cost.
DEFAULT_LADDER = (
    HardeningOption(eps_factor=0.5, cost=1.0),
    HardeningOption(eps_factor=0.25, cost=2.2),
    HardeningOption(eps_factor=0.1, cost=4.0),
)


@dataclass
class AllocationResult:
    """Outcome of a hardening budget allocation."""

    #: Chosen upgrade per gate (None = left as-is).
    upgrades: Dict[str, Optional[HardeningOption]]
    #: Final per-gate failure probabilities.
    final_eps: Dict[str, float]
    #: Closed-form delta before/after.
    delta_before: float
    delta_after: float
    #: Budget actually spent.
    spent: float
    #: Single-pass delta before/after, measured on a workspace by applying
    #: the allocation as ``set_eps`` edits (None when no workspace given).
    measured_before: Optional[float] = None
    measured_after: Optional[float] = None

    @property
    def improvement(self) -> float:
        """Relative reduction of the output error probability."""
        if self.delta_before <= 0.0:
            return 0.0
        return 1.0 - self.delta_after / self.delta_before


def allocate_hardening(model: ObservabilityModel,
                       base_eps: EpsilonSpec,
                       budget: float,
                       ladder: Sequence[HardeningOption] = DEFAULT_LADDER,
                       workspace: Optional[CircuitWorkspace] = None
                       ) -> AllocationResult:
    """Greedy budgeted hardening against the closed-form objective.

    Each gate may climb the (sorted) upgrade ladder one rung at a time;
    rungs across all gates compete on marginal log-gain per unit cost.
    High-observability gates win the early budget — the quantitative form
    of "introduce redundancy at selected gates" from Sec. 5.1.

    The closed form is first-order (it ignores correlation and eps²
    terms), so pass a :class:`~repro.incremental.CircuitWorkspace` of the
    same circuit to *measure* the chosen allocation with the single-pass
    engine: the upgrades are applied to a fork as ``set_eps`` edits (which
    invalidate nothing — eps enters at run time) and the result carries
    ``measured_before`` / ``measured_after`` single-pass deltas alongside
    the closed-form ones.
    """
    if budget < 0.0:
        raise ValueError("budget must be nonnegative")
    ladder = sorted(ladder, key=lambda o: o.eps_factor, reverse=True)
    gates = list(model.observabilities)
    eps0 = {g: epsilon_of(base_eps, g) for g in gates}
    delta_before = model.delta(eps0)

    def log_term(gate: str, eps_value: float) -> float:
        o = model.observabilities[gate]
        x = 1.0 - 2.0 * eps_value * o
        return math.log(max(x, 1e-300))

    current_rung: Dict[str, int] = {g: -1 for g in gates}
    spent = 0.0
    # Candidate pool: (gain per cost, gate, rung index), refreshed lazily.
    while True:
        best = None
        for g in gates:
            rung = current_rung[g] + 1
            if rung >= len(ladder):
                continue
            option = ladder[rung]
            step_cost = option.cost - (
                ladder[rung - 1].cost if rung > 0 else 0.0)
            if step_cost <= 0.0:
                step_cost = 1e-12
            if spent + step_cost > budget:
                continue
            prev_eps = eps0[g] * (
                ladder[rung - 1].eps_factor if rung > 0 else 1.0)
            new_eps = eps0[g] * option.eps_factor
            gain = log_term(g, new_eps) - log_term(g, prev_eps)
            score = gain / step_cost
            if best is None or score > best[0]:
                best = (score, g, rung, step_cost)
        if best is None or best[0] <= 0.0:
            break
        _, g, rung, step_cost = best
        current_rung[g] = rung
        spent += step_cost

    upgrades = {g: (ladder[r] if r >= 0 else None)
                for g, r in current_rung.items()}
    final_eps = {g: eps0[g] * (ladder[r].eps_factor if r >= 0 else 1.0)
                 for g, r in current_rung.items()}

    measured_before = measured_after = None
    if workspace is not None:
        measured_before = float(workspace.analyze(base_eps).delta())
        fork = workspace.fork()
        spec = parse_epsilon(base_eps)
        if isinstance(spec, Mapping):
            for key, value in spec.items():
                fork.apply(SetEps(value, gate=None if key == DEFAULT_KEY
                                  else key))
        else:
            fork.apply(SetEps(float(spec)))
        for g, rung in current_rung.items():
            if rung >= 0:
                fork.apply(SetEps(final_eps[g], gate=g))
        measured_after = float(fork.analyze().delta())

    return AllocationResult(
        upgrades=upgrades,
        final_eps=final_eps,
        delta_before=delta_before,
        delta_after=model.delta(final_eps),
        spent=spent,
        measured_before=measured_before,
        measured_after=measured_after,
    )


def hardening_frontier(model: ObservabilityModel,
                       base_eps: EpsilonSpec,
                       budgets: Sequence[float],
                       ladder: Sequence[HardeningOption] = DEFAULT_LADDER,
                       workspace: Optional[CircuitWorkspace] = None
                       ) -> List[Tuple[float, AllocationResult]]:
    """The budget-vs-reliability tradeoff curve."""
    return [(b, allocate_hardening(model, base_eps, b, ladder,
                                   workspace=workspace))
            for b in budgets]
