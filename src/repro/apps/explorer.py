"""Redundancy-free design-space exploration (paper Sec. 5.1, Fig. 8).

Different syntheses of the same function differ in reliability with *no*
redundancy added: the paper's Fig. 8 compares a low-fanout and a
high-fanout synthesis of b9 and attributes the gap to logic depth ("as the
number of levels of logic increase, the noise-free inputs have to pass
through more levels of noise").  This module scores candidate syntheses by
their consolidated output error curves and reports the structural
covariates (levels, fanout) the paper discusses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..circuit import Circuit, circuit_stats, CircuitStats
from ..reliability.consolidated import ConsolidatedAnalyzer


@dataclass
class CandidateScore:
    """Reliability profile of one synthesis candidate."""

    name: str
    stats: CircuitStats
    #: eps -> consolidated (any-output) error probability.
    consolidated_curve: Dict[float, float]

    @property
    def area(self) -> float:
        """Area under the consolidated error curve (lower is better)."""
        points = sorted(self.consolidated_curve.items())
        total = 0.0
        for (e0, d0), (e1, d1) in zip(points, points[1:]):
            total += 0.5 * (d0 + d1) * (e1 - e0)
        return total


def score_candidates(candidates: Sequence[Circuit],
                     eps_values: Sequence[float],
                     seed: int = 0,
                     n_patterns: Optional[int] = None,
                     **analyzer_kwargs) -> List[CandidateScore]:
    """Score synthesis candidates by consolidated output error.

    Returns one :class:`CandidateScore` per candidate, sorted most reliable
    first (smallest area under the consolidated error curve).
    """
    scores = []
    for circuit in candidates:
        analyzer = ConsolidatedAnalyzer(circuit, seed=seed,
                                        n_patterns=n_patterns,
                                        **analyzer_kwargs)
        curve = analyzer.curve(eps_values)
        scores.append(CandidateScore(
            name=circuit.name,
            stats=circuit_stats(circuit),
            consolidated_curve=curve,
        ))
    scores.sort(key=lambda s: s.area)
    return scores


def explain_ranking(scores: Sequence[CandidateScore]) -> str:
    """Human-readable report relating reliability to structure (Fig. 8)."""
    lines = ["candidate ranking (most reliable first):"]
    for rank, s in enumerate(scores, start=1):
        lines.append(
            f"  {rank}. {s.name}: curve-area={s.area:.4f} "
            f"depth={s.stats.depth} total-levels={s.stats.total_output_levels} "
            f"max-fanout={s.stats.max_fanout} gates={s.stats.num_gates}")
    if len(scores) >= 2:
        best, worst = scores[0], scores[-1]
        if best.stats.total_output_levels < worst.stats.total_output_levels:
            lines.append(
                "  note: the most reliable candidate has fewer total logic "
                "levels, consistent with the paper's Fig. 8 explanation "
                "(fewer levels of noise between inputs and outputs).")
    return "\n".join(lines)
