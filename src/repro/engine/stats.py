"""Rolling engine statistics: latency percentiles, cache rates, lanes.

:class:`EngineStats` is the always-on aggregation layer behind
``AnalysisEngine.stats()`` and the ``metrics`` serve op.  Unlike
``repro.obs.metrics`` (opt-in, process-global), it is owned by one engine
instance and fed a cheap ``record()`` call per response — a deque append
and a few dict increments — so it stays within the warm-path overhead
budget guarded by ``benchmarks/test_obs_overhead.py``.

Latencies are kept in fixed-size ring buffers per op; percentiles are
computed on *read* by folding the ring through an
:class:`repro.obs.metrics.Histogram` and calling
:meth:`~repro.obs.metrics.Histogram.quantile`, so the record path never
sorts.  Cache hit-rate windows and per-lane utilization follow the same
rolling-window discipline: ``stats`` answers reflect recent traffic, not
lifetime averages.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Deque, Dict, Optional

from ..obs.metrics import Histogram

__all__ = ["EngineStats", "LATENCY_BUCKETS", "DEFAULT_WINDOW"]

#: Histogram bounds tuned for request latencies (seconds): 100 µs .. 10 s.
LATENCY_BUCKETS = (1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
                   5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: Ring-buffer depth for latency and cache-rate windows.
DEFAULT_WINDOW = 512

#: Cache-probe outcomes that count as a hit in the rolling hit-rate.
_HIT_STATES = frozenset(("hit", "warm"))
#: Probe outcomes excluded from the rate (neither hit nor miss).
_NEUTRAL_STATES = frozenset(("transient", "unknown"))

QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


class EngineStats:
    """Rolling SLO statistics for one :class:`AnalysisEngine`."""

    def __init__(self, window: int = DEFAULT_WINDOW):
        self.window = int(window)
        self.started_at = time.time()
        self._start = time.perf_counter()
        self._lock = threading.Lock()
        self._latencies: Dict[str, Deque[float]] = {}
        self._op_counts: Dict[str, int] = {}
        self._op_errors: Dict[str, int] = {}
        self._op_framed: Dict[str, int] = {}
        self._cache_windows: Dict[str, Deque[int]] = {}
        self._lane_requests: Dict[int, int] = {}
        self._lane_busy_s: Dict[int, float] = {}

    # -- record path (hot; keep allocation-light) -----------------------
    def record(self, op: str, elapsed_s: float, *, ok: bool = True,
               cache: Optional[Dict[str, str]] = None,
               lane: Optional[int] = None,
               frames: Optional[int] = None) -> None:
        """Fold one finished request into the rolling windows.

        ``frames`` marks a sequential (unrolled) request; the per-op
        ``framed`` counter surfaces in :meth:`ops_summary` only once a
        framed request has been seen, so combinational-only traffic keeps
        its historical summary shape.
        """
        with self._lock:
            ring = self._latencies.get(op)
            if ring is None:
                ring = deque(maxlen=self.window)
                self._latencies[op] = ring
            ring.append(float(elapsed_s))
            self._op_counts[op] = self._op_counts.get(op, 0) + 1
            if not ok:
                self._op_errors[op] = self._op_errors.get(op, 0) + 1
            if frames is not None:
                self._op_framed[op] = self._op_framed.get(op, 0) + 1
            if cache:
                for tier, state in cache.items():
                    if state in _NEUTRAL_STATES:
                        continue
                    window = self._cache_windows.get(tier)
                    if window is None:
                        window = deque(maxlen=self.window)
                        self._cache_windows[tier] = window
                    window.append(1 if state in _HIT_STATES else 0)
            if lane is not None:
                self._lane_requests[lane] = \
                    self._lane_requests.get(lane, 0) + 1

    def record_lane(self, lane: int, requests: int, busy_s: float) -> None:
        """Account one dispatched lane batch (parent side of a fan-out)."""
        with self._lock:
            self._lane_requests[lane] = \
                self._lane_requests.get(lane, 0) + int(requests)
            self._lane_busy_s[lane] = \
                self._lane_busy_s.get(lane, 0.0) + float(busy_s)

    # -- read path ------------------------------------------------------
    def uptime_s(self) -> float:
        return time.perf_counter() - self._start

    def percentiles(self, op: str) -> Dict[str, float]:
        """p50/p95/p99 (seconds) over the op's rolling latency window."""
        with self._lock:
            samples = list(self._latencies.get(op, ()))
        hist = Histogram(op, {}, buckets=LATENCY_BUCKETS)
        for value in samples:
            hist.observe(value)
        return {name: hist.quantile(q) for name, q in QUANTILES}

    def ops_summary(self) -> Dict[str, Dict[str, Any]]:
        """Per-op rolling summary: counts, errors, mean + percentiles."""
        with self._lock:
            ops = {op: (list(ring), self._op_counts.get(op, 0),
                        self._op_errors.get(op, 0),
                        self._op_framed.get(op, 0))
                   for op, ring in self._latencies.items()}
        summary: Dict[str, Dict[str, Any]] = {}
        for op, (samples, count, errors, framed) in sorted(ops.items()):
            hist = Histogram(op, {}, buckets=LATENCY_BUCKETS)
            for value in samples:
                hist.observe(value)
            entry: Dict[str, Any] = {
                "count": count,
                "errors": errors,
                "window": len(samples),
                "mean_ms": hist.mean() * 1e3,
            }
            if framed:
                entry["framed"] = framed
            for name, q in QUANTILES:
                entry[f"{name}_ms"] = hist.quantile(q) * 1e3
            summary[op] = entry
        return summary

    def cache_rates(self) -> Dict[str, Dict[str, Any]]:
        """Rolling hit-rate per cache tier (session / weights / plan)."""
        with self._lock:
            tiers = {tier: list(window)
                     for tier, window in self._cache_windows.items()}
        return {tier: {"window": len(window),
                       "hit_rate": (sum(window) / len(window)
                                    if window else None)}
                for tier, window in sorted(tiers.items())}

    def lane_summary(self) -> Dict[str, Dict[str, Any]]:
        """Per-lane request counts and busy-time utilization."""
        with self._lock:
            lanes = sorted(set(self._lane_requests) | set(self._lane_busy_s))
            out = {}
            uptime = max(self.uptime_s(), 1e-9)
            for lane in lanes:
                busy = self._lane_busy_s.get(lane, 0.0)
                out[str(lane)] = {
                    "requests": self._lane_requests.get(lane, 0),
                    "busy_s": busy,
                    "utilization": min(busy / uptime, 1.0),
                }
        return out

    def snapshot(self) -> Dict[str, Any]:
        """Everything, JSON-ready (embedded in ``engine.stats()``)."""
        return {
            "window": self.window,
            "ops": self.ops_summary(),
            "cache": self.cache_rates(),
            "lanes": self.lane_summary(),
        }

    def to_prometheus(self, prefix: str = "repro_engine") -> str:
        """Prometheus text exposition of the rolling stats.

        Latency quantiles render as a ``summary`` metric with
        ``quantile`` labels (the Prometheus idiom for pre-aggregated
        percentiles); note ``_sum``/``_count`` cover only the rolling
        window, matching the quantiles' horizon.
        """
        lines = [
            f"# HELP {prefix}_uptime_seconds Engine uptime.",
            f"# TYPE {prefix}_uptime_seconds gauge",
            f"{prefix}_uptime_seconds {self.uptime_s():.6f}",
        ]
        ops = self.ops_summary()
        if ops:
            lines.append(f"# HELP {prefix}_requests_total "
                         "Requests served, by op.")
            lines.append(f"# TYPE {prefix}_requests_total counter")
            for op, entry in ops.items():
                lines.append(
                    f'{prefix}_requests_total{{op="{op}"}} {entry["count"]}')
            lines.append(f"# HELP {prefix}_errors_total "
                         "Failed requests, by op.")
            lines.append(f"# TYPE {prefix}_errors_total counter")
            for op, entry in ops.items():
                lines.append(
                    f'{prefix}_errors_total{{op="{op}"}} {entry["errors"]}')
            name = f"{prefix}_request_latency_seconds"
            lines.append(f"# HELP {name} Rolling request latency, by op.")
            lines.append(f"# TYPE {name} summary")
            for op, entry in ops.items():
                for qname, q in QUANTILES:
                    value = entry[f"{qname}_ms"] / 1e3
                    lines.append(
                        f'{name}{{op="{op}",quantile="{q}"}} {value:.6f}')
                total = entry["mean_ms"] / 1e3 * entry["window"]
                lines.append(f'{name}_sum{{op="{op}"}} {total:.6f}')
                lines.append(f'{name}_count{{op="{op}"}} {entry["window"]}')
        cache = self.cache_rates()
        if cache:
            name = f"{prefix}_cache_hit_ratio"
            lines.append(f"# HELP {name} Rolling cache hit rate, by tier.")
            lines.append(f"# TYPE {name} gauge")
            for tier, entry in cache.items():
                rate = entry["hit_rate"]
                if rate is not None:
                    lines.append(f'{name}{{tier="{tier}"}} {rate:.6f}')
        lanes = self.lane_summary()
        if lanes:
            lines.append(f"# HELP {prefix}_lane_requests_total "
                         "Requests routed per worker lane.")
            lines.append(f"# TYPE {prefix}_lane_requests_total counter")
            for lane, entry in lanes.items():
                lines.append(f'{prefix}_lane_requests_total'
                             f'{{lane="{lane}"}} {entry["requests"]}')
            lines.append(f"# HELP {prefix}_lane_busy_seconds_total "
                         "Busy wall-clock per worker lane.")
            lines.append(f"# TYPE {prefix}_lane_busy_seconds_total counter")
            for lane, entry in lanes.items():
                lines.append(f'{prefix}_lane_busy_seconds_total'
                             f'{{lane="{lane}"}} {entry["busy_s"]:.6f}')
        return "\n".join(lines) + "\n"
