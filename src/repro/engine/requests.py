"""Declarative analysis requests and their result envelopes.

One :class:`AnalysisRequest` describes one unit of work — which circuit,
which operation (``analyze`` / ``sweep`` / ``curve`` / ``closed-form`` /
``mc`` / ``report``), which eps point(s), which method and options — in a
form that serializes to a JSON line, so the same object drives
``engine.submit(...)``, ``repro serve``, and ``repro batch``.

One :class:`AnalysisResponse` wraps one result: the payload dict (built by
the same builders the CLI's ``--json`` output uses, so serve envelopes
byte-match one-shot outputs), plus the execution record — method actually
used, the fallback ladder steps taken, timeout status, and elapsed time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from ..circuit import Circuit
from ..spec import EpsilonSpec, parse_eps_list, parse_epsilon

#: Operations the engine schedules.  ``edit`` and ``reanalyze`` act on a
#: named mutable session (see docs/engine.md, "Incremental edit sessions").
OPS = ("analyze", "sweep", "curve", "closed-form", "mc", "report",
       "edit", "reanalyze")

#: Analysis methods the ``analyze``/``sweep`` ops dispatch between.
METHODS = ("single-pass", "closed-form", "mc", "consolidated", "exact")


def normalize_eps_points(eps: Any) -> List[EpsilonSpec]:
    """Coerce a request's ``eps`` field into a list of canonical specs.

    Accepts one spec (number / numeric string / per-gate mapping), a list
    of specs, or the CLI's comma-separated string (``"0.01,0.05"``).
    """
    if isinstance(eps, str) and "," in eps:
        return list(parse_eps_list(eps))
    if isinstance(eps, (list, tuple)):
        return [parse_epsilon(e) for e in eps]
    return [parse_epsilon(eps)]


@dataclass
class AnalysisRequest:
    """One declarative unit of analysis work."""

    circuit: Union[str, Circuit, None] = None
    op: str = "analyze"
    eps: Any = 0.05
    eps10: Any = None
    method: str = "single-pass"
    correlation: bool = True
    output: Optional[str] = None
    timeout_s: Optional[float] = None
    id: Optional[Any] = None
    #: Time-frame count for sequential circuits (None = combinational).
    #: Folded into ``options`` so session keying, coalescing, and cache
    #: probes all see it without special cases.
    frames: Optional[int] = None
    #: Optional primary-output subset: restrict the analysis to the union
    #: cone of these outputs (docs/scaling.md).  Folded into ``options``
    #: like ``frames`` so sessions and coalescing key on it.
    outputs: Optional[List[str]] = None
    #: Named mutable session this request targets (``edit``/``reanalyze``,
    #: or any analysis op after an ``edit``).  Named sessions live outside
    #: the LRU registry and keep their incremental workspace warm.
    session: Optional[str] = None
    #: Edit objects for ``op="edit"`` (see repro.incremental.parse_edit).
    edits: Optional[List[Dict[str, Any]]] = None
    #: Session options (``weight_method``/``weights``, ``n_patterns``,
    #: ``seed``, ``level_gap``, ``compiled``, ``weights_cache_dir``, ...)
    #: plus per-call extras like ``mc_patterns``.
    options: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ValueError(
                f"unknown op {self.op!r}: expected one of {', '.join(OPS)}")
        if self.method not in METHODS:
            raise ValueError(
                f"unknown method {self.method!r}: expected one of "
                f"{', '.join(METHODS)}")
        if self.op in ("edit", "reanalyze") and self.session is None:
            raise ValueError(f"op {self.op!r} requires a 'session' field")
        if self.circuit is None and self.session is None:
            raise ValueError("request needs a 'circuit' field")
        if self.frames is not None:
            self.options.setdefault("frames", self.frames)
        if self.outputs is not None:
            self.options.setdefault("outputs", self.outputs)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AnalysisRequest":
        """Parse one request object (a ``repro serve`` / ``batch`` line)."""
        if not isinstance(data, dict):
            raise ValueError(f"request must be a JSON object, got "
                             f"{type(data).__name__}")
        known = {"circuit", "op", "eps", "eps10", "method", "correlation",
                 "output", "timeout_s", "id", "options", "session", "edits",
                 "frames", "outputs"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown request field(s): {', '.join(sorted(unknown))}")
        if "circuit" not in data and "session" not in data:
            raise ValueError("request needs a 'circuit' field")
        op = data.get("op", "analyze")
        # ``reanalyze`` without an explicit eps means "the session's
        # current eps state" — keep the sentinel for the engine.
        default_eps = None if op == "reanalyze" else 0.05
        return cls(
            circuit=data.get("circuit"),
            op=op,
            eps=data.get("eps", default_eps),
            eps10=data.get("eps10"),
            method=data.get("method", "single-pass"),
            correlation=bool(data.get("correlation", True)),
            output=data.get("output"),
            timeout_s=data.get("timeout_s"),
            id=data.get("id"),
            frames=data.get("frames"),
            outputs=data.get("outputs"),
            session=data.get("session"),
            edits=data.get("edits"),
            options=dict(data.get("options") or {}),
        )

    def eps_points(self) -> List[EpsilonSpec]:
        return normalize_eps_points(self.eps)

    def eps10_points(self) -> Optional[List[EpsilonSpec]]:
        if self.eps10 is None:
            return None
        return normalize_eps_points(self.eps10)

    def circuit_label(self) -> str:
        if self.circuit is None:
            return f"session:{self.session}"
        return (self.circuit.name if isinstance(self.circuit, Circuit)
                else str(self.circuit))


@dataclass
class AnalysisResponse:
    """One request's outcome: payload plus execution record."""

    ok: bool
    op: str
    circuit: str
    id: Optional[Any] = None
    #: Method that actually produced the payload (may differ from the
    #: requested one after a fallback).
    method: Optional[str] = None
    #: Ladder steps taken, e.g. ``[{"from": "single-pass-compiled",
    #: "to": "closed-form", "reason": "timeout"}]``.
    fallbacks: List[Dict[str, str]] = field(default_factory=list)
    timed_out: bool = False
    elapsed_s: float = 0.0
    #: Whether this request was answered from a coalesced kernel call
    #: covering several requests (0 = ran alone).
    coalesced: int = 0
    #: Time-frame count of the session that answered (sequential
    #: circuits only; None — and absent from the wire form — for
    #: combinational traffic, keeping those envelopes byte-identical).
    frames: Optional[int] = None
    #: Output subset the answering session was restricted to (None — and
    #: absent from the wire form — for full-circuit traffic).
    outputs: Optional[List[str]] = None
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    obs: Optional[Dict[str, Any]] = None
    #: Per-request telemetry block (always populated by the engine):
    #: ``request_id``, ``queue_wait_ms``, ``coalesced``, ``lane``,
    #: ``cache`` (session/weights/plan warmth), ``ladder``, ``kernel_ms``,
    #: ``total_ms``.  See docs/observability.md, "Telemetry envelopes".
    telemetry: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "id": self.id,
            "ok": self.ok,
            "op": self.op,
            "circuit": self.circuit,
            "method": self.method,
            "fallbacks": self.fallbacks,
            "timed_out": self.timed_out,
            "elapsed_s": self.elapsed_s,
            "coalesced": self.coalesced,
        }
        if self.frames is not None:
            data["frames"] = self.frames
        if self.outputs is not None:
            data["outputs"] = list(self.outputs)
        if self.ok:
            data["result"] = self.result
        else:
            data["error"] = self.error
        if self.telemetry is not None:
            data["telemetry"] = self.telemetry
        if self.obs is not None:
            data["obs"] = self.obs
        return data


# ----------------------------------------------------------------------
# Payload builders — shared with the CLI so `repro serve` envelopes
# byte-match one-shot `--json` outputs for the same work.
# ----------------------------------------------------------------------

def analyze_payload(circuit_name: str,
                    eps_points: Sequence[EpsilonSpec],
                    results: Sequence[Any]) -> Dict[str, Any]:
    """The ``repro analyze --json`` document (sans timing)."""
    points = [{"eps": eps, **result.to_dict()}
              for eps, result in zip(eps_points, results)]
    return {"circuit": circuit_name, "command": "analyze", "points": points}


def curve_payload(circuit_name: str, output: str,
                  eps_points: Sequence[float],
                  deltas: Sequence[float]) -> Dict[str, Any]:
    """A delta(eps) curve document for one output."""
    return {
        "circuit": circuit_name,
        "command": "curve",
        "output": output,
        "points": [{"eps": float(e), "delta": float(d)}
                   for e, d in zip(eps_points, deltas)],
    }


def result_payload(circuit_name: str, command: str,
                   result: Any) -> Dict[str, Any]:
    """Wrap any ``ResultProtocol`` object as a command document."""
    return {"circuit": circuit_name, "command": command, **result.to_dict()}
