"""Durable engine warm state: snapshot and restore named edit sessions.

A serve process accumulates expensive per-session state — simulation
packs, weight vectors, incrementally maintained eps maps and edit logs —
that historically died with the process.  This module makes it durable:
:func:`save_engine_state` serializes every named edit session's
:class:`~repro.incremental.CircuitWorkspace` into the weight cache's
on-disk ``.npz`` format (one ``wstate-*.npz`` per session, see
:mod:`repro.probability.weight_cache`) plus one ``engine-state.json``
manifest listing the sessions, and :func:`load_engine_state` rebuilds
them on the next start.  Restores are best-effort per session: a missing
or corrupt entry skips that session (counted in
``engine.state.load_errors``) and never aborts the rest.

The same directory doubles as a shared warm artifact store: pointing the
engine's ``weights_cache_dir`` at it (the CLI's ``--state-dir`` does
this automatically when ``--weights-cache`` is unset) lets N serve
replicas share weight vectors and correlation plans through the existing
disk tier while each checkpoints its own sessions.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Any, Dict

from ..incremental import CircuitWorkspace
from ..obs import metrics as obs_metrics
from ..obs import trace_span
from ..probability.weight_cache import (
    load_workspace_state,
    store_workspace_state,
)
from .session import CircuitSession, SessionConfig

__all__ = [
    "ENGINE_STATE_FORMAT_VERSION",
    "STATE_MANIFEST_NAME",
    "load_engine_state",
    "save_engine_state",
]

#: Bump when the engine-state manifest layout changes.
ENGINE_STATE_FORMAT_VERSION = 1

#: File name of the per-directory snapshot manifest.
STATE_MANIFEST_NAME = "engine-state.json"


def _config_options(config: SessionConfig) -> Dict[str, Any]:
    """A ``SessionConfig`` as the options dict ``from_options`` accepts."""
    options: Dict[str, Any] = {}
    for name in SessionConfig.FIELDS:
        value = getattr(config, name)
        if name == "input_probs" and value is not None:
            value = {k: v for k, v in value}
        options[name] = value
    return options


def save_engine_state(engine, state_dir: str) -> Dict[str, Any]:
    """Snapshot every named edit session into ``state_dir``.

    Each session's workspace is written as its own atomic ``.npz`` entry
    first; the ``engine-state.json`` manifest is replaced last, so a
    crash mid-snapshot leaves the previous manifest pointing at entries
    that still exist.  Returns a summary dict
    (``{state_dir, sessions, elapsed_ms}``) that the serve ``save``
    control op echoes to the client.
    """
    started = time.perf_counter()
    os.makedirs(state_dir, exist_ok=True)
    entries = []
    with trace_span("engine.state.save",
                    sessions=len(engine._edit_sessions)):
        for name in sorted(engine._edit_sessions):
            session = engine._edit_sessions[name]
            manifest, arrays = session.workspace().to_state()
            path = store_workspace_state(state_dir, name, manifest, arrays)
            entries.append({
                "name": name,
                "file": os.path.basename(path),
                "structural_hash": manifest["structural_hash"],
                "config": _config_options(session.config),
            })
        doc = {
            "format": ENGINE_STATE_FORMAT_VERSION,
            "kind": "engine_state",
            "saved_at": time.time(),
            "sessions": entries,
        }
        fd, tmp = tempfile.mkstemp(suffix=".json.tmp", dir=state_dir)
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh, sort_keys=True, indent=1)
            os.replace(tmp, os.path.join(state_dir, STATE_MANIFEST_NAME))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    elapsed_ms = (time.perf_counter() - started) * 1e3
    if obs_metrics.is_enabled():
        obs_metrics.inc("engine.state.snapshots")
        obs_metrics.inc("engine.state.sessions_saved", len(entries))
    return {"state_dir": state_dir, "sessions": len(entries),
            "elapsed_ms": round(elapsed_ms, 3)}


def load_engine_state(engine, state_dir: str) -> Dict[str, Any]:
    """Restore named edit sessions from a prior snapshot, best-effort.

    Returns ``{state_dir, found, sessions, errors}``; ``found`` is False
    when no (readable) manifest exists.  Individual sessions that fail to
    restore — corrupt entry, structural-hash mismatch, bad config — are
    reported in ``errors`` and skipped, so one bad entry cannot poison a
    restart.  Already-registered session names are left untouched.
    """
    manifest_path = os.path.join(state_dir, STATE_MANIFEST_NAME)
    summary: Dict[str, Any] = {"state_dir": state_dir, "found": False,
                               "sessions": 0, "errors": []}
    try:
        with open(manifest_path) as fh:
            doc = json.load(fh)
        if doc.get("kind") != "engine_state":
            raise ValueError("not an engine-state manifest")
        if doc.get("format") != ENGINE_STATE_FORMAT_VERSION:
            raise ValueError("format version skew")
    except FileNotFoundError:
        return summary
    except Exception as exc:
        summary["errors"].append(f"manifest: {exc}")
        return summary
    summary["found"] = True
    with trace_span("engine.state.load",
                    sessions=len(doc.get("sessions", []))):
        for entry in doc.get("sessions", []):
            name = entry.get("name")
            if not isinstance(name, str) or name in engine._edit_sessions:
                continue
            try:
                loaded = load_workspace_state(state_dir, name)
                if loaded is None:
                    raise ValueError("state entry missing or corrupt")
                ws_manifest, arrays = loaded
                workspace = CircuitWorkspace.from_state(ws_manifest, arrays)
                config = SessionConfig.from_options(entry.get("config")
                                                    or {})
                session = CircuitSession(workspace.circuit, config)
                session.adopt_workspace(workspace)
                engine._edit_sessions[name] = session
                summary["sessions"] += 1
            except Exception as exc:
                summary["errors"].append(f"{name}: {exc}")
    if obs_metrics.is_enabled():
        obs_metrics.inc("engine.state.sessions_restored",
                        summary["sessions"])
        if summary["errors"]:
            obs_metrics.inc("engine.state.load_errors",
                            len(summary["errors"]))
    return summary
