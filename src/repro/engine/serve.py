"""Line-delimited JSON request serving: ``repro serve`` / ``repro batch``.

The wire protocol is deliberately minimal — one JSON object per line in,
one JSON envelope per line out, in request order:

    {"id": 1, "op": "analyze", "circuit": "c17", "eps": [0.01, 0.05]}
    {"id": 1, "ok": true, "result": {...}, "method": "...", ...}

Four control ops exist alongside the analysis ops:

* ``{"op": "ping"}`` — cheap liveness echo: ``{ok, op, uptime_s}``,
  answered without touching the engine's locks or session registry;
* ``{"op": "stats"}`` — the full ``engine.stats()`` payload (registry
  counters, rolling latency percentiles, cache windows, lanes);
* ``{"op": "metrics"}`` — Prometheus text exposition of the engine's
  rolling stats plus the obs metrics registry;
* ``{"op": "shutdown"}`` — acknowledge and close the connection (stdio
  mode exits the loop; TCP mode closes that client's connection).

``serve_stream`` drives one connection over file objects (stdio or a
socket makefile); ``serve_tcp`` accepts many clients, each served by a
thread against the shared engine; ``run_batch`` executes an offline
``requests.jsonl`` through the coalescing/fan-out scheduler.
"""

from __future__ import annotations

import json
import socketserver
import time
from typing import Any, Dict, IO, List, Optional

from ..obs import get_logger
from .core import AnalysisEngine
from .requests import AnalysisResponse

log = get_logger("engine.serve")

#: Ops handled by the serve loop itself, without touching the scheduler.
CONTROL_OPS = ("ping", "stats", "metrics", "shutdown")

#: Content type a ``metrics`` envelope's exposition text conforms to.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Hard cap on one request line (1 MiB).  Stdio mode answers an oversized
#: line with an error envelope and keeps serving; TCP mode answers and
#: closes the connection, since the stream cannot be resynchronized
#: mid-line without reading the rest of the flood.
MAX_REQUEST_BYTES = 1 << 20


def _too_long_envelope(n_bytes: int) -> Dict[str, Any]:
    return AnalysisResponse(
        ok=False, op="?", circuit="?",
        error=(f"request line too long ({n_bytes} bytes > "
               f"{MAX_REQUEST_BYTES} byte cap)")).to_dict()


def handle_line(engine: AnalysisEngine, line: str) -> Dict[str, Any]:
    """One request line → one envelope dict (never raises)."""
    received_at = time.time()
    if len(line) > MAX_REQUEST_BYTES:
        return _too_long_envelope(len(line))
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        return AnalysisResponse(ok=False, op="?", circuit="?",
                                error=f"invalid JSON: {exc}").to_dict()
    if isinstance(data, dict) and data.get("op") in CONTROL_OPS:
        op = data["op"]
        if op == "ping":
            # Lock-free liveness echo: never blocks behind the registry.
            return {"id": data.get("id"), "ok": True, "op": op,
                    "uptime_s": engine.uptime_s()}
        if op == "metrics":
            return {"id": data.get("id"), "ok": True, "op": op,
                    "content_type": PROMETHEUS_CONTENT_TYPE,
                    "exposition": engine.prometheus()}
        if op == "stats":
            return {"id": data.get("id"), "ok": True, "op": op,
                    "stats": engine.stats()}
        return {"id": data.get("id"), "ok": True, "op": op}
    return engine.submit(data, received_at=received_at).to_dict()


def serve_stream(engine: AnalysisEngine, infile: IO[str],
                 outfile: IO[str]) -> int:
    """Serve one line-delimited connection until EOF or ``shutdown``.

    Returns the number of requests answered.
    """
    served = 0
    for line in infile:
        line = line.strip()
        if not line:
            continue
        envelope = handle_line(engine, line)
        outfile.write(json.dumps(envelope) + "\n")
        outfile.flush()
        served += 1
        if envelope.get("op") == "shutdown":
            break
    return served


def serve_tcp(engine: AnalysisEngine, host: str, port: int,
              ready_callback=None) -> None:
    """Serve TCP clients forever (each connection = one stream loop).

    ``ready_callback(bound_port)`` fires once the socket is listening —
    tests use it to learn an ephemeral port.  The engine is shared, so
    sessions warmed by one client serve the next; request handling is
    serialized per connection by the stream loop.
    """

    class Handler(socketserver.StreamRequestHandler):
        def handle(self) -> None:
            while True:
                # Bounded read: a line that exceeds the cap comes back
                # without its trailing newline and is rejected before the
                # rest of the flood is ever buffered.
                raw = self.rfile.readline(MAX_REQUEST_BYTES + 1)
                if not raw:
                    break
                if len(raw) > MAX_REQUEST_BYTES and not raw.endswith(b"\n"):
                    envelope = _too_long_envelope(len(raw))
                    self.wfile.write(
                        (json.dumps(envelope) + "\n").encode())
                    break
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                envelope = handle_line(engine, line)
                self.wfile.write((json.dumps(envelope) + "\n").encode())
                if envelope.get("op") == "shutdown":
                    break

    class Server(socketserver.ThreadingTCPServer):
        allow_reuse_address = True
        daemon_threads = True

    with Server((host, port), Handler) as server:
        if ready_callback is not None:
            ready_callback(server.server_address[1])
        log.info("serving on %s:%d", *server.server_address[:2])
        server.serve_forever()


def run_batch(engine: AnalysisEngine, lines: List[str],
              outfile: IO[str], jobs: Optional[int] = None) -> int:
    """Execute a requests.jsonl offline: coalesced, fanned out, in order.

    Unlike the interactive loop, the whole batch is visible up front, so
    same-session sweep points collapse into single kernel calls and
    independent circuits spread across worker lanes.  Returns the number
    of failed requests (0 = clean batch).
    """
    requests: List[Any] = []
    parse_errors: Dict[int, Dict[str, Any]] = {}
    for i, line in enumerate(lines):
        line = line.strip()
        if not line or line.startswith("#"):
            parse_errors[i] = None  # skip marker: no output line
            continue
        try:
            requests.append((i, json.loads(line)))
        except json.JSONDecodeError as exc:
            parse_errors[i] = AnalysisResponse(
                ok=False, op="?", circuit="?",
                error=f"invalid JSON on line {i + 1}: {exc}").to_dict()
    responses = engine.submit_many([req for _, req in requests], jobs=jobs,
                                   received_at=time.time())
    by_line = dict(zip((i for i, _ in requests),
                       (r.to_dict() for r in responses)))
    failures = 0
    for i in range(len(lines)):
        envelope = by_line.get(i, parse_errors.get(i))
        if envelope is None:
            continue
        if not envelope.get("ok"):
            failures += 1
        outfile.write(json.dumps(envelope) + "\n")
    outfile.flush()
    return failures
