"""Line-delimited JSON request serving: ``repro serve`` / ``repro batch``.

The wire protocol is deliberately minimal — one JSON object per line in,
one JSON envelope per line out, in request order:

    {"id": 1, "op": "analyze", "circuit": "c17", "eps": [0.01, 0.05]}
    {"id": 1, "ok": true, "result": {...}, "method": "...", ...}

Five control ops exist alongside the analysis ops:

* ``{"op": "ping"}`` — cheap liveness echo: ``{ok, op, uptime_s}``,
  answered without touching the engine's locks or session registry;
* ``{"op": "stats"}`` — the full ``engine.stats()`` payload (registry
  counters, rolling latency percentiles, cache windows, lanes,
  admission state);
* ``{"op": "metrics"}`` — Prometheus text exposition of the engine's
  rolling stats plus the obs metrics registry;
* ``{"op": "save"}`` — snapshot the engine's named edit sessions to its
  state directory (``engine.save_state()``), echoing the summary;
* ``{"op": "shutdown"}`` — acknowledge and close the connection (stdio
  mode exits the loop; TCP mode closes that client's connection).

``serve_stream`` drives one connection over file objects (stdio or a
socket makefile).  ``serve_tcp`` is the TCP front-end: a single asyncio
event loop accepts every connection, gives each one bounded read/write
queues (backpressure per connection), funnels admitted requests through
a global :class:`AdmissionControl` gate, and **micro-batches** whatever
has queued up into one ``engine.submit_many`` call on a dedicated
engine thread — so concurrent clients' requests coalesce and
tensor-batch exactly like an offline ``repro batch`` file, instead of
contending per-request.  Requests beyond the admission limit are
answered immediately with an *overload envelope* carrying a
``retry_after_s`` hint rather than queued without bound.  The previous
thread-per-connection server remains as :func:`serve_tcp_threaded` (the
benchmark baseline, CLI ``--threaded``).

``run_batch`` executes an offline ``requests.jsonl`` through the
coalescing/fan-out scheduler; given a state directory it journals every
answered envelope and checkpoints engine state, so an interrupted batch
rerun with ``resume=True`` replays finished work from the journal and
continues where it stopped.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import socketserver
import time
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Any, Dict, IO, List, Optional

from ..obs import get_logger
from ..obs import metrics as obs_metrics
from .core import AnalysisEngine
from .requests import AnalysisResponse

log = get_logger("engine.serve")

#: Ops handled by the serve loop itself, without touching the scheduler.
CONTROL_OPS = ("ping", "stats", "metrics", "save", "shutdown")

#: Content type a ``metrics`` envelope's exposition text conforms to.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Hard cap on one request line (1 MiB).  Stdio mode answers an oversized
#: line with an error envelope and keeps serving; TCP mode answers and
#: closes the connection, since the stream cannot be resynchronized
#: mid-line without reading the rest of the flood.
MAX_REQUEST_BYTES = 1 << 20

#: Default global admission limit for the async front-end: requests in
#: flight (admitted, not yet answered) beyond this are shed with an
#: overload envelope instead of queueing without bound.
DEFAULT_MAX_INFLIGHT = 256

#: Per-connection response-queue bound: a client that stops reading its
#: responses stops being read from (TCP backpressure), instead of
#: buffering envelopes without limit.
MAX_PENDING_PER_CONNECTION = 64

#: Most requests drained into one ``submit_many`` micro-batch.  Large
#: enough for the cross-circuit tensor pass to merge a full catalog,
#: small enough to bound per-batch latency.
MAX_DISPATCH_BATCH = 64


def _too_long_envelope(n_bytes: int) -> Dict[str, Any]:
    return AnalysisResponse(
        ok=False, op="?", circuit="?",
        error=(f"request line too long ({n_bytes} bytes > "
               f"{MAX_REQUEST_BYTES} byte cap)")).to_dict()


def handle_line(engine: AnalysisEngine, line: str) -> Dict[str, Any]:
    """One request line → one envelope dict (never raises)."""
    received_at = time.time()
    if len(line) > MAX_REQUEST_BYTES:
        return _too_long_envelope(len(line))
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        return AnalysisResponse(ok=False, op="?", circuit="?",
                                error=f"invalid JSON: {exc}").to_dict()
    if isinstance(data, dict) and data.get("op") in CONTROL_OPS:
        op = data["op"]
        if op == "ping":
            # Lock-free liveness echo: never blocks behind the registry.
            return {"id": data.get("id"), "ok": True, "op": op,
                    "uptime_s": engine.uptime_s()}
        if op == "metrics":
            return {"id": data.get("id"), "ok": True, "op": op,
                    "content_type": PROMETHEUS_CONTENT_TYPE,
                    "exposition": engine.prometheus()}
        if op == "stats":
            return {"id": data.get("id"), "ok": True, "op": op,
                    "stats": engine.stats()}
        if op == "save":
            try:
                return {"id": data.get("id"), "ok": True, "op": op,
                        "state": engine.save_state()}
            except Exception as exc:  # noqa: BLE001 - envelope, don't die
                return {"id": data.get("id"), "ok": False, "op": op,
                        "error": f"{type(exc).__name__}: {exc}"}
        return {"id": data.get("id"), "ok": True, "op": op}
    return engine.submit(data, received_at=received_at).to_dict()


def serve_stream(engine: AnalysisEngine, infile: IO[str],
                 outfile: IO[str]) -> int:
    """Serve one line-delimited connection until EOF or ``shutdown``.

    Returns the number of requests answered.
    """
    served = 0
    for line in infile:
        line = line.strip()
        if not line:
            continue
        envelope = handle_line(engine, line)
        outfile.write(json.dumps(envelope) + "\n")
        outfile.flush()
        served += 1
        if envelope.get("op") == "shutdown":
            break
    return served


# ----------------------------------------------------------------------
# Admission control + overload envelopes
# ----------------------------------------------------------------------

class AdmissionControl:
    """Global in-flight gate for the async front-end.

    Counts admitted-but-unanswered requests against ``limit`` and keeps
    an EWMA of per-request service time, from which the overload
    envelope's ``retry_after_s`` hint is estimated (roughly: how long
    until the current in-flight work drains).  All mutation happens on
    the event-loop thread; :meth:`snapshot` is read from the engine
    thread by ``stats`` and is tolerant of torn reads (plain counters).
    """

    def __init__(self, limit: int = DEFAULT_MAX_INFLIGHT):
        self.limit = max(1, int(limit))
        self.inflight = 0
        self.accepted = 0
        self.rejected = 0
        #: EWMA of per-request engine service time, seeded pessimistically
        #: at 20 ms (one cold-ish kernel call) until real batches land.
        self.service_ewma_s = 0.02

    @property
    def saturated(self) -> bool:
        return self.inflight >= self.limit

    def try_acquire(self) -> bool:
        """Admit one request, or count a rejection and refuse."""
        if self.inflight >= self.limit:
            self.count_rejection()
            return False
        self.inflight += 1
        self.accepted += 1
        if obs_metrics.is_enabled():
            obs_metrics.inc("engine.admission.accepted")
            obs_metrics.set_gauge("engine.admission.inflight",
                                  self.inflight)
        return True

    def count_rejection(self) -> None:
        self.rejected += 1
        if obs_metrics.is_enabled():
            obs_metrics.inc("engine.admission.rejected")

    def release(self, n: int = 1) -> None:
        self.inflight = max(0, self.inflight - n)
        if obs_metrics.is_enabled():
            obs_metrics.set_gauge("engine.admission.inflight",
                                  self.inflight)

    def note_service(self, per_request_s: float) -> None:
        self.service_ewma_s = (0.8 * self.service_ewma_s
                               + 0.2 * max(0.0, per_request_s))

    def retry_after_s(self) -> float:
        """Drain-time estimate for the overload envelope, in [0.05, 30]."""
        estimate = self.inflight * self.service_ewma_s
        return round(min(30.0, max(0.05, estimate)), 3)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "limit": self.limit,
            "inflight": self.inflight,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "retry_after_s": self.retry_after_s(),
            "service_ewma_ms": round(self.service_ewma_s * 1e3, 3),
        }


def overload_envelope(data: Dict[str, Any],
                      admission: AdmissionControl) -> Dict[str, Any]:
    """The ``ok=False`` envelope shed requests are answered with.

    Besides the usual error fields it carries an ``overload`` block —
    the admission snapshot, including ``retry_after_s`` — so clients
    (and ``repro top``) can back off intelligently.
    """
    snap = admission.snapshot()
    env = AnalysisResponse(
        ok=False, op=str(data.get("op", "analyze")),
        circuit=str(data.get("circuit", "?")), id=data.get("id"),
        error=(f"server overloaded: {snap['inflight']} requests in flight "
               f"(limit {snap['limit']}); retry after "
               f"{snap['retry_after_s']}s")).to_dict()
    env["overload"] = snap
    return env


# ----------------------------------------------------------------------
# The asyncio TCP front-end
# ----------------------------------------------------------------------

#: Sentinel a connection's reader pushes to end its writer task.
_CLOSE = object()


class _AsyncServer:
    """One event loop, many connections, one engine thread.

    Connections never touch the engine directly: admitted requests flow
    into a shared dispatch queue, and a single dispatcher task drains up
    to :data:`MAX_DISPATCH_BATCH` of them into one
    ``engine.submit_many`` call executed on a dedicated single-thread
    executor.  That thread is the *only* place analysis runs, so engine
    state needs no extra locking, ``save`` snapshots are trivially
    consistent — and, crucially, requests arriving concurrently from
    different clients are answered by one coalesced/tensor-batched
    kernel pass instead of serializing through the GIL one at a time.
    """

    def __init__(self, engine: AnalysisEngine, *,
                 max_inflight: int = DEFAULT_MAX_INFLIGHT,
                 snapshot_interval: Optional[float] = None):
        self.engine = engine
        self.admission = AdmissionControl(max_inflight)
        self.snapshot_interval = snapshot_interval
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-engine")
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queue: Optional[asyncio.Queue] = None

    # -- lifecycle ------------------------------------------------------
    async def run(self, host: str, port: int, ready_callback=None) -> None:
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self.engine._admission = self.admission
        server = await asyncio.start_server(
            self._handle_connection, host, port,
            limit=MAX_REQUEST_BYTES + 2)
        dispatcher = asyncio.create_task(self._dispatch_loop())
        snapshotter = None
        if self.snapshot_interval and self.engine.state_dir:
            snapshotter = asyncio.create_task(self._snapshot_loop())
        try:
            bound_port = server.sockets[0].getsockname()[1]
            if ready_callback is not None:
                ready_callback(bound_port)
            log.info("serving on %s:%d", host, bound_port)
            async with server:
                await server.serve_forever()
        finally:
            dispatcher.cancel()
            if snapshotter is not None:
                snapshotter.cancel()
            self._executor.shutdown(wait=False, cancel_futures=True)
            self.engine._admission = None

    # -- request routing (event-loop thread) ----------------------------
    def _route(self, line: str):
        """One request line → ``(envelope | future | None, shutdown?)``.

        Control ops that only read counters answer inline on the event
        loop; ``save`` and analysis ops go to the engine thread (the
        latter via the admission gate + dispatch queue, returning a
        future the connection's writer awaits in order).
        """
        received_at = time.time()
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            return (AnalysisResponse(
                ok=False, op="?", circuit="?",
                error=f"invalid JSON: {exc}").to_dict(), False)
        if not isinstance(data, dict):
            return (AnalysisResponse(
                ok=False, op="?", circuit="?",
                error="request must be a JSON object").to_dict(), False)
        op = data.get("op")
        if op == "ping":
            return ({"id": data.get("id"), "ok": True, "op": op,
                     "uptime_s": self.engine.uptime_s()}, False)
        if op == "shutdown":
            return ({"id": data.get("id"), "ok": True, "op": op}, True)
        if op == "stats":
            if self.admission.saturated:
                # Shed dashboard traffic too — but with the admission
                # snapshot attached, which is exactly what an operator
                # needs from an overloaded server.
                self.admission.count_rejection()
                return (overload_envelope(data, self.admission), False)
            return ({"id": data.get("id"), "ok": True, "op": op,
                     "stats": self.engine.stats()}, False)
        if op == "metrics":
            # Always answered: scrapes must work *especially* under load.
            return ({"id": data.get("id"), "ok": True, "op": op,
                     "content_type": PROMETHEUS_CONTENT_TYPE,
                     "exposition": self.engine.prometheus()}, False)
        if op == "save":
            # Runs on the engine thread so the snapshot serializes with
            # in-flight batches (a consistent cut, no torn sessions).
            future = self._loop.run_in_executor(
                self._executor, partial(handle_line, self.engine, line))
            return (future, False)
        if not self.admission.try_acquire():
            return (overload_envelope(data, self.admission), False)
        future = self._loop.create_future()
        self._queue.put_nowait((data, future, received_at))
        return (future, False)

    # -- dispatcher (event-loop thread -> engine thread) ----------------
    async def _dispatch_loop(self) -> None:
        while True:
            batch = [await self._queue.get()]
            while len(batch) < MAX_DISPATCH_BATCH:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            requests = [item[0] for item in batch]
            received_at = min(item[2] for item in batch)
            t0 = time.perf_counter()
            try:
                responses = await self._loop.run_in_executor(
                    self._executor,
                    partial(self.engine.submit_many, requests,
                            received_at=received_at))
                self.admission.note_service(
                    (time.perf_counter() - t0) / len(batch))
                for (_, future, _), response in zip(batch, responses):
                    if not future.cancelled():
                        future.set_result(response.to_dict())
            except Exception as exc:  # noqa: BLE001 - envelope per request
                for data, future, _ in batch:
                    if not future.cancelled():
                        future.set_result(AnalysisResponse(
                            ok=False, op=str(data.get("op", "analyze")),
                            circuit=str(data.get("circuit", "?")),
                            id=data.get("id"),
                            error=f"{type(exc).__name__}: {exc}"
                        ).to_dict())
            finally:
                self.admission.release(len(batch))

    # -- periodic snapshots ---------------------------------------------
    async def _snapshot_loop(self) -> None:
        while True:
            await asyncio.sleep(self.snapshot_interval)
            try:
                summary = await self._loop.run_in_executor(
                    self._executor, self.engine.save_state)
                log.info("state snapshot: %d session(s) -> %s",
                         summary["sessions"], summary["state_dir"])
            except Exception as exc:  # noqa: BLE001 - snapshots best-effort
                log.warning("state snapshot failed: %s", exc)

    # -- per-connection plumbing ----------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        pending: asyncio.Queue = asyncio.Queue(MAX_PENDING_PER_CONNECTION)
        writer_task = asyncio.create_task(self._write_loop(pending, writer))
        try:
            while True:
                try:
                    raw = await reader.readline()
                except ValueError:
                    # Line exceeded the stream limit (the reader cleared
                    # its buffer): answer, drain the flood's tail so the
                    # close is a clean FIN rather than an RST racing the
                    # envelope off the wire, and close — the stream
                    # cannot be resynchronized.
                    await self._offer(pending, writer_task,
                                      _too_long_envelope(
                                          MAX_REQUEST_BYTES + 1))
                    await self._drain_flood(reader)
                    break
                except (ConnectionError, OSError):
                    break
                if not raw:
                    break
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                item, shutdown = self._route(line)
                if item is not None:
                    if not await self._offer(pending, writer_task, item):
                        break
                if shutdown:
                    break
        finally:
            if not writer_task.done():
                await self._offer(pending, writer_task, _CLOSE)
            await writer_task

    @staticmethod
    async def _offer(pending: asyncio.Queue, writer_task: asyncio.Task,
                     item) -> bool:
        """Put onto the bounded queue unless the writer already died.

        Waiting on *both* the put and the writer task means a client
        that disconnects while its queue is full cannot wedge the reader
        forever — the backpressure wait ends when either side resolves.
        """
        put = asyncio.ensure_future(pending.put(item))
        await asyncio.wait({put, writer_task},
                           return_when=asyncio.FIRST_COMPLETED)
        if put.done():
            return not put.cancelled()
        put.cancel()
        return False

    async def _write_loop(self, pending: asyncio.Queue,
                          writer: asyncio.StreamWriter) -> None:
        """Drain one connection's responses, strictly in request order.

        Queue items are envelopes (control ops, overloads) or futures
        (in-flight analysis requests); awaiting them in queue order
        preserves the wire protocol's request-order guarantee even
        though the engine answers micro-batches out of phase.
        """
        try:
            while True:
                item = await pending.get()
                if item is _CLOSE:
                    break
                if asyncio.isfuture(item):
                    item = await item
                writer.write((json.dumps(item) + "\n").encode())
                await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _drain_flood(reader: asyncio.StreamReader) -> None:
        """Consume the bounded tail of an over-long line before closing."""
        for _ in range(64):
            try:
                tail = await asyncio.wait_for(reader.readline(), timeout=0.5)
            except ValueError:
                continue  # still mid-flood; keep draining
            except (asyncio.TimeoutError, ConnectionError, OSError):
                return
            if not tail or tail.endswith(b"\n"):
                return


def serve_tcp(engine: AnalysisEngine, host: str, port: int,
              ready_callback=None, *,
              max_inflight: int = DEFAULT_MAX_INFLIGHT,
              snapshot_interval: Optional[float] = None) -> None:
    """Serve TCP clients on one asyncio event loop (see module doc).

    ``ready_callback(bound_port)`` fires once the socket is listening —
    tests use it to learn an ephemeral port.  The engine is shared
    across connections and driven from a single dedicated thread;
    concurrent clients' requests micro-batch into coalesced/tensor
    kernel passes.  ``max_inflight`` bounds admitted requests globally
    (beyond it, clients get overload envelopes with ``retry_after_s``);
    ``snapshot_interval`` (seconds) enables periodic
    ``engine.save_state()`` checkpoints when the engine has a state
    directory.
    """
    asyncio.run(_AsyncServer(
        engine, max_inflight=max_inflight,
        snapshot_interval=snapshot_interval).run(host, port,
                                                 ready_callback))


def serve_tcp_threaded(engine: AnalysisEngine, host: str, port: int,
                       ready_callback=None) -> None:
    """The legacy thread-per-connection TCP server (benchmark baseline).

    Each connection is served by its own thread against the shared
    engine, so concurrent kernel time serializes through the GIL and
    nothing coalesces across clients.  Kept as the ``--threaded`` CLI
    fallback and as the baseline ``benchmarks/test_serve_concurrency.py``
    measures the async front-end against.
    """

    class Handler(socketserver.StreamRequestHandler):
        def handle(self) -> None:
            while True:
                # Bounded read: a line that exceeds the cap comes back
                # without its trailing newline and is rejected before the
                # rest of the flood is ever buffered.
                raw = self.rfile.readline(MAX_REQUEST_BYTES + 1)
                if not raw:
                    break
                if len(raw) > MAX_REQUEST_BYTES and not raw.endswith(b"\n"):
                    envelope = _too_long_envelope(len(raw))
                    self.wfile.write(
                        (json.dumps(envelope) + "\n").encode())
                    break
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                envelope = handle_line(engine, line)
                self.wfile.write((json.dumps(envelope) + "\n").encode())
                if envelope.get("op") == "shutdown":
                    break

    class Server(socketserver.ThreadingTCPServer):
        allow_reuse_address = True
        daemon_threads = True

    with Server((host, port), Handler) as server:
        if ready_callback is not None:
            ready_callback(server.server_address[1])
        log.info("serving on %s:%d", *server.server_address[:2])
        server.serve_forever()


# ----------------------------------------------------------------------
# Offline batches with journaled checkpoints
# ----------------------------------------------------------------------

def _batch_journal_path(state_dir: str) -> str:
    return os.path.join(state_dir, "batch-journal.jsonl")


def _read_journal(path: str,
                  fingerprint: str) -> Optional[Dict[int, Dict[str, Any]]]:
    """Envelopes already answered for this exact request file, or None.

    None means the journal is absent, unreadable, or belongs to a
    different request file (fingerprint mismatch) — the batch starts
    fresh.  A torn tail (crash mid-append) keeps the valid prefix.
    """
    try:
        with open(path) as fh:
            lines = fh.read().splitlines()
    except OSError:
        return None
    if not lines:
        return None
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError:
        return None
    if (header.get("kind") != "batch_journal"
            or header.get("fingerprint") != fingerprint):
        return None
    done: Dict[int, Dict[str, Any]] = {}
    for raw in lines[1:]:
        try:
            entry = json.loads(raw)
            done[int(entry["line"])] = entry["envelope"]
        except Exception:  # noqa: BLE001 - torn tail: keep valid prefix
            break
    return done


def run_batch(engine: AnalysisEngine, lines: List[str],
              outfile: IO[str], jobs: Optional[int] = None,
              state_dir: Optional[str] = None, resume: bool = False,
              checkpoint_every: int = 32) -> int:
    """Execute a requests.jsonl offline: coalesced, fanned out, in order.

    Unlike the interactive loop, the whole batch is visible up front, so
    same-session sweep points collapse into single kernel calls and
    independent circuits spread across worker lanes.  Returns the number
    of failed requests (0 = clean batch).

    With ``state_dir`` set the batch becomes restartable: requests run
    in chunks of ``checkpoint_every``, each chunk's envelopes are
    appended to a journal keyed by a fingerprint of the request file,
    and engine state (named edit sessions) is snapshotted after every
    chunk.  ``resume=True`` replays journaled envelopes verbatim,
    restores the engine snapshot, and executes only the remainder —
    a long hardening loop killed at request 900 of 1000 redoes ~100
    requests, not 900.
    """
    requests: List[Any] = []
    parse_errors: Dict[int, Optional[Dict[str, Any]]] = {}
    for i, line in enumerate(lines):
        line = line.strip()
        if not line or line.startswith("#"):
            parse_errors[i] = None  # skip marker: no output line
            continue
        try:
            requests.append((i, json.loads(line)))
        except json.JSONDecodeError as exc:
            parse_errors[i] = AnalysisResponse(
                ok=False, op="?", circuit="?",
                error=f"invalid JSON on line {i + 1}: {exc}").to_dict()

    if state_dir is None:
        responses = engine.submit_many([req for _, req in requests],
                                       jobs=jobs, received_at=time.time())
        by_line = dict(zip((i for i, _ in requests),
                           (r.to_dict() for r in responses)))
    else:
        by_line = _run_batch_checkpointed(engine, lines, requests,
                                          jobs, state_dir, resume,
                                          checkpoint_every)
    failures = 0
    for i in range(len(lines)):
        envelope = by_line.get(i, parse_errors.get(i))
        if envelope is None:
            continue
        if not envelope.get("ok"):
            failures += 1
        outfile.write(json.dumps(envelope) + "\n")
    outfile.flush()
    return failures


def _run_batch_checkpointed(engine: AnalysisEngine, lines: List[str],
                            requests: List[Any], jobs: Optional[int],
                            state_dir: str, resume: bool,
                            checkpoint_every: int
                            ) -> Dict[int, Dict[str, Any]]:
    """The journaled execution loop behind ``run_batch(state_dir=...)``."""
    os.makedirs(state_dir, exist_ok=True)
    fingerprint = hashlib.sha256("\n".join(lines).encode()).hexdigest()
    journal_path = _batch_journal_path(state_dir)
    done: Dict[int, Dict[str, Any]] = {}
    if resume:
        done = _read_journal(journal_path, fingerprint) or {}
        engine.load_state(state_dir)
    pending = [(i, req) for i, req in requests if i not in done]
    if resume and done:
        log.info("batch resume: %d journaled, %d to run",
                 len(done), len(pending))
    chunk = max(1, int(checkpoint_every))
    mode = "a" if (resume and done) else "w"
    with open(journal_path, mode) as journal:
        if mode == "w":
            journal.write(json.dumps({"kind": "batch_journal",
                                      "fingerprint": fingerprint,
                                      "lines": len(lines)}) + "\n")
            journal.flush()
        for start in range(0, len(pending), chunk):
            part = pending[start:start + chunk]
            responses = engine.submit_many([req for _, req in part],
                                           jobs=jobs,
                                           received_at=time.time())
            for (i, _), response in zip(part, responses):
                envelope = response.to_dict()
                done[i] = envelope
                journal.write(json.dumps({"line": i,
                                          "envelope": envelope}) + "\n")
            journal.flush()
            os.fsync(journal.fileno())
            engine.save_state(state_dir)
    return done
