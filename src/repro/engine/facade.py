"""Top-level two-line API: ``repro.analyze`` / ``repro.sweep``.

Both route through one process-wide default :class:`AnalysisEngine`, so
repeat calls on the same circuit hit a hot session — the quickstart gets
engine-grade performance without ever naming the engine::

    import repro

    result = repro.analyze("c17", 0.05)        # cold: builds the session
    result = repro.analyze("c17", 0.01)        # warm: kernel time only
    sweep = repro.sweep("c17", [0.001, 0.01, 0.1])

Every return value implements the shared
:class:`~repro.reliability.protocol.ResultProtocol`
(``.delta(output=None)``, ``.per_output``, ``.to_dict()``).
"""

from __future__ import annotations

import threading
from typing import Any, Optional, Sequence

from ..spec import EpsilonSpec
from .core import AnalysisEngine
from .session import CircuitRef

_DEFAULT_ENGINE: Optional[AnalysisEngine] = None
_LOCK = threading.Lock()


def default_engine() -> AnalysisEngine:
    """The process-wide engine behind ``repro.analyze`` / ``repro.sweep``."""
    global _DEFAULT_ENGINE
    with _LOCK:
        if _DEFAULT_ENGINE is None:
            _DEFAULT_ENGINE = AnalysisEngine()
        return _DEFAULT_ENGINE


def set_default_engine(engine: Optional[AnalysisEngine]) -> None:
    """Swap (or with None, reset) the process-wide default engine."""
    global _DEFAULT_ENGINE
    with _LOCK:
        _DEFAULT_ENGINE = engine


def analyze(circuit_or_name: CircuitRef, eps: EpsilonSpec, *,
            method: str = "single-pass", correlation: bool = True,
            eps10: Optional[EpsilonSpec] = None,
            output: Optional[str] = None,
            timeout_s: Optional[float] = None,
            frames: Optional[int] = None,
            outputs: Optional[Sequence[str]] = None,
            **opts: Any):
    """Reliability of one circuit at one failure-probability vector.

    Parameters
    ----------
    circuit_or_name:
        A :class:`~repro.circuit.Circuit`, a
        :class:`~repro.circuit.SequentialCircuit`, a benchmark name, or a
        netlist path (``.bench`` / ``.blif``).
    eps:
        Scalar, per-gate mapping (``"default"`` key supported), or
        numeric string — see :mod:`repro.spec`.
    method:
        ``"single-pass"`` (default), ``"closed-form"``, ``"mc"``,
        ``"consolidated"``, or ``"exact"``.
    correlation:
        Apply the Sec. 4.1 correlation correction (single-pass only).
    frames:
        Time-frame count for sequential circuits: the netlist is unrolled
        into ``frames`` frames before analysis and the result carries a
        ``per_frame`` view.  Default None analyzes combinationally — a
        sequential circuit without ``frames`` raises :class:`ValueError`.
    outputs:
        Optional subset of primary outputs: the analysis restricts to
        the union cone and only that cone is weighted/lowered — the
        large-netlist path (docs/scaling.md).  Results for the selected
        outputs are bit-identical to a full run; single-pass only.
    opts:
        Session options forwarded to the engine — ``weight_method`` /
        ``weights``, ``n_patterns``, ``seed``, ``input_probs``,
        ``max_correlation_pairs``, ``max_correlation_level_gap`` /
        ``level_gap``, ``compiled``, ``weights_cache_dir``,
        ``input_errors``, ``mc_patterns``.

    Returns the method's result object (e.g. ``SinglePassResult``); all
    of them share the ``ResultProtocol`` surface.
    """
    if frames is not None:
        opts["frames"] = frames
    if outputs is not None:
        opts["outputs"] = list(outputs)
    return default_engine().analyze(
        circuit_or_name, eps, method=method, correlation=correlation,
        eps10=eps10, output=output, timeout_s=timeout_s, **opts)


def sweep(circuit_or_name: CircuitRef,
          eps_values: Sequence[EpsilonSpec], *,
          method: str = "single-pass", correlation: bool = True,
          eps10_values: Optional[Sequence[EpsilonSpec]] = None,
          output: Optional[str] = None,
          jobs: int = 1,
          frames: Optional[int] = None,
          outputs: Optional[Sequence[str]] = None,
          **opts: Any):
    """Reliability over many eps vectors in one engine call.

    ``method="single-pass"`` returns the dense
    :class:`~repro.reliability.compiled_pass.SweepResult`; the other
    methods (``"closed-form"``, ``"consolidated"``, ``"mc"``) return
    ``{eps: delta}`` curves.

    ``frames`` unrolls a sequential circuit into that many time frames
    before sweeping (see :func:`analyze`); the default None is the
    combinational path, and a sequential circuit without ``frames``
    raises :class:`ValueError`.

    ``jobs > 1`` parallelizes only the *scalar* single-pass fallback;
    when the compiled kernel handles the sweep the points are already
    batched into one vectorized call and a warning is logged instead of
    silently ignoring the flag.
    """
    if frames is not None:
        opts["frames"] = frames
    if outputs is not None:
        opts["outputs"] = list(outputs)
    return default_engine().sweep(
        circuit_or_name, eps_values, method=method, correlation=correlation,
        eps10_values=eps10_values, output=output, jobs=jobs, **opts)
