"""Persistent analysis engine: hot sessions, request scheduling, serving.

The library's long-lived service layer (see ``docs/engine.md``):

* :class:`CircuitSession` — one circuit's eps-independent state (weights,
  compiled plans, closed-form models), kept hot;
* :class:`AnalysisEngine` — an LRU registry of sessions plus a request
  scheduler with coalescing, process fan-out, and a cooperative
  compiled → scalar → closed-form timeout ladder;
* :class:`AnalysisRequest` / :class:`AnalysisResponse` — the declarative
  request objects and result envelopes shared by ``engine.submit``,
  ``repro serve`` and ``repro batch``;
* :func:`analyze` / :func:`sweep` — the two-line façade over a default
  engine, re-exported as ``repro.analyze`` / ``repro.sweep``.
"""

from .core import AnalysisEngine
from .facade import analyze, default_engine, set_default_engine, sweep
from .requests import AnalysisRequest, AnalysisResponse
from .serve import (
    handle_line,
    run_batch,
    serve_stream,
    serve_tcp,
    serve_tcp_threaded,
)
from .session import (
    CircuitSession,
    SessionConfig,
    resolve_analysis_circuit,
    resolve_circuit,
)
from .stats import EngineStats

__all__ = [
    "AnalysisEngine", "AnalysisRequest", "AnalysisResponse",
    "CircuitSession", "SessionConfig", "resolve_circuit",
    "resolve_analysis_circuit", "EngineStats",
    "analyze", "sweep", "default_engine", "set_default_engine",
    "handle_line", "run_batch", "serve_stream", "serve_tcp",
    "serve_tcp_threaded",
]
