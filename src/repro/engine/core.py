"""The persistent analysis engine: sessions, scheduling, fallback.

:class:`AnalysisEngine` owns an LRU registry of
:class:`~repro.engine.session.CircuitSession` objects so that the Nth
query on a circuit pays only kernel time — weights, compiled plans and
closed-form models all stay hot in memory, with the ``weight_cache`` disk
tier as backing store across processes.

On top of the registry sits a small request scheduler:

* :meth:`AnalysisEngine.submit` executes one declarative
  :class:`~repro.engine.requests.AnalysisRequest` and returns an
  :class:`~repro.engine.requests.AnalysisResponse` envelope;
* :meth:`AnalysisEngine.submit_many` **coalesces** single-pass
  analyze/sweep requests that target the same session into one batched
  ``sweep`` kernel call (one vectorized pass answers them all), merges
  plain-mode requests for **different** sessions into one cross-circuit
  :class:`~repro.reliability.tensor_pass.TensorBatch` pass, and fans
  the rest out over a pool of sticky worker processes;
* per-request ``timeout_s`` deadlines are enforced cooperatively along
  the fallback ladder **compiled → scalar → closed-form**: a request
  whose deadline has passed before the pass starts is answered by the
  session's closed-form model instead, and every downgrade is recorded in
  the envelope's ``fallbacks`` list.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import zlib
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..circuit import Circuit, SequentialCircuit
from ..incremental import parse_edit
from ..obs import metrics as obs_metrics
from ..obs import trace_span
from ..obs import trace as obs_trace
from ..obs.propagate import TelemetryPayload, capture as capture_telemetry
from ..reliability.compiled_pass import CompiledSinglePass
from ..reliability.tensor_pass import TensorBatch
from ..sim.montecarlo import monte_carlo_reliability
from ..spec import EpsilonSpec
from .requests import (
    AnalysisRequest,
    AnalysisResponse,
    analyze_payload,
    curve_payload,
    result_payload,
)
from .session import (
    CircuitRef,
    CircuitSession,
    SessionConfig,
    resolve_analysis_circuit,
    resolve_circuit,
)
from .stats import EngineStats

#: Analyzer kwargs that cannot key a shared session (unhashable or
#: identity-bearing); their presence makes the session transient.
#: ``weights`` is transient only when it carries a WeightData object —
#: a *string* ``weights`` is the CLI's alias for ``weight_method``.
_TRANSIENT_OPTIONS = ("weights", "input_errors")

#: Cache-probe answer for requests that never reached the probe.
_UNKNOWN_CACHE = {"session": "unknown", "weights": "unknown",
                  "plan": "unknown"}

#: Memoized cross-circuit tensor batches kept per engine (LRU).  Each
#: entry holds merged coefficient tensors for one batch composition, so
#: a serve loop replaying the same mixed workload pays the merge once.
_TENSOR_BATCH_CACHE_CAP = 16


def _split_options(options: Dict[str, Any]
                   ) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Partition request options into (config options, transient extras)."""
    config_opts: Dict[str, Any] = {}
    extra: Dict[str, Any] = {}
    for key, value in options.items():
        if key in _TRANSIENT_OPTIONS and not (
                key == "weights" and isinstance(value, str)):
            extra[key] = value
        else:
            config_opts[key] = value
    return config_opts, extra


def _check_outputs_method(session: "CircuitSession", method: str) -> None:
    """Reject outputs=-restricted sessions on whole-circuit methods.

    Only the single-pass path knows how to lower just the union cone;
    closed-form / mc / consolidated / exact model the entire circuit and
    would silently answer for all outputs.
    """
    if session.config.outputs and method != "single-pass":
        raise ValueError(
            f"method {method!r} does not support an outputs= restriction; "
            f"use method='single-pass'")


class AnalysisEngine:
    """A long-lived, multi-circuit reliability analysis service.

    Parameters
    ----------
    max_sessions:
        LRU capacity of the session registry; pinned sessions don't
        count against evictions.
    weights_cache_dir:
        Default disk tier for every session (overridable per request via
        ``options={"weights_cache_dir": ...}``).
    jobs:
        Default process fan-out for :meth:`submit_many` (0/1 = inline).
    default_timeout_s:
        Deadline applied to requests that don't carry their own.
    """

    def __init__(self, max_sessions: int = 8,
                 weights_cache_dir: Optional[str] = None,
                 jobs: int = 0,
                 default_timeout_s: Optional[float] = None,
                 state_dir: Optional[str] = None):
        self.max_sessions = max_sessions
        self.weights_cache_dir = weights_cache_dir
        self.jobs = jobs
        self.default_timeout_s = default_timeout_s
        #: Default directory for :meth:`save_state` / :meth:`load_state`
        #: snapshots (the serve tier's ``--state-dir``).
        self.state_dir = state_dir
        #: The async serve front-end's admission controller, when one is
        #: attached; surfaces through :meth:`stats` for ``repro top``.
        self._admission = None
        self._sessions: "OrderedDict[Tuple, CircuitSession]" = OrderedDict()
        #: Named mutable sessions (``edit``/``reanalyze`` targets).  They
        #: hold incremental workspaces, so they are keyed by client-chosen
        #: name, never shared structurally, and exempt from LRU eviction.
        self._edit_sessions: Dict[str, CircuitSession] = {}
        self._pinned: set = set()
        self.session_hits = 0
        self.session_misses = 0
        self.requests_served = 0
        self._lanes: List[ProcessPoolExecutor] = []
        #: Wall-clock birth time (labels long-running serve processes).
        self.started_at = time.time()
        #: Rolling latency/cache/lane aggregation (always on; cheap).
        self.engine_stats = EngineStats()
        #: Worker-lane index this engine runs in (None in the parent).
        self.lane_index: Optional[int] = None
        self._request_seq = itertools.count(1)
        #: Merged cross-circuit tensor batches, keyed by plan identity
        #: (the batch holds its plans, so ids stay valid while cached).
        self._tensor_batches: "OrderedDict[Tuple[int, ...], TensorBatch]" \
            = OrderedDict()
        #: Per-thread scratch the ladder uses to report kernel time to
        #: the telemetry assembly without widening return signatures.
        self._scratch = threading.local()

    # -- session registry ----------------------------------------------
    def _session_key(self, ref: CircuitRef,
                     config: SessionConfig) -> Tuple:
        if isinstance(ref, SequentialCircuit):
            # Structure + flop wiring; config carries ``frames``, so the
            # same netlist at different unroll depths keys separately.
            return (ref.structural_signature(), config)
        if isinstance(ref, Circuit):
            # Structure-keyed: two equal netlists share a session even if
            # the caller rebuilt the object.
            from ..probability.weight_cache import structural_hash
            return (structural_hash(ref), config)
        return (str(ref), config)

    def _config_from_options(self, options: Dict[str, Any]) -> SessionConfig:
        opts, _ = _split_options(options)
        if "weights_cache_dir" not in opts and self.weights_cache_dir:
            opts["weights_cache_dir"] = self.weights_cache_dir
        return SessionConfig.from_options(opts)

    def session(self, circuit_or_name: CircuitRef,
                **options: Any) -> CircuitSession:
        """The hot session for one circuit (creating/evicting as needed).

        Options carrying non-keyable analyzer arguments (explicit
        ``weights=`` or ``input_errors=``) produce a transient session
        that bypasses the registry entirely.
        """
        _, extra = _split_options(options)
        config = self._config_from_options(options)
        if extra:
            return CircuitSession(
                resolve_analysis_circuit(circuit_or_name, config.frames),
                config, extra_analyzer_kwargs=extra)
        key = self._session_key(circuit_or_name, config)
        session = self._sessions.get(key)
        label = (circuit_or_name.name
                 if isinstance(circuit_or_name, (Circuit, SequentialCircuit))
                 else str(circuit_or_name))
        if session is not None:
            self._sessions.move_to_end(key)
            self.session_hits += 1
            if obs_metrics.is_enabled():
                obs_metrics.inc("engine.session.hits", circuit=label)
            return session
        self.session_misses += 1
        if obs_metrics.is_enabled():
            obs_metrics.inc("engine.session.misses", circuit=label)
        with trace_span("engine.session.create", circuit=label):
            session = CircuitSession(
                resolve_analysis_circuit(circuit_or_name, config.frames),
                config)
            session.pin()
        self._sessions[key] = session
        self._evict()
        return session

    def _evict(self) -> None:
        while len(self._sessions) > self.max_sessions:
            victim_key = next((k for k in self._sessions
                               if k not in self._pinned), None)
            if victim_key is None:
                break
            victim = self._sessions.pop(victim_key)
            victim.unpin()
            if obs_metrics.is_enabled():
                obs_metrics.inc("engine.session.evictions",
                                circuit=victim.circuit.name)

    def pin_session(self, circuit_or_name: CircuitRef,
                    **options: Any) -> CircuitSession:
        """Create (or fetch) a session and exempt it from LRU eviction."""
        session = self.session(circuit_or_name, **options)
        config = self._config_from_options(options)
        self._pinned.add(self._session_key(circuit_or_name, config))
        return session

    def _edit_session(self, request: AnalysisRequest) -> CircuitSession:
        """The named mutable session a request targets.

        Created on first sight (the creating request must carry a
        ``circuit``); thereafter the name alone addresses it, and its
        incremental workspace keeps weights/plans warm across edits.
        """
        name = request.session
        session = self._edit_sessions.get(name)
        if session is None:
            if request.circuit is None:
                raise ValueError(
                    f"unknown session {name!r}: create it by sending "
                    "'circuit' together with 'session'")
            options = {k: v for k, v in request.options.items()
                       if k != "mc_patterns"}
            config = self._config_from_options(options)
            _, extra = _split_options(options)
            extra.pop("weights", None)  # the workspace owns its weights
            with trace_span("engine.edit_session.create", session=name):
                session = CircuitSession(
                    resolve_analysis_circuit(request.circuit, config.frames),
                    config, extra_analyzer_kwargs=extra)
            self._edit_sessions[name] = session
            if obs_metrics.is_enabled():
                obs_metrics.inc("engine.edit_sessions.created",
                                circuit=session.circuit.name)
        return session

    # -- direct analysis API -------------------------------------------
    def analyze(self, circuit_or_name: CircuitRef, eps: EpsilonSpec, *,
                method: str = "single-pass", correlation: bool = True,
                eps10: Optional[EpsilonSpec] = None,
                output: Optional[str] = None,
                timeout_s: Optional[float] = None,
                **opts: Any):
        """One eps vector through the engine; returns the result object.

        The return type follows the method — ``single-pass`` gives the
        same :class:`SinglePassResult` a direct
        ``SinglePassAnalyzer.run`` call would, ``closed-form`` a
        :class:`ClosedFormResult`, ``mc`` a :class:`MonteCarloResult`,
        ``consolidated`` / ``exact`` likewise — all sharing the
        :class:`~repro.reliability.protocol.ResultProtocol` surface.
        """
        mc_patterns = opts.pop("mc_patterns", 1 << 16)
        correlation = opts.pop("use_correlation", correlation)
        session = self.session(circuit_or_name, **opts)
        _check_outputs_method(session, method)
        session.touch()
        self.requests_served += 1
        deadline = self._deadline(timeout_s)
        with trace_span("engine.analyze", circuit=session.circuit.name,
                        method=method):
            if method == "single-pass":
                result, _, _, _ = self._single_pass_with_ladder(
                    session, correlation, [eps],
                    None if eps10 is None else [eps10], deadline)
                return result[0]
            if method == "closed-form":
                return session.closed_form(output).analyze(eps)
            if method == "mc":
                return monte_carlo_reliability(
                    session.circuit, eps, n_patterns=mc_patterns,
                    seed=session.config.seed)
            if method == "consolidated":
                return session.consolidated().run(eps)
            if method == "exact":
                from ..reliability.exact import exhaustive_exact_reliability
                return exhaustive_exact_reliability(session.circuit, eps)
            raise ValueError(f"unknown method {method!r}")

    def sweep(self, circuit_or_name: CircuitRef,
              eps_values: Sequence[EpsilonSpec], *,
              method: str = "single-pass", correlation: bool = True,
              eps10_values: Optional[Sequence[EpsilonSpec]] = None,
              output: Optional[str] = None,
              jobs: int = 1,
              **opts: Any):
        """Many eps vectors in one call.

        ``single-pass`` returns the dense
        :class:`~repro.reliability.compiled_pass.SweepResult`;
        ``closed-form``, ``consolidated`` and ``mc`` return
        ``{eps: delta}`` curves (matching the shapes their historical
        free functions produced).  ``jobs`` forwards to
        :meth:`SinglePassAnalyzer.sweep` — it only parallelizes the
        scalar fallback; the compiled kernel batches the points instead
        (and warns when both are requested).
        """
        mc_patterns = opts.pop("mc_patterns", 1 << 16)
        correlation = opts.pop("use_correlation", correlation)
        session = self.session(circuit_or_name, **opts)
        _check_outputs_method(session, method)
        session.touch()
        self.requests_served += 1
        with trace_span("engine.sweep", circuit=session.circuit.name,
                        method=method, points=len(list(eps_values))):
            if method == "single-pass":
                return session.analyzer(correlation).sweep(
                    list(eps_values),
                    None if eps10_values is None else list(eps10_values),
                    jobs=jobs)
            if method == "closed-form":
                model = session.closed_form(output)
                if hasattr(model, "curve"):
                    return model.curve(eps_values)
                return {e: model.any_output_delta(e) for e in eps_values}
            if method == "consolidated":
                return session.consolidated().curve(eps_values)
            if method == "mc":
                return {
                    e: monte_carlo_reliability(
                        session.circuit, e, n_patterns=mc_patterns,
                        seed=session.config.seed + i).delta(output)
                    for i, e in enumerate(eps_values)}
            raise ValueError(f"unknown method {method!r}")

    # -- ladder ---------------------------------------------------------
    def _deadline(self, timeout_s: Optional[float]) -> Optional[float]:
        if timeout_s is None:
            timeout_s = self.default_timeout_s
        if timeout_s is None:
            return None
        return time.monotonic() + float(timeout_s)

    def _single_pass_with_ladder(self, session: CircuitSession,
                                 correlation: bool,
                                 specs: List[EpsilonSpec],
                                 eps10_specs: Optional[List[EpsilonSpec]],
                                 deadline: Optional[float]):
        """Run eps points down the compiled → scalar → closed-form ladder.

        Returns ``(results, method_used, fallbacks, timed_out)`` where
        ``results`` has one protocol result object per point.  Deadlines
        are cooperative: they are checked *between* rungs, never mid-pass,
        so a pass that started in time runs to completion (and is merely
        flagged ``timed_out`` if it overran).
        """
        fallbacks: List[Dict[str, str]] = []
        analyzer = session.analyzer(correlation)
        rung = ("single-pass-compiled" if analyzer.uses_compiled
                else "single-pass-scalar")
        if session.config.compiled == "auto" and not analyzer.uses_compiled:
            fallbacks.append({"from": "single-pass-compiled",
                              "to": "single-pass-scalar",
                              "reason": "no compiled plan for this circuit"})
        if (deadline is not None and time.monotonic() >= deadline
                and not session.config.outputs):
            # The closed-form rung models the full circuit, so a
            # restricted session skips it (its pass runs flagged late).
            fallbacks.append({"from": rung, "to": "closed-form",
                              "reason": "timeout"})
            k0 = time.perf_counter()
            model = session.closed_form(None)
            results = [model.analyze(spec) for spec in specs]
            self._scratch.kernel_s = time.perf_counter() - k0
            return results, "closed-form", fallbacks, True
        k0 = time.perf_counter()
        sweep = analyzer.sweep(specs, eps10_specs)
        self._scratch.kernel_s = time.perf_counter() - k0
        results = [sweep.point(j) for j in range(len(specs))]
        timed_out = deadline is not None and time.monotonic() > deadline
        return results, rung, fallbacks, timed_out

    # -- request scheduler ---------------------------------------------
    def submit(self, request: Union[AnalysisRequest, Dict[str, Any]],
               received_at: Optional[float] = None) -> AnalysisResponse:
        """Execute one declarative request and envelope the outcome.

        Never raises for analysis-level failures: bad circuits, bad eps
        specs, and method errors come back as ``ok=False`` envelopes so a
        serve loop survives malformed traffic.  ``received_at`` is the
        wall-clock time the request was first seen (a serve loop's parse
        time, or a fan-out's dispatch time); the gap to execution start
        becomes the envelope's ``queue_wait_ms``.
        """
        queue_wait_ms = (max(0.0, (time.time() - received_at) * 1e3)
                         if received_at is not None else 0.0)
        if isinstance(request, dict):
            try:
                request = AnalysisRequest.from_dict(request)
            except ValueError as exc:
                response = AnalysisResponse(
                    ok=False, op=str(request.get("op", "analyze")),
                    circuit=str(request.get("circuit", "?")),
                    id=request.get("id"), error=str(exc))
                self._attach_telemetry(response, cache=_UNKNOWN_CACHE,
                                       queue_wait_ms=queue_wait_ms,
                                       kernel_s=0.0)
                self.engine_stats.record(response.op, 0.0, ok=False,
                                         lane=self.lane_index)
                return response
        cache = self._cache_probe(request)
        self._scratch.kernel_s = 0.0
        t0 = time.perf_counter()
        try:
            response = self._execute(request)
        except Exception as exc:  # noqa: BLE001 - envelope, don't crash
            response = AnalysisResponse(
                ok=False, op=request.op, circuit=request.circuit_label(),
                id=request.id, error=f"{type(exc).__name__}: {exc}")
        response.elapsed_s = time.perf_counter() - t0
        self._attach_telemetry(response, cache=cache,
                               queue_wait_ms=queue_wait_ms)
        self.engine_stats.record(response.op, response.elapsed_s,
                                 ok=response.ok, cache=cache,
                                 lane=self.lane_index,
                                 frames=response.frames)
        self._attach_obs(request, response)
        return response

    def submit_many(self, requests: Sequence[Union[AnalysisRequest,
                                                   Dict[str, Any]]],
                    jobs: Optional[int] = None,
                    received_at: Optional[float] = None
                    ) -> List[AnalysisResponse]:
        """Execute a batch: coalesce per session, fan out across lanes.

        Single-pass analyze/sweep requests sharing a session (same
        circuit + options + correlation mode, no deadline) are answered
        by **one** batched kernel sweep.  Plain-mode groups (correlation
        off, no ``eps10``) targeting *different* sessions go further:
        their compiled plans merge into one cross-circuit
        :class:`~repro.reliability.tensor_pass.TensorBatch` pass, so a
        mixed-catalog batch costs one level-scheduled sweep instead of
        one kernel invocation per circuit.  With ``jobs > 1``
        independent sessions run in parallel worker processes with
        sticky routing (the same circuit always lands on the same
        worker, so its session stays warm across batches).  Responses
        come back in request order.
        """
        jobs = self.jobs if jobs is None else jobs
        parsed: List[Tuple[int, Union[AnalysisRequest, Dict[str, Any]]]] = \
            list(enumerate(requests))
        if jobs and jobs > 1:
            return self._fan_out(parsed, jobs)
        return self._run_batch_local(parsed, received_at)

    # -- local batch execution with coalescing -------------------------
    def _run_batch_local(self, indexed,
                         received_at: Optional[float] = None
                         ) -> List[AnalysisResponse]:
        responses: Dict[int, AnalysisResponse] = {}
        groups: "OrderedDict[Tuple, List[Tuple[int, AnalysisRequest]]]" = \
            OrderedDict()
        blocked_sessions = self._stateful_sessions(indexed)
        for idx, raw in indexed:
            request = raw
            if isinstance(raw, dict):
                try:
                    request = AnalysisRequest.from_dict(raw)
                except ValueError as exc:
                    responses[idx] = AnalysisResponse(
                        ok=False, op=str(raw.get("op", "analyze")),
                        circuit=str(raw.get("circuit", "?")),
                        id=raw.get("id"), error=str(exc))
                    continue
            key = self._coalesce_key(request, blocked_sessions)
            if key is None:
                responses[idx] = self.submit(request, received_at)
            else:
                groups.setdefault(key, []).append((idx, request))
        for idx, response in self._run_tensor_batch(groups, received_at):
            responses[idx] = response
        for members in groups.values():
            if len(members) == 1:
                idx, request = members[0]
                responses[idx] = self.submit(request, received_at)
            else:
                for idx, response in self._run_coalesced(members,
                                                         received_at):
                    responses[idx] = response
        return [responses[i] for i in range(len(indexed))]

    @staticmethod
    def _stateful_sessions(indexed) -> frozenset:
        """Session names receiving stateful ops somewhere in this batch.

        A named session whose batch traffic includes anything beyond the
        read-only ops (``analyze``/``sweep``/``reanalyze``) — an ``edit``,
        most importantly — must run strictly solo and in order: coalescing
        a read across a mutation would answer from the wrong circuit.
        """
        blocked = set()
        for _, raw in indexed:
            if isinstance(raw, dict):
                name = raw.get("session")
                op = str(raw.get("op", "analyze"))
            else:
                name = getattr(raw, "session", None)
                op = getattr(raw, "op", "analyze")
            if (name is not None
                    and op not in ("analyze", "sweep", "reanalyze")):
                blocked.add(name)
        return frozenset(blocked)

    def _coalesce_key(self, request: AnalysisRequest,
                      blocked_sessions: frozenset = frozenset()
                      ) -> Optional[Tuple]:
        """Group key for batchable requests, or None to run solo.

        Circuit-targeted requests key on ``(circuit, config, mode)`` as
        ever.  Read-only *session*-targeted requests now coalesce too,
        keyed by the workspace's **structural hash** + config: two named
        edit sessions whose mutated circuits are structurally identical
        (and whose weights are therefore bit-identical, by the
        incremental parity guarantee) share one kernel sweep — and, in
        plain mode, join the cross-session tensor batch.  Sessions with a
        stateful op in the same batch, unknown session names, and
        sessions carrying transient analyzer kwargs stay solo.
        """
        if request.method != "single-pass" or request.timeout_s is not None:
            return None
        if request.session is not None:
            if request.op not in ("analyze", "sweep", "reanalyze"):
                return None
            if request.session in blocked_sessions:
                return None
            session = self._edit_sessions.get(request.session)
            if session is None or session.extra_analyzer_kwargs:
                return None
            return ("session", session.structural_key, session.config,
                    bool(request.correlation), request.eps10 is None)
        if request.op not in ("analyze", "sweep"):
            return None
        if _split_options(request.options)[1]:
            return None
        try:
            config = self._config_from_options(request.options)
        except ValueError:
            return None
        if isinstance(request.circuit, Circuit):
            circuit_key: Any = id(request.circuit)
        else:
            circuit_key = str(request.circuit)
        return ("circuit", circuit_key, config, bool(request.correlation),
                request.eps10 is None)

    def _member_sessions(self, members) -> List[CircuitSession]:
        """Resolve each member's session for one coalesced group.

        Session-targeted groups map each request to its own named
        session (no registry counters — existence was verified by
        ``_coalesce_key``); circuit groups share one registry session,
        resolved (and counted) once.
        """
        first = members[0][1]
        if first.session is not None:
            return [self._edit_sessions[req.session] for _, req in members]
        shared = self.session(first.circuit, **first.options)
        return [shared] * len(members)

    @staticmethod
    def _member_specs(request: AnalysisRequest,
                      session: CircuitSession) -> List[EpsilonSpec]:
        """One member's eps points (honouring reanalyze's live-eps rule)."""
        if request.op == "reanalyze" and request.eps is None:
            return [session.workspace().current_eps()]
        return list(request.eps_points())

    def _run_coalesced(self, members,
                       received_at: Optional[float] = None
                       ) -> List[Tuple[int, AnalysisResponse]]:
        """Answer several same-session requests from one kernel sweep."""
        first = members[0][1]
        queue_wait_ms = (max(0.0, (time.time() - received_at) * 1e3)
                         if received_at is not None else 0.0)
        cache = self._cache_probe(first)
        self._scratch.kernel_s = 0.0
        t0 = time.perf_counter()
        try:
            sessions = self._member_sessions(members)
            slices: List[Tuple[int, int]] = []
            specs: List[EpsilonSpec] = []
            eps10_specs: Optional[List[EpsilonSpec]] = (
                None if first.eps10 is None else [])
            for (_, request), session in zip(members, sessions):
                points = self._member_specs(request, session)
                slices.append((len(specs), len(points)))
                specs.extend(points)
                if eps10_specs is not None:
                    e10 = request.eps10_points()
                    if e10 is None or len(e10) != len(points):
                        raise ValueError(
                            "eps10 must cover every eps point")
                    eps10_specs.extend(e10)
            for session in {id(s): s for s in sessions}.values():
                session.touch()
            exec_session = sessions[0]
            self.requests_served += len(members)
            with trace_span("engine.coalesced_sweep",
                            circuit=exec_session.circuit.name,
                            requests=len(members), points=len(specs)):
                results, method, fallbacks, timed_out = \
                    self._single_pass_with_ladder(
                        exec_session, first.correlation, specs, eps10_specs,
                        None)
            if obs_metrics.is_enabled():
                obs_metrics.inc("engine.coalesced_requests", len(members),
                                circuit=exec_session.circuit.name)
            elapsed = (time.perf_counter() - t0) / len(members)
            kernel_s = getattr(self._scratch, "kernel_s", 0.0) \
                / len(members)
            out = []
            for (idx, request), session, (start, count) in zip(
                    members, sessions, slices):
                payload = analyze_payload(
                    session.circuit.name, specs[start:start + count],
                    results[start:start + count])
                response = AnalysisResponse(
                    ok=True, op=request.op,
                    circuit=session.circuit.name, id=request.id,
                    method=method, fallbacks=list(fallbacks),
                    timed_out=timed_out, elapsed_s=elapsed,
                    coalesced=len(members),
                    frames=session.config.frames,
                    outputs=(list(session.config.outputs)
                             if session.config.outputs else None),
                    result=payload)
                self._attach_telemetry(response, cache=cache,
                                       queue_wait_ms=queue_wait_ms,
                                       kernel_s=kernel_s)
                self.engine_stats.record(response.op, elapsed,
                                         ok=True, cache=cache,
                                         lane=self.lane_index,
                                         frames=response.frames)
                self._attach_obs(request, response)
                out.append((idx, response))
            return out
        except Exception:  # noqa: BLE001 - degrade to solo execution
            return [(idx, self.submit(request, received_at))
                    for idx, request in members]

    # -- cross-session tensor batching ---------------------------------
    def _run_tensor_batch(self, groups, received_at: Optional[float] = None
                          ) -> List[Tuple[int, AnalysisResponse]]:
        """Answer plain-mode groups for *different* sessions from one
        merged tensor sweep (the cross-session analogue of
        :meth:`_run_coalesced`).

        Eligible groups — correlation off, no ``eps10``, a compiled
        independence plan available — are popped from ``groups`` and
        answered by a single :class:`~repro.reliability.tensor_pass.
        TensorBatch` pass; everything else stays behind for the
        per-session path.  Read-only *edit-session* groups qualify too
        (their workspace plans are ``CompiledSinglePass`` instances like
        any other), so a serve batch mixing named sessions and plain
        circuit traffic still merges into one tensor sweep.  Needs at least two eligible groups (one group
        is exactly what ``_run_coalesced`` already handles).  Any
        batch-level failure leaves ``groups`` untouched and returns
        ``[]``, so the caller degrades to the existing per-group path.
        """
        try:
            # Per-group resolution: probe the cache *before* touching the
            # registry (so telemetry reports pre-request warmth), then
            # require a CompiledSinglePass plan.  A group that fails to
            # resolve simply stays on the per-group path, where its error
            # envelope is produced with full context.
            eligible = []
            for key, members in groups.items():
                if key[3] or not key[4]:  # correlation on / eps10 present
                    continue
                first = members[0][1]
                try:
                    cache = self._cache_probe(first)
                    sessions = self._member_sessions(members)
                    plan = sessions[0].analyzer(False).plan
                    if not isinstance(plan, CompiledSinglePass):
                        continue
                    slices: List[Tuple[int, int]] = []
                    specs: List[EpsilonSpec] = []
                    for (_, request), session in zip(members, sessions):
                        points = self._member_specs(request, session)
                        slices.append((len(specs), len(points)))
                        specs.extend(points)
                except Exception:  # noqa: BLE001 - leave group behind
                    continue
                eligible.append(
                    {"key": key, "members": members, "sessions": sessions,
                     "plan": plan, "cache": cache, "specs": specs,
                     "slices": slices})
            if len(eligible) < 2:
                return []
            queue_wait_ms = (max(0.0, (time.time() - received_at) * 1e3)
                             if received_at is not None else 0.0)
            t0 = time.perf_counter()
            batch = self._tensor_batch_for([g["plan"] for g in eligible])
            total_requests = sum(len(g["members"]) for g in eligible)
            with trace_span("engine.tensor_batch",
                            circuits=batch.n_circuits,
                            requests=total_requests,
                            points=sum(len(g["specs"]) for g in eligible)):
                k0 = time.perf_counter()
                sweeps = batch.run_sweep([g["specs"] for g in eligible])
                kernel_total = time.perf_counter() - k0
            if obs_metrics.is_enabled():
                obs_metrics.inc("engine.tensor_batch.circuits",
                                batch.n_circuits)
                obs_metrics.inc("engine.tensor_batch.pad_waste_rows",
                                batch.pad_waste_rows)
            elapsed = (time.perf_counter() - t0) / total_requests
            kernel_s = kernel_total / total_requests
            out: List[Tuple[int, AnalysisResponse]] = []
            for group, sweep in zip(eligible, sweeps):
                sessions = group["sessions"]
                for session in {id(s): s for s in sessions}.values():
                    session.touch()
                members = group["members"]
                self.requests_served += len(members)
                specs = group["specs"]
                results = [sweep.point(j) for j in range(len(specs))]
                for (idx, request), session, (start, count) in zip(
                        members, sessions, group["slices"]):
                    payload = analyze_payload(
                        session.circuit.name, specs[start:start + count],
                        results[start:start + count])
                    response = AnalysisResponse(
                        ok=True, op=request.op,
                        circuit=session.circuit.name, id=request.id,
                        method="single-pass-tensor",
                        elapsed_s=elapsed, coalesced=len(members),
                        frames=session.config.frames,
                        outputs=(list(session.config.outputs)
                                 if session.config.outputs else None),
                        result=payload)
                    self._attach_telemetry(response, cache=group["cache"],
                                           queue_wait_ms=queue_wait_ms,
                                           kernel_s=kernel_s,
                                           batch_circuits=batch.n_circuits)
                    self.engine_stats.record(response.op, elapsed,
                                             ok=True, cache=group["cache"],
                                             lane=self.lane_index,
                                             frames=response.frames)
                    self._attach_obs(request, response)
                    out.append((idx, response))
            for group in eligible:
                del groups[group["key"]]
            return out
        except Exception:  # noqa: BLE001 - degrade to per-group path
            return []

    def _tensor_batch_for(self, plans: List[CompiledSinglePass]
                          ) -> TensorBatch:
        """The merged :class:`TensorBatch` for this batch composition.

        Keyed by plan identity — plans are memoized on their sessions and
        the cached batch holds them, so ids cannot be recycled while the
        entry lives.  LRU-capped so a serve loop cycling through many
        workload shapes doesn't hoard merged tensors.
        """
        key = tuple(id(plan) for plan in plans)
        batch = self._tensor_batches.get(key)
        if batch is None:
            batch = TensorBatch(plans)
            self._tensor_batches[key] = batch
            while len(self._tensor_batches) > _TENSOR_BATCH_CACHE_CAP:
                self._tensor_batches.popitem(last=False)
        else:
            self._tensor_batches.move_to_end(key)
        return batch

    # -- single-request execution --------------------------------------
    def _execute(self, request: AnalysisRequest) -> AnalysisResponse:
        op = request.op
        self.requests_served += 1
        if obs_metrics.is_enabled():
            obs_metrics.inc("engine.requests", op=op,
                            circuit=request.circuit_label())
        if op == "report":
            return self._execute_report(request)
        if request.session is not None:
            session = self._edit_session(request)
        else:
            session = self.session(request.circuit, **{
                k: v for k, v in request.options.items()
                if k not in ("mc_patterns",)})
        session.touch()
        name = session.circuit.name
        deadline = self._deadline(request.timeout_s)
        with trace_span("engine.request", op=op, circuit=name):
            if op == "edit":
                return self._execute_edit(request, session)
            if op in ("analyze", "sweep", "reanalyze"):
                return self._execute_analyze(request, session, deadline)
            if op == "curve":
                eps_points = [float(e) for e in request.eps_points()]
                analyzer = session.analyzer(request.correlation)
                # The analyzer's circuit is the restricted cone when the
                # session carries outputs=, so its first output is always
                # a valid default.
                output = request.output or analyzer.circuit.outputs[0]
                sweep = analyzer.sweep(eps_points)
                deltas = sweep.delta(output)
                return AnalysisResponse(
                    ok=True, op=op, circuit=name, id=request.id,
                    method="single-pass",
                    outputs=(list(session.config.outputs)
                             if session.config.outputs else None),
                    result=curve_payload(name, output, eps_points, deltas))
            if op == "closed-form":
                _check_outputs_method(session, "closed-form")
                result = session.closed_form(request.output).analyze(
                    request.eps_points()[0])
                return AnalysisResponse(
                    ok=True, op=op, circuit=name, id=request.id,
                    method="closed-form",
                    result=result_payload(name, "closed-form", result))
            if op == "mc":
                _check_outputs_method(session, "mc")
                result = monte_carlo_reliability(
                    session.circuit, request.eps_points()[0],
                    n_patterns=request.options.get("mc_patterns", 1 << 16),
                    seed=session.config.seed)
                return AnalysisResponse(
                    ok=True, op=op, circuit=name, id=request.id,
                    method="mc", result=result_payload(name, "mc", result))
            raise ValueError(f"unknown op {op!r}")

    def _execute_edit(self, request: AnalysisRequest,
                      session: CircuitSession) -> AnalysisResponse:
        """Apply a batch of edits to a named session's workspace."""
        edits = request.edits
        if not isinstance(edits, (list, tuple)) or not edits:
            raise ValueError(
                "op 'edit' requires a non-empty 'edits' list")
        reports = session.apply_edits([parse_edit(e) for e in edits])
        name = session.circuit.name
        result = {
            "circuit": name,
            "command": "edit",
            "session": request.session,
            "reports": [report.to_dict() for report in reports],
            "num_gates": session.circuit.num_gates,
            "eps": session.workspace().current_eps(),
        }
        return AnalysisResponse(ok=True, op="edit", circuit=name,
                                id=request.id, method="incremental",
                                result=result)

    def _execute_analyze(self, request: AnalysisRequest,
                         session: CircuitSession,
                         deadline: Optional[float]) -> AnalysisResponse:
        name = session.circuit.name
        if request.op == "reanalyze" and request.eps is None:
            # No explicit eps: analyze at the session's live eps state.
            specs = [session.workspace().current_eps()]
        else:
            specs = request.eps_points()
        method = request.method
        frames = session.config.frames
        outputs = (list(session.config.outputs)
                   if session.config.outputs else None)
        if method != "single-pass":
            _check_outputs_method(session, method)
        if method == "single-pass":
            results, used, fallbacks, timed_out = \
                self._single_pass_with_ladder(
                    session, request.correlation, specs,
                    request.eps10_points(), deadline)
            return AnalysisResponse(
                ok=True, op=request.op, circuit=name, id=request.id,
                method=used, fallbacks=fallbacks, timed_out=timed_out,
                frames=frames, outputs=outputs,
                result=analyze_payload(name, specs, results))
        if method == "closed-form":
            model = session.closed_form(request.output)
            results = [model.analyze(spec) for spec in specs]
            return AnalysisResponse(
                ok=True, op=request.op, circuit=name, id=request.id,
                method="closed-form", frames=frames,
                result=analyze_payload(name, specs, results))
        if method == "mc":
            results = [monte_carlo_reliability(
                session.circuit, spec,
                n_patterns=request.options.get("mc_patterns", 1 << 16),
                seed=session.config.seed + i)
                for i, spec in enumerate(specs)]
            return AnalysisResponse(
                ok=True, op=request.op, circuit=name, id=request.id,
                method="mc", frames=frames,
                result=analyze_payload(name, specs, results))
        if method == "consolidated":
            results = [session.consolidated().run(spec) for spec in specs]
            return AnalysisResponse(
                ok=True, op=request.op, circuit=name, id=request.id,
                method="consolidated", frames=frames,
                result=analyze_payload(name, specs, results))
        if method == "exact":
            from ..reliability.exact import exhaustive_exact_reliability
            results = [exhaustive_exact_reliability(session.circuit, spec)
                       for spec in specs]
            return AnalysisResponse(
                ok=True, op=request.op, circuit=name, id=request.id,
                method="exact", frames=frames,
                result=analyze_payload(name, specs, results))
        raise ValueError(f"unknown method {method!r}")

    def _execute_report(self, request: AnalysisRequest) -> AnalysisResponse:
        from ..report import ReportConfig, build_report
        options = dict(request.options)
        circuit = resolve_analysis_circuit(request.circuit,
                                           options.get("frames"))
        config = ReportConfig(
            mc_patterns=options.get("mc_patterns", 1 << 14),
            seed=options.get("seed", 0),
            include_testability=options.get("include_testability", True),
            weights_cache_dir=options.get("weights_cache_dir",
                                          self.weights_cache_dir))
        report = build_report(circuit, config)
        return AnalysisResponse(
            ok=True, op="report", circuit=circuit.name, id=request.id,
            method="report", result=report.to_dict())

    # -- process-pool fan-out ------------------------------------------
    def _lane(self, index: int, total: int) -> ProcessPoolExecutor:
        while len(self._lanes) < total:
            self._lanes.append(ProcessPoolExecutor(
                max_workers=1, initializer=_lane_init,
                initargs=(self.max_sessions, self.weights_cache_dir)))
        return self._lanes[index]

    def _fan_out(self, indexed, jobs: int) -> List[AnalysisResponse]:
        """Distribute a batch across sticky single-process lanes.

        Routing CRC-hashes the session/circuit label (``zlib.crc32`` —
        deterministic across processes and runs, unlike builtin ``hash``),
        so requests for one session always reach the same worker — its
        session registry stays warm across batches.  Each lane dispatch
        carries a telemetry context (lane index, dispatch wall-clock,
        request ids, and whether tracing/metrics are live); workers ship
        their spans and metric deltas home in a
        :class:`~repro.obs.propagate.TelemetryPayload` which is spliced
        into this process's tracer/registry under a synthetic
        ``engine.lane`` span, yielding one coherent Chrome trace.
        """
        tracing = obs_trace.is_enabled()
        metering = obs_metrics.is_enabled()
        tracer = obs_trace.get_tracer()
        enclosing = tracer.current() if tracing else None
        by_lane: Dict[int, List[Tuple[int, Any]]] = {}
        for idx, raw in indexed:
            if isinstance(raw, dict):
                label = raw.get("session") or raw.get("circuit", "?")
            else:
                label = raw.session or raw.circuit_label()
            lane = zlib.crc32(str(label).encode()) % jobs
            by_lane.setdefault(lane, []).append((idx, raw))
        futures = []
        for lane_idx, members in by_lane.items():
            reqs = [raw for _, raw in members]
            ctx = {
                "lane": lane_idx,
                "dispatched_at": time.time(),
                "trace": tracing,
                "metrics": metering,
                "request_ids": [self._next_request_id() for _ in members],
            }
            dispatch_rel = time.perf_counter() - tracer.epoch
            future = self._lane(lane_idx, jobs).submit(_lane_run, reqs, ctx)
            futures.append((members, lane_idx, dispatch_rel, future))
        responses: Dict[int, AnalysisResponse] = {}
        for members, lane_idx, dispatch_rel, future in futures:
            lane_responses, payload = future.result()
            lane_elapsed = (time.perf_counter() - tracer.epoch
                            - dispatch_rel)
            self.engine_stats.record_lane(lane_idx, len(members),
                                          lane_elapsed)
            if tracing:
                depth = enclosing.depth + 1 if enclosing else 0
                tracer.record(obs_trace.Span(
                    name="engine.lane",
                    start=dispatch_rel, duration=lane_elapsed,
                    depth=depth,
                    parent=enclosing.name if enclosing else None,
                    thread_id=threading.get_ident(),
                    attrs={"lane": lane_idx, "requests": len(members)}))
            if payload is not None:
                payload.merge_into(tracer, at=dispatch_rel,
                                   parent="engine.lane",
                                   depth_base=(enclosing.depth + 2
                                               if enclosing else 1))
            for (idx, _), response in zip(members, lane_responses):
                # The worker's EngineStats died with its batch; fold the
                # per-request record into the parent's rolling window.
                self.engine_stats.record(
                    response.op, response.elapsed_s, ok=response.ok,
                    cache=(response.telemetry or {}).get("cache"),
                    lane=lane_idx)
                responses[idx] = response
        return [responses[i] for i in range(len(indexed))]

    # -- telemetry ------------------------------------------------------
    def _next_request_id(self) -> str:
        return f"{os.getpid():x}-{next(self._request_seq):06x}"

    def _cache_probe(self, request: AnalysisRequest) -> Dict[str, str]:
        """Predict cache warmth for a request *before* executing it.

        Returns ``{"session", "weights", "plan"}`` each mapped to
        ``hit``/``miss`` (session tier) or ``warm``/``cold`` (artifact
        tiers); ``transient`` marks requests that bypass the registry,
        ``unknown`` an unprobeable request.  Probing never raises — a
        malformed request is answered by ``_execute``'s error envelope.
        """
        try:
            if request.op == "report":
                return {"session": "transient", "weights": "cold",
                        "plan": "cold"}
            if request.session is not None:
                session = self._edit_sessions.get(request.session)
            else:
                options = {k: v for k, v in request.options.items()
                           if k != "mc_patterns"}
                if _split_options(options)[1]:
                    return {"session": "transient", "weights": "cold",
                            "plan": "cold"}
                config = self._config_from_options(options)
                key = self._session_key(request.circuit, config)
                session = self._sessions.get(key)
            if session is None:
                return {"session": "miss", "weights": "cold",
                        "plan": "cold"}
            return {
                "session": "hit",
                "weights": "warm" if session.weights_ready else "cold",
                "plan": ("warm"
                         if session.plan_ready(request.correlation)
                         else "cold"),
            }
        except Exception:  # noqa: BLE001 - probes must never fail requests
            return dict(_UNKNOWN_CACHE)

    def _attach_telemetry(self, response: AnalysisResponse, *,
                          cache: Dict[str, str],
                          queue_wait_ms: float,
                          kernel_s: Optional[float] = None,
                          batch_circuits: Optional[int] = None) -> None:
        """Assemble the always-on per-request ``telemetry`` block.

        Unlike ``_attach_obs`` this is not gated on the obs flags: the
        block is plain counters/timestamps already measured on the
        request path, so populating it costs one dict build (guarded by
        ``benchmarks/test_obs_overhead.py``).
        """
        if kernel_s is None:
            kernel_s = getattr(self._scratch, "kernel_s", 0.0)
        response.telemetry = {
            "request_id": self._next_request_id(),
            "queue_wait_ms": round(queue_wait_ms, 3),
            "coalesced": response.coalesced,
            "lane": self.lane_index,
            "cache": dict(cache),
            "ladder": response.method,
            "kernel_ms": round((kernel_s or 0.0) * 1e3, 3),
            "total_ms": round(response.elapsed_s * 1e3, 3),
        }
        if batch_circuits is not None:
            # Cross-session tensor batch: how many circuits shared the
            # merged kernel pass that answered this request.
            response.telemetry["batch_circuits"] = batch_circuits

    # -- lifecycle ------------------------------------------------------
    def uptime_s(self) -> float:
        """Seconds since this engine was constructed (monotonic)."""
        return self.engine_stats.uptime_s()

    def stats(self) -> Dict[str, Any]:
        """Registry, scheduler, and rolling-SLO state (the `stats` op).

        Lifetime counters keep their PR-5 keys; ``uptime_s`` /
        ``started_at`` / ``version`` identify the process, and
        ``rolling`` carries the :class:`EngineStats` snapshot (per-op
        p50/p95/p99 latencies, cache hit-rate windows, lane utilization).
        """
        from .. import __version__  # lazy: package defines it after us
        data = {
            "sessions": len(self._sessions),
            "edit_sessions": len(self._edit_sessions),
            "max_sessions": self.max_sessions,
            "session_hits": self.session_hits,
            "session_misses": self.session_misses,
            "requests_served": self.requests_served,
            "lanes": len(self._lanes),
            "uptime_s": self.uptime_s(),
            "started_at": self.started_at,
            "version": __version__,
            "rolling": self.engine_stats.snapshot(),
        }
        if self._admission is not None:
            data["admission"] = self._admission.snapshot()
        return data

    # -- durable state ---------------------------------------------------
    def _resolve_state_dir(self, state_dir: Optional[str]) -> str:
        state_dir = state_dir or self.state_dir
        if not state_dir:
            raise ValueError(
                "no state directory configured: pass state_dir= or "
                "construct the engine with state_dir (CLI: --state-dir)")
        return state_dir

    def save_state(self, state_dir: Optional[str] = None) -> Dict[str, Any]:
        """Snapshot every named edit session to disk (see engine/state.py).

        Returns the summary the serve ``save`` control op echoes:
        ``{state_dir, sessions, elapsed_ms}``.
        """
        from .state import save_engine_state
        return save_engine_state(self, self._resolve_state_dir(state_dir))

    def load_state(self, state_dir: Optional[str] = None) -> Dict[str, Any]:
        """Restore named edit sessions from a prior :meth:`save_state`.

        Best-effort and additive: corrupt entries are skipped (reported
        in the summary's ``errors``), and session names already live in
        this engine are never overwritten.
        """
        from .state import load_engine_state
        return load_engine_state(self, self._resolve_state_dir(state_dir))

    def prometheus(self) -> str:
        """Prometheus text exposition: engine SLO stats + obs registry."""
        text = self.engine_stats.to_prometheus()
        registry_text = obs_metrics.get_registry().to_prometheus()
        return text + registry_text

    def close(self) -> None:
        """Shut down worker lanes and release pinned cache entries."""
        for lane in self._lanes:
            lane.shutdown(wait=False, cancel_futures=True)
        self._lanes.clear()
        for session in self._sessions.values():
            session.unpin()
        self._sessions.clear()
        self._edit_sessions.clear()
        self._pinned.clear()
        self._tensor_batches.clear()

    def __enter__(self) -> "AnalysisEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- obs ------------------------------------------------------------
    def _attach_obs(self, request, response: AnalysisResponse) -> None:
        if not obs_metrics.is_enabled():
            return
        labels = {"op": response.op, "circuit": response.circuit}
        obs_metrics.inc("engine.responses", **labels)
        obs_metrics.observe("engine.request_seconds", response.elapsed_s,
                            **labels)
        response.obs = {
            "labels": labels,
            "session_hits": self.session_hits,
            "session_misses": self.session_misses,
        }


# ----------------------------------------------------------------------
# Sticky-lane worker plumbing: each lane is a one-process executor whose
# worker holds its own AnalysisEngine, so a circuit routed to the same
# lane twice finds its session (weights + compiled plans) already hot.
# ----------------------------------------------------------------------

_LANE_ENGINE: Optional[AnalysisEngine] = None


def _lane_init(max_sessions: int,
               weights_cache_dir: Optional[str]) -> None:
    global _LANE_ENGINE
    _LANE_ENGINE = AnalysisEngine(max_sessions=max_sessions,
                                  weights_cache_dir=weights_cache_dir,
                                  jobs=0)


def _lane_run(requests, ctx: Optional[Dict[str, Any]] = None
              ) -> Tuple[List[AnalysisResponse],
                         Optional[TelemetryPayload]]:
    """Run one lane batch; optionally capture telemetry to ship home.

    ``ctx`` is the parent's dispatch context: lane index, dispatch
    wall-clock (for queue-wait), pre-assigned request ids, and whether
    the parent wants spans/metrics back.  Worker obs state is reset per
    batch — with the ``fork`` start method the process inherits the
    parent's enabled flags and any spans recorded before the pool was
    created, so the payload must carry exactly this batch's telemetry.
    """
    from .. import obs
    ctx = ctx or {}
    want_trace = bool(ctx.get("trace"))
    want_metrics = bool(ctx.get("metrics"))
    obs.reset()
    if want_trace or want_metrics:
        obs.enable(tracing=want_trace, metrics_=want_metrics)
    else:
        obs.disable()
    _LANE_ENGINE.lane_index = ctx.get("lane")
    responses = _LANE_ENGINE.submit_many(
        requests, jobs=0, received_at=ctx.get("dispatched_at"))
    request_ids = ctx.get("request_ids")
    for i, response in enumerate(responses):
        if response.telemetry is not None:
            if request_ids and i < len(request_ids):
                response.telemetry["request_id"] = request_ids[i]
            response.telemetry["lane"] = ctx.get("lane")
    payload = None
    if want_trace or want_metrics:
        payload = capture_telemetry()
        obs.disable()
        obs.reset()
    return responses, payload
