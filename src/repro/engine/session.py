"""Per-circuit analysis sessions: everything eps-independent, kept hot.

The paper's central split is between what depends on the failure
probabilities (one cheap pass) and what does not (weights, correlation
pair discovery, observabilities — all computable once per circuit).  A
:class:`CircuitSession` is the in-memory embodiment of the eps-independent
half: the parsed :class:`~repro.circuit.Circuit`, its
:class:`~repro.probability.weights.WeightData`, the lowered compiled plans
(independence *and* correlated), and the lazily built closed-form /
consolidated models, all behind one object the
:class:`~repro.engine.core.AnalysisEngine` keeps in an LRU registry.

The existing ``weight_cache`` disk tier is the backing store: a session
constructed with ``weights_cache_dir`` set loads (and pins) its weight
entry through :mod:`repro.probability.weight_cache`, so a recycled session
warms back up from disk instead of re-estimating.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..circuit import Circuit, SequentialCircuit, unroll
from ..circuits import get_benchmark, get_sequential_benchmark
from ..incremental import CircuitWorkspace, EditReport, parse_edit
from ..io import load_bench, load_blif
from ..obs import trace_span
from ..probability.weight_cache import (
    memory_tier,
    pin_weights,
    structural_hash,
)
from ..probability.weights import WeightData, compute_weights
from ..reliability.closed_form import (
    MultiOutputObservabilityModel,
    ObservabilityModel,
)
from ..reliability.consolidated import ConsolidatedAnalyzer
from ..reliability.single_pass import SinglePassAnalyzer

#: What callers may hand to the engine as "a circuit".
CircuitRef = Union[str, Circuit, SequentialCircuit]


def resolve_circuit(ref: CircuitRef) -> Union[Circuit, SequentialCircuit]:
    """Turn a circuit reference into a circuit object.

    Accepts a ready :class:`Circuit` / :class:`SequentialCircuit`, a
    netlist path (``.bench`` / ``.blif``), or a built-in benchmark name
    (combinational catalog first, then the sequential fixtures).  Netlist
    files declaring DFF/LATCH elements resolve to a
    :class:`SequentialCircuit`.  Raises :class:`ValueError` for anything
    else — the serve loop converts that into an error envelope instead of
    dying.
    """
    if isinstance(ref, (Circuit, SequentialCircuit)):
        return ref
    path = Path(ref)
    if path.exists():
        if path.suffix == ".bench":
            return load_bench(path)
        if path.suffix == ".blif":
            return load_blif(path)
        raise ValueError(f"unsupported netlist extension: {path.suffix}")
    try:
        return get_benchmark(ref)
    except KeyError:
        pass
    try:
        return get_sequential_benchmark(ref)
    except KeyError:
        raise ValueError(
            f"{ref!r} is neither a file nor a known benchmark "
            f"(try: repro bench)") from None


def resolve_analysis_circuit(ref: CircuitRef,
                             frames: Optional[int] = None) -> Circuit:
    """Resolve a reference to the combinational circuit a session analyzes.

    Sequential circuits must come with a frame count: they are unrolled
    into ``frames`` time frames (:func:`repro.circuit.unroll`), and a
    sequential reference without ``frames`` raises a clear
    :class:`ValueError` instead of failing deep inside the analyzer.
    Combinational circuits pass through untouched when ``frames`` is None
    (the default — nothing changes for existing callers); with ``frames``
    set they go through the same unroll transform (``frames=1`` is the
    structural identity).
    """
    resolved = resolve_circuit(ref)
    if isinstance(resolved, SequentialCircuit):
        if frames is None:
            raise ValueError(
                f"circuit {resolved.name!r} is sequential "
                f"({resolved.num_flops} flops): pass frames=k to unroll "
                f"it into k time frames, e.g. repro.analyze(..., frames=4) "
                f"or repro analyze --frames 4")
        return unroll(resolved, frames)
    if frames is not None:
        return unroll(resolved, frames)
    return resolved


@dataclass(frozen=True)
class SessionConfig:
    """The eps-independent knobs that key a session.

    Two requests with the same circuit structure and the same
    :class:`SessionConfig` may share one session — everything here feeds
    the weight estimator, the correlation-plan budget, or the kernel
    choice, and nothing here varies per query.
    """

    weight_method: str = "auto"
    n_patterns: int = 1 << 16
    seed: int = 0
    input_probs: Optional[Tuple[Tuple[str, float], ...]] = None
    max_correlation_pairs: int = 1_000_000
    max_correlation_level_gap: Optional[int] = None
    compiled: str = "auto"
    weights_cache_dir: Optional[str] = None
    #: Array-backend name for the independence kernel (``None``/"auto"
    #: follows the process default — see :func:`repro.backend.get_backend`).
    backend: Optional[str] = None
    #: Time-frame count for sequential circuits (None = combinational).
    #: Part of the session key: ``(circuit, frames)`` pairs get distinct
    #: sessions, since the unrolled netlists differ structurally.
    frames: Optional[int] = None
    #: Optional primary-output subset (None = all outputs).  The session's
    #: analyzers restrict to the union cone and its weights come from a
    #: lazy per-cone store — the large-netlist path (docs/scaling.md).
    #: Part of the session key, so restricted and full sessions never mix.
    outputs: Optional[Tuple[str, ...]] = None

    #: Option names :meth:`from_options` understands (plus aliases).
    FIELDS = ("weight_method", "n_patterns", "seed", "input_probs",
              "max_correlation_pairs", "max_correlation_level_gap",
              "compiled", "weights_cache_dir", "backend", "frames",
              "outputs")

    @classmethod
    def from_options(cls, options: Mapping[str, Any]) -> "SessionConfig":
        """Build a config from a loose options mapping (CLI/JSON friendly).

        Accepts the dataclass field names plus the CLI's historical
        aliases ``weights`` (→ ``weight_method``) and ``level_gap``
        (→ ``max_correlation_level_gap``).  Unknown keys raise
        :class:`ValueError` so typos in request files surface instead of
        silently running with defaults.
        """
        aliases = {"weights": "weight_method",
                   "level_gap": "max_correlation_level_gap"}
        kwargs: Dict[str, Any] = {}
        for key, value in options.items():
            name = aliases.get(key, key)
            if name not in cls.FIELDS:
                raise ValueError(f"unknown session option {key!r}")
            if name == "input_probs" and value is not None:
                value = tuple(sorted(dict(value).items()))
            if name == "frames" and value is not None:
                value = int(value)
                if value < 1:
                    raise ValueError(f"frames must be >= 1, got {value}")
            if name == "outputs" and value is not None:
                if isinstance(value, str):
                    value = [value]
                value = tuple(sorted(dict.fromkeys(value)))
                if not value:
                    raise ValueError(
                        "outputs subset must name at least one output")
            kwargs[name] = value
        return cls(**kwargs)

    def analyzer_kwargs(self) -> Dict[str, Any]:
        return {
            "weight_method": self.weight_method,
            "n_patterns": self.n_patterns,
            "seed": self.seed,
            "input_probs": dict(self.input_probs) if self.input_probs
            else None,
            "max_correlation_pairs": self.max_correlation_pairs,
            "max_correlation_level_gap": self.max_correlation_level_gap,
            "compiled": self.compiled,
            "weights_cache_dir": self.weights_cache_dir,
            "backend": self.backend,
            "frames": self.frames,
            "outputs": list(self.outputs) if self.outputs else None,
        }


@dataclass
class CircuitSession:
    """One circuit's hot analysis state (weights, plans, models).

    Everything is lazy: the session costs nothing until the first query
    needs a particular artifact, after which it stays resident for the
    session's lifetime.  Sessions are read-mostly and safe to reuse across
    sequential requests; the engine serializes access per session.
    """

    circuit: Circuit
    config: SessionConfig = field(default_factory=SessionConfig)
    #: Extra analyzer kwargs that bypass the registry (e.g. explicit
    #: ``weights=``/``input_errors=``); sessions carrying them are
    #: transient and never cached.
    extra_analyzer_kwargs: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.created_at = time.monotonic()
        self.queries = 0
        self._weights: Optional[WeightData] = None
        self._analyzers: Dict[bool, SinglePassAnalyzer] = {}
        self._closed: Dict[Optional[str], Any] = {}
        self._consolidated: Optional[ConsolidatedAnalyzer] = None
        self._pin_path: Optional[str] = None
        self._workspace: Optional[CircuitWorkspace] = None

    # -- identity -------------------------------------------------------
    @property
    def structural_key(self) -> str:
        if not hasattr(self, "_structural_key"):
            self._structural_key = structural_hash(self.circuit)
        return self._structural_key

    # -- warmth probes --------------------------------------------------
    @property
    def weights_ready(self) -> bool:
        """True once weight vectors exist without needing computation."""
        return (self._weights is not None
                or "weights" in self.extra_analyzer_kwargs)

    def plan_ready(self, use_correlation: bool = True) -> bool:
        """True once an analyzer (and its plan) exists for this mode."""
        if self._workspace is not None:
            return True
        return bool(self._analyzers.get(bool(use_correlation)))

    @property
    def workspace_ready(self) -> bool:
        """True once the incremental edit workspace has been built."""
        return self._workspace is not None

    # -- artifacts ------------------------------------------------------
    @property
    def weights(self) -> WeightData:
        """The session's weight vectors (computed once, disk-backed)."""
        if "weights" in self.extra_analyzer_kwargs:
            return self.extra_analyzer_kwargs["weights"]
        if self._weights is None:
            cfg = self.config
            if cfg.outputs:
                # Restricted session: a lazy store so only the selected
                # cone is ever materialized; the analyzer restricts it.
                from ..scale import LazyWeightData
                self._weights = LazyWeightData(
                    self.circuit, method=cfg.weight_method,
                    n_patterns=cfg.n_patterns, seed=cfg.seed,
                    input_probs=dict(cfg.input_probs)
                    if cfg.input_probs else None,
                    cache_dir=cfg.weights_cache_dir)
                return self._weights
            with trace_span("engine.session.weights",
                            circuit=self.circuit.name):
                self._weights = compute_weights(
                    self.circuit, method=cfg.weight_method,
                    n_patterns=cfg.n_patterns, seed=cfg.seed,
                    input_probs=dict(cfg.input_probs)
                    if cfg.input_probs else None,
                    cache_dir=cfg.weights_cache_dir)
        return self._weights

    def analyzer(self, use_correlation: bool = True) -> SinglePassAnalyzer:
        """The session's single-pass analyzer for one correlation mode.

        Both modes share the session's weight vectors; each holds its own
        lowered compiled plan (correlated vs independence kernel).  Once
        the session has been edited (see :meth:`apply_edits`), analyzers
        come from the incremental workspace instead, so they track the
        mutated circuit without recomputing warm state.
        """
        use_correlation = bool(use_correlation)
        if self._workspace is not None:
            analyzer = self._workspace.analyzer(use_correlation)
            if analyzer.frames != self.config.frames:
                # frames is pure result metadata, so stamping it onto the
                # workspace's analyzer keeps payload parity with the
                # non-workspace path without touching any numerics.
                analyzer.frames = self.config.frames
            return analyzer
        analyzer = self._analyzers.get(use_correlation)
        if analyzer is None:
            kwargs = self.config.analyzer_kwargs()
            kwargs.update(self.extra_analyzer_kwargs)
            kwargs.setdefault("weights", self.weights)
            analyzer = SinglePassAnalyzer(
                self.circuit, use_correlation=use_correlation, **kwargs)
            self._analyzers[use_correlation] = analyzer
        return analyzer

    def closed_form(self, output: Optional[str] = None,
                    n_patterns: int = 1 << 12):
        """Closed-form observability model (one output, or all outputs).

        ``output=None`` on a multi-output circuit returns the
        :class:`MultiOutputObservabilityModel`; otherwise the single-output
        :class:`ObservabilityModel`.  Models are cached per output.
        """
        if self._workspace is not None:
            return self._workspace.closed_form(output, n_patterns)
        key = output
        model = self._closed.get(key)
        if model is None:
            with trace_span("engine.session.closed_form",
                            circuit=self.circuit.name):
                if output is None and len(self.circuit.outputs) > 1:
                    model = MultiOutputObservabilityModel(
                        self.circuit, n_patterns=n_patterns,
                        seed=self.config.seed)
                else:
                    model = ObservabilityModel(
                        self.circuit, output=output,
                        n_patterns=n_patterns, seed=self.config.seed)
            self._closed[key] = model
        return model

    # -- incremental edits ---------------------------------------------
    def workspace(self) -> CircuitWorkspace:
        """The session's incremental workspace, created on first use.

        The workspace takes over the session's analysis artifacts: once it
        exists, :meth:`analyzer` and :meth:`closed_form` serve from its
        incrementally maintained state.  ``weight_method="bdd"`` (possible
        via ``auto`` on wide circuits) cannot be maintained per-cone, so
        the workspace resolves ``auto`` to exhaustive/sampled estimation
        instead — see :class:`~repro.incremental.CircuitWorkspace`.
        """
        if self._workspace is None:
            cfg = self.config
            if cfg.outputs:
                raise ValueError(
                    "incremental edit sessions do not support an outputs= "
                    "restriction; open an unrestricted session to edit")
            method = (cfg.weight_method if cfg.weight_method != "bdd"
                      else "auto")
            with trace_span("engine.session.workspace",
                            circuit=self.circuit.name):
                self._workspace = CircuitWorkspace(
                    self.circuit,
                    weight_method=method,
                    n_patterns=cfg.n_patterns,
                    seed=cfg.seed,
                    input_probs=dict(cfg.input_probs)
                    if cfg.input_probs else None,
                    input_errors=self.extra_analyzer_kwargs.get(
                        "input_errors"),
                    max_correlation_pairs=cfg.max_correlation_pairs,
                    max_correlation_level_gap=cfg.max_correlation_level_gap,
                    compiled=cfg.compiled)
        return self._workspace

    def apply_edits(self, edits: Sequence[Any]) -> List[EditReport]:
        """Apply a batch of edits (typed records or their dict forms).

        The session adopts the mutated circuit; stale per-circuit caches
        (closed-form models, the consolidated analyzer, the structural
        key) are dropped, while the workspace keeps everything that the
        edits' dirty cones did not touch.
        """
        workspace = self.workspace()
        reports = [workspace.apply(parse_edit(edit)) for edit in edits]
        self.circuit = workspace.circuit
        self._analyzers = {}
        self._closed = {}
        self._consolidated = None
        if hasattr(self, "_structural_key"):
            del self._structural_key
        return reports

    def adopt_workspace(self, workspace: CircuitWorkspace) -> None:
        """Adopt a restored workspace as this session's live state.

        Used by the durable-state loader (``engine.load_state()``): the
        session takes over a :meth:`CircuitWorkspace.from_state` result as
        if every edit in its log had been applied here, so follow-up
        ``edit``/``reanalyze`` requests continue bit-identically.
        """
        self._workspace = workspace
        self.circuit = workspace.circuit
        self._analyzers = {}
        self._closed = {}
        self._consolidated = None
        if hasattr(self, "_structural_key"):
            del self._structural_key

    def consolidated(self) -> ConsolidatedAnalyzer:
        """Consolidated (any-output) analyzer over the correlated engine."""
        if self._consolidated is None:
            self._consolidated = ConsolidatedAnalyzer(
                self.circuit, analyzer=self.analyzer(True),
                seed=self.config.seed)
        return self._consolidated

    # -- lifecycle ------------------------------------------------------
    def touch(self) -> None:
        self.queries += 1

    def pin(self) -> None:
        """Exempt this session's weight-cache entry from memory eviction."""
        cfg = self.config
        if cfg.weights_cache_dir is None or self._pin_path is not None:
            return
        self._pin_path = pin_weights(
            cfg.weights_cache_dir, self.circuit, cfg.weight_method,
            cfg.n_patterns, cfg.seed,
            dict(cfg.input_probs) if cfg.input_probs else None)

    def unpin(self) -> None:
        if self._pin_path is not None:
            memory_tier().unpin(self._pin_path)
            self._pin_path = None
