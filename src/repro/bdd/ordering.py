"""Static BDD variable-ordering heuristics.

BDD sizes — and with them the cost of the exact observability, weight
vector, and ATPG computations — are exquisitely order-sensitive: a ripple
-carry adder is linear under an interleaved ``a0 b0 a1 b1 ...`` order and
exponential under ``a0..an b0..bn``.  This module provides the classic
structure-driven heuristics and a measured selection helper.

No dynamic (sifting) reordering: for the circuit sizes where this library
uses BDDs, rebuilding under a better static order is simpler and usually
as effective; :func:`best_order` makes the rebuild-and-measure loop a one
-liner.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..circuit import Circuit
from .manager import BddManager, BddSizeLimitError
from .ops import CircuitBdds, build_node_bdds


def declaration_order(circuit: Circuit) -> List[str]:
    """The input declaration order (the default used by build_node_bdds)."""
    return list(circuit.inputs)


def dfs_order(circuit: Circuit) -> List[str]:
    """Depth-first order: inputs in first-visit order of a DFS from outputs.

    The classic Malik/Fujita-style heuristic: related inputs (feeding the
    same cone) end up adjacent, which keeps arithmetic and mux structures
    small.
    """
    seen = set()
    order: List[str] = []

    def visit(name: str) -> None:
        if name in seen:
            return
        seen.add(name)
        node = circuit.node(name)
        if node.gate_type.is_input:
            order.append(name)
            return
        for fi in node.fanins:
            visit(fi)

    for out in circuit.outputs:
        visit(out)
    # Inputs not reachable from any output still need a slot.
    for pi in circuit.inputs:
        if pi not in seen:
            order.append(pi)
    return order


def fanin_level_order(circuit: Circuit) -> List[str]:
    """Inputs sorted by the depth of the logic they feed (deep first).

    Inputs consumed far from the outputs come first in the order (top of
    the BDD), a cheap approximation of the fanin-weight heuristic.
    """
    max_level: Dict[str, int] = {pi: 0 for pi in circuit.inputs}
    depth_of: Dict[str, int] = {}
    for name in circuit.topological_order():
        node = circuit.node(name)
        depth_of[name] = circuit.level(name)
    for name in circuit.topological_order():
        node = circuit.node(name)
        for fi in node.fanins:
            if fi in max_level:
                max_level[fi] = max(max_level[fi], depth_of[name])
    return sorted(circuit.inputs,
                  key=lambda pi: (-max_level[pi], circuit.inputs.index(pi)))


#: Named heuristics usable with :func:`best_order`.
HEURISTICS: Dict[str, Callable[[Circuit], List[str]]] = {
    "declaration": declaration_order,
    "dfs": dfs_order,
    "fanin-level": fanin_level_order,
}


def total_bdd_size(circuit: Circuit, order: Sequence[str],
                   node_limit: int = 2_000_000) -> int:
    """Total unique-table nodes after building every node function."""
    bdds = build_node_bdds(circuit, BddManager(node_limit=node_limit),
                           var_order=list(order))
    return bdds.manager.num_nodes


def best_order(circuit: Circuit,
               heuristics: Optional[Sequence[str]] = None,
               node_limit: int = 2_000_000
               ) -> Tuple[List[str], str, int]:
    """Build under each heuristic and keep the smallest result.

    Returns ``(order, heuristic name, total nodes)``.  Heuristics whose
    build exceeds ``node_limit`` are skipped (treated as infinite size).
    """
    names = list(heuristics) if heuristics is not None else list(HEURISTICS)
    best: Optional[Tuple[List[str], str, int]] = None
    for name in names:
        order = HEURISTICS[name](circuit)
        try:
            size = total_bdd_size(circuit, order, node_limit=node_limit)
        except BddSizeLimitError:
            continue
        if best is None or size < best[2]:
            best = (order, name, size)
    if best is None:
        raise BddSizeLimitError(
            f"every ordering heuristic exceeded {node_limit} nodes")
    return best


def build_with_best_order(circuit: Circuit,
                          node_limit: int = 2_000_000) -> CircuitBdds:
    """Convenience: :func:`best_order` then build under the winner."""
    order, _, _ = best_order(circuit, node_limit=node_limit)
    return build_node_bdds(circuit, BddManager(node_limit=node_limit),
                           var_order=order)
