"""Bridge between :class:`~repro.circuit.circuit.Circuit` and the BDD engine.

:func:`build_node_bdds` constructs, in one topological sweep, the error-free
Boolean function of every node over the circuit's primary inputs.  These
BDDs drive the exact observability computation (Sec. 3), exact signal
probabilities, and exact gate weight vectors (Sec. 4) of the paper.
"""

from __future__ import annotations

from functools import reduce
from typing import Dict, Optional, Sequence, Tuple

from ..circuit import Circuit, GateType
from .manager import Bdd, BddManager


class CircuitBdds:
    """The per-node BDDs of a circuit, plus the input-variable binding."""

    def __init__(self, circuit: Circuit, manager: BddManager,
                 node_bdds: Dict[str, Bdd], var_index: Dict[str, int]):
        self.circuit = circuit
        self.manager = manager
        self.node_bdds = node_bdds
        #: Map from primary-input name to BDD variable index.
        self.var_index = var_index

    def __getitem__(self, node_name: str) -> Bdd:
        return self.node_bdds[node_name]

    def __contains__(self, node_name: str) -> bool:
        return node_name in self.node_bdds

    def signal_probability(self, node_name: str,
                           input_probs: Optional[Dict[str, float]] = None
                           ) -> float:
        """Exact Pr[node = 1] over the primary-input distribution.

        ``input_probs`` maps input names to their 1-probability; inputs left
        out (or a ``None`` argument) default to 0.5, the paper's uniform
        assumption.
        """
        probs = [0.5] * self.manager.num_vars
        if input_probs:
            for name, p in input_probs.items():
                probs[self.var_index[name]] = p
        return self.node_bdds[node_name].probability(probs)


def build_node_bdds(circuit: Circuit,
                    manager: Optional[BddManager] = None,
                    var_order: Optional[Sequence[str]] = None) -> CircuitBdds:
    """Build the error-free BDD of every node in the circuit.

    Parameters
    ----------
    circuit:
        The circuit to translate.
    manager:
        Reuse an existing manager (its variables must already match
        ``var_order``); a fresh one is created by default.
    var_order:
        Primary-input ordering for the BDD variables.  Defaults to circuit
        input declaration order, which for the structured generators in
        :mod:`repro.circuits` keeps related bits adjacent (a decent static
        order).

    Raises
    ------
    BddSizeLimitError
        If the node limit of the manager is exceeded; callers fall back to
        simulation-based estimation.
    """
    order = list(var_order) if var_order is not None else circuit.inputs
    if set(order) != set(circuit.inputs):
        raise ValueError("var_order must be a permutation of circuit inputs")
    mgr = manager if manager is not None else BddManager()
    var_index: Dict[str, int] = {}
    node_bdds: Dict[str, Bdd] = {}
    for name in order:
        if mgr.num_vars > len(var_index):
            # Manager pre-populated (shared across circuits): reuse slots.
            var_index[name] = len(var_index)
            node_bdds[name] = mgr.var(var_index[name])
        else:
            var_index[name] = mgr.num_vars
            node_bdds[name] = mgr.new_var(name)

    for name in circuit.topological_order():
        node = circuit.node(name)
        if node.gate_type.is_input:
            continue
        node_bdds[name] = _gate_bdd(mgr, node.gate_type,
                                    [node_bdds[f] for f in node.fanins])
    return CircuitBdds(circuit, mgr, node_bdds, var_index)


def _gate_bdd(mgr: BddManager, gate_type: GateType,
              fanins: Sequence[Bdd]) -> Bdd:
    if gate_type is GateType.CONST0:
        return mgr.false
    if gate_type is GateType.CONST1:
        return mgr.true
    if gate_type is GateType.BUF:
        return fanins[0]
    if gate_type is GateType.NOT:
        return ~fanins[0]
    if gate_type is GateType.AND:
        return reduce(lambda a, b: a & b, fanins)
    if gate_type is GateType.NAND:
        return ~reduce(lambda a, b: a & b, fanins)
    if gate_type is GateType.OR:
        return reduce(lambda a, b: a | b, fanins)
    if gate_type is GateType.NOR:
        return ~reduce(lambda a, b: a | b, fanins)
    if gate_type is GateType.XOR:
        return reduce(lambda a, b: a ^ b, fanins)
    if gate_type is GateType.XNOR:
        return ~reduce(lambda a, b: a ^ b, fanins)
    raise ValueError(f"cannot build BDD for {gate_type!r}")  # pragma: no cover


def joint_probability(bdds: Sequence[Bdd],
                      values: Sequence[int]) -> float:
    """Exact probability that each function takes the corresponding value.

    Used for gate weight vectors: the joint signal probability distribution
    of a gate's fanins is ``joint_probability([f_i, f_j], [b_i, b_j])`` over
    all value combinations.  All functions must share one manager.
    """
    if not bdds:
        return 1.0
    acc = bdds[0] if values[0] else ~bdds[0]
    for f, v in zip(bdds[1:], values[1:]):
        acc = acc & (f if v else ~f)
    return acc.probability()
