"""A reduced ordered binary decision diagram (ROBDD) engine.

Implemented from scratch (no external BDD package): hash-consed nodes, an
``ite``-based apply with a computed table, cofactor/compose/quantification
operators, satisfying-assignment counting, and — the operation this library
leans on — *weighted probability evaluation*: the probability that the
function is 1 when each variable independently takes value 1 with a given
probability.  That single primitive yields signal probabilities, gate weight
vectors, and observabilities (paper Secs. 3 and 4).

Nodes are integers; 0 and 1 are the terminal FALSE/TRUE.  The
:class:`Bdd` wrapper provides operator overloading (``&``, ``|``, ``^``,
``~``) over a shared :class:`BddManager`.
"""

from __future__ import annotations

import sys
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

_TERMINAL_VAR = sys.maxsize  # sorts after every real variable


class BddSizeLimitError(RuntimeError):
    """Raised when the unique table outgrows the configured node limit."""


class BddManager:
    """Owns the unique table and all operations for one variable order.

    Parameters
    ----------
    node_limit:
        Maximum number of BDD nodes before :class:`BddSizeLimitError` is
        raised.  Guards against ordering-induced blowup on large random
        circuits (where the library falls back to simulation-based
        estimators).
    """

    def __init__(self, node_limit: int = 2_000_000):
        self.node_limit = node_limit
        # node id -> (var, lo, hi); entries 0/1 are the terminals.
        self._var: List[int] = [_TERMINAL_VAR, _TERMINAL_VAR]
        self._lo: List[int] = [0, 1]
        self._hi: List[int] = [0, 1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._var_names: List[str] = []

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------
    @property
    def false(self) -> "Bdd":
        return Bdd(self, 0)

    @property
    def true(self) -> "Bdd":
        return Bdd(self, 1)

    @property
    def num_vars(self) -> int:
        return len(self._var_names)

    @property
    def num_nodes(self) -> int:
        """Total nodes in the unique table (including both terminals)."""
        return len(self._var)

    def new_var(self, name: Optional[str] = None) -> "Bdd":
        """Create the next variable in the fixed order and return it."""
        index = len(self._var_names)
        self._var_names.append(name or f"v{index}")
        return Bdd(self, self._mk(index, 0, 1))

    def var(self, index: int) -> "Bdd":
        """Return the BDD for an existing variable by order index."""
        if not 0 <= index < self.num_vars:
            raise IndexError(f"variable index {index} out of range")
        return Bdd(self, self._mk(index, 0, 1))

    def var_name(self, index: int) -> str:
        return self._var_names[index]

    def _mk(self, var: int, lo: int, hi: int) -> int:
        if lo == hi:
            return lo
        key = (var, lo, hi)
        node = self._unique.get(key)
        if node is not None:
            return node
        if len(self._var) >= self.node_limit:
            raise BddSizeLimitError(
                f"BDD node limit of {self.node_limit} exceeded")
        node = len(self._var)
        self._var.append(var)
        self._lo.append(lo)
        self._hi.append(hi)
        self._unique[key] = node
        return node

    # ------------------------------------------------------------------
    # Core: if-then-else
    # ------------------------------------------------------------------
    def _ite(self, f: int, g: int, h: int) -> int:
        # Terminal cases.
        if f == 1:
            return g
        if f == 0:
            return h
        if g == h:
            return g
        if g == 1 and h == 0:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        var = min(self._var[f], self._var[g], self._var[h])
        f0, f1 = self._cofactors(f, var)
        g0, g1 = self._cofactors(g, var)
        h0, h1 = self._cofactors(h, var)
        lo = self._ite(f0, g0, h0)
        hi = self._ite(f1, g1, h1)
        result = self._mk(var, lo, hi)
        self._ite_cache[key] = result
        return result

    def _cofactors(self, node: int, var: int) -> Tuple[int, int]:
        if self._var[node] == var:
            return self._lo[node], self._hi[node]
        return node, node

    # ------------------------------------------------------------------
    # Boolean operations (by id; Bdd wrapper calls these)
    # ------------------------------------------------------------------
    def _not(self, f: int) -> int:
        return self._ite(f, 0, 1)

    def _and(self, f: int, g: int) -> int:
        return self._ite(f, g, 0)

    def _or(self, f: int, g: int) -> int:
        return self._ite(f, 1, g)

    def _xor(self, f: int, g: int) -> int:
        return self._ite(f, self._not(g), g)

    # ------------------------------------------------------------------
    # Structural operations
    # ------------------------------------------------------------------
    def _restrict(self, f: int, var: int, value: int) -> int:
        cache: Dict[int, int] = {}

        def walk(node: int) -> int:
            if self._var[node] > var:
                return node
            hit = cache.get(node)
            if hit is not None:
                return hit
            if self._var[node] == var:
                result = self._hi[node] if value else self._lo[node]
            else:
                result = self._mk(self._var[node],
                                  walk(self._lo[node]), walk(self._hi[node]))
            cache[node] = result
            return result

        return walk(f)

    def _compose(self, f: int, var: int, g: int) -> int:
        """Substitute function ``g`` for variable ``var`` inside ``f``."""
        cache: Dict[int, int] = {}

        def walk(node: int) -> int:
            if self._var[node] > var:
                return node
            hit = cache.get(node)
            if hit is not None:
                return hit
            if self._var[node] == var:
                result = self._ite(g, self._hi[node], self._lo[node])
            else:
                lo = walk(self._lo[node])
                hi = walk(self._hi[node])
                v = self._var[node]
                result = self._ite(self._mk(v, 0, 1), hi, lo)
            cache[node] = result
            return result

        return walk(f)

    def _exists(self, f: int, variables: FrozenSet[int]) -> int:
        if not variables:
            return f
        last = max(variables)
        cache: Dict[int, int] = {}

        def walk(node: int) -> int:
            if self._var[node] > last:
                return node
            hit = cache.get(node)
            if hit is not None:
                return hit
            lo = walk(self._lo[node])
            hi = walk(self._hi[node])
            if self._var[node] in variables:
                result = self._or(lo, hi)
            else:
                result = self._mk(self._var[node], lo, hi)
            cache[node] = result
            return result

        return walk(f)

    def _support(self, f: int) -> FrozenSet[int]:
        seen = set()
        support = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node < 2 or node in seen:
                continue
            seen.add(node)
            support.add(self._var[node])
            stack.append(self._lo[node])
            stack.append(self._hi[node])
        return frozenset(support)

    def _size(self, f: int) -> int:
        seen = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            if node >= 2:
                stack.append(self._lo[node])
                stack.append(self._hi[node])
        return len(seen)

    # ------------------------------------------------------------------
    # Counting and probability
    # ------------------------------------------------------------------
    def _sat_count(self, f: int, n_vars: Optional[int] = None) -> int:
        """Number of satisfying assignments over the first ``n_vars`` vars.

        Counting convention: ``count(node)`` is the number of satisfying
        assignments of *all* manager variables.  Because ROBDD children never
        depend on the parent's variable, child counts are always even and
        ``(count(lo) + count(hi)) // 2`` is exact integer arithmetic.
        """
        n = self.num_vars
        cache: Dict[int, int] = {0: 0, 1: 1 << n}

        def count(node: int) -> int:
            hit = cache.get(node)
            if hit is not None:
                return hit
            result = (count(self._lo[node]) + count(self._hi[node])) >> 1
            cache[node] = result
            return result

        total = count(f)
        if n_vars is not None and n_vars != n:
            if n_vars < n:
                support = self._support(f)
                if support and max(support) >= n_vars:
                    raise ValueError(
                        "n_vars smaller than the function's support")
                total >>= n - n_vars
            else:
                total <<= n_vars - n
        return total

    def _prob(self, f: int, var_probs: Sequence[float]) -> float:
        """Probability that ``f`` is 1 under independent variable probs.

        ``var_probs[i]`` is Pr(var i = 1).  Runs in O(size of f).
        """
        cache: Dict[int, float] = {0: 0.0, 1: 1.0}

        def walk(node: int) -> float:
            hit = cache.get(node)
            if hit is not None:
                return hit
            p = var_probs[self._var[node]]
            result = (1.0 - p) * walk(self._lo[node]) + p * walk(self._hi[node])
            cache[node] = result
            return result

        return walk(f)

    def _pick_assignment(self, f: int) -> Optional[Dict[int, int]]:
        """One satisfying assignment (var index -> 0/1), or None if UNSAT."""
        if f == 0:
            return None
        assignment: Dict[int, int] = {}
        node = f
        while node != 1:
            if self._lo[node] != 0:
                assignment[self._var[node]] = 0
                node = self._lo[node]
            else:
                assignment[self._var[node]] = 1
                node = self._hi[node]
        return assignment

    def clear_caches(self) -> None:
        """Drop the operation cache (unique table is kept)."""
        self._ite_cache.clear()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Structural counters, all derived from live tables (O(1)).

        The hot ``_mk``/``_ite`` paths carry no dedicated counters — node
        and cache totals fall out of the table sizes for free, keeping the
        engine's per-operation cost identical with observability enabled.
        """
        return {
            "nodes_allocated": len(self._var),
            "unique_entries": len(self._unique),
            "ite_cache_entries": len(self._ite_cache),
            "num_vars": self.num_vars,
            "node_limit": self.node_limit,
        }

    def publish_metrics(self, **labels) -> None:
        """Push :meth:`stats` into the global registry as ``bdd.*`` gauges.

        No-op while metrics are disabled; call after a build phase (the
        weight-vector and observability constructors do).
        """
        from ..obs import metrics as obs_metrics
        if not obs_metrics.is_enabled():
            return
        for key, value in self.stats().items():
            obs_metrics.set_gauge(f"bdd.{key}", value, **labels)


class Bdd:
    """A Boolean function handle: a node id bound to its manager."""

    __slots__ = ("manager", "node")

    def __init__(self, manager: BddManager, node: int):
        self.manager = manager
        self.node = node

    # --- operators -----------------------------------------------------
    def _check(self, other: "Bdd") -> None:
        if other.manager is not self.manager:
            raise ValueError("cannot combine BDDs from different managers")

    def __and__(self, other: "Bdd") -> "Bdd":
        self._check(other)
        return Bdd(self.manager, self.manager._and(self.node, other.node))

    def __or__(self, other: "Bdd") -> "Bdd":
        self._check(other)
        return Bdd(self.manager, self.manager._or(self.node, other.node))

    def __xor__(self, other: "Bdd") -> "Bdd":
        self._check(other)
        return Bdd(self.manager, self.manager._xor(self.node, other.node))

    def __invert__(self) -> "Bdd":
        return Bdd(self.manager, self.manager._not(self.node))

    def ite(self, then_f: "Bdd", else_f: "Bdd") -> "Bdd":
        self._check(then_f)
        self._check(else_f)
        return Bdd(self.manager,
                   self.manager._ite(self.node, then_f.node, else_f.node))

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Bdd) and other.manager is self.manager
                and other.node == self.node)

    def __hash__(self) -> int:
        return hash((id(self.manager), self.node))

    # --- queries --------------------------------------------------------
    @property
    def is_false(self) -> bool:
        return self.node == 0

    @property
    def is_true(self) -> bool:
        return self.node == 1

    def restrict(self, var_index: int, value: int) -> "Bdd":
        """Cofactor with respect to one variable."""
        return Bdd(self.manager,
                   self.manager._restrict(self.node, var_index, value & 1))

    def compose(self, var_index: int, g: "Bdd") -> "Bdd":
        """Substitute ``g`` for the variable at ``var_index``."""
        self._check(g)
        return Bdd(self.manager,
                   self.manager._compose(self.node, var_index, g.node))

    def exists(self, var_indices: Iterable[int]) -> "Bdd":
        """Existentially quantify the given variables."""
        return Bdd(self.manager,
                   self.manager._exists(self.node, frozenset(var_indices)))

    def forall(self, var_indices: Iterable[int]) -> "Bdd":
        """Universally quantify the given variables."""
        inv = self.manager._not(self.node)
        quantified = self.manager._exists(inv, frozenset(var_indices))
        return Bdd(self.manager, self.manager._not(quantified))

    def support(self) -> FrozenSet[int]:
        """Indices of variables the function actually depends on."""
        return self.manager._support(self.node)

    def size(self) -> int:
        """Number of BDD nodes reachable from this function (incl. terminals)."""
        return self.manager._size(self.node)

    def sat_count(self, n_vars: Optional[int] = None) -> int:
        """Number of satisfying assignments over ``n_vars`` variables."""
        return self.manager._sat_count(self.node, n_vars)

    def probability(self, var_probs: Optional[Sequence[float]] = None) -> float:
        """Pr[f = 1] under independent per-variable 1-probabilities.

        With no argument, all variables are fair coins — the uniform input
        distribution assumed throughout the paper.
        """
        if var_probs is None:
            var_probs = [0.5] * self.manager.num_vars
        if len(var_probs) < self.manager.num_vars:
            raise ValueError("var_probs shorter than the variable count")
        return self.manager._prob(self.node, var_probs)

    def pick_assignment(self) -> Optional[Dict[int, int]]:
        """One satisfying assignment as {var index: 0/1}, or None."""
        return self.manager._pick_assignment(self.node)

    def evaluate(self, assignment: Sequence[int]) -> int:
        """Evaluate under a full 0/1 assignment indexed by variable order."""
        node = self.node
        mgr = self.manager
        while node >= 2:
            node = (mgr._hi[node] if assignment[mgr._var[node]] & 1
                    else mgr._lo[node])
        return node

    def __repr__(self) -> str:
        if self.node == 0:
            return "Bdd(FALSE)"
        if self.node == 1:
            return "Bdd(TRUE)"
        return f"Bdd(node={self.node}, size={self.size()})"
