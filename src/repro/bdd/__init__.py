"""From-scratch ROBDD engine and circuit bridge."""

from .manager import Bdd, BddManager, BddSizeLimitError
from .ops import CircuitBdds, build_node_bdds, joint_probability
from .ordering import (
    HEURISTICS,
    best_order,
    build_with_best_order,
    declaration_order,
    dfs_order,
    fanin_level_order,
    total_bdd_size,
)

__all__ = [
    "Bdd", "BddManager", "BddSizeLimitError",
    "CircuitBdds", "build_node_bdds", "joint_probability",
    "HEURISTICS", "best_order", "build_with_best_order",
    "declaration_order", "dfs_order", "fanin_level_order", "total_bdd_size",
]
