"""Reliability analysis algorithms: the paper's core contribution."""

from .observability import (
    bdd_observabilities,
    compute_observabilities,
    sampled_observabilities,
)
from .closed_form import (
    ClosedFormResult,
    MultiOutputObservabilityModel,
    ObservabilityModel,
    closed_form_delta,
)
from .protocol import ResultProtocol
from .compiled_pass import (
    CompiledCorrelatedPass,
    CompiledPassUnsupported,
    CompiledSinglePass,
    SweepResult,
)
from .single_pass import (
    SinglePassAnalyzer,
    SinglePassResult,
    group_per_frame,
)
from .sequential import SequentialAnalyzer, SteadyStateResult
from .tensor_pass import TensorBatch
from .exact import (
    ExactResult,
    bdd_exact_reliability,
    evaluate_polynomial,
    exhaustive_exact_reliability,
    fixed_failure_error_probability,
    frontier_exact_reliability,
    reliability_polynomial,
)
from .ptm import PtmWidthError, ptm_reliability
from .consolidated import (
    ConsolidatedAnalyzer,
    ConsolidatedResult,
    output_joint_distributions,
)
from .sensitivity import (
    asymmetry_report,
    epsilon_map,
    rank_critical_gates,
    single_pass_sensitivities,
)
from .comparison import Comparison, MethodRow, compare_methods
from .analytical import (
    compositional_delta,
    multiplexing_trajectory,
    nand_excitation_step,
    nand_fixed_points,
    von_neumann_threshold,
)

__all__ = [
    "bdd_observabilities", "compute_observabilities",
    "sampled_observabilities",
    "ClosedFormResult", "MultiOutputObservabilityModel",
    "ObservabilityModel", "ResultProtocol", "closed_form_delta",
    "CompiledCorrelatedPass", "CompiledPassUnsupported",
    "CompiledSinglePass", "SweepResult", "TensorBatch",
    "SinglePassAnalyzer", "SinglePassResult", "group_per_frame",
    "SequentialAnalyzer", "SteadyStateResult",
    "ExactResult", "bdd_exact_reliability", "evaluate_polynomial",
    "exhaustive_exact_reliability", "fixed_failure_error_probability",
    "frontier_exact_reliability", "reliability_polynomial",
    "PtmWidthError", "ptm_reliability",
    "ConsolidatedAnalyzer", "ConsolidatedResult",
    "output_joint_distributions",
    "asymmetry_report", "epsilon_map", "rank_critical_gates",
    "single_pass_sensitivities",
    "Comparison", "MethodRow", "compare_methods",
    "compositional_delta", "multiplexing_trajectory",
    "nand_excitation_step", "nand_fixed_points", "von_neumann_threshold",
]
