"""Exact reliability oracles for small circuits.

Two independent exact algorithms, used to validate the fast analyses:

* :func:`exhaustive_exact_reliability` enumerates every gate-failure subset
  (``2**n_gates`` bit-parallel simulations over all input vectors) — the
  brute-force definition of delta under the BSC gate model;
* :func:`frontier_exact_reliability` performs exact forward inference: for
  each input vector it propagates the joint distribution of the *live* wire
  values through the circuit, eliminating wires after their last use.  Cost
  is exponential only in the frontier width, so deep-but-narrow circuits
  (long chains, trees) far beyond the subset enumerator's reach stay exact.

Also here: :func:`fixed_failure_error_probability`, the exact probability
that deterministically flipping a chosen gate set changes an output — the
"46/256"-style quantities of the paper's Sec. 3.1 discussion, returned as
an exact :class:`fractions.Fraction`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..circuit import Circuit, evaluate_gate
from ..sim import patterns
from ..spec import EpsilonSpec, epsilon_of, validate_epsilon
from ..sim.simulator import CompiledCircuit


@dataclass
class ExactResult:
    """Exact per-output and consolidated error probabilities."""

    per_output: Dict[str, float]
    any_output: float
    method: str

    def delta(self, output: Optional[str] = None) -> float:
        if output is None:
            if len(self.per_output) != 1:
                raise ValueError("output name required for multi-output result")
            return next(iter(self.per_output.values()))
        return self.per_output[output]

    def to_dict(self) -> Dict[str, float]:
        """JSON-serializable view (shared ``ResultProtocol`` surface)."""
        return {
            "per_output": {out: float(d)
                           for out, d in self.per_output.items()},
            "any_output": float(self.any_output),
            "method": self.method,
        }


def exhaustive_exact_reliability(circuit: Circuit,
                                 eps: EpsilonSpec,
                                 max_gates: int = 18,
                                 max_inputs: int = 16) -> ExactResult:
    """Exact delta by enumerating all gate-failure subsets.

    For each subset ``S`` of gates, flip exactly those gates' outputs on
    every pattern; the subset's probability is
    ``prod_{g in S} eps_g * prod_{g not in S} (1 - eps_g)``.  Cost:
    ``2**n_gates`` bit-parallel simulations — guard rails via ``max_gates``
    / ``max_inputs``.
    """
    validate_epsilon(eps, circuit)
    n_gates = circuit.num_gates
    n_inputs = len(circuit.inputs)
    if n_gates > max_gates:
        raise ValueError(
            f"{n_gates} gates exceeds max_gates={max_gates} "
            "(exponential enumeration)")
    if n_inputs > max_inputs:
        raise ValueError(
            f"{n_inputs} inputs exceeds max_inputs={max_inputs}")

    compiled = CompiledCircuit(circuit)
    input_pack = patterns.exhaustive_pack(circuit.inputs)
    n_patterns = 1 << n_inputs
    effective = max(64, n_patterns)  # packs repeat cyclically below 6 inputs
    clean = compiled.run(input_pack)
    gate_names = [name for name, _ in compiled.gate_slots]
    gate_eps = [epsilon_of(eps, g) for g in gate_names]
    n_words = len(next(iter(input_pack.values())))
    all_ones = patterns.ones(n_words)

    error_acc = {name: 0.0 for name, _ in compiled.output_slots}
    any_acc = 0.0
    for subset in range(1 << n_gates):
        weight = 1.0
        for t, e in enumerate(gate_eps):
            weight *= e if (subset >> t) & 1 else 1.0 - e
        if weight == 0.0:
            continue
        flip_set = {gate_names[t] for t in range(n_gates)
                    if (subset >> t) & 1}

        def noise(name: str, words: int) -> Optional[np.ndarray]:
            return all_ones if name in flip_set else None

        noisy = compiled.run(input_pack, noise=noise)
        any_diff = np.zeros(n_words, dtype=np.uint64)
        for name, slot in compiled.output_slots:
            diff = np.bitwise_xor(clean[slot], noisy[slot])
            error_acc[name] += weight * (patterns.popcount(diff) / effective)
            np.bitwise_or(any_diff, diff, out=any_diff)
        any_acc += weight * (patterns.popcount(any_diff) / effective)

    return ExactResult(per_output=error_acc, any_output=any_acc,
                       method="exhaustive")


def fixed_failure_error_probability(circuit: Circuit,
                                    failed_gates: Iterable[str],
                                    output: Optional[str] = None) -> Fraction:
    """Exact Pr[output changes | the given gates' outputs are all flipped].

    The probability is over uniform primary inputs and returned as an exact
    fraction with denominator ``2**n_inputs`` — directly comparable to the
    paper's exhaustive "46/256" analysis of joint gate failures.
    """
    if output is None:
        if len(circuit.outputs) != 1:
            raise ValueError("output name required for multi-output circuit")
        output = circuit.outputs[0]
    failed = set(failed_gates)
    for g in failed:
        if not circuit.node(g).gate_type.is_logic:
            raise ValueError(f"{g!r} is not a logic gate")
    n_inputs = len(circuit.inputs)
    if n_inputs > 20:
        raise ValueError("exact fixed-failure analysis limited to 20 inputs")
    compiled = CompiledCircuit(circuit)
    input_pack = patterns.exhaustive_pack(circuit.inputs)
    n_words = len(next(iter(input_pack.values())))
    all_ones = patterns.ones(n_words)
    clean = compiled.run(input_pack)

    def noise(name: str, words: int) -> Optional[np.ndarray]:
        return all_ones if name in failed else None

    noisy = compiled.run(input_pack, noise=noise)
    slot = dict(compiled.output_slots)[output]
    diff = np.bitwise_xor(clean[slot], noisy[slot])
    effective = max(64, 1 << n_inputs)
    count = patterns.popcount(diff)
    # Below 6 inputs the packs repeat the input space cyclically, so the
    # count scales by the repetition factor and the fraction still reduces
    # to (true count) / 2**n_inputs exactly.
    return Fraction(count, effective)


def reliability_polynomial(circuit: Circuit,
                           max_gates: int = 18,
                           max_inputs: int = 16) -> Dict[int, float]:
    """The exact conditional error probabilities per failure count.

    Returns ``{k: p_k}`` where ``p_k`` is the probability (over uniform
    inputs and uniform size-k gate subsets) that flipping exactly those k
    gate outputs changes at least one output.  For a *uniform* eps the
    any-output delta is then the polynomial

        delta(eps) = sum_k C(n, k) eps^k (1-eps)^(n-k) p_k,

    evaluated by :func:`evaluate_polynomial` — one enumeration, every eps
    for free (the exact counterpart of the stratified estimator).
    """
    n_gates = circuit.num_gates
    n_inputs = len(circuit.inputs)
    if n_gates > max_gates:
        raise ValueError(f"{n_gates} gates exceeds max_gates={max_gates}")
    if n_inputs > max_inputs:
        raise ValueError(f"{n_inputs} inputs exceeds max_inputs={max_inputs}")
    compiled = CompiledCircuit(circuit)
    input_pack = patterns.exhaustive_pack(circuit.inputs)
    effective = max(64, 1 << n_inputs)
    clean = compiled.run(input_pack)
    gate_names = [name for name, _ in compiled.gate_slots]
    n_words = len(next(iter(input_pack.values())))
    all_ones = patterns.ones(n_words)

    sums: Dict[int, float] = {k: 0.0 for k in range(n_gates + 1)}
    counts: Dict[int, int] = {k: 0 for k in range(n_gates + 1)}
    for subset in range(1 << n_gates):
        k = bin(subset).count("1")
        flip_set = {gate_names[t] for t in range(n_gates)
                    if (subset >> t) & 1}

        def noise(name: str, words: int) -> Optional[np.ndarray]:
            return all_ones if name in flip_set else None

        noisy = compiled.run(input_pack, noise=noise)
        any_diff = np.zeros(n_words, dtype=np.uint64)
        for _, slot in compiled.output_slots:
            np.bitwise_or(
                any_diff, np.bitwise_xor(clean[slot], noisy[slot]),
                out=any_diff)
        sums[k] += patterns.popcount(any_diff) / effective
        counts[k] += 1
    return {k: sums[k] / counts[k] for k in sums}


def evaluate_polynomial(polynomial: Dict[int, float], n_gates: int,
                        eps: float) -> float:
    """Evaluate a :func:`reliability_polynomial` at one uniform eps."""
    from math import comb
    return sum(comb(n_gates, k) * eps ** k * (1 - eps) ** (n_gates - k) * p
               for k, p in polynomial.items())


def bdd_exact_reliability(circuit: Circuit,
                          eps: EpsilonSpec,
                          output: Optional[str] = None,
                          node_limit: int = 1_000_000) -> float:
    """Exact delta for one output via a BDD over the (input, fault) space.

    One Boolean fault variable ``z_g`` per gate models its BSC flip; the
    faulty function is built with every gate output XOR-ed with its fault
    variable, and delta is the *weighted* satisfaction probability of
    ``F_faulty XOR F_clean`` with ``Pr[z_g] = eps_g`` and uniform inputs.
    Exponential only in BDD size — handles deep circuits far beyond the
    ``2**n_gates`` subset enumerators (a 60-gate chain is trivial here).
    """
    from ..bdd import BddManager
    from ..bdd.ops import _gate_bdd
    if output is None:
        if len(circuit.outputs) != 1:
            raise ValueError("output name required for multi-output circuit")
        output = circuit.outputs[0]
    validate_epsilon(eps, circuit)
    cone = circuit.cone(output)
    mgr = BddManager(node_limit=node_limit)
    var_probs = []
    clean_nodes = {}
    faulty_nodes = {}
    for pi in cone.inputs:
        v = mgr.new_var(pi)
        clean_nodes[pi] = v
        faulty_nodes[pi] = v
        var_probs.append(0.5)
    # Interleave each gate's fault variable at creation time (a reasonable
    # static order: the fault var sits near the logic it perturbs).
    for name in cone.topological_order():
        node = cone.node(name)
        if node.gate_type.is_input:
            continue
        clean_nodes[name] = _gate_bdd(
            mgr, node.gate_type, [clean_nodes[f] for f in node.fanins])
        if node.gate_type.is_constant:
            faulty_nodes[name] = clean_nodes[name]
            continue
        base = _gate_bdd(
            mgr, node.gate_type, [faulty_nodes[f] for f in node.fanins])
        e = epsilon_of(eps, name)
        if e > 0.0:
            z = mgr.new_var(f"z_{name}")
            var_probs.append(e)
            faulty_nodes[name] = base ^ z
        else:
            faulty_nodes[name] = base
    difference = clean_nodes[output] ^ faulty_nodes[output]
    return difference.probability(var_probs)


def frontier_exact_reliability(circuit: Circuit,
                               eps: EpsilonSpec,
                               max_inputs: int = 12,
                               max_states: int = 1 << 20,
                               eps10: Optional[EpsilonSpec] = None
                               ) -> ExactResult:
    """Exact delta via joint-distribution propagation over live wires.

    For each input vector the joint distribution over the values of the
    currently *live* wires (those still needed by unprocessed gates or
    outputs) is propagated gate by gate; each gate branches the
    distribution into its correct and flipped output with weights
    ``1 - eps`` / ``eps``.  Exponential only in the maximum frontier width.

    ``eps10`` selects asymmetric local channels (0→1 flips with ``eps``,
    1→0 with ``eps10``, judged on the gate's *computed* value) — this is
    the exact oracle for the asymmetric single-pass mode.
    """
    validate_epsilon(eps, circuit)
    if eps10 is not None:
        validate_epsilon(eps10, circuit)
    n_inputs = len(circuit.inputs)
    if n_inputs > max_inputs:
        raise ValueError(f"{n_inputs} inputs exceeds max_inputs={max_inputs}")

    topo = circuit.topological_order()
    position = {name: i for i, name in enumerate(topo)}
    outputs = circuit.outputs
    # Last topological position at which each node's value is still needed.
    last_use = {name: position[name] for name in topo}
    for name in topo:
        for fi in circuit.fanins(name):
            last_use[fi] = max(last_use[fi], position[name])
    for out in outputs:
        last_use[out] = len(topo)  # outputs stay live to the end

    per_output = {out: 0.0 for out in outputs}
    any_acc = 0.0
    input_weight = 1.0 / (1 << n_inputs)

    for x in range(1 << n_inputs):
        assignment = {name: (x >> i) & 1
                      for i, name in enumerate(circuit.inputs)}
        clean = circuit.evaluate(assignment)
        # state: mapping {live-node -> value as frozenset of (name,value)}.
        # Encoded as frozenset of names holding value 1 among live nodes.
        live: List[str] = list(circuit.inputs)
        states: Dict[frozenset, float] = {
            frozenset(n for n in live if assignment[n]): 1.0}
        for name in topo:
            node = circuit.node(name)
            if node.gate_type.is_input:
                continue
            is_logic = node.gate_type.is_logic
            e01 = epsilon_of(eps, name) if is_logic else 0.0
            e10 = (epsilon_of(eps10, name)
                   if is_logic and eps10 is not None else e01)
            new_states: Dict[frozenset, float] = {}
            for state, prob in states.items():
                in_values = [1 if fi in state else 0 for fi in node.fanins]
                correct = evaluate_gate(node.gate_type, in_values)
                e = e10 if correct else e01
                for flipped in (0, 1):
                    p = prob * (e if flipped else 1.0 - e)
                    if p == 0.0:
                        continue
                    value = correct ^ flipped
                    new_state = state | {name} if value else state
                    new_states[new_state] = new_states.get(new_state, 0.0) + p
            # Kill wires whose last use has passed (keep outputs).
            pos = position[name]
            dead = {n for n in live if last_use[n] <= pos}
            live = [n for n in live if n not in dead] + [name]
            if dead:
                reduced: Dict[frozenset, float] = {}
                for state, prob in new_states.items():
                    key = state - dead
                    reduced[key] = reduced.get(key, 0.0) + prob
                new_states = reduced
            states = new_states
            if len(states) > max_states:
                raise MemoryError(
                    f"frontier exceeded max_states={max_states}")

        any_err = 0.0
        err = {out: 0.0 for out in outputs}
        for state, prob in states.items():
            wrong = [out for out in outputs
                     if (1 if out in state else 0) != clean[out]]
            for out in wrong:
                err[out] += prob
            if wrong:
                any_err += prob
        for out in outputs:
            per_output[out] += input_weight * err[out]
        any_acc += input_weight * any_err

    return ExactResult(per_output=per_output, any_output=any_acc,
                       method="frontier")
