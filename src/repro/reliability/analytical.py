"""Analytical baselines: von Neumann multiplexing and compositional rules.

The paper's Sec. 2 positions two families of prior analytical work:

* **von Neumann's probabilistic logics** [3]: the NAND-multiplexing
  construction and its stimulated-fraction recurrence, from which the
  famous per-gate noise threshold (eps* = (3 - sqrt(7))/4 ≈ 0.0886 for
  2-input NAND networks) falls out.  Implemented here both as the
  executive-organ recurrence and as a numeric threshold finder.
* **simple compositional rules** (e.g. Sadek et al. [4]): propagate one
  scalar error probability per net, assuming uniform independent inputs
  everywhere.  "When used on irregular multi-level structures such as
  logic circuits, they suffer significant penalties in accuracy" — the
  :func:`compositional_delta` baseline quantifies exactly that penalty
  against the single-pass analysis in ``benchmarks/test_baselines.py``.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Tuple

from ..circuit import Circuit, truth_table
from ..spec import EpsilonSpec, epsilon_of, validate_epsilon


# ---------------------------------------------------------------------------
# von Neumann NAND multiplexing
# ---------------------------------------------------------------------------

def nand_excitation_step(x1: float, x2: float, eps: float) -> float:
    """One noisy-NAND stage of von Neumann's multiplexing analysis.

    ``x1``/``x2`` are the fractions of stimulated (logic-1) wires in the
    two input bundles; the output bundle's stimulated fraction is
    ``(1 - x1 x2)`` flipped by the gate noise ``eps``.
    """
    product = x1 * x2
    return (1.0 - eps) * (1.0 - product) + eps * product


def multiplexing_trajectory(x0: float, eps: float,
                            stages: int) -> Tuple[float, ...]:
    """Iterate the NAND executive organ ``stages`` times from fraction x0.

    Both bundle inputs are fed from the previous stage (the classic
    single-line analysis used to locate the noise threshold).
    """
    values = [x0]
    x = x0
    for _ in range(stages):
        x = nand_excitation_step(x, x, eps)
        values.append(x)
    return tuple(values)


def nand_fixed_points(eps: float) -> Tuple[float, ...]:
    """Real fixed points of ``x = (1-eps)(1-x^2) + eps x^2`` in [0, 1].

    Solves ``(1 - 2 eps) x^2 + x - (1 - eps) = 0``.
    """
    a = 1.0 - 2.0 * eps
    if abs(a) < 1e-15:
        return (2.0 / 3.0,)  # eps = 1/2: x = 1 - eps - ... => linear case
    disc = 1.0 + 4.0 * a * (1.0 - eps)
    roots = ((-1.0 + math.sqrt(disc)) / (2.0 * a),
             (-1.0 - math.sqrt(disc)) / (2.0 * a))
    return tuple(sorted(r for r in roots if 0.0 <= r <= 1.0))


def von_neumann_threshold(tolerance: float = 1e-9) -> float:
    """The noise threshold of 2-input NAND multiplexing, found numerically.

    Below the threshold the period-2 iteration of the executive organ
    keeps two distinguishable stimulation levels (computation survives);
    above it the double-step map collapses to a single stable fixed point.
    Von Neumann's closed form is ``(3 - sqrt(7)) / 4`` ≈ 0.08856; this
    bisection recovers it from the recurrence alone (pinned by tests).
    """
    def distinguishable(eps: float) -> bool:
        # Iterate the double-step map from a nearly clean bundle; if the
        # long-run level stays away from the fixed point, states survive.
        x = 0.99
        for _ in range(10_000):
            x = nand_excitation_step(
                nand_excitation_step(x, x, eps),
                nand_excitation_step(x, x, eps), eps)
        fixed = nand_fixed_points(eps)
        return all(abs(x - f) > 1e-4 for f in fixed)

    lo, hi = 0.0, 0.25
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if distinguishable(mid):
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


# ---------------------------------------------------------------------------
# Naive compositional reliability rules
# ---------------------------------------------------------------------------

def _uniform_flip_probability(truth: Tuple[int, ...], k: int,
                              input_errors: Iterable[float]) -> float:
    """Probability input errors flip the output, inputs assumed uniform.

    The compositional simplification: every input vector equally likely
    and input error events independent and *symmetric* (one scalar per
    net, no 0->1 / 1->0 split, no signal correlations).
    """
    errors = list(input_errors)
    total = 0.0
    n_vectors = 1 << k
    for v in range(n_vectors):
        flip = 0.0
        for vp in range(n_vectors):
            if truth[vp] == truth[v]:
                continue
            term = 1.0
            for t in range(k):
                q = errors[t]
                term *= q if ((v ^ vp) >> t) & 1 else 1.0 - q
            flip += term
        total += flip / n_vectors
    return total


def compositional_delta(circuit: Circuit,
                        eps: EpsilonSpec) -> Dict[str, float]:
    """Scalar-error compositional analysis (the Sec. 2 baseline).

    One error probability per net, propagated in topological order with
    uniform-input weight vectors and no correlation handling.  Fast and
    simple — and measurably less accurate than the single-pass analysis on
    multi-level logic, which is precisely the paper's motivation.
    """
    validate_epsilon(eps, circuit)
    q: Dict[str, float] = {}
    for name in circuit.topological_order():
        node = circuit.node(name)
        if not node.gate_type.is_logic:
            q[name] = 0.0
            continue
        truth = truth_table(node.gate_type, node.arity)
        p_prop = _uniform_flip_probability(
            truth, node.arity, (q[f] for f in node.fanins))
        p_prop = min(1.0, max(0.0, p_prop))
        e = epsilon_of(eps, name)
        q[name] = (1.0 - e) * p_prop + e * (1.0 - p_prop)
    return {out: q[out] for out in circuit.outputs}
