"""Probabilistic transfer matrix (PTM) reliability analysis.

A faithful dense reimplementation of the approach of Krishnaswamy et al.
(DATE 2005), the baseline the paper contrasts with: the circuit is
levelized, each level's behaviour under gate noise is a stochastic matrix
over wire-vector states (gate PTMs tensored with identity pass-throughs and
fanout/wiring maps), and the circuit PTM is the product of the level
matrices.  The output error probability is then read off by comparing the
noisy output distribution with the ideal (noise-free) transfer function.

The method is *exact* — it serves as a second oracle besides
:mod:`repro.reliability.exact` — but its storage is exponential in the
level width, which is precisely the scalability wall the paper's Sec. 2
describes ("massive matrix storage and manipulation overhead").  The
``bench_perf`` benchmark quantifies that wall against the single-pass
algorithm.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..circuit import Circuit, truth_table
from ..spec import EpsilonSpec, epsilon_of, validate_epsilon
from .exact import ExactResult


class PtmWidthError(ValueError):
    """Raised when a circuit's level width exceeds the dense-PTM budget."""


def _levelize(circuit: Circuit) -> List[List[str]]:
    """Group gates by logic level, 1..depth."""
    levels: Dict[int, List[str]] = {}
    for gate in circuit.topological_gates():
        levels.setdefault(circuit.level(gate), []).append(gate)
    return [levels[lv] for lv in sorted(levels)]


def ptm_reliability(circuit: Circuit,
                    eps: EpsilonSpec,
                    max_width: int = 12,
                    max_inputs: int = 12) -> ExactResult:
    """Exact delta for every output via dense PTM propagation.

    Parameters
    ----------
    max_width:
        Maximum wires alive across any level boundary; the dense transfer
        matrix for a level is ``2**w_in x 2**w_out``.
    max_inputs:
        Maximum primary inputs (the row space is ``2**n_inputs``).
    """
    validate_epsilon(eps, circuit)
    circuit.validate()
    n_inputs = len(circuit.inputs)
    if n_inputs > max_inputs:
        raise PtmWidthError(
            f"{n_inputs} inputs exceeds max_inputs={max_inputs}")
    for node in circuit:
        if node.gate_type.is_constant:
            raise PtmWidthError("constant nodes are not supported in the "
                                "PTM evaluator; fold them first")

    level_gates = _levelize(circuit)
    topo_pos = {name: i for i, name in enumerate(circuit.topological_order())}
    outputs = set(circuit.outputs)

    # needed_after[L] = wires produced at level <= L that are consumed at
    # level > L or are primary outputs.
    def frontier_after(level: int) -> List[str]:
        wires = []
        for name in circuit.topological_order():
            if circuit.level(name) > level:
                continue
            if name in outputs or any(circuit.level(c) > level
                                      for c in circuit.fanouts(name)):
                wires.append(name)
        return sorted(wires, key=topo_pos.get)

    current = sorted(circuit.inputs, key=topo_pos.get)
    if len(current) > max_width:
        raise PtmWidthError(
            f"input frontier {len(current)} exceeds max_width={max_width}")
    n_rows = 1 << n_inputs
    matrix = np.eye(n_rows)  # rows: input vectors, cols: current wire states

    for level_index, gates in enumerate(level_gates, start=1):
        nxt = frontier_after(level_index)
        # Wires produced *above* this level cannot be in nxt yet; wires in
        # nxt are either pass-throughs from `current` or this level's gates.
        pass_wires = [w for w in nxt if w in current]
        new_gates = [g for g in gates if g in nxt]
        kept = pass_wires + new_gates
        if set(kept) != set(nxt):  # pragma: no cover - structural invariant
            raise RuntimeError("frontier bookkeeping error")
        w_in, w_out = len(current), len(kept)
        if max(w_in, w_out) > max_width:
            raise PtmWidthError(
                f"level {level_index} width {max(w_in, w_out)} exceeds "
                f"max_width={max_width}")

        cur_pos = {w: i for i, w in enumerate(current)}
        out_pos = {w: i for i, w in enumerate(kept)}
        states = np.arange(1 << w_in, dtype=np.int64)

        # Pass-through wires: copy their bit to the new position.
        pass_index = np.zeros(1 << w_in, dtype=np.int64)
        for w in pass_wires:
            bit = (states >> cur_pos[w]) & 1
            pass_index |= bit << out_pos[w]

        # Error-free outputs of this level's gates (including gates dropped
        # from the frontier: none — gates with no consumers and not outputs
        # simply never appear in nxt and can be skipped entirely).
        gate_correct = []
        for g in gates:
            node = circuit.node(g)
            tt = np.array(truth_table(node.gate_type, node.arity),
                          dtype=np.int64)
            idx = np.zeros(1 << w_in, dtype=np.int64)
            for t, fi in enumerate(node.fanins):
                idx |= ((states >> cur_pos[fi]) & 1) << t
            gate_correct.append(tt[idx])

        kept_gate_ids = [i for i, g in enumerate(gates) if g in out_pos]
        dropped = [i for i in range(len(gates)) if i not in kept_gate_ids]
        # Dropped gates (dead outputs) contribute no state bits and their
        # noise marginalizes out; ignore them.
        del dropped

        transfer = np.zeros((1 << w_in, 1 << w_out))
        n_kept = len(kept_gate_ids)
        for flips in range(1 << n_kept):
            prob = 1.0
            col = pass_index.copy()
            for t, gi in enumerate(kept_gate_ids):
                g = gates[gi]
                e = epsilon_of(eps, g)
                flip = (flips >> t) & 1
                prob *= e if flip else 1.0 - e
                value = gate_correct[gi] ^ flip
                col |= value << out_pos[g]
            if prob == 0.0:
                continue
            np.add.at(transfer, (states, col), prob)
        matrix = matrix @ transfer
        current = kept

    # Compare the noisy distribution with the ideal outputs per input row.
    final_pos = {w: i for i, w in enumerate(current)}
    final_states = np.arange(matrix.shape[1], dtype=np.int64)
    per_output: Dict[str, float] = {}
    any_mismatch = np.zeros((n_rows, matrix.shape[1]), dtype=bool)
    input_names = circuit.inputs
    clean_outputs = {out: np.zeros(n_rows, dtype=np.int64)
                     for out in circuit.outputs}
    for x in range(n_rows):
        assignment = {name: (x >> i) & 1 for i, name in enumerate(input_names)}
        values = circuit.evaluate(assignment)
        for out in circuit.outputs:
            clean_outputs[out][x] = values[out]
    for out in circuit.outputs:
        bit = ((final_states >> final_pos[out]) & 1)[None, :]
        mismatch = bit != clean_outputs[out][:, None]
        per_output[out] = float((matrix * mismatch).sum() / n_rows)
        any_mismatch |= mismatch
    any_output = float((matrix * any_mismatch).sum() / n_rows)
    return ExactResult(per_output=per_output, any_output=any_output,
                       method="ptm")
