"""Multi-cycle soft-error propagation for sequential circuits.

A sequential circuit is analyzed one clock cycle at a time: each frame is
a single-pass run of the combinational core in which the state inputs
carry the error probabilities their flip-flops latched at the end of the
previous frame (frame 0 starts from error-free state).  Iterating the
frame map

    state_{t+1}[q] = node_errors_t[ D(q) ]

either a fixed number of cycles (:meth:`SequentialAnalyzer.frame_results`)
or to its fixed point (:meth:`SequentialAnalyzer.steady_state`) yields the
per-cycle output deltas and the steady-state flip probability of every
flop.

The frame runs reuse **one** compiled plan: :class:`CompiledSinglePass`
applies its ``input_error_rows`` at sweep time, so advancing a frame is a
row swap, not a re-lower.  The correlated kernel bakes input errors at
compile time, so correlation mode runs the scalar reference pass per
frame instead — same recurrence, scalar oracle.

Signal probabilities of the state inputs are held at the value used for
weight computation (0.5 unless overridden via ``input_probs``), the
propagation-probability convention for SER estimation.  Time-frame
unrolling (:func:`repro.circuit.unroll`) instead wires frame ``t`` state
bits to the actual frame ``t-1`` next-state logic, so its signal
probabilities are exact per frame; the two views agree on the error
*recurrence* but may differ in the weighting of state bits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional

from ..circuit import SequentialCircuit
from ..obs import trace_span
from ..probability.error_propagation import ERROR_FREE, ErrorProbability
from ..spec import EpsilonSpec
from .compiled_pass import CompiledSinglePass
from .protocol import single_output_delta
from .single_pass import SinglePassAnalyzer, SinglePassResult


@dataclass
class SteadyStateResult:
    """Fixed point of the frame recurrence (satisfies ResultProtocol).

    Attributes
    ----------
    per_output:
        Steady-state ``delta_y`` of every primary output.
    state_errors:
        Fixed-point propagated :class:`ErrorProbability` at each state
        input (keyed by flop output name).
    state_flip:
        Unconditional steady-state flip probability of each flop's
        next-state bit, ``(1-p1) p01 + p1 p10`` with ``p1`` the
        error-free probability of its data driver.
    per_frame:
        Per-output delta history, one entry per iterated frame — entry
        ``t`` is the cycle-``t`` output error, so the full accumulation
        trajectory is retained alongside the limit.
    residual:
        Largest absolute change of any state (p01, p10) component in the
        final iteration (``<= tol`` iff ``converged``).
    """

    per_output: Dict[str, float]
    state_errors: Dict[str, ErrorProbability]
    state_flip: Dict[str, float]
    iterations: int
    converged: bool
    tol: float
    residual: float
    per_frame: List[Dict[str, float]]

    def delta(self, output: Optional[str] = None) -> float:
        """Steady-state delta for one output (default: the only output)."""
        return single_output_delta(self.per_output, output)

    def cumulative(self, output: Optional[str] = None) -> float:
        """P[output wrong in at least one iterated cycle] (independence
        across cycles): ``1 - prod_t (1 - delta_t)``."""
        if output is None and len(self.per_output) != 1:
            raise ValueError("output name required for multi-output result")
        key = output or next(iter(self.per_output))
        ok = 1.0
        for frame in self.per_frame:
            ok *= 1.0 - frame[key]
        return 1.0 - ok

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable view with steady-state metadata."""
        return {
            "per_output": {out: float(d)
                           for out, d in self.per_output.items()},
            "frames": self.iterations,
            "per_frame": [dict(frame) for frame in self.per_frame],
            "steady_state": {
                "iterations": self.iterations,
                "converged": self.converged,
                "tol": self.tol,
                "residual": self.residual,
                "state_flip": {q: float(p)
                               for q, p in self.state_flip.items()},
            },
        }


class SequentialAnalyzer:
    """Frame-iterated single-pass analysis of a sequential circuit.

    Weights of the combinational core are computed once (state inputs at
    probability 0.5 unless ``input_probs`` overrides them); every frame is
    then one single-pass evaluation with swapped state-input error rows.

    Parameters mirror :class:`SinglePassAnalyzer` where they apply.
    ``use_correlation`` selects the Sec. 4.1 correction per frame — this
    forces the scalar path, since the correlated kernel bakes input
    errors at compile time.  ``input_errors`` seeds the *primary* inputs
    of every frame; state-input errors are owned by the iteration.
    """

    def __init__(self, seq: SequentialCircuit,
                 weight_method: str = "auto",
                 use_correlation: bool = False,
                 input_errors: Optional[Mapping[str, ErrorProbability]] = None,
                 n_patterns: int = 1 << 16,
                 seed: int = 0,
                 max_correlation_pairs: int = 1_000_000,
                 max_correlation_level_gap: Optional[int] = None,
                 input_probs: Optional[Mapping[str, float]] = None,
                 compiled: str = "auto",
                 weights_cache_dir: Optional[str] = None,
                 backend: Optional[str] = None):
        seq.validate()
        self.seq = seq
        self.use_correlation = use_correlation
        base = dict(input_errors or {})
        for q in seq.state_names:
            if q in base:
                raise ValueError(
                    f"input_errors may not seed state input {q!r}: state "
                    f"errors are produced by the frame iteration")
        self._base_errors = base
        probs = dict(input_probs or {})
        for q in seq.state_names:
            probs.setdefault(q, 0.5)
        self._analyzer = SinglePassAnalyzer(
            seq.core,
            weight_method=weight_method,
            use_correlation=use_correlation,
            input_errors=base,
            n_patterns=n_patterns,
            seed=seed,
            max_correlation_pairs=max_correlation_pairs,
            max_correlation_level_gap=max_correlation_level_gap,
            input_probs=probs,
            compiled="off" if use_correlation else compiled,
            weights_cache_dir=weights_cache_dir,
            backend=backend)

    @property
    def core_analyzer(self) -> SinglePassAnalyzer:
        """The per-frame single-pass engine (weights computed once)."""
        return self._analyzer

    # ------------------------------------------------------------------
    def _set_state(self, state: Mapping[str, ErrorProbability]) -> None:
        """Point the next frame run at the given state-input errors."""
        merged = dict(self._base_errors)
        merged.update(state)
        analyzer = self._analyzer
        analyzer.input_errors = merged
        plan = analyzer.plan
        if isinstance(plan, CompiledSinglePass):
            plan.input_error_rows = [
                (plan.index[name], ep) for name, ep in merged.items()
                if ep.p01 != 0.0 or ep.p10 != 0.0]

    def _next_state(self, res: SinglePassResult
                    ) -> Dict[str, ErrorProbability]:
        return {ff.name: res.node_errors[ff.data] for ff in self.seq.flops}

    # ------------------------------------------------------------------
    def frame_results(self, eps: EpsilonSpec, frames: int,
                      eps10: Optional[EpsilonSpec] = None
                      ) -> List[SinglePassResult]:
        """Run ``frames`` clock cycles; element ``t`` is cycle ``t``'s
        core result (state inputs carrying the cycle ``t-1`` errors)."""
        if frames < 1:
            raise ValueError(f"frames must be >= 1, got {frames}")
        state: Dict[str, ErrorProbability] = {
            q: ERROR_FREE for q in self.seq.state_names}
        results: List[SinglePassResult] = []
        with trace_span("sequential.frames", circuit=self.seq.name,
                        frames=frames):
            for _ in range(frames):
                self._set_state(state)
                res = self._analyzer.run(eps, eps10)
                results.append(res)
                state = self._next_state(res)
        return results

    def frame_deltas(self, eps: EpsilonSpec, frames: int,
                     eps10: Optional[EpsilonSpec] = None
                     ) -> List[Dict[str, float]]:
        """``per_output`` delta map of each cycle, as plain floats."""
        return [{out: float(v) for out, v in res.per_output.items()}
                for res in self.frame_results(eps, frames, eps10)]

    def cumulative_deltas(self, eps: EpsilonSpec, frames: int,
                          eps10: Optional[EpsilonSpec] = None
                          ) -> Dict[str, float]:
        """Per-output P[wrong in >=1 of ``frames`` cycles], assuming
        independent cycle failures: ``1 - prod_t (1 - delta_t)``."""
        per_frame = self.frame_deltas(eps, frames, eps10)
        out: Dict[str, float] = {}
        for po in self.seq.outputs:
            ok = 1.0
            for frame in per_frame:
                ok *= 1.0 - frame[po]
            out[po] = 1.0 - ok
        return out

    def steady_state(self, eps: EpsilonSpec,
                     eps10: Optional[EpsilonSpec] = None,
                     tol: float = 1e-10,
                     max_frames: int = 1024) -> SteadyStateResult:
        """Iterate the frame recurrence to its fixed point.

        Stops when no state error component (p01 or p10) moved more than
        ``tol`` in a cycle, or after ``max_frames`` cycles
        (``converged=False``).  A flop-free circuit converges after one
        frame by construction.
        """
        if max_frames < 1:
            raise ValueError(f"max_frames must be >= 1, got {max_frames}")
        state: Dict[str, ErrorProbability] = {
            q: ERROR_FREE for q in self.seq.state_names}
        history: List[Dict[str, float]] = []
        converged = False
        residual = math.inf
        res: Optional[SinglePassResult] = None
        with trace_span("sequential.steady_state", circuit=self.seq.name,
                        tol=tol):
            for _ in range(max_frames):
                self._set_state(state)
                res = self._analyzer.run(eps, eps10)
                history.append({out: float(v)
                                for out, v in res.per_output.items()})
                new_state = self._next_state(res)
                residual = max(
                    (max(abs(new_state[q].p01 - state[q].p01),
                         abs(new_state[q].p10 - state[q].p10))
                     for q in new_state), default=0.0)
                state = new_state
                if residual <= tol:
                    converged = True
                    break
        signal = res.signal_prob
        state_flip = {
            ff.name: float(state[ff.name].total(signal[ff.data]))
            for ff in self.seq.flops}
        return SteadyStateResult(
            per_output=dict(history[-1]),
            state_errors=state,
            state_flip=state_flip,
            iterations=len(history),
            converged=converged,
            tol=tol,
            residual=float(residual),
            per_frame=history)

    def steady_state_curve(self, eps_values: Iterable[float],
                           output: Optional[str] = None,
                           tol: float = 1e-10,
                           max_frames: int = 1024) -> Dict[float, float]:
        """Steady-state delta(eps) over uniform failure probabilities."""
        return {float(e): self.steady_state(e, tol=tol,
                                            max_frames=max_frames
                                            ).delta(output)
                for e in eps_values}
