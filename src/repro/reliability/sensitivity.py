"""Gate criticality and sensitivity analysis.

Two complementary sensitivities:

* the *closed-form gradient* of Eqn. (3) — exact, O(n), available from
  :meth:`repro.reliability.closed_form.ObservabilityModel.gradient`;
* the *single-pass finite-difference sensitivity* implemented here, which
  measures how much each gate's failure probability moves the (correlation
  corrected) single-pass delta.  This is the quantity that drives the
  selective redundancy insertion application of Sec. 5.1.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..circuit import Circuit
from ..spec import EpsilonSpec, epsilon_of
from .single_pass import SinglePassAnalyzer


def epsilon_map(circuit: Circuit, eps: EpsilonSpec) -> Dict[str, float]:
    """Materialize an epsilon spec into an explicit per-gate mapping."""
    return {g: epsilon_of(eps, g) for g in circuit.topological_gates()}


def _objective(result, output: Optional[str]) -> float:
    """The scalar being differentiated: one output's delta, or the mean
    delta over all outputs when no output is named."""
    if output is not None:
        return result.per_output[output]
    values = result.per_output.values()
    return sum(values) / len(values)


def single_pass_sensitivities(analyzer: SinglePassAnalyzer,
                              eps: EpsilonSpec,
                              output: Optional[str] = None,
                              gates: Optional[Iterable[str]] = None,
                              step: float = 1e-3) -> Dict[str, float]:
    """Finite-difference d delta / d eps_g for each gate.

    Each gate's failure probability is perturbed by ``step`` (downward when
    the nominal value is too close to the 0.5 ceiling) and the single pass
    re-run; with weights cached in the analyzer each evaluation is O(n).
    With ``output=None`` on a multi-output circuit the mean delta over all
    outputs is differentiated.
    """
    circuit = analyzer.circuit
    base_eps = epsilon_map(circuit, eps)
    base = _objective(analyzer.run(base_eps), output)
    sensitivities: Dict[str, float] = {}
    targets = list(gates) if gates is not None else circuit.topological_gates()
    for gate in targets:
        perturbed = dict(base_eps)
        e0 = perturbed[gate]
        h = step if e0 + step <= 0.5 else -step
        perturbed[gate] = e0 + h
        delta = _objective(analyzer.run(perturbed), output)
        sensitivities[gate] = (delta - base) / h
    return sensitivities


def rank_critical_gates(analyzer: SinglePassAnalyzer,
                        eps: EpsilonSpec,
                        output: Optional[str] = None,
                        top_k: Optional[int] = None,
                        step: float = 1e-3) -> List[Tuple[str, float]]:
    """Gates sorted by decreasing single-pass sensitivity.

    The head of this list is where selective hardening (TMR, gate sizing)
    buys the most reliability per unit cost — the Sec. 5.1 use case.
    """
    sens = single_pass_sensitivities(analyzer, eps, output=output, step=step)
    ranked = sorted(sens.items(), key=lambda kv: kv[1], reverse=True)
    return ranked[:top_k] if top_k is not None else ranked


def asymmetry_report(analyzer: SinglePassAnalyzer,
                     eps: EpsilonSpec) -> Dict[str, Tuple[float, float]]:
    """Per-node (Pr 0→1, Pr 1→0) — the asymmetric-redundancy signal.

    The paper notes quadded-style redundancy mitigates 0→1 and 1→0 errors
    differently by construction; this report exposes the per-node
    directional error probabilities that such insertion should target.
    """
    result = analyzer.run(eps)
    return {name: (ep.p01, ep.p10)
            for name, ep in result.node_errors.items()
            if analyzer.circuit.node(name).gate_type.is_logic}
