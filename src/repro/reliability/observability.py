"""Noiseless gate observability computation (paper Sec. 3).

The observability ``o_i`` of gate ``i`` at output ``y`` is the probability,
over uniform primary inputs, that forcing a flip of gate ``i``'s error-free
output changes ``y`` — all other gates noise-free.  The paper computes these
with BDDs (Boolean difference); a sampled bit-parallel estimator is provided
for circuits whose BDDs blow up.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..bdd import CircuitBdds, build_node_bdds
from ..circuit import Circuit, GateType
from ..sim.montecarlo import monte_carlo_observabilities
from ..bdd.ops import _gate_bdd


def bdd_observabilities(circuit: Circuit,
                        output: Optional[str] = None,
                        bdds: Optional[CircuitBdds] = None,
                        gates: Optional[List[str]] = None
                        ) -> Dict[str, float]:
    """Exact observability of every gate at one primary output.

    For each gate ``g`` the functions of its transitive fanout inside the
    output cone are rebuilt with ``g``'s function complemented; the
    observability is ``Pr[F XOR F_flipped]`` — the Boolean difference of the
    output with respect to the gate, evaluated under uniform inputs.

    Parameters
    ----------
    output:
        Output to observe at (defaults to the circuit's single output).
    bdds:
        Reuse previously built node BDDs.
    gates:
        Restrict to these gates (default: all gates in the output cone).
        Gates outside the cone have observability 0 by definition.
    """
    if output is None:
        if len(circuit.outputs) != 1:
            raise ValueError("output name required for multi-output circuit")
        output = circuit.outputs[0]
    if bdds is None:
        bdds = build_node_bdds(circuit)

    cone_nodes = circuit.transitive_fanin([output])
    cone_set = set(cone_nodes)
    cone_gates = [n for n in cone_nodes
                  if circuit.node(n).gate_type.is_logic]
    targets = cone_gates if gates is None else list(gates)

    # Downstream nodes (within the cone) that must be rebuilt per gate.
    fanout_sets: Dict[str, set] = {}
    for name in reversed(cone_nodes):
        downstream = {name}
        for consumer in circuit.fanouts(name):
            if consumer in cone_set:
                downstream |= fanout_sets.get(consumer, {consumer})
        fanout_sets[name] = downstream

    out_bdd = bdds[output]
    result: Dict[str, float] = {}
    for gate in targets:
        if gate not in cone_set:
            result[gate] = 0.0
            continue
        affected = fanout_sets[gate]
        rebuilt = {gate: ~bdds[gate]}
        for name in cone_nodes:
            if name == gate or name not in affected:
                continue
            node = circuit.node(name)
            fanin_bdds = [rebuilt.get(f, bdds[f]) for f in node.fanins]
            rebuilt[name] = _gate_bdd(bdds.manager, node.gate_type, fanin_bdds)
        flipped_out = rebuilt.get(output, out_bdd)
        result[gate] = (out_bdd ^ flipped_out).probability()
    return result


def sampled_observabilities(circuit: Circuit,
                            output: Optional[str] = None,
                            n_patterns: int = 1 << 14,
                            seed: int = 0) -> Dict[str, float]:
    """Sampled observabilities (bit-parallel flip simulation)."""
    return monte_carlo_observabilities(circuit, output=output,
                                       n_patterns=n_patterns, seed=seed)


def compute_observabilities(circuit: Circuit,
                            output: Optional[str] = None,
                            method: str = "auto",
                            n_patterns: int = 1 << 14,
                            seed: int = 0) -> Dict[str, float]:
    """Dispatch between the exact and sampled observability estimators.

    ``auto`` uses BDDs up to a few hundred gates and falls back to sampling
    beyond that (or if the BDD build exceeds its node limit).
    """
    if method == "bdd":
        return bdd_observabilities(circuit, output=output)
    if method == "sampled":
        return sampled_observabilities(circuit, output=output,
                                       n_patterns=n_patterns, seed=seed)
    if method != "auto":
        raise ValueError(f"unknown observability method {method!r}")
    if circuit.num_gates <= 400:
        from ..bdd import BddManager, BddSizeLimitError
        try:
            bdds = build_node_bdds(circuit, BddManager(node_limit=500_000))
            return bdd_observabilities(circuit, output=output, bdds=bdds)
        except BddSizeLimitError:
            pass
    return sampled_observabilities(circuit, output=output,
                                   n_patterns=n_patterns, seed=seed)
