"""Consolidated multi-output error probability (paper Sec. 5.1, Figs. 5/8).

The *consolidated output error* is the probability that at least one
primary output is in error.  The paper obtains it "by performing
correlation-based analysis described in Sec. 4.1 on the individual
delta curves"; concretely, for outputs ``a`` and ``b`` the joint error
probability expands over the four error-free value combinations:

    Pr(e_a, e_b) = sum_{va, vb} Pr(y_a = va, y_b = vb)
                   * Pr(a errs from va) * Pr(b errs from vb)
                   * C(a's event, b's event)

with ``C`` the Sec. 4.1 error-event correlation coefficient.  Two outputs
then consolidate by inclusion–exclusion; for more outputs the pairwise
no-error correlation factors chain multiplicatively (documented
approximation; the Monte Carlo ``any_output`` estimate is the reference).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, Optional, Tuple

import numpy as np

from ..circuit import Circuit
from ..probability.error_propagation import EVENT_0TO1, EVENT_1TO0
from ..sim import patterns
from ..sim.simulator import CompiledCircuit, exhaustive_simulate
from .single_pass import SinglePassAnalyzer, SinglePassResult

PairJoint = Dict[Tuple[str, str], np.ndarray]


def output_joint_distributions(circuit: Circuit,
                               n_patterns: Optional[int] = None,
                               seed: int = 0) -> PairJoint:
    """Joint error-free value distribution for every output pair.

    Returns ``{(a, b): array of 4}`` where index ``va + 2*vb`` holds
    ``Pr(y_a = va, y_b = vb)``.  Exact by exhaustive simulation up to 26
    inputs, sampled otherwise.  Like weight vectors, these depend only on
    structure and are computed once per circuit.
    """
    if n_patterns is None and len(circuit.inputs) <= 26:
        values = exhaustive_simulate(circuit)
        total = max(64, 1 << len(circuit.inputs))
    else:
        n = n_patterns or (1 << 16)
        rng = np.random.default_rng(seed)
        n_words = patterns.words_for_patterns(n)
        pack = patterns.random_pack(circuit.inputs, n_words, rng)
        compiled = CompiledCircuit(circuit)
        run = compiled.run(pack)
        values = {name: run[slot] for name, slot in compiled.output_slots}
        total = n
    joint: PairJoint = {}
    for a, b in combinations(circuit.outputs, 2):
        wa, wb = values[a], values[b]
        counts = np.zeros(4)
        for va in (0, 1):
            for vb in (0, 1):
                word = np.bitwise_and(wa if va else np.bitwise_not(wa),
                                      wb if vb else np.bitwise_not(wb))
                counts[va + 2 * vb] = (
                    patterns.masked_popcount(word, total)
                    if total >= 64 else patterns.popcount(word))
        joint[(a, b)] = counts / counts.sum()
    return joint


@dataclass
class ConsolidatedResult:
    """Consolidated (any-output) error probability and its ingredients."""

    #: Per-output delta (copied from the single-pass result).
    per_output: Dict[str, float]
    #: Pr[at least one output errs], with pairwise correlation correction.
    any_output: float
    #: Pr[at least one output errs] under full output independence.
    any_output_independent: float
    #: Pairwise joint error probabilities Pr(e_a and e_b).
    pairwise_joint_error: Dict[Tuple[str, str], float]

    def delta(self, output: Optional[str] = None) -> float:
        """delta for one output (default: the only output)."""
        if output is None:
            if len(self.per_output) != 1:
                raise ValueError("output name required for multi-output result")
            return next(iter(self.per_output.values()))
        return self.per_output[output]

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable view (shared ``ResultProtocol`` surface).

        Pairwise keys flatten to ``"a,b"`` strings so the dict survives
        ``json.dumps`` unchanged.
        """
        return {
            "per_output": {out: float(d)
                           for out, d in self.per_output.items()},
            "any_output": float(self.any_output),
            "any_output_independent": float(self.any_output_independent),
            "pairwise_joint_error": {
                f"{a},{b}": float(p)
                for (a, b), p in self.pairwise_joint_error.items()},
        }


class ConsolidatedAnalyzer:
    """Computes consolidated output error curves analytically.

    Wraps a :class:`SinglePassAnalyzer`; the output-pair joint value
    distributions are computed once at construction.
    """

    def __init__(self, circuit: Circuit,
                 analyzer: Optional[SinglePassAnalyzer] = None,
                 joint: Optional[PairJoint] = None,
                 n_patterns: Optional[int] = None,
                 seed: int = 0,
                 **analyzer_kwargs):
        self.circuit = circuit
        self.analyzer = analyzer if analyzer is not None else (
            SinglePassAnalyzer(circuit, seed=seed, **analyzer_kwargs))
        self.joint = joint if joint is not None else (
            output_joint_distributions(circuit, n_patterns=n_patterns,
                                       seed=seed))

    def consolidate(self, result: SinglePassResult) -> ConsolidatedResult:
        """Consolidate an existing single-pass result."""
        outputs = list(result.per_output)
        delta = result.per_output
        engine = result.correlation_engine
        pair_error: Dict[Tuple[str, str], float] = {}
        no_error = 1.0
        for out in outputs:
            no_error *= 1.0 - delta[out]
        correction = 1.0
        for a, b in combinations(outputs, 2):
            joint_ab = self._pair_joint_error(a, b, result, engine)
            pair_error[(a, b)] = joint_ab
            none_ab = max(0.0, 1.0 - delta[a] - delta[b] + joint_ab)
            denom = (1.0 - delta[a]) * (1.0 - delta[b])
            if denom > 0.0:
                correction *= none_ab / denom
        corrected_none = min(1.0, max(0.0, no_error * correction))
        return ConsolidatedResult(
            per_output=dict(delta),
            any_output=1.0 - corrected_none,
            any_output_independent=1.0 - no_error,
            pairwise_joint_error=pair_error,
        )

    def run(self, eps) -> ConsolidatedResult:
        """Single-pass analysis + consolidation for one eps vector."""
        return self.consolidate(self.analyzer.run(eps))

    def curve(self, eps_values) -> Dict[float, float]:
        """Consolidated any-output error over an eps sweep."""
        return {e: self.run(e).any_output for e in eps_values}

    # ------------------------------------------------------------------
    def _pair_joint_error(self, a: str, b: str,
                          result: SinglePassResult, engine) -> float:
        key = (a, b) if (a, b) in self.joint else (b, a)
        if key == (b, a):
            a, b = b, a
        dist = self.joint[key]
        ea, eb_ = result.node_errors[a], result.node_errors[b]
        total = 0.0
        for va in (0, 1):
            for vb in (0, 1):
                p_values = dist[va + 2 * vb]
                if p_values == 0.0:
                    continue
                event_a = EVENT_1TO0 if va else EVENT_0TO1
                event_b = EVENT_1TO0 if vb else EVENT_0TO1
                pa = ea.of_event(event_a)
                pb = eb_.of_event(event_b)
                if pa == 0.0 or pb == 0.0:
                    continue
                c = engine(a, event_a, b, event_b) if engine else 1.0
                total += p_values * min(min(pa, pb), pa * pb * c)
        return min(total, min(result.per_output[a], result.per_output[b]))
