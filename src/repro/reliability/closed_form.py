"""Observability-based closed-form reliability analysis (paper Sec. 3).

The headline result of Sec. 3 is Eqn. (3): with ``o_i`` the noiseless
observability of gate ``i`` at output ``y``,

    delta_y(eps) = 1/2 * (1 - prod_i (1 - 2 eps_i o_i)).

The derivation views each failed-and-observable gate as a flip of ``y``;
``y`` errs when an odd number of such flips occur, and the product form is
the parity generating function.  The expression is exact to first order in
the ``eps_i`` (single-failure dominance), which makes it the tool of choice
for soft-error-rate work, and cheap to re-evaluate: observabilities are
computed once, after which any new ``eps`` vector costs O(n) multiplies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence

from ..circuit import Circuit
from ..spec import EpsilonSpec, epsilon_of, validate_epsilon
from .observability import compute_observabilities


@dataclass
class ClosedFormResult:
    """Eqn. (3) evaluation packaged as a shared-protocol result object.

    Produced by :meth:`ObservabilityModel.analyze` and
    :meth:`MultiOutputObservabilityModel.analyze` so closed-form answers
    travel through the same ``delta()`` / ``per_output`` / ``to_dict()``
    surface as every other analysis
    (:class:`~repro.reliability.protocol.ResultProtocol`).
    """

    #: delta_y per output (only the modeled output for the 1-output model).
    per_output: Dict[str, float]
    #: First-order consolidated estimate; None for the 1-output model.
    any_output: Optional[float] = None
    method: str = "closed-form"

    def delta(self, output: Optional[str] = None) -> float:
        """delta for one output (default: the only output)."""
        if output is None:
            if len(self.per_output) != 1:
                raise ValueError("output name required for multi-output result")
            return next(iter(self.per_output.values()))
        return self.per_output[output]

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable view (shared ``ResultProtocol`` surface)."""
        data: Dict[str, object] = {
            "per_output": {out: float(d)
                           for out, d in self.per_output.items()},
            "method": self.method,
        }
        if self.any_output is not None:
            data["any_output"] = float(self.any_output)
        return data


def closed_form_delta(eps: EpsilonSpec,
                      observabilities: Dict[str, float]) -> float:
    """Evaluate Eqn. (3) for one output given gate observabilities.

    Computed as ``-expm1(sum(log1p(-2 eps_i o_i))) / 2`` so that the
    soft-error regime (eps ~ 1e-20 per cycle) does not underflow to zero
    the way the naive product would in double precision.
    """
    log_sum = 0.0
    for gate, o in observabilities.items():
        term = -2.0 * epsilon_of(eps, gate) * o
        if term <= -1.0:
            return 0.5  # a fully noisy, fully observable gate saturates delta
        log_sum += math.log1p(term)
    return -0.5 * math.expm1(log_sum)


class ObservabilityModel:
    """Precomputed-observability reliability model for one output.

    Build once per (circuit, output); then :meth:`delta` re-evaluates the
    closed form for arbitrary failure-probability vectors in O(n) — the
    flexibility the paper contrasts with Monte Carlo's full re-simulation.

    Parameters
    ----------
    circuit:
        Circuit under analysis.
    output:
        Output of interest (defaults to the single output).
    method:
        Observability estimator: ``"bdd"``, ``"sampled"``, or ``"auto"``.
    """

    def __init__(self, circuit: Circuit,
                 output: Optional[str] = None,
                 method: str = "auto",
                 observabilities: Optional[Dict[str, float]] = None,
                 n_patterns: int = 1 << 14,
                 seed: int = 0):
        if output is None:
            if len(circuit.outputs) != 1:
                raise ValueError(
                    "output name required for multi-output circuit")
            output = circuit.outputs[0]
        self.circuit = circuit
        self.output = output
        if observabilities is None:
            observabilities = compute_observabilities(
                circuit, output=output, method=method,
                n_patterns=n_patterns, seed=seed)
        #: Noiseless observability of each gate at :attr:`output`.
        self.observabilities = dict(observabilities)

    def delta(self, eps: EpsilonSpec) -> float:
        """delta_y(eps) via Eqn. (3)."""
        validate_epsilon(eps, self.circuit)
        return closed_form_delta(eps, self.observabilities)

    def analyze(self, eps: EpsilonSpec) -> ClosedFormResult:
        """Eqn. (3) for one eps vector as a protocol result object."""
        return ClosedFormResult(per_output={self.output: self.delta(eps)})

    def curve(self, eps_values: Iterable[float]) -> Dict[float, float]:
        """delta over a sweep of uniform gate failure probabilities."""
        return {e: self.delta(e) for e in eps_values}

    def derivative(self, eps: EpsilonSpec, gate: str) -> float:
        """Exact partial derivative d delta / d eps_gate of Eqn. (3).

        ``d/d eps_i [1/2 (1 - prod_j (1 - 2 eps_j o_j))]
        = o_i * prod_{j != i} (1 - 2 eps_j o_j)`` — the closed form's gate
        criticality, used for redundancy-targeting (Sec. 5.1).
        """
        if gate not in self.observabilities:
            raise KeyError(f"gate {gate!r} has no observability entry")
        product = 1.0
        for other, o in self.observabilities.items():
            if other != gate:
                product *= 1.0 - 2.0 * epsilon_of(eps, other) * o
        return self.observabilities[gate] * product

    def gradient(self, eps: EpsilonSpec) -> Dict[str, float]:
        """All partial derivatives at once (O(n) with prefix products)."""
        gates = list(self.observabilities)
        factors = [1.0 - 2.0 * epsilon_of(eps, g) * self.observabilities[g]
                   for g in gates]
        n = len(gates)
        prefix = [1.0] * (n + 1)
        for i, f in enumerate(factors):
            prefix[i + 1] = prefix[i] * f
        suffix = [1.0] * (n + 1)
        for i in range(n - 1, -1, -1):
            suffix[i] = suffix[i + 1] * factors[i]
        return {g: self.observabilities[g] * prefix[i] * suffix[i + 1]
                for i, g in enumerate(gates)}

    def critical_gates(self, eps: EpsilonSpec, top_k: int = 10
                       ) -> Sequence[str]:
        """Gates ranked by decreasing contribution to output error."""
        grad = self.gradient(eps)
        ranked = sorted(grad, key=grad.get, reverse=True)
        return ranked[:top_k]


class MultiOutputObservabilityModel:
    """Closed-form reliability across every output of a circuit.

    Holds one :class:`ObservabilityModel` per output plus the gates'
    *any-output* observabilities (probability a flip changes at least one
    output), which drive a first-order estimate of the consolidated
    failure probability — the natural circuit-level SER figure.

    The per-output deltas use the full Eqn. (3); the consolidated estimate
    ``1/2 (1 - prod(1 - 2 eps_i o_i^any))`` is exact to first order in eps
    (its leading term is ``sum_i eps_i o_i^any``) but, unlike the single
    -output case, carries no parity argument beyond that — use
    :class:`~repro.reliability.consolidated.ConsolidatedAnalyzer` or Monte
    Carlo when multi-failure consolidation accuracy matters.
    """

    def __init__(self, circuit: Circuit,
                 method: str = "auto",
                 n_patterns: int = 1 << 14,
                 seed: int = 0):
        self.circuit = circuit
        self.per_output_models: Dict[str, ObservabilityModel] = {}
        use_bdd = method == "bdd" or (method == "auto"
                                      and circuit.num_gates <= 400)
        if use_bdd:
            from ..bdd import build_node_bdds
            from .observability import bdd_observabilities
            bdds = build_node_bdds(circuit)
            for out in circuit.outputs:
                self.per_output_models[out] = ObservabilityModel(
                    circuit, output=out,
                    observabilities=bdd_observabilities(circuit, output=out,
                                                        bdds=bdds))
            any_obs = _any_output_from_bdds(circuit, bdds)
        else:
            for out in circuit.outputs:
                self.per_output_models[out] = ObservabilityModel(
                    circuit, output=out, method="sampled",
                    n_patterns=n_patterns, seed=seed)
            any_obs = _sampled_any_output_observabilities(
                circuit, n_patterns=n_patterns, seed=seed)
        #: Pr[a flip at gate g changes at least one output].
        self.any_output_observabilities = any_obs

    def delta(self, eps: EpsilonSpec) -> Dict[str, float]:
        """Per-output delta via Eqn. (3)."""
        return {out: model.delta(eps)
                for out, model in self.per_output_models.items()}

    def any_output_delta(self, eps: EpsilonSpec) -> float:
        """First-order consolidated failure probability estimate."""
        validate_epsilon(eps, self.circuit)
        return closed_form_delta(eps, self.any_output_observabilities)

    def analyze(self, eps: EpsilonSpec) -> ClosedFormResult:
        """Per-output + consolidated deltas as a protocol result object."""
        return ClosedFormResult(per_output=self.delta(eps),
                                any_output=self.any_output_delta(eps))


def _sampled_any_output_observabilities(circuit: Circuit,
                                        n_patterns: int,
                                        seed: int) -> Dict[str, float]:
    import numpy as np
    from ..sim import patterns as pat
    from ..sim.simulator import CompiledCircuit
    compiled = CompiledCircuit(circuit)
    rng = np.random.default_rng(seed)
    n_words = pat.words_for_patterns(n_patterns)
    input_pack = pat.random_pack(circuit.inputs, n_words, rng)
    clean = compiled.run(input_pack)
    all_ones = pat.ones(n_words)
    result: Dict[str, float] = {}
    for gate, _ in compiled.gate_slots:
        def noise(name: str, words: int, _g=gate):
            return all_ones if name == _g else None

        flipped = compiled.run(input_pack, noise=noise)
        any_diff = np.zeros(n_words, dtype=np.uint64)
        for _, slot in compiled.output_slots:
            np.bitwise_or(any_diff,
                          np.bitwise_xor(clean[slot], flipped[slot]),
                          out=any_diff)
        result[gate] = pat.masked_popcount(any_diff, n_patterns) / n_patterns
    return result


def _any_output_from_bdds(circuit: Circuit, bdds) -> Dict[str, float]:
    from ..bdd.ops import _gate_bdd
    cone_nodes = circuit.transitive_fanin(circuit.outputs)
    cone_set = set(cone_nodes)
    result: Dict[str, float] = {}
    for gate in circuit.topological_gates():
        if gate not in cone_set:
            result[gate] = 0.0
            continue
        rebuilt = {gate: ~bdds[gate]}
        for name in cone_nodes:
            if name == gate:
                continue
            node = circuit.node(name)
            if not node.gate_type.is_logic:
                continue
            if not any(f in rebuilt for f in node.fanins):
                continue
            fanins = [rebuilt.get(f, bdds[f]) for f in node.fanins]
            rebuilt[name] = _gate_bdd(bdds.manager, node.gate_type, fanins)
        acc = bdds.manager.false
        for out in circuit.outputs:
            acc = acc | (bdds[out] ^ rebuilt.get(out, bdds[out]))
        result[gate] = acc.probability()
    return result
