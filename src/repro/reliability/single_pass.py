"""Single-pass reliability analysis (paper Sec. 4 and Sec. 4.1).

Gates are processed once, in topological order.  At each gate the
propagated input error components are combined — through the gate's weight
vector (joint error-free input distribution) — into a weighted input error
vector, which is then folded with the local failure probability ``eps``
into the gate's output error probabilities ``Pr(g_{0→1})`` and
``Pr(g_{1→0})``.  At the outputs,

    delta_y = Pr(y=0) Pr(y_{0→1}) + Pr(y=1) Pr(y_{1→0}).

Given weight vectors the pass is O(n); it is exact on fanout-free circuits
and uses the Sec. 4.1 error-event correlation coefficients to correct the
independence assumption at reconvergent fanout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..circuit import Circuit, split_frame_name, truth_table
from ..obs import metrics as obs_metrics
from ..obs import trace_span
from ..probability.correlation import ErrorCorrelationEngine
from ..probability.error_propagation import (
    ERROR_FREE,
    ErrorProbability,
    combine_with_local_failure,
    weighted_error_components,
)
from ..probability.weights import WeightData, compute_weights
from ..spec import (
    EpsilonSpec,
    epsilon_of,
    validate_epsilon,
    validate_sweep_specs,
)
from .compiled_pass import (
    CompiledCorrelatedPass,
    CompiledPassUnsupported,
    CompiledSinglePass,
    SweepResult,
)


@dataclass
class SinglePassResult:
    """Everything one single-pass run produces.

    Attributes
    ----------
    per_output:
        ``delta_y`` for every primary output.
    node_errors:
        The propagated :class:`ErrorProbability` of *every* node — the
        paper highlights this as an application enabler (per-node delta
        curves, asymmetric redundancy targeting).
    signal_prob:
        Error-free Pr[node = 1] (from the weight data).
    correlation_pairs:
        Number of wire-pair coefficients the correlation engine computed
        (0 when correlations were disabled).
    """

    per_output: Dict[str, float]
    node_errors: Dict[str, ErrorProbability]
    signal_prob: Dict[str, float]
    used_correlation: bool
    correlation_pairs: int = 0
    #: The run's correlation engine (memoized coefficients), kept so that
    #: multi-output consolidation can reuse it; None when disabled.
    correlation_engine: Optional[ErrorCorrelationEngine] = field(
        default=None, repr=False, compare=False)
    #: Time-frame count when the analyzed circuit is an unrolled sequential
    #: netlist; None for plain combinational runs (the default — results
    #: and payloads are byte-identical to before frames existed).
    frames: Optional[int] = None

    def delta(self, output: Optional[str] = None) -> float:
        """delta for one output (default: the only output)."""
        if output is None:
            if len(self.per_output) != 1:
                raise ValueError("output name required for multi-output result")
            return next(iter(self.per_output.values()))
        return self.per_output[output]

    def node_delta(self, node: str) -> float:
        """Unconditional error probability of an internal node."""
        return self.node_errors[node].total(self.signal_prob[node])

    @property
    def per_frame(self) -> Optional[List[Dict[str, float]]]:
        """Per-output deltas grouped by time frame, or None when
        combinational.

        Frame membership is recovered from the ``{output}@{t}`` names the
        unroller assigns; element ``t`` maps each base output name to its
        delta in frame ``t``.  A k=1 unroll of a stateless design keeps the
        original (untagged) names, so its single frame is the whole
        ``per_output`` map.
        """
        if self.frames is None:
            return None
        return group_per_frame(self.per_output, self.frames)

    def to_dict(self, include_nodes: bool = False) -> Dict[str, Any]:
        """JSON-serializable view (``--json`` / runlogs / ``repro serve``).

        ``include_nodes`` adds every internal node's propagated (p01, p10)
        pair — large on big circuits, so off by default.
        """
        data: Dict[str, Any] = {
            "per_output": {out: float(d)
                           for out, d in self.per_output.items()},
            "used_correlation": self.used_correlation,
            "correlation_pairs": self.correlation_pairs,
        }
        if self.frames is not None:
            # Emitted only for unrolled sequential runs so combinational
            # payloads stay byte-identical.
            data["frames"] = self.frames
            data["per_frame"] = self.per_frame
        if include_nodes:
            data["node_errors"] = {
                node: {"p01": float(ep.p01), "p10": float(ep.p10)}
                for node, ep in self.node_errors.items()}
            data["signal_prob"] = {node: float(p)
                                   for node, p in self.signal_prob.items()}
        return data


def group_per_frame(per_output: Mapping[str, float],
                    frames: int) -> List[Dict[str, float]]:
    """Split a ``{output@t: delta}`` map into per-frame ``{output: delta}``.

    Outputs without a frame tag (the k=1 stateless identity case, or
    user-added probes) land in the last frame, where final outputs live.
    """
    buckets: List[Dict[str, float]] = [{} for _ in range(frames)]
    for out, value in per_output.items():
        parsed = split_frame_name(out)
        if parsed is not None and 0 <= parsed[1] < frames:
            buckets[parsed[1]][parsed[0]] = float(value)
        else:
            buckets[frames - 1][out] = float(value)
    return buckets


def _normalize_output_subset(circuit: Circuit,
                             outputs: Sequence[str]) -> Tuple[str, ...]:
    """Validate/dedupe an output subset, ordered by full-circuit order."""
    known = set(circuit.outputs)
    requested = list(dict.fromkeys(outputs))
    unknown = [o for o in requested if o not in known]
    if unknown:
        raise ValueError(
            f"outputs {unknown!r} are not primary outputs of "
            f"{circuit.name!r}")
    if not requested:
        raise ValueError("outputs subset must name at least one output")
    want = set(requested)
    return tuple(o for o in circuit.outputs if o in want)


def _restrict_weights(circuit: Circuit, sel: Tuple[str, ...],
                      weights: Optional[WeightData], weight_method: str,
                      n_patterns: int, seed: int,
                      input_probs: Optional[Mapping[str, float]],
                      cache_dir: Optional[str]) -> Optional[WeightData]:
    """Weights for the cone of ``sel``, honoring the bit-identity contract.

    ``None`` weights become a lazy store restricted to the cone (only the
    cone is ever computed); an existing :class:`LazyWeightData` restricts
    in place; a plain full-circuit :class:`WeightData` is a superset and
    passes through untouched.
    """
    from ..scale import LazyWeightData
    if weights is None:
        lazy = LazyWeightData(
            circuit, method=weight_method, n_patterns=n_patterns, seed=seed,
            input_probs=dict(input_probs) if input_probs else None,
            cache_dir=cache_dir)
        return lazy.restrict(sel)
    if isinstance(weights, LazyWeightData):
        return weights.restrict(sel)
    return weights


class SinglePassAnalyzer:
    """Reusable single-pass engine: weights computed once, swept many times.

    The paper stresses that weight vectors are independent of ``eps`` and
    "may be performed once at the beginning and used over several runs";
    this class is that split.  Construct once per circuit, then call
    :meth:`run` for each failure-probability vector.

    Parameters
    ----------
    circuit:
        Circuit under analysis.
    weights:
        Precomputed :class:`WeightData` (else computed via
        ``weight_method``).
    weight_method:
        ``"auto"`` (default), ``"bdd"``, ``"exhaustive"``, ``"sampled"``,
        or ``"sat"`` (cone-local SAT/simulation ladder; see
        docs/scaling.md).
    outputs:
        Optional subset of the circuit's primary outputs.  The analyzer
        cuts the union cone (:meth:`~repro.circuit.Circuit.subcircuit`)
        and only lowers/weights that cone — on a large netlist this is
        the difference between touching a few hundred gates and all of
        them.  Results for the selected outputs are bit-identical to a
        full-circuit run (see docs/scaling.md for the two caveats:
        BDD node-limit divergence and the correlation-pair budget).
    use_correlation:
        Apply the Sec. 4.1 correlation-coefficient correction at
        reconvergent fanout (default True).
    input_errors:
        Optional error probabilities at the primary inputs (the algorithm's
        initial conditions; default: noise-free inputs).
    compiled:
        ``"auto"`` (default) dispatches :meth:`run`, :meth:`curve` and
        :meth:`sweep` to a vectorized kernel in **every** mode:
        :class:`CompiledCorrelatedPass` when the Sec. 4.1 correction is on,
        :class:`CompiledSinglePass` when it is off.  ``"off"`` forces the
        scalar reference path (the parity oracle); the scalar path also
        runs automatically when no plan can be built — oversized gate
        arity, or a correlated pair count beyond
        ``max_correlation_pairs`` (where the scalar engine degrades
        per-query instead of refusing).
    backend:
        Array-backend name for the independence kernel (see
        :func:`repro.backend.get_backend`); ``None``/"auto" follows the
        process default.  The correlated kernel and the scalar path are
        numpy-only and ignore it.
    dtype:
        Accumulator precision of the independence kernel (default
        ``float64``; a float32 plan sweeps entirely in float32).
    frames:
        Metadata only: the time-frame count when ``circuit`` is an
        unrolled sequential netlist.  Stamped onto every result/sweep so
        per-frame views (``result.per_frame``) and payloads know the
        frame structure; does not change the numerics.
    """

    def __init__(self, circuit: Circuit,
                 weights: Optional[WeightData] = None,
                 weight_method: str = "auto",
                 use_correlation: bool = True,
                 input_errors: Optional[Mapping[str, ErrorProbability]] = None,
                 n_patterns: int = 1 << 16,
                 seed: int = 0,
                 max_correlation_pairs: int = 1_000_000,
                 max_correlation_level_gap: Optional[int] = None,
                 input_probs: Optional[Mapping[str, float]] = None,
                 compiled: str = "auto",
                 weights_cache_dir: Optional[str] = None,
                 backend: Optional[str] = None,
                 dtype: np.dtype = np.float64,
                 frames: Optional[int] = None,
                 outputs: Optional[Sequence[str]] = None):
        circuit.validate()
        if compiled not in ("auto", "off"):
            raise ValueError(f"compiled must be 'auto' or 'off', "
                             f"got {compiled!r}")
        self.outputs_restriction: Optional[Tuple[str, ...]] = None
        if outputs is not None:
            sel = _normalize_output_subset(circuit, outputs)
            self.outputs_restriction = sel
            weights = _restrict_weights(
                circuit, sel, weights, weight_method, n_patterns, seed,
                input_probs, weights_cache_dir)
            circuit = circuit.subcircuit(sel)
        self.circuit = circuit
        if weights is not None:
            self.weights = weights
        else:
            with trace_span("single_pass.weights", circuit=circuit.name,
                            method=weight_method):
                self.weights = compute_weights(
                    circuit, method=weight_method, n_patterns=n_patterns,
                    seed=seed,
                    input_probs=dict(input_probs) if input_probs else None,
                    cache_dir=weights_cache_dir)
        self.use_correlation = use_correlation
        self.input_errors = dict(input_errors or {})
        self.max_correlation_pairs = max_correlation_pairs
        self.max_correlation_level_gap = max_correlation_level_gap
        self.compiled = compiled
        self.weights_cache_dir = weights_cache_dir
        self.backend = backend
        self.dtype = np.dtype(dtype)
        if frames is not None and frames < 1:
            raise ValueError(f"frames must be >= 1, got {frames}")
        self.frames = frames
        self._plan = None
        self._plan_unsupported = False
        self._truth: Dict[str, tuple] = {}
        for gate in circuit.topological_gates():
            node = circuit.node(gate)
            self._truth[gate] = truth_table(node.gate_type, node.arity)

    # -- compiled-kernel dispatch --------------------------------------
    def _build_plan(self):
        """Build (once) the vectorized plan matching the analysis mode, or
        None if the circuit cannot be lowered (scalar fallback)."""
        if self.compiled == "off" or self._plan_unsupported:
            return None
        if self._plan is None:
            try:
                if self.use_correlation:
                    self._plan = CompiledCorrelatedPass(
                        self.circuit, self.weights,
                        input_errors=self.input_errors,
                        max_pairs=self.max_correlation_pairs,
                        max_level_gap=self.max_correlation_level_gap,
                        cache_dir=self.weights_cache_dir)
                else:
                    self._plan = CompiledSinglePass(
                        self.circuit, self.weights,
                        input_errors=self.input_errors,
                        dtype=self.dtype, backend=self.backend)
            except CompiledPassUnsupported:
                self._plan_unsupported = True
                return None
        return self._plan

    @property
    def uses_compiled(self) -> bool:
        """Whether run/curve/sweep will dispatch to a vectorized kernel."""
        return self._build_plan() is not None

    @property
    def plan(self):
        """The memoized compiled plan, or None on the scalar path.

        In independence mode this is the :class:`CompiledSinglePass`
        that cross-circuit batching (:class:`~repro.reliability.
        tensor_pass.TensorBatch`) merges across analyzers.
        """
        return self._build_plan()

    def _seed_engine(self, sweep: SweepResult, result: SinglePassResult,
                     eps: EpsilonSpec,
                     eps10: Optional[EpsilonSpec]) -> ErrorCorrelationEngine:
        """An :class:`ErrorCorrelationEngine` equivalent to the scalar run's.

        Consolidation (:mod:`repro.reliability.consolidated`) reuses the
        run's engine for cross-output covariance terms, so a compiled run
        must hand back one with the same memo state: it is built over the
        compiled node errors and pre-seeded with every compiled coefficient
        (canonically keyed, per the deterministic pair-ordering contract);
        pairs outside the compiled closure still expand lazily.
        """
        gates = self.circuit.topological_gates()
        eps_map = {g: epsilon_of(eps, g) for g in gates}
        eps10_map = (None if eps10 is None
                     else {g: epsilon_of(eps10, g) for g in gates})
        engine = ErrorCorrelationEngine(
            self.circuit, self.weights, result.node_errors,
            eps_of=lambda g: eps_map[g],
            max_pairs=self.max_correlation_pairs,
            max_level_gap=self.max_correlation_level_gap,
            eps10_of=(None if eps10_map is None
                      else (lambda g: eps10_map[g])))
        if sweep.correlation_pair_keys:
            engine.seed({
                key: float(sweep.correlation_coefficients[i, 0])
                for i, key in enumerate(sweep.correlation_pair_keys)})
        return engine

    def run(self, eps: EpsilonSpec,
            eps10: Optional[EpsilonSpec] = None) -> SinglePassResult:
        """One topological pass for one failure-probability vector.

        ``eps10``, when given, makes every gate's local channel asymmetric:
        its computed output flips 0→1 with ``eps`` and 1→0 with ``eps10``
        (the symmetric BSC is the default, as in the paper).
        """
        validate_epsilon(eps, self.circuit)
        if eps10 is not None:
            validate_epsilon(eps10, self.circuit)
        with trace_span("single_pass.run", circuit=self.circuit.name):
            plan = self._build_plan()
            if plan is not None:
                sweep = plan.run(eps, eps10)
                sweep.frames = self.frames
                result = sweep.point(0)
                if self.use_correlation:
                    result.correlation_engine = self._seed_engine(
                        sweep, result, eps, eps10)
                if obs_metrics.is_enabled():
                    labels = {"circuit": self.circuit.name}
                    obs_metrics.inc("single_pass.runs", **labels)
                    obs_metrics.inc("single_pass.gates_processed",
                                    len(plan.gate_names), **labels)
                return result
            return self._run(eps, eps10)

    def _run(self, eps: EpsilonSpec,
             eps10: Optional[EpsilonSpec]) -> SinglePassResult:
        circuit = self.circuit
        errors: Dict[str, ErrorProbability] = {}
        for name in circuit.topological_order():
            node = circuit.node(name)
            if node.gate_type.is_input:
                errors[name] = self.input_errors.get(name, ERROR_FREE)
            elif node.gate_type.is_constant:
                errors[name] = ERROR_FREE

        # Materialize the spec once so hot loops use plain dict lookups.
        gates = circuit.topological_gates()
        eps_map = {g: epsilon_of(eps, g) for g in gates}
        eps10_map = (None if eps10 is None
                     else {g: epsilon_of(eps10, g) for g in gates})
        corr = None
        if self.use_correlation:
            corr = ErrorCorrelationEngine(
                circuit, self.weights, errors,
                eps_of=lambda g: eps_map[g],
                max_pairs=self.max_correlation_pairs,
                max_level_gap=self.max_correlation_level_gap,
                eps10_of=(None if eps10_map is None
                          else (lambda g: eps10_map[g])))

        with trace_span("single_pass.topological_pass", gates=len(gates)):
            for gate in gates:
                node = circuit.node(gate)
                pw0, w0, pw1, w1 = weighted_error_components(
                    self._truth[gate], self.weights.weights[gate],
                    node.fanins, errors, corr=corr)
                errors[gate] = combine_with_local_failure(
                    pw0, w0, pw1, w1, eps_map[gate],
                    eps10=None if eps10_map is None else eps10_map[gate])

        with trace_span("single_pass.per_output_delta",
                        outputs=len(circuit.outputs)):
            per_output = {}
            for out in circuit.outputs:
                p1 = self.weights.signal_prob[out]
                per_output[out] = errors[out].total(p1)
        if obs_metrics.is_enabled():
            labels = {"circuit": circuit.name}
            obs_metrics.inc("single_pass.runs", **labels)
            obs_metrics.inc("single_pass.gates_processed", len(gates),
                            **labels)
            if corr is not None:
                obs_metrics.inc("correlation.pairs_tracked",
                                corr.pairs_computed, **labels)
                obs_metrics.inc("correlation.pairs_dropped_budget",
                                corr.pairs_dropped_budget, **labels)
                obs_metrics.inc("correlation.pairs_dropped_level_gap",
                                corr.pairs_dropped_level_gap, **labels)
                obs_metrics.inc("correlation.pairs_independent",
                                corr.pairs_independent, **labels)
                obs_metrics.inc("correlation.cache_hits",
                                corr.cache_hits, **labels)
        return SinglePassResult(
            per_output=per_output,
            node_errors=errors,
            signal_prob=dict(self.weights.signal_prob),
            used_correlation=self.use_correlation,
            correlation_pairs=corr.pairs_computed if corr else 0,
            correlation_engine=corr,
            frames=self.frames,
        )

    def sweep(self, eps_values: Sequence[EpsilonSpec],
              eps10_values: Optional[Sequence[EpsilonSpec]] = None,
              jobs: int = 1) -> SweepResult:
        """Evaluate many failure-probability vectors in one call.

        In every mode the sweep is normally a single vectorized pass with a
        trailing eps axis (the correlated kernel includes the Sec. 4.1
        coefficients in that axis).  Only when no compiled plan exists —
        ``compiled="off"``, an unloweable gate, or a correlated pair count
        beyond the budget — do the points run as independent scalar passes;
        there ``jobs > 1`` fans them out over a process pool, with the
        analyzer pickled once per worker so weights and correlation caches
        are shared per process, not per point.
        """
        specs, eps10_list = validate_sweep_specs(self.circuit, eps_values,
                                                 eps10_values)
        with trace_span("single_pass.sweep", circuit=self.circuit.name,
                        points=len(specs), jobs=jobs):
            plan = self._build_plan()
            if plan is not None:
                if jobs > 1:
                    # Don't silently swallow the flag: the compiled kernel
                    # already batches every point into one vectorized
                    # pass, so there is nothing for a pool to split.
                    from ..obs import get_logger
                    get_logger("single_pass").warning(
                        "jobs=%d ignored: the compiled kernel evaluates "
                        "all %d sweep points in one vectorized pass "
                        "(use compiled='off' to force the scalar pool)",
                        jobs, len(specs))
                    if obs_metrics.is_enabled():
                        obs_metrics.inc("single_pass.jobs_ignored",
                                        circuit=self.circuit.name)
                sweep = plan.run_sweep(specs, eps10_list)
                sweep.frames = self.frames
                return sweep
            tasks = [(spec, None if eps10_list is None else eps10_list[j])
                     for j, spec in enumerate(specs)]
            if jobs > 1 and len(tasks) > 2:
                results = [self.run(*tasks[0])] + self._pool_run(
                    tasks[1:], jobs)
            else:
                results = [self.run(eps, eps10) for eps, eps10 in tasks]
            return self._assemble_sweep(specs, eps10_list, results)

    def _pool_run(self, tasks, jobs: int) -> List[SinglePassResult]:
        from concurrent.futures import ProcessPoolExecutor
        workers = min(jobs, len(tasks))
        with ProcessPoolExecutor(max_workers=workers,
                                 initializer=_sweep_worker_init,
                                 initargs=(self,)) as pool:
            results = list(pool.map(_sweep_worker_point, tasks))
        if obs_metrics.is_enabled():
            labels = {"circuit": self.circuit.name}
            obs_metrics.inc("single_pass.runs", len(tasks), **labels)
            obs_metrics.inc(
                "single_pass.gates_processed",
                len(self.circuit.topological_gates()) * len(tasks), **labels)
        return results

    def _assemble_sweep(self, specs, eps10_list,
                        results: Sequence[SinglePassResult]) -> SweepResult:
        """Stack per-point scalar results into dense sweep matrices."""
        node_names = self.circuit.topological_order()
        outputs = list(self.circuit.outputs)
        n_points = len(results)
        p01 = np.empty((len(node_names), n_points))
        p10 = np.empty((len(node_names), n_points))
        per_output = np.empty((len(outputs), n_points))
        for j, res in enumerate(results):
            for i, name in enumerate(node_names):
                ep = res.node_errors[name]
                p01[i, j] = ep.p01
                p10[i, j] = ep.p10
            for o, out in enumerate(outputs):
                per_output[o, j] = res.per_output[out]
        return SweepResult(
            circuit_name=self.circuit.name,
            eps_specs=list(specs),
            eps10_specs=eps10_list,
            node_names=list(node_names),
            outputs=outputs,
            per_output=per_output,
            p01=p01,
            p10=p10,
            signal_prob=dict(self.weights.signal_prob),
            used_correlation=self.use_correlation,
            correlation_pairs=np.asarray(
                [res.correlation_pairs for res in results], dtype=np.int64),
            frames=self.frames,
        )

    def curve(self, eps_values: Iterable[float],
              output: Optional[str] = None,
              jobs: int = 1) -> Dict[float, float]:
        """delta(eps) over a sweep of uniform gate failure probabilities."""
        eps_list = list(eps_values)
        if not eps_list:
            return {}
        result = self.sweep(eps_list, jobs=jobs)
        values = result.delta(output)
        return {e: float(v) for e, v in zip(eps_list, values)}


#: Per-process analyzer for scalar sweep fan-out; set by the pool
#: initializer so each worker unpickles the (read-only) analyzer once.
_SWEEP_ANALYZER: Optional[SinglePassAnalyzer] = None


def _sweep_worker_init(analyzer: SinglePassAnalyzer) -> None:
    global _SWEEP_ANALYZER
    _SWEEP_ANALYZER = analyzer


def _sweep_worker_point(task) -> SinglePassResult:
    eps, eps10 = task
    result = _SWEEP_ANALYZER.run(eps, eps10)
    # The engine holds closures over the eps spec and cannot cross the
    # process boundary; drop it from the shipped result.
    result.correlation_engine = None
    return result
