"""Single-pass reliability analysis (paper Sec. 4 and Sec. 4.1).

Gates are processed once, in topological order.  At each gate the
propagated input error components are combined — through the gate's weight
vector (joint error-free input distribution) — into a weighted input error
vector, which is then folded with the local failure probability ``eps``
into the gate's output error probabilities ``Pr(g_{0→1})`` and
``Pr(g_{1→0})``.  At the outputs,

    delta_y = Pr(y=0) Pr(y_{0→1}) + Pr(y=1) Pr(y_{1→0}).

Given weight vectors the pass is O(n); it is exact on fanout-free circuits
and uses the Sec. 4.1 error-event correlation coefficients to correct the
independence assumption at reconvergent fanout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional

from ..circuit import Circuit, truth_table
from ..obs import metrics as obs_metrics
from ..obs import trace_span
from ..probability.correlation import ErrorCorrelationEngine
from ..probability.error_propagation import (
    ERROR_FREE,
    ErrorProbability,
    combine_with_local_failure,
    weighted_error_components,
)
from ..probability.weights import WeightData, compute_weights
from ..sim.montecarlo import EpsilonSpec, epsilon_of, validate_epsilon


@dataclass
class SinglePassResult:
    """Everything one single-pass run produces.

    Attributes
    ----------
    per_output:
        ``delta_y`` for every primary output.
    node_errors:
        The propagated :class:`ErrorProbability` of *every* node — the
        paper highlights this as an application enabler (per-node delta
        curves, asymmetric redundancy targeting).
    signal_prob:
        Error-free Pr[node = 1] (from the weight data).
    correlation_pairs:
        Number of wire-pair coefficients the correlation engine computed
        (0 when correlations were disabled).
    """

    per_output: Dict[str, float]
    node_errors: Dict[str, ErrorProbability]
    signal_prob: Dict[str, float]
    used_correlation: bool
    correlation_pairs: int = 0
    #: The run's correlation engine (memoized coefficients), kept so that
    #: multi-output consolidation can reuse it; None when disabled.
    correlation_engine: Optional[ErrorCorrelationEngine] = field(
        default=None, repr=False, compare=False)

    def delta(self, output: Optional[str] = None) -> float:
        """delta for one output (default: the only output)."""
        if output is None:
            if len(self.per_output) != 1:
                raise ValueError("output name required for multi-output result")
            return next(iter(self.per_output.values()))
        return self.per_output[output]

    def node_delta(self, node: str) -> float:
        """Unconditional error probability of an internal node."""
        return self.node_errors[node].total(self.signal_prob[node])


class SinglePassAnalyzer:
    """Reusable single-pass engine: weights computed once, swept many times.

    The paper stresses that weight vectors are independent of ``eps`` and
    "may be performed once at the beginning and used over several runs";
    this class is that split.  Construct once per circuit, then call
    :meth:`run` for each failure-probability vector.

    Parameters
    ----------
    circuit:
        Circuit under analysis.
    weights:
        Precomputed :class:`WeightData` (else computed via
        ``weight_method``).
    weight_method:
        ``"auto"`` (default), ``"bdd"``, ``"exhaustive"``, or ``"sampled"``.
    use_correlation:
        Apply the Sec. 4.1 correlation-coefficient correction at
        reconvergent fanout (default True).
    input_errors:
        Optional error probabilities at the primary inputs (the algorithm's
        initial conditions; default: noise-free inputs).
    """

    def __init__(self, circuit: Circuit,
                 weights: Optional[WeightData] = None,
                 weight_method: str = "auto",
                 use_correlation: bool = True,
                 input_errors: Optional[Mapping[str, ErrorProbability]] = None,
                 n_patterns: int = 1 << 16,
                 seed: int = 0,
                 max_correlation_pairs: int = 1_000_000,
                 max_correlation_level_gap: Optional[int] = None,
                 input_probs: Optional[Mapping[str, float]] = None):
        circuit.validate()
        self.circuit = circuit
        if weights is not None:
            self.weights = weights
        else:
            with trace_span("single_pass.weights", circuit=circuit.name,
                            method=weight_method):
                self.weights = compute_weights(
                    circuit, method=weight_method, n_patterns=n_patterns,
                    seed=seed,
                    input_probs=dict(input_probs) if input_probs else None)
        self.use_correlation = use_correlation
        self.input_errors = dict(input_errors or {})
        self.max_correlation_pairs = max_correlation_pairs
        self.max_correlation_level_gap = max_correlation_level_gap
        self._truth: Dict[str, tuple] = {}
        for gate in circuit.topological_gates():
            node = circuit.node(gate)
            self._truth[gate] = truth_table(node.gate_type, node.arity)

    def run(self, eps: EpsilonSpec,
            eps10: Optional[EpsilonSpec] = None) -> SinglePassResult:
        """One topological pass for one failure-probability vector.

        ``eps10``, when given, makes every gate's local channel asymmetric:
        its computed output flips 0→1 with ``eps`` and 1→0 with ``eps10``
        (the symmetric BSC is the default, as in the paper).
        """
        validate_epsilon(eps, self.circuit)
        if eps10 is not None:
            validate_epsilon(eps10, self.circuit)
        with trace_span("single_pass.run", circuit=self.circuit.name):
            return self._run(eps, eps10)

    def _run(self, eps: EpsilonSpec,
             eps10: Optional[EpsilonSpec]) -> SinglePassResult:
        circuit = self.circuit
        errors: Dict[str, ErrorProbability] = {}
        for name in circuit.topological_order():
            node = circuit.node(name)
            if node.gate_type.is_input:
                errors[name] = self.input_errors.get(name, ERROR_FREE)
            elif node.gate_type.is_constant:
                errors[name] = ERROR_FREE

        # Materialize the spec once so hot loops use plain dict lookups.
        gates = circuit.topological_gates()
        eps_map = {g: epsilon_of(eps, g) for g in gates}
        eps10_map = (None if eps10 is None
                     else {g: epsilon_of(eps10, g) for g in gates})
        corr = None
        if self.use_correlation:
            corr = ErrorCorrelationEngine(
                circuit, self.weights, errors,
                eps_of=lambda g: eps_map[g],
                max_pairs=self.max_correlation_pairs,
                max_level_gap=self.max_correlation_level_gap,
                eps10_of=(None if eps10_map is None
                          else (lambda g: eps10_map[g])))

        with trace_span("single_pass.topological_pass", gates=len(gates)):
            for gate in gates:
                node = circuit.node(gate)
                pw0, w0, pw1, w1 = weighted_error_components(
                    self._truth[gate], self.weights.weights[gate],
                    node.fanins, errors, corr=corr)
                errors[gate] = combine_with_local_failure(
                    pw0, w0, pw1, w1, eps_map[gate],
                    eps10=None if eps10_map is None else eps10_map[gate])

        with trace_span("single_pass.per_output_delta",
                        outputs=len(circuit.outputs)):
            per_output = {}
            for out in circuit.outputs:
                p1 = self.weights.signal_prob[out]
                per_output[out] = errors[out].total(p1)
        if obs_metrics.is_enabled():
            labels = {"circuit": circuit.name}
            obs_metrics.inc("single_pass.runs", **labels)
            obs_metrics.inc("single_pass.gates_processed", len(gates),
                            **labels)
            if corr is not None:
                obs_metrics.inc("correlation.pairs_tracked",
                                corr.pairs_computed, **labels)
                obs_metrics.inc("correlation.pairs_dropped_budget",
                                corr.pairs_dropped_budget, **labels)
                obs_metrics.inc("correlation.pairs_dropped_level_gap",
                                corr.pairs_dropped_level_gap, **labels)
                obs_metrics.inc("correlation.pairs_independent",
                                corr.pairs_independent, **labels)
                obs_metrics.inc("correlation.cache_hits",
                                corr.cache_hits, **labels)
        return SinglePassResult(
            per_output=per_output,
            node_errors=errors,
            signal_prob=dict(self.weights.signal_prob),
            used_correlation=self.use_correlation,
            correlation_pairs=corr.pairs_computed if corr else 0,
            correlation_engine=corr,
        )

    def curve(self, eps_values: Iterable[float],
              output: Optional[str] = None) -> Dict[float, float]:
        """delta(eps) over a sweep of uniform gate failure probabilities."""
        return {e: self.run(e).delta(output) for e in eps_values}


def single_pass_reliability(circuit: Circuit, eps: EpsilonSpec,
                            **kwargs) -> SinglePassResult:
    """One-shot convenience wrapper around :class:`SinglePassAnalyzer`."""
    return SinglePassAnalyzer(circuit, **kwargs).run(eps)
