"""The shared result-object contract of every analysis method.

All of the library's analyses answer the same question — "how likely is
each output to be wrong?" — yet historically each returned a differently
shaped object.  :class:`ResultProtocol` pins down the common surface:

* ``per_output`` — ``{output_name: delta}`` for every primary output;
* ``delta(output=None)`` — one output's delta (the only output when
  ``output`` is omitted);
* ``to_dict()`` — a JSON-serializable dict for ``--json`` envelopes,
  runlogs, and the ``repro serve`` protocol.

:class:`~repro.reliability.single_pass.SinglePassResult`,
:class:`~repro.reliability.exact.ExactResult`,
:class:`~repro.reliability.consolidated.ConsolidatedResult`,
:class:`~repro.reliability.closed_form.ClosedFormResult`, and
:class:`~repro.sim.montecarlo.MonteCarloResult` all satisfy it, so the
engine and the ``repro.analyze`` façade can hand any of them back without
callers caring which method ran.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Protocol, runtime_checkable


@runtime_checkable
class ResultProtocol(Protocol):
    """Structural type every analysis result object satisfies."""

    per_output: Dict[str, float]

    def delta(self, output: Optional[str] = None) -> float:
        """delta for one output (default: the only output)."""
        ...

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable view of the result."""
        ...


def single_output_delta(per_output: Dict[str, float],
                        output: Optional[str]) -> float:
    """The shared ``delta(output=None)`` lookup rule of every result type."""
    if output is None:
        if len(per_output) != 1:
            raise ValueError("output name required for multi-output result")
        return next(iter(per_output.values()))
    return per_output[output]
