"""Compiled single-pass kernel: vectorized error propagation with an eps axis.

The paper's scalability argument (Sec. 4, Table 2) is that weight vectors
are computed once and the O(n) propagation pass is re-run cheaply for every
failure-probability vector — eps sweeps, SER estimation, design-space
exploration.  The scalar pass in :mod:`repro.reliability.single_pass`
honors the split but spends its time in per-gate Python loops over ``2**k``
truth rows and perturbation tuples, and repeats all of it per eps point.

:class:`CompiledSinglePass` removes both costs.  It lowers a circuit plus
its :class:`~repro.probability.weights.WeightData` into integer-indexed
numpy arrays **once** (mirroring how :class:`repro.sim.simulator.
CompiledCircuit` compiles for bit-parallel simulation):

* node error state lives in two dense ``(nodes, E)`` matrices ``P01`` /
  ``P10`` indexed by topological slot, where ``E`` is the number of eps
  points — the *trailing eps axis*;
* gates are grouped by topological level and, within a level, by
  ``(truth table, arity)`` class; each group carries its fanin slot matrix,
  its stacked weight vectors, and the class's shared transition lowering
  (:func:`repro.probability.error_propagation.transition_lowering`);
* evaluating a group is a handful of vectorized tensor ops over
  ``(2**k, gates, 2**k, E)`` — every gate of the class, every error-free
  vector, every perturbation, and every eps point at once.

:meth:`CompiledSinglePass.run_sweep` therefore computes the entire
delta(eps) curve — including asymmetric ``eps10`` channels and per-gate
eps maps, broadcast to ``(gates, E)`` — in one pass instead of ``E``
Python passes.  That kernel implements the plain Sec. 4 independence
algorithm; parity with the scalar pass is pinned to <= 1e-12 by
``tests/test_compiled_pass.py``.

:class:`CompiledCorrelatedPass` extends the same lowering to the Sec. 4.1
**correlation-corrected** pass.  On top of the plain plan it compiles the
:class:`~repro.probability.correlation.ErrorCorrelationEngine`'s lazy
per-pair coefficient state into an integer-indexed *coefficient row table*:

* structural pair discovery (a closure over the Fig. 4 expansion, using
  the same :class:`~repro.probability.correlation.PairStructure`
  classification and canonical pair ordering as the scalar engine) assigns
  every reachable ``(wire, event, wire, event)`` pair a row index;
* at run time the rows live in one dense ``(rows, E)`` matrix ``C`` —
  same-wire rows read a wire's propagated state, expansion rows execute a
  pre-lowered Fig. 4 program — evaluated in a level schedule that
  guarantees every child row and every fanin state is final before use;
* gates whose transitions reference only the constant-1 row run through
  the batched independence kernel unchanged; the remainder execute
  per-gate programs whose elementwise arithmetic (clamp/cap for clamp/cap)
  mirrors the scalar ``_correlated_transition`` over the trailing eps axis.

:class:`~repro.reliability.single_pass.SinglePassAnalyzer` dispatches to
one of the two kernels in **all** modes, keeping the scalar engine as a
parity oracle (``compiled="off"``) and as the fallback when a plan cannot
be built (oversized arity, pair budget exceeded).  Correlated parity is
pinned to <= 1e-10 on the full circuit catalog.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Mapping as MappingABC
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..circuit import Circuit, truth_table
from ..obs import metrics as obs_metrics
from ..obs import trace_span
from ..probability.correlation import PairStructure
from ..probability.error_propagation import (
    EVENT_1TO0,
    ErrorProbability,
    correlated_transition_lowering,
    transition_lowering,
)
from ..probability.weight_cache import (
    load_correlation_plan,
    store_correlation_plan,
)
from ..probability.weights import WeightData
from ..spec import (
    EpsilonSpec,
    epsilon_of,
    validate_epsilon,
    validate_sweep_specs,
)


class CompiledPassUnsupported(ValueError):
    """The circuit cannot be lowered into the vectorized kernel.

    Raised at plan-construction time (e.g. a gate arity whose ``4**k``
    transition tensors would not fit in memory); callers fall back to the
    scalar pass.
    """


#: Widest gate the kernel lowers; the per-class tensors scale as ``4**k``.
MAX_COMPILED_ARITY = 12

#: Soft cap on elements of one ``(V, gates, V, E)`` intermediate; gate
#: batches are chunked so each slice stays under roughly this many floats
#: (~128 MB at 8 bytes/element for the default).
_CHUNK_ELEMENTS = 1 << 24

#: Reserved coefficient rows of the correlated plan: every structurally
#: independent (or dropped) pair reads the constant row 1.0; a same-wire
#: cross-direction pair reads the constant row 0.0.
ROW_ONE = 0
ROW_ZERO = 1


@dataclass
class _OpGroup:
    """All same-level gates sharing one (truth, arity) class.

    In a single-circuit plan the slot arrays index rows of the flat
    ``(nodes, E)`` state.  The multi-circuit tensor pass
    (:mod:`repro.reliability.tensor_pass`) reuses the same structure over
    a padded ``(circuits, rows, E)`` state by setting ``circ`` — a
    per-gate circuit-index column that pairs with ``slots`` /
    ``fanin_slots`` for 3-D fancy indexing — and merges groups across
    circuits by their shared ``truth`` key.
    """

    arity: int
    #: Node slots written by this group, shape (m,).
    slots: np.ndarray
    #: Rows into the (gates, E) local-failure matrices, shape (m,).
    eps_rows: np.ndarray
    #: Fanin node slots, shape (m, k).
    fanin_slots: np.ndarray
    #: bits[v, t] = value of fanin t in error-free vector v, shape (V, k).
    bits: np.ndarray
    #: flip_mask[v, u] = 1.0 iff flip set u changes the output, (V, V)
    #: shared by the class — or (m, V, V) per-gate when the tensor pass
    #: fuses several truth classes of one arity into a single group.
    flip_mask: np.ndarray
    #: Weight vectors masked by output side: w_masked[b][v, m] is gate m's
    #: weight of vector v when truth[v] == b, else 0.
    w_masked0: np.ndarray
    w_masked1: np.ndarray
    #: Total weight per side W(b), shape (m,).
    w_side0: np.ndarray = field(default=None)
    w_side1: np.ndarray = field(default=None)
    #: The class's truth table — the cross-circuit merge key of the
    #: tensor pass (never consulted by the single-circuit kernel).
    truth: Optional[Tuple[int, ...]] = field(default=None, compare=False)
    #: Circuit index per gate, shape (m,); None in single-circuit plans.
    circ: Optional[np.ndarray] = None

    def __post_init__(self):
        if self.w_side0 is None:
            self.w_side0 = self.w_masked0.sum(axis=0)
        if self.w_side1 is None:
            self.w_side1 = self.w_masked1.sum(axis=0)


class _LazyNodeErrors(MappingABC):
    """``{node: ErrorProbability}`` view over one sweep point's columns.

    Materializing every internal node's :class:`ErrorProbability` per
    point is the dominant cost of extracting large-circuit sweep results
    (thousands of tiny objects per point, almost all discarded — serve
    envelopes only keep ``per_output``).  This view defers construction
    to first access per node while behaving like the eager dict for
    every mapping operation the consumers use.
    """

    __slots__ = ("_p01", "_p10", "_j", "_names", "_index")

    def __init__(self, p01: np.ndarray, p10: np.ndarray, j: int,
                 names: List[str], index: Dict[str, int]):
        self._p01 = p01
        self._p10 = p10
        self._j = j
        self._names = names
        self._index = index

    def __getitem__(self, name: str) -> ErrorProbability:
        i = self._index[name]
        return ErrorProbability(p01=float(self._p01[i, self._j]),
                                p10=float(self._p10[i, self._j]))

    def __iter__(self):
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def __eq__(self, other):
        if isinstance(other, MappingABC):
            return dict(self) == dict(other)
        return NotImplemented

    def __ne__(self, other):
        result = self.__eq__(other)
        return result if result is NotImplemented else not result


@dataclass
class SweepResult:
    """A full eps sweep from the compiled (or batched scalar) pass.

    Node error state is kept in dense ``(nodes, E)`` matrices rather than
    ``E`` dicts of :class:`ErrorProbability`; :meth:`point` materializes
    the classic :class:`~repro.reliability.single_pass.SinglePassResult`
    view of one sweep point on demand.
    """

    circuit_name: str
    #: The eps specs the sweep evaluated, in order (scalars or per-gate maps).
    eps_specs: List[EpsilonSpec]
    eps10_specs: Optional[List[EpsilonSpec]]
    #: Topological node order; row i of p01/p10 is node_names[i].
    node_names: List[str]
    outputs: List[str]
    #: delta per output per eps point, shape (outputs, E).
    per_output: np.ndarray
    #: Propagated conditional error probabilities, shape (nodes, E).
    p01: np.ndarray
    p10: np.ndarray
    signal_prob: Dict[str, float]
    used_correlation: bool = False
    #: Correlation pairs per point (zero on the independence kernel; the
    #: structural pair-row count on the correlated kernel).
    correlation_pairs: Optional[np.ndarray] = None
    #: Canonical pair keys ``(a, ea, b, eb)`` of the correlated plan's
    #: expansion rows, sorted by wire ids (the deterministic order of
    #: ``ErrorCorrelationEngine.coefficient_items``); None when the sweep
    #: ran the independence kernel.
    correlation_pair_keys: Optional[List[Tuple[str, int, str, int]]] = field(
        default=None, repr=False, compare=False)
    #: Coefficient values aligned with ``correlation_pair_keys``, shape
    #: ``(pairs, E)`` — used to seed a scalar engine for any sweep point.
    correlation_coefficients: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False)
    #: Time-frame count when the swept circuit is an unrolled sequential
    #: netlist (None for plain combinational sweeps).  Stamped by the
    #: analyzer/engine; :meth:`point` threads it into each materialized
    #: :class:`SinglePassResult` so per-frame views survive slicing.
    frames: Optional[int] = None

    @property
    def n_points(self) -> int:
        return len(self.eps_specs)

    def delta(self, output: Optional[str] = None) -> np.ndarray:
        """delta(eps) of one output over the sweep, shape (E,)."""
        if output is None:
            if len(self.outputs) != 1:
                raise ValueError("output name required for multi-output result")
            return self.per_output[0].copy()
        return self.per_output[self.outputs.index(output)].copy()

    def curve(self, output: Optional[str] = None) -> Dict[float, float]:
        """``{eps: delta}`` for scalar eps sweeps (the classic curve API)."""
        for spec in self.eps_specs:
            if isinstance(spec, Mapping):
                raise TypeError(
                    "curve() requires scalar eps specs; use delta() for "
                    "per-gate sweeps")
        values = self.delta(output)
        return {float(e): float(v) for e, v in zip(self.eps_specs, values)}

    def _name_index(self) -> Dict[str, int]:
        index = getattr(self, "_name_index_cache", None)
        if index is None:
            index = {name: i for i, name in enumerate(self.node_names)}
            object.__setattr__(self, "_name_index_cache", index)
        return index

    def point(self, j: int):
        """Materialize sweep point ``j`` as a :class:`SinglePassResult`.

        ``node_errors`` is a lazy per-node view (see
        :class:`_LazyNodeErrors`): indexing and iteration behave like the
        classic dict, but nothing is built until accessed.
        """
        from .single_pass import SinglePassResult
        node_errors = _LazyNodeErrors(self.p01, self.p10, j,
                                      self.node_names, self._name_index())
        per_output = {out: float(self.per_output[o, j])
                      for o, out in enumerate(self.outputs)}
        pairs = (0 if self.correlation_pairs is None
                 else int(self.correlation_pairs[j]))
        return SinglePassResult(
            per_output=per_output,
            node_errors=node_errors,
            signal_prob=dict(self.signal_prob),
            used_correlation=self.used_correlation,
            correlation_pairs=pairs,
            correlation_engine=None,
            frames=self.frames,
        )


def _lower_plain_groups(circuit: Circuit, weights: WeightData,
                        index: Mapping[str, int],
                        gate_row: Mapping[str, int],
                        gates: Sequence[str],
                        max_arity: int,
                        dtype: np.dtype = np.float64,
                        ) -> Dict[int, List["_OpGroup"]]:
    """Group ``gates`` by (level, truth, arity) and lower each class.

    Shared by the independence kernel (all gates) and the correlated kernel
    (the subset of gates whose transition math references no nontrivial
    coefficient row).  Returns ``{level: [_OpGroup, ...]}``.  ``dtype`` is
    the accumulator precision of the eventual sweep: every float array of
    the lowered groups is materialized in it so a float32 plan never
    smuggles float64 operands into the kernel.
    """
    dtype = np.dtype(dtype)
    grouped: Dict[Tuple[int, Tuple[int, ...], int], Dict] = {}
    for gate in gates:
        node = circuit.node(gate)
        k = node.arity
        if k > max_arity:
            raise CompiledPassUnsupported(
                f"gate {gate!r} has arity {k} > {max_arity}; "
                "use the scalar pass")
        truth = truth_table(node.gate_type, k)
        key = (circuit.level(gate), truth, k)
        entry = grouped.setdefault(
            key, {"slots": [], "eps_rows": [], "fanins": [],
                  "weights": []})
        entry["slots"].append(index[gate])
        entry["eps_rows"].append(gate_row[gate])
        entry["fanins"].append([index[f] for f in node.fanins])
        entry["weights"].append(
            np.asarray(weights.weights[gate], dtype=dtype))

    levels: Dict[int, List[_OpGroup]] = {}
    for (level, truth, k), entry in sorted(grouped.items()):
        bits, flip_mask, truth_arr = transition_lowering(truth, k)
        if flip_mask.dtype != dtype:
            # transition_lowering's cache holds shared float64 arrays;
            # narrow a copy rather than mutating the cached original.
            flip_mask = flip_mask.astype(dtype)
        w = np.stack(entry["weights"])              # (m, V)
        side1 = truth_arr.astype(bool)              # (V,)
        w_masked1 = np.where(side1[None, :], w, 0.0).T  # (V, m)
        w_masked0 = np.where(side1[None, :], 0.0, w).T
        levels.setdefault(level, []).append(_OpGroup(
            arity=k,
            slots=np.asarray(entry["slots"], dtype=np.intp),
            eps_rows=np.asarray(entry["eps_rows"], dtype=np.intp),
            fanin_slots=np.asarray(entry["fanins"], dtype=np.intp),
            bits=bits,
            flip_mask=flip_mask,
            w_masked0=np.ascontiguousarray(w_masked0.astype(dtype,
                                                            copy=False)),
            w_masked1=np.ascontiguousarray(w_masked1.astype(dtype,
                                                            copy=False)),
            truth=truth,
        ))
    return levels


class CompiledSinglePass:
    """A circuit + weight data lowered for vectorized eps sweeps.

    Construct once per (circuit, weights); call :meth:`run_sweep` for each
    batch of failure-probability vectors.  The plan is read-only after
    construction and contains only numpy arrays and plain containers, so it
    pickles cleanly (process-pool fan-out) and is safe to share between
    threads.

    Parameters
    ----------
    circuit:
        Circuit under analysis.
    weights:
        Precomputed weight vectors / signal probabilities.
    input_errors:
        Optional error probabilities at the primary inputs (same initial
        conditions as the scalar pass).
    max_arity:
        Refuse (with :class:`CompiledPassUnsupported`) gates wider than
        this — the per-class tensors scale as ``4**k``.
    dtype:
        Accumulator precision of the sweep (default ``float64``).  The
        lowering materializes every float array in this dtype and the
        kernel allocates its accumulators from it, so a ``float32`` plan
        runs the whole sweep in float32 — no silent float64 up-cast.
    backend:
        Array-backend name resolved through :func:`repro.backend.
        get_backend` at sweep time (``None``/"auto" follows the process
        default / ``REPRO_ARRAY_BACKEND``; numpy when unset).
    """

    def __init__(self, circuit: Circuit,
                 weights: WeightData,
                 input_errors: Optional[Mapping[str, ErrorProbability]] = None,
                 max_arity: int = MAX_COMPILED_ARITY,
                 dtype: np.dtype = np.float64,
                 backend: Optional[str] = None):
        circuit.validate()
        self.circuit = circuit
        self.weights = weights
        self.dtype = np.dtype(dtype)
        self.backend = backend
        with trace_span("compiled_pass.compile", circuit=circuit.name):
            order = circuit.topological_order()
            self.node_names: List[str] = order
            self.index: Dict[str, int] = {n: i for i, n in enumerate(order)}
            gates = circuit.topological_gates()
            self.gate_names: List[str] = gates
            gate_row = {g: i for i, g in enumerate(gates)}
            self._gate_row = gate_row
            self.max_arity = max_arity

            #: (slot, ErrorProbability) rows seeded from input_errors.
            self.input_error_rows: List[Tuple[int, ErrorProbability]] = [
                (self.index[name], ep)
                for name, ep in dict(input_errors or {}).items()]

            levels = _lower_plain_groups(circuit, weights, self.index,
                                         gate_row, gates, max_arity,
                                         dtype=self.dtype)
            #: Topological level value of ``self.levels[i]``.
            self.level_values: List[int] = sorted(levels)
            self.levels: List[List[_OpGroup]] = [
                levels[lv] for lv in self.level_values]
            self.num_groups = sum(len(g) for g in self.levels)

            self.output_slots = np.asarray(
                [self.index[o] for o in circuit.outputs], dtype=np.intp)
            self.output_prob1 = np.asarray(
                [weights.signal_prob[o] for o in circuit.outputs],
                dtype=self.dtype)
        if obs_metrics.is_enabled():
            obs_metrics.inc("compiled_pass.compiles", circuit=circuit.name)
            obs_metrics.set_gauge("compiled_pass.groups", self.num_groups,
                                  circuit=circuit.name)

    # ------------------------------------------------------------------
    def patch_weights(self, circuit: Circuit, weights: WeightData,
                      changed_gates: Sequence[str] = (),
                      retruthed_gates: Sequence[str] = ()) -> bool:
        """Update the lowered arrays in place after a node-set-preserving edit.

        ``changed_gates`` are gates whose weight vectors changed (their
        fanin cones were edited); ``retruthed_gates`` are gates whose truth
        table itself changed (a type-only ``swap_gate``).  The former are a
        pure column rewrite; the latter move between ``(truth, arity)``
        group classes, so their entire topological level is re-lowered
        through :func:`_lower_plain_groups` — reproducing, group for group
        and float for float, what a fresh compile would build for that
        level.

        Returns ``False`` (leaving the plan untouched) when the circuit's
        node set or topological order differs from the compiled one; the
        caller then falls back to a full re-lower.
        """
        if (circuit.topological_order() != self.node_names
                or circuit.topological_gates() != self.gate_names):
            return False
        retruthed = set(retruthed_gates)
        relower_levels = {circuit.level(g) for g in retruthed}
        changed = {g for g in changed_gates
                   if circuit.level(g) not in relower_levels} - retruthed
        with trace_span("compiled_pass.patch", circuit=circuit.name,
                        changed=len(changed), relevel=len(relower_levels)):
            if relower_levels:
                level_gates = [g for g in self.gate_names
                               if circuit.level(g) in relower_levels]
                try:
                    lowered = _lower_plain_groups(
                        circuit, weights, self.index, self._gate_row,
                        level_gates, self.max_arity, dtype=self.dtype)
                except CompiledPassUnsupported:
                    return False
                for lv, groups in lowered.items():
                    self.levels[self.level_values.index(lv)] = groups
            if changed:
                targets = {self.index[g]: g for g in changed}
                for level_groups in self.levels:
                    for group in level_groups:
                        for col, slot in enumerate(group.slots):
                            gate = targets.get(int(slot))
                            if gate is None:
                                continue
                            node = circuit.node(gate)
                            side1 = np.asarray(
                                truth_table(node.gate_type, node.arity),
                                dtype=bool)
                            w = np.asarray(weights.weights[gate],
                                           dtype=self.dtype)
                            group.w_masked1[:, col] = np.where(side1, w, 0.0)
                            group.w_masked0[:, col] = np.where(side1, 0.0, w)
                            # Same per-column summation order as the fresh
                            # compile's sum(axis=0) — bit-identical totals.
                            group.w_side0[col] = group.w_masked0[:, col].sum()
                            group.w_side1[col] = group.w_masked1[:, col].sum()
            self.circuit = circuit
            self.weights = weights
            self.output_prob1 = np.asarray(
                [weights.signal_prob[o] for o in circuit.outputs],
                dtype=self.dtype)
        if obs_metrics.is_enabled():
            obs_metrics.inc("compiled_pass.patches", circuit=circuit.name)
        return True

    def _eps_matrix(self, specs: Sequence[EpsilonSpec]) -> np.ndarray:
        """Broadcast a batch of eps specs to a dense (gates, E) matrix."""
        return _eps_matrix(self.gate_names, specs, dtype=self.dtype)

    def run(self, eps: EpsilonSpec,
            eps10: Optional[EpsilonSpec] = None) -> SweepResult:
        """One-point convenience wrapper around :meth:`run_sweep`."""
        return self.run_sweep([eps], None if eps10 is None else [eps10])

    def run_sweep(self, eps_specs: Sequence[EpsilonSpec],
                  eps10_specs: Optional[Sequence[EpsilonSpec]] = None
                  ) -> SweepResult:
        """Evaluate the propagation pass for every eps point at once.

        ``eps_specs`` is a sequence of failure-probability vectors (scalars
        or per-gate maps); ``eps10_specs``, when given, must have the same
        length and makes every gate's local channel asymmetric exactly as
        in :meth:`SinglePassAnalyzer.run`.
        """
        specs, eps10_list = _validated_specs(self.circuit, eps_specs,
                                             eps10_specs)
        n_nodes = len(self.node_names)
        n_points = len(specs)
        from ..backend import get_backend
        bk = get_backend(self.backend)
        with trace_span("compiled_pass.run_sweep", circuit=self.circuit.name,
                        points=n_points, backend=bk.name):
            e01 = self._eps_matrix(specs)
            e10 = e01 if eps10_list is None else self._eps_matrix(eps10_list)
            if not bk.is_numpy:
                e01 = bk.asarray(e01)
                e10 = e01 if eps10_list is None else bk.asarray(e10)
            p01 = bk.zeros((n_nodes, n_points), dtype=self.dtype)
            p10 = bk.zeros((n_nodes, n_points), dtype=self.dtype)
            for slot, ep in self.input_error_rows:
                p01[slot] = ep.p01
                p10[slot] = ep.p10
            for level_groups in self.levels:
                for group in level_groups:
                    rows = (group.eps_rows if bk.is_numpy
                            else bk.index_array(group.eps_rows))
                    _eval_group(group, p01, p10, e01[rows], e10[rows], bk)
            if not bk.is_numpy:
                bk.synchronize()
                p01 = bk.to_numpy(p01)
                p10 = bk.to_numpy(p10)
            per_output = ((1.0 - self.output_prob1)[:, None]
                          * p01[self.output_slots]
                          + self.output_prob1[:, None]
                          * p10[self.output_slots])
        if obs_metrics.is_enabled():
            labels = {"circuit": self.circuit.name}
            obs_metrics.inc("compiled_pass.sweeps", **labels)
            obs_metrics.inc("compiled_pass.points", n_points, **labels)
            obs_metrics.inc("compiled_pass.gate_evals",
                            len(self.gate_names) * n_points, **labels)
        return SweepResult(
            circuit_name=self.circuit.name,
            eps_specs=specs,
            eps10_specs=eps10_list,
            node_names=list(self.node_names),
            outputs=list(self.circuit.outputs),
            per_output=per_output,
            p01=p01,
            p10=p10,
            signal_prob=dict(self.weights.signal_prob),
            used_correlation=False,
            correlation_pairs=np.zeros(n_points, dtype=np.int64),
        )


def _eval_group(group: _OpGroup, p01, p10, e01, e10, bk=None) -> None:
    """Evaluate one (truth, arity) gate batch over the eps axis.

    Mutates ``p01`` / ``p10`` in place at ``group.slots`` (with
    ``group.circ`` selecting the leading circuit axis of a tensor-pass
    state).  ``e01`` / ``e10`` are the group's local failure
    probabilities, shape (m, E).  ``bk`` is a :mod:`repro.backend`
    instance; ``None`` (and the numpy backend) takes the allocation-free
    in-place path, other backends a generic path over the same algebra
    with the group's host arrays mirrored on device per call (zero-copy
    on CPU backends).
    """
    if bk is None or bk.is_numpy:
        _eval_group_numpy(group, p01, p10, e01, e10)
    else:
        _eval_group_generic(group, p01, p10, e01, e10, bk)


def _eval_group_numpy(group: _OpGroup, p01: np.ndarray, p10: np.ndarray,
                      e01: np.ndarray, e10: np.ndarray) -> None:
    """The numpy (default) evaluation of one gate batch."""
    if group.circ is None:
        f01 = p01[group.fanin_slots]        # (m, k, E)
        f10 = p10[group.fanin_slots]
    else:
        f01 = p01[group.circ[:, None], group.fanin_slots]
        f10 = p10[group.circ[:, None], group.fanin_slots]
    n_vec = group.bits.shape[0]             # V = 2**k
    m, k, n_eps = f01.shape
    dtype = p01.dtype

    pw0 = np.empty((m, n_eps), dtype=dtype)
    pw1 = np.empty((m, n_eps), dtype=dtype)
    # Chunk the gate batch so the (V, chunk, V, E) intermediate stays small.
    rows = max(1, _CHUNK_ELEMENTS // max(1, n_vec * n_vec * n_eps))
    for start in range(0, m, rows):
        sl = slice(start, min(m, start + rows))
        # Per-fanin flip probability under each error-free vector v: the
        # scalar pass's probs[t][events[t]] — p01 where fanin t reads 0,
        # p10 where it reads 1.  Shape (V, mc, k, E).
        pv = np.where(group.bits[:, None, :, None], f10[None, sl],
                      f01[None, sl])
        # Distribution over flip sets u by successive doubling: after step
        # t, the first 2**(t+1) lanes of axis 2 enumerate all flip subsets
        # of fanins 0..t.  The doubling runs inside one preallocated
        # (V, mc, V, E) buffer — lanes [w, 2w) take old*p, then [0, w)
        # scales in place by (1-p): the same products, no concatenates.
        mc = pv.shape[1]
        r = np.empty((n_vec, mc, n_vec, n_eps), dtype=dtype)
        r[:, :, 0, :] = 1.0
        width = 1
        for t in range(k):
            pt = pv[:, :, t, None, :]
            old = r[:, :, :width]
            np.multiply(old, pt, out=r[:, :, width:2 * width])
            old *= 1.0 - pt
            width *= 2
        # Total probability that fanin errors flip the output, per v —
        # with a per-gate mask when the group fuses several truth classes.
        if group.flip_mask.ndim == 3:
            flip = np.einsum("vmue,mvu->vme", r, group.flip_mask[sl])
        else:
            flip = np.einsum("vmue,vu->vme", r, group.flip_mask)
        np.minimum(flip, 1.0, out=flip)
        # Weighted components PW(b) = sum_v W[v] * flip[v] over side b.
        pw0[sl] = np.einsum("vm,vme->me", group.w_masked0[:, sl], flip)
        pw1[sl] = np.einsum("vm,vme->me", group.w_masked1[:, sl], flip)

    # Fold in the local failure channel: item (iii) of the paper's Sec. 4,
    # identical to combine_with_local_failure but over the whole batch.
    w0 = group.w_side0[:, None]
    w1 = group.w_side1[:, None]
    r0 = np.divide(pw0, w0, out=np.zeros_like(pw0), where=w0 > 0.0)
    r1 = np.divide(pw1, w1, out=np.zeros_like(pw1), where=w1 > 0.0)
    np.clip(r0, 0.0, 1.0, out=r0)
    np.clip(r1, 0.0, 1.0, out=r1)
    out01 = r0 * (1.0 - e10) + (1.0 - r0) * e01
    out10 = r1 * (1.0 - e01) + (1.0 - r1) * e10
    if group.circ is None:
        p01[group.slots] = out01
        p10[group.slots] = out10
    else:
        p01[group.circ, group.slots] = out01
        p10[group.circ, group.slots] = out10


def _eval_group_generic(group: _OpGroup, p01, p10, e01, e10, bk) -> None:
    """Backend-generic evaluation: same algebra through the bk façade.

    Values match the numpy path to float rounding on any IEEE backend —
    ``where``-guarded division replaces ``np.divide(..., where=)`` and
    out-of-place ``minimum``/``clip`` replace the in-place forms, all
    value-identical rewrites.
    """
    dtype = group.w_masked0.dtype
    fanin_idx = bk.index_array(group.fanin_slots)
    slot_idx = bk.index_array(group.slots)
    if group.circ is None:
        f01 = p01[fanin_idx]                # (m, k, E)
        f10 = p10[fanin_idx]
    else:
        circ_idx = bk.index_array(group.circ)
        f01 = p01[circ_idx[:, None], fanin_idx]
        f10 = p10[circ_idx[:, None], fanin_idx]
    bits = bk.asarray(group.bits)
    flip_mask = bk.asarray(group.flip_mask)
    wm0 = bk.asarray(group.w_masked0)
    wm1 = bk.asarray(group.w_masked1)
    n_vec = group.bits.shape[0]             # V = 2**k
    m, k, n_eps = f01.shape

    pw0 = bk.empty((m, n_eps), dtype=dtype)
    pw1 = bk.empty((m, n_eps), dtype=dtype)
    rows = max(1, _CHUNK_ELEMENTS // max(1, n_vec * n_vec * n_eps))
    for start in range(0, m, rows):
        sl = slice(start, min(m, start + rows))
        pv = bk.where(bits[:, None, :, None], f10[None, sl], f01[None, sl])
        r = bk.ones((n_vec, pv.shape[1], 1, n_eps), dtype=dtype)
        for t in range(k):
            pt = pv[:, :, t, None, :]
            r = bk.concatenate((r * (1.0 - pt), r * pt), axis=2)
        if group.flip_mask.ndim == 3:
            flip = bk.einsum("vmue,mvu->vme", r, flip_mask[sl])
        else:
            flip = bk.einsum("vmue,vu->vme", r, flip_mask)
        flip = bk.minimum(flip, 1.0)
        pw0[sl] = bk.einsum("vm,vme->me", wm0[:, sl], flip)
        pw1[sl] = bk.einsum("vm,vme->me", wm1[:, sl], flip)

    w0 = bk.asarray(group.w_side0)[:, None]
    w1 = bk.asarray(group.w_side1)[:, None]
    r0 = bk.where(w0 > 0.0, pw0 / bk.where(w0 > 0.0, w0, 1.0), 0.0)
    r1 = bk.where(w1 > 0.0, pw1 / bk.where(w1 > 0.0, w1, 1.0), 0.0)
    r0 = bk.clip(r0, 0.0, 1.0)
    r1 = bk.clip(r1, 0.0, 1.0)
    out01 = r0 * (1.0 - e10) + (1.0 - r0) * e01
    out10 = r1 * (1.0 - e01) + (1.0 - r1) * e10
    if group.circ is None:
        p01[slot_idx] = out01
        p10[slot_idx] = out10
    else:
        p01[circ_idx, slot_idx] = out01
        p10[circ_idx, slot_idx] = out10


# ======================================================================
# Correlated kernel (Sec. 4.1)
# ======================================================================

def _eps_matrix(gate_names: Sequence[str],
                specs: Sequence[EpsilonSpec],
                dtype: np.dtype = np.float64) -> np.ndarray:
    """Broadcast a batch of eps specs to a dense (gates, E) matrix."""
    mat = np.empty((len(gate_names), len(specs)), dtype=dtype)
    for j, spec in enumerate(specs):
        if isinstance(spec, Mapping):
            mat[:, j] = [epsilon_of(spec, g) for g in gate_names]
        else:
            mat[:, j] = float(spec)
    return mat


#: Shared sweep-argument validation of both kernels (canonical home:
#: :func:`repro.spec.validate_sweep_specs`).
_validated_specs = validate_sweep_specs


@dataclass
class _CorrGateProgram:
    """One gate whose transition math references nontrivial coefficient rows.

    ``vprogs`` holds one ``(weight, b, fetch, perts)`` tuple per active
    error-free input vector, in ascending-vector order (the scalar
    accumulation order):

    * ``fetch`` — ``(position, fanin_slot, is10)`` state reads;
    * ``perts`` — ``(flip_ops, pair_rows, nf_ops)`` per output-flipping
      perturbation: flip positions with their conditioning coefficient row
      (-1 when none), the capped pairwise rows among the flips, and the
      non-flipping positions with their coefficient-row scale chains.
    """

    slot: int
    eps_row: int
    k: int
    w_side0: float
    w_side1: float
    vprogs: List[tuple]


@dataclass
class _ExpandProgram:
    """One coefficient row: the Fig. 4 expansion of pair ``(a, ea | b, eb)``.

    Mirrors :meth:`ErrorCorrelationEngine._expand` elementwise: run the
    conditioned transition programs of the side-``ea`` input vectors of
    ``a``'s gate, fold in the local failure channel, divide by ``a``'s
    marginal and apply the feasibility/overflow caps.
    """

    row: int
    a_slot: int
    ea: int
    b_slot: int
    eb: int
    eps_row: int
    k: int
    w_side: float
    vprogs: List[tuple]


def _flip_probability(k: int, fetch: tuple, perts: tuple,
                      p01: np.ndarray, p10: np.ndarray,
                      C: np.ndarray) -> np.ndarray:
    """Total output-flip probability of one input vector, shape (E,).

    Elementwise replica of the scalar ``_correlated_transition`` summed
    over the vector's perturbations: identical operation order, with
    ``np.minimum``/``np.maximum`` standing in for the scalar clamps and
    caps, so the two paths agree to float rounding.  Coefficient rows equal
    to the constant 1.0 are dropped at plan-build time (multiplying by an
    exact 1.0 is the identity, and every cap they could trigger is already
    implied by the running invariants).
    """
    p = [None] * k
    for t, slot, is10 in fetch:
        p[t] = p10[slot] if is10 else p01[slot]
    total = None
    for flip_ops, pair_rows, nf_ops in perts:
        term = None
        if pair_rows:
            min_flip = None
            for t, cr in flip_ops:
                pt = p[t]
                if cr >= 0:
                    pt = np.minimum(pt * C[cr], 1.0)
                if term is None:
                    term = pt
                    min_flip = pt
                else:
                    term = term * pt
                    min_flip = np.minimum(min_flip, pt)
            for r in pair_rows:
                term = np.minimum(term * C[r], 1e12)
            # Feasibility: the joint of all flips cannot exceed any single
            # flip probability (same cap as the scalar pass).
            term = np.minimum(term, min_flip)
        else:
            for t, cr in flip_ops:
                pt = p[t]
                if cr >= 0:
                    pt = np.minimum(pt * C[cr], 1.0)
                term = pt if term is None else term * pt
        for t, rows in nf_ops:
            pt = p[t]
            if rows:
                scale = C[rows[0]]
                for r in rows[1:]:
                    scale = np.minimum(scale * C[r], 1e12)
                pt = np.minimum(pt * scale, 1.0)
            term = term * (1.0 - pt)
        total = term if total is None else total + term
    return total


def _eval_corr_gate(gp: _CorrGateProgram, p01: np.ndarray, p10: np.ndarray,
                    C: np.ndarray, e01g: np.ndarray,
                    e10g: np.ndarray) -> None:
    """Propagate one correlated gate over the eps axis (state update)."""
    pw0 = None
    pw1 = None
    for wv, b, fetch, perts in gp.vprogs:
        contrib = wv * np.minimum(
            1.0, _flip_probability(gp.k, fetch, perts, p01, p10, C))
        if b:
            pw1 = contrib if pw1 is None else pw1 + contrib
        else:
            pw0 = contrib if pw0 is None else pw0 + contrib
    if pw0 is not None and gp.w_side0 > 0.0:
        r0 = np.minimum(pw0 / gp.w_side0, 1.0)
        p01[gp.slot] = r0 * (1.0 - e10g) + (1.0 - r0) * e01g
    else:
        p01[gp.slot] = e01g
    if pw1 is not None and gp.w_side1 > 0.0:
        r1 = np.minimum(pw1 / gp.w_side1, 1.0)
        p10[gp.slot] = r1 * (1.0 - e01g) + (1.0 - r1) * e10g
    else:
        p10[gp.slot] = e10g


def _eval_expand(xp: _ExpandProgram, p01: np.ndarray, p10: np.ndarray,
                 C: np.ndarray, e01g: np.ndarray, e10g: np.ndarray) -> None:
    """Fill one expansion coefficient row for every eps point."""
    pw = None
    for wv, fetch, perts in xp.vprogs:
        contrib = wv * np.minimum(
            1.0, _flip_probability(xp.k, fetch, perts, p01, p10, C))
        pw = contrib if pw is None else pw + contrib
    local = e01g if xp.ea == 0 else e10g
    if pw is not None and xp.w_side > 0.0:
        r = np.minimum(pw / xp.w_side, 1.0)
        conditional = local + r * ((1.0 - e01g) - e10g)
        conditional = np.minimum(np.maximum(conditional, 0.0), 1.0)
    else:
        conditional = local
    marginal = (p01 if xp.ea == 0 else p10)[xp.a_slot]
    p_b = (p01 if xp.eb == 0 else p10)[xp.b_slot]
    # Degenerate lanes (zero/denormal marginals) read 1.0 exactly as the
    # scalar engine's early returns; `where` keeps their divisions safe.
    valid = (marginal > 1e-300) & (p_b > 0.0)
    coef = conditional / np.where(valid, marginal, 1.0)
    cap = 1.0 / np.where(valid, np.maximum(marginal, p_b), 1.0)
    coef = np.minimum(coef, cap)
    coef = np.maximum(0.0, np.minimum(coef, 1e9))
    C[xp.row] = np.where(valid, coef, 1.0)


class CompiledCorrelatedPass:
    """Circuit + weights lowered for vectorized correlation-corrected sweeps.

    The Sec. 4.1 engine's state — one lazily-memoized coefficient per
    ``(wire, event, wire, event)`` pair — is lowered at plan time into an
    integer-indexed row table; :meth:`run_sweep` then evaluates the entire
    corrected pass, coefficients included, with a trailing eps axis.

    Plan construction discovers the structural closure of the Fig. 4
    recursion: building each gate's transition program queries the
    coefficient rows it needs, and each new expansion row is queued until
    its own program is built.  The recursion is well-founded because a
    canonical pair always expands its topologically *later* wire through
    its gate, so every referenced pair is strictly earlier — which also
    makes the discovered set (and the coefficient values) independent of
    query order, the contract shared with the scalar engine via
    :class:`~repro.probability.correlation.PairStructure`.

    Parameters mirror the analyzer's correlation knobs: ``max_pairs``
    bounds the expansion-row count (beyond it the plan refuses with
    :class:`CompiledPassUnsupported` and the analyzer falls back to the
    scalar engine's per-query budget degradation), ``max_level_gap`` is
    the Sec. 4.1 locality cap, and ``cache_dir`` persists the discovered
    pair table across processes (see
    :func:`repro.probability.weight_cache.store_correlation_plan`).
    """

    def __init__(self, circuit: Circuit,
                 weights: WeightData,
                 input_errors: Optional[Mapping[str, ErrorProbability]] = None,
                 max_arity: int = MAX_COMPILED_ARITY,
                 max_pairs: int = 1_000_000,
                 max_level_gap: Optional[int] = None,
                 cache_dir: Optional[str] = None,
                 structure: Optional[PairStructure] = None):
        circuit.validate()
        self.circuit = circuit
        self.weights = weights
        self.max_pairs = max_pairs
        self.max_level_gap = max_level_gap
        with trace_span("compiled_pass.compile_correlated",
                        circuit=circuit.name):
            self._compile(dict(input_errors or {}), max_arity, cache_dir,
                          structure)
        if obs_metrics.is_enabled():
            obs_metrics.inc("compiled_pass.correlated_compiles",
                            circuit=circuit.name)
            obs_metrics.set_gauge("compiled_pass.coefficient_rows",
                                  self.n_rows, circuit=circuit.name)

    # -- plan construction ---------------------------------------------
    def _compile(self, input_errors, max_arity, cache_dir,
                 structure=None) -> None:
        circuit = self.circuit
        order = circuit.topological_order()
        self.node_names: List[str] = order
        self.index: Dict[str, int] = {n: i for i, n in enumerate(order)}
        gates = circuit.topological_gates()
        self.gate_names: List[str] = gates
        self._gate_row = {g: i for i, g in enumerate(gates)}
        self.input_error_rows: List[Tuple[int, ErrorProbability]] = [
            (self.index[name], ep) for name, ep in input_errors.items()]
        # A caller holding a still-valid PairStructure (same circuit
        # structure, same level-gap cap — e.g. an incremental workspace
        # re-lowering after a type-only swap) can pass it in to skip the
        # support-bitset recomputation.
        self.structure = (structure if structure is not None
                          else PairStructure(
                              circuit, max_level_gap=self.max_level_gap))

        # Wires whose error probability is identically zero at every eps
        # point: constants and noise-free primary inputs.  Their pruning in
        # the lowering mirrors the scalar pass's zero-probability exits.
        self._error_free = set()
        for name in order:
            if circuit.node(name).gate_type.is_logic:
                continue
            ep = input_errors.get(name)
            if ep is None or (ep.p01 == 0.0 and ep.p10 == 0.0):
                self._error_free.add(name)

        self._same_index: Dict[Tuple[str, int], int] = {}
        self._same_rows: List[Tuple[int, int, int, str]] = []
        self._row_index: Dict[Tuple[str, int, str, int], int] = {}
        self._pending = deque()
        self.n_rows = 2  # rows 0/1 are the 1.0 / 0.0 constants

        cached_plan = None
        if cache_dir is not None:
            cached_plan = load_correlation_plan(
                cache_dir, circuit, self.max_level_gap, self.max_pairs)
        if cached_plan is not None and cached_plan.get("unsupported"):
            raise CompiledPassUnsupported(
                f"correlated pair budget ({self.max_pairs}) exceeded for "
                f"{circuit.name!r} (cached plan)")
        if cached_plan is not None:
            # Seed the row index so discovery short-circuits its structural
            # classification; the closure below still builds every program.
            for a_slot, ea, b_slot, eb in cached_plan["pairs"]:
                key = (order[a_slot], int(ea), order[b_slot], int(eb))
                self._row_index[key] = self.n_rows
                self._pending.append((self.n_rows, key))
                self.n_rows += 1

        try:
            plain_gates: List[str] = []
            corr_progs: List[Tuple[int, _CorrGateProgram]] = []
            for gate in gates:
                node = circuit.node(gate)
                if node.arity > max_arity:
                    raise CompiledPassUnsupported(
                        f"gate {gate!r} has arity {node.arity} > {max_arity};"
                        " use the scalar pass")
                prog = self._gate_program(gate, node)
                if prog is None:
                    plain_gates.append(gate)
                else:
                    corr_progs.append((circuit.level(gate), prog))
            expand_progs: List[_ExpandProgram] = []
            while self._pending:
                row, (a, ea, b, eb) = self._pending.popleft()
                expand_progs.append(self._expand_program(row, a, ea, b, eb))
        except CompiledPassUnsupported:
            if cache_dir is not None and cached_plan is None:
                store_correlation_plan(cache_dir, circuit,
                                       self.max_level_gap, self.max_pairs,
                                       unsupported=True)
            raise
        if cache_dir is not None and cached_plan is None:
            store_correlation_plan(
                cache_dir, circuit, self.max_level_gap, self.max_pairs,
                pairs=[(self.index[a], ea, self.index[b], eb)
                       for (a, ea, b, eb) in sorted(self._row_index)])

        # -- level schedule --------------------------------------------
        # Per level: plain groups, then correlated gates (state of level L
        # is final after these), then same-wire rows (state reads only),
        # then expansion rows sorted child-before-parent (a child pair's
        # canonical later wire is strictly topologically earlier).
        st = self.structure
        plain_levels = _lower_plain_groups(
            circuit, self.weights, self.index, self._gate_row,
            plain_gates, max_arity)
        corr_by_level: Dict[int, List[_CorrGateProgram]] = {}
        for level, prog in corr_progs:
            corr_by_level.setdefault(level, []).append(prog)
        same_by_level: Dict[int, List[Tuple[int, int, int, int]]] = {}
        for row, slot, ev, wire in self._same_rows:
            same_by_level.setdefault(st.level[wire], []).append(
                (row, slot, ev, st.topo_pos[wire]))
        for rows in same_by_level.values():
            rows.sort(key=lambda r: (r[3], r[2]))
        expand_by_level: Dict[int, List[tuple]] = {}
        for xp in expand_progs:
            a = self.node_names[xp.a_slot]
            b = self.node_names[xp.b_slot]
            lv = max(st.level[a], st.level[b])
            expand_by_level.setdefault(lv, []).append(
                (st.topo_pos[a], xp.ea, st.topo_pos[b], xp.eb, xp))
        for items in expand_by_level.values():
            items.sort(key=lambda it: it[:4])
        self._schedule: List[tuple] = []
        for lv in sorted(set(plain_levels) | set(corr_by_level)
                         | set(same_by_level) | set(expand_by_level)):
            self._schedule.append((
                tuple(plain_levels.get(lv, ())),
                tuple(corr_by_level.get(lv, ())),
                tuple((r, s, e) for r, s, e, _ in same_by_level.get(lv, ())),
                tuple(it[4] for it in expand_by_level.get(lv, ())),
            ))

        self.n_pair_rows = len(self._row_index)
        self.num_corr_gates = len(corr_progs)
        items = sorted(self._row_index.items())
        #: Canonical pair keys, sorted by wire ids (the deterministic
        #: iteration contract of ErrorCorrelationEngine.coefficient_items).
        self.pair_keys: List[Tuple[str, int, str, int]] = [
            key for key, _ in items]
        self._pair_rows_order = np.asarray([row for _, row in items],
                                           dtype=np.intp)

        self.output_slots = np.asarray(
            [self.index[o] for o in circuit.outputs], dtype=np.intp)
        self.output_prob1 = np.asarray(
            [self.weights.signal_prob[o] for o in circuit.outputs],
            dtype=np.float64)

    # ------------------------------------------------------------------
    def _row_of(self, a: str, ea: int, b: str, eb: int) -> int:
        """Coefficient row index for the joint (a: ea, b: eb) events.

        Mirrors the scalar engine's classification in the same order:
        same-wire, disjoint supports, canonicalization, level gap; anything
        left is an expansion row, created (and queued for program
        construction) on first sight.
        """
        if a == b:
            if ea != eb:
                return ROW_ZERO
            skey = (a, ea)
            row = self._same_index.get(skey)
            if row is None:
                row = self.n_rows
                self.n_rows += 1
                self._same_index[skey] = row
                self._same_rows.append((row, self.index[a], ea, a))
            return row
        st = self.structure
        key = st.canonical(a, ea, b, eb)
        row = self._row_index.get(key)
        if row is not None:
            return row
        if not st.overlaps(a, b):
            return ROW_ONE
        if st.gapped(key[0], key[2]):
            return ROW_ONE
        if not self.circuit.node(key[0]).gate_type.is_logic:
            return ROW_ONE  # cannot happen for a canonical later wire
        if len(self._row_index) >= self.max_pairs:
            raise CompiledPassUnsupported(
                f"correlated pair budget ({self.max_pairs}) exceeded while "
                f"lowering {self.circuit.name!r}; use the scalar pass")
        row = self.n_rows
        self.n_rows += 1
        self._row_index[key] = row
        self._pending.append((row, key))
        return row

    def _instance_masks(self, node, w) -> Tuple[int, int]:
        """(active input vectors, error-free fanin positions) bitmasks."""
        active = 0
        for v, wv in enumerate(w):
            if wv != 0.0:
                active |= 1 << v
        errfree = 0
        for t, f in enumerate(node.fanins):
            if f in self._error_free:
                errfree |= 1 << t
        return active, errfree

    def _vector_program(self, fanins, events, perts,
                        cond: Optional[Tuple[str, int]]):
        """Lower one input vector's perturbations to row-indexed programs.

        Returns ``(fetch, pert_progs, nontrivial)`` where ``nontrivial``
        reports whether any referenced coefficient row differs from the
        constant 1.0 (a gate whose vectors are all trivial runs on the
        batched independence kernel instead).
        """
        pair_memo: Dict[Tuple[int, int], int] = {}

        def prow(i: int, j: int) -> int:
            pkey = (i, j) if i < j else (j, i)
            r = pair_memo.get(pkey)
            if r is None:
                r = self._row_of(fanins[pkey[0]], events[pkey[0]],
                                 fanins[pkey[1]], events[pkey[1]])
                pair_memo[pkey] = r
            return r

        cond_memo: Dict[int, int] = {}

        def crow(t: int) -> int:
            r = cond_memo.get(t)
            if r is None:
                r = self._row_of(fanins[t], events[t], cond[0], cond[1])
                cond_memo[t] = r
            return r

        pert_progs = []
        positions = set()
        for flips, nonflips in perts:
            flip_ops = []
            for t in flips:
                cr = -1
                if cond is not None:
                    c = crow(t)
                    if c != ROW_ONE:
                        cr = c
                flip_ops.append((t, cr))
                positions.add(t)
            pair_rows = []
            n = len(flips)
            for ai in range(n):
                for bi in range(ai + 1, n):
                    r = prow(flips[ai], flips[bi])
                    if r != ROW_ONE:
                        pair_rows.append(r)
            nf_ops = []
            for t in nonflips:
                rows = []
                if cond is not None:
                    c = crow(t)
                    if c != ROW_ONE:
                        rows.append(c)
                for u in flips:
                    r = prow(t, u)
                    if r != ROW_ONE:
                        rows.append(r)
                nf_ops.append((t, tuple(rows)))
                positions.add(t)
            pert_progs.append((tuple(flip_ops), tuple(pair_rows),
                               tuple(nf_ops)))
        nontrivial = (any(r != ROW_ONE for r in pair_memo.values())
                      or any(r != ROW_ONE for r in cond_memo.values()))
        fetch = tuple((t, self.index[fanins[t]], events[t] == EVENT_1TO0)
                      for t in sorted(positions))
        return fetch, tuple(pert_progs), nontrivial

    def _gate_program(self, gate: str, node) -> Optional[_CorrGateProgram]:
        """Lower one gate's correlated transition; None when vacuous."""
        k = node.arity
        truth = truth_table(node.gate_type, k)
        w = [float(x) for x in self.weights.weights[gate]]
        active, errfree = self._instance_masks(node, w)
        lowered = correlated_transition_lowering(truth, k, active, errfree)
        nontrivial = False
        vprogs = []
        for v, b, events, perts in lowered:
            fetch, pert_progs, used = self._vector_program(
                node.fanins, events, perts, cond=None)
            nontrivial = nontrivial or used
            vprogs.append((w[v], b, fetch, pert_progs))
        if not nontrivial:
            return None
        w0 = 0.0
        w1 = 0.0
        for v, wv in enumerate(w):
            if truth[v]:
                w1 += wv
            else:
                w0 += wv
        return _CorrGateProgram(slot=self.index[gate],
                                eps_row=self._gate_row[gate],
                                k=k, w_side0=w0, w_side1=w1, vprogs=vprogs)

    def _expand_program(self, row: int, a: str, ea: int,
                        b: str, eb: int) -> _ExpandProgram:
        """Lower one coefficient row's Fig. 4 expansion program."""
        node = self.circuit.node(a)
        k = node.arity
        truth = truth_table(node.gate_type, k)
        w = [float(x) for x in self.weights.weights[a]]
        active, errfree = self._instance_masks(node, w)
        lowered = correlated_transition_lowering(truth, k, active, errfree)
        side = 0 if ea == 0 else 1
        w_side = 0.0
        for v, wv in enumerate(w):
            if truth[v] == side:
                w_side += wv
        vprogs = []
        for v, b_out, events, perts in lowered:
            if b_out != side:
                continue
            fetch, pert_progs, _ = self._vector_program(
                node.fanins, events, perts, cond=(b, eb))
            vprogs.append((w[v], fetch, pert_progs))
        return _ExpandProgram(row=row, a_slot=self.index[a], ea=ea,
                              b_slot=self.index[b], eb=eb,
                              eps_row=self._gate_row[a], k=k,
                              w_side=w_side, vprogs=vprogs)

    # -- execution ------------------------------------------------------
    def run(self, eps: EpsilonSpec,
            eps10: Optional[EpsilonSpec] = None) -> SweepResult:
        """One-point convenience wrapper around :meth:`run_sweep`."""
        return self.run_sweep([eps], None if eps10 is None else [eps10])

    def run_sweep(self, eps_specs: Sequence[EpsilonSpec],
                  eps10_specs: Optional[Sequence[EpsilonSpec]] = None
                  ) -> SweepResult:
        """Evaluate the corrected pass for every eps point at once."""
        specs, eps10_list = _validated_specs(self.circuit, eps_specs,
                                             eps10_specs)
        n_nodes = len(self.node_names)
        n_points = len(specs)
        with trace_span("compiled_pass.run_sweep_correlated",
                        circuit=self.circuit.name, points=n_points):
            e01 = _eps_matrix(self.gate_names, specs)
            e10 = (e01 if eps10_list is None
                   else _eps_matrix(self.gate_names, eps10_list))
            p01 = np.zeros((n_nodes, n_points), dtype=np.float64)
            p10 = np.zeros((n_nodes, n_points), dtype=np.float64)
            for slot, ep in self.input_error_rows:
                p01[slot] = ep.p01
                p10[slot] = ep.p10
            C = np.empty((self.n_rows, n_points), dtype=np.float64)
            C[ROW_ONE] = 1.0
            C[ROW_ZERO] = 0.0
            for plain_groups, corr_gates, same_rows, expand_rows \
                    in self._schedule:
                for group in plain_groups:
                    _eval_group(group, p01, p10,
                                e01[group.eps_rows], e10[group.eps_rows])
                for gp in corr_gates:
                    _eval_corr_gate(gp, p01, p10, C,
                                    e01[gp.eps_row], e10[gp.eps_row])
                for row, slot, ev in same_rows:
                    pval = (p01 if ev == 0 else p10)[slot]
                    big = pval > 1e-9
                    C[row] = np.where(
                        big,
                        np.minimum(1.0 / np.where(big, pval, 1.0), 1e9),
                        np.where(pval > 0.0, 1e9, 1.0))
                for xp in expand_rows:
                    _eval_expand(xp, p01, p10, C,
                                 e01[xp.eps_row], e10[xp.eps_row])
            per_output = ((1.0 - self.output_prob1)[:, None]
                          * p01[self.output_slots]
                          + self.output_prob1[:, None]
                          * p10[self.output_slots])
        if obs_metrics.is_enabled():
            labels = {"circuit": self.circuit.name}
            obs_metrics.inc("compiled_pass.correlated_sweeps", **labels)
            obs_metrics.inc("compiled_pass.points", n_points, **labels)
            obs_metrics.inc("compiled_pass.gate_evals",
                            len(self.gate_names) * n_points, **labels)
            obs_metrics.inc("correlation.pairs_tracked",
                            self.n_pair_rows * n_points, **labels)
        coefficients = (C[self._pair_rows_order] if self.n_pair_rows
                        else np.empty((0, n_points), dtype=np.float64))
        return SweepResult(
            circuit_name=self.circuit.name,
            eps_specs=specs,
            eps10_specs=eps10_list,
            node_names=list(self.node_names),
            outputs=list(self.circuit.outputs),
            per_output=per_output,
            p01=p01,
            p10=p10,
            signal_prob=dict(self.weights.signal_prob),
            used_correlation=True,
            correlation_pairs=np.full(n_points, self.n_pair_rows,
                                      dtype=np.int64),
            correlation_pair_keys=list(self.pair_keys),
            correlation_coefficients=coefficients,
        )
