"""Compiled single-pass kernel: vectorized error propagation with an eps axis.

The paper's scalability argument (Sec. 4, Table 2) is that weight vectors
are computed once and the O(n) propagation pass is re-run cheaply for every
failure-probability vector — eps sweeps, SER estimation, design-space
exploration.  The scalar pass in :mod:`repro.reliability.single_pass`
honors the split but spends its time in per-gate Python loops over ``2**k``
truth rows and perturbation tuples, and repeats all of it per eps point.

:class:`CompiledSinglePass` removes both costs.  It lowers a circuit plus
its :class:`~repro.probability.weights.WeightData` into integer-indexed
numpy arrays **once** (mirroring how :class:`repro.sim.simulator.
CompiledCircuit` compiles for bit-parallel simulation):

* node error state lives in two dense ``(nodes, E)`` matrices ``P01`` /
  ``P10`` indexed by topological slot, where ``E`` is the number of eps
  points — the *trailing eps axis*;
* gates are grouped by topological level and, within a level, by
  ``(truth table, arity)`` class; each group carries its fanin slot matrix,
  its stacked weight vectors, and the class's shared transition lowering
  (:func:`repro.probability.error_propagation.transition_lowering`);
* evaluating a group is a handful of vectorized tensor ops over
  ``(2**k, gates, 2**k, E)`` — every gate of the class, every error-free
  vector, every perturbation, and every eps point at once.

:meth:`CompiledSinglePass.run_sweep` therefore computes the entire
delta(eps) curve — including asymmetric ``eps10`` channels and per-gate
eps maps, broadcast to ``(gates, E)`` — in one pass instead of ``E``
Python passes.  The kernel implements the plain Sec. 4 independence
algorithm; :class:`~repro.reliability.single_pass.SinglePassAnalyzer`
dispatches to it only when the Sec. 4.1 correlation correction is disabled
or structurally irrelevant, and parity with the scalar pass is pinned to
<= 1e-12 by ``tests/test_compiled_pass.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..circuit import Circuit, truth_table
from ..obs import metrics as obs_metrics
from ..obs import trace_span
from ..probability.error_propagation import (
    ErrorProbability,
    transition_lowering,
)
from ..probability.weights import WeightData
from ..sim.montecarlo import EpsilonSpec, epsilon_of, validate_epsilon


class CompiledPassUnsupported(ValueError):
    """The circuit cannot be lowered into the vectorized kernel.

    Raised at plan-construction time (e.g. a gate arity whose ``4**k``
    transition tensors would not fit in memory); callers fall back to the
    scalar pass.
    """


#: Widest gate the kernel lowers; the per-class tensors scale as ``4**k``.
MAX_COMPILED_ARITY = 12

#: Soft cap on elements of one ``(V, gates, V, E)`` intermediate; gate
#: batches are chunked so each slice stays under roughly this many floats
#: (~128 MB at 8 bytes/element for the default).
_CHUNK_ELEMENTS = 1 << 24


@dataclass
class _OpGroup:
    """All same-level gates sharing one (truth, arity) class."""

    arity: int
    #: Node slots written by this group, shape (m,).
    slots: np.ndarray
    #: Rows into the (gates, E) local-failure matrices, shape (m,).
    eps_rows: np.ndarray
    #: Fanin node slots, shape (m, k).
    fanin_slots: np.ndarray
    #: bits[v, t] = value of fanin t in error-free vector v, shape (V, k).
    bits: np.ndarray
    #: flip_mask[v, u] = 1.0 iff flip set u changes the output, (V, V).
    flip_mask: np.ndarray
    #: Weight vectors masked by output side: w_masked[b][v, m] is gate m's
    #: weight of vector v when truth[v] == b, else 0.
    w_masked0: np.ndarray
    w_masked1: np.ndarray
    #: Total weight per side W(b), shape (m,).
    w_side0: np.ndarray = field(default=None)
    w_side1: np.ndarray = field(default=None)

    def __post_init__(self):
        if self.w_side0 is None:
            self.w_side0 = self.w_masked0.sum(axis=0)
        if self.w_side1 is None:
            self.w_side1 = self.w_masked1.sum(axis=0)


@dataclass
class SweepResult:
    """A full eps sweep from the compiled (or batched scalar) pass.

    Node error state is kept in dense ``(nodes, E)`` matrices rather than
    ``E`` dicts of :class:`ErrorProbability`; :meth:`point` materializes
    the classic :class:`~repro.reliability.single_pass.SinglePassResult`
    view of one sweep point on demand.
    """

    circuit_name: str
    #: The eps specs the sweep evaluated, in order (scalars or per-gate maps).
    eps_specs: List[EpsilonSpec]
    eps10_specs: Optional[List[EpsilonSpec]]
    #: Topological node order; row i of p01/p10 is node_names[i].
    node_names: List[str]
    outputs: List[str]
    #: delta per output per eps point, shape (outputs, E).
    per_output: np.ndarray
    #: Propagated conditional error probabilities, shape (nodes, E).
    p01: np.ndarray
    p10: np.ndarray
    signal_prob: Dict[str, float]
    used_correlation: bool = False
    #: Correlation pairs per point (all zero on the compiled path).
    correlation_pairs: Optional[np.ndarray] = None

    @property
    def n_points(self) -> int:
        return len(self.eps_specs)

    def delta(self, output: Optional[str] = None) -> np.ndarray:
        """delta(eps) of one output over the sweep, shape (E,)."""
        if output is None:
            if len(self.outputs) != 1:
                raise ValueError("output name required for multi-output result")
            return self.per_output[0].copy()
        return self.per_output[self.outputs.index(output)].copy()

    def curve(self, output: Optional[str] = None) -> Dict[float, float]:
        """``{eps: delta}`` for scalar eps sweeps (the classic curve API)."""
        for spec in self.eps_specs:
            if isinstance(spec, Mapping):
                raise TypeError(
                    "curve() requires scalar eps specs; use delta() for "
                    "per-gate sweeps")
        values = self.delta(output)
        return {float(e): float(v) for e, v in zip(self.eps_specs, values)}

    def point(self, j: int):
        """Materialize sweep point ``j`` as a :class:`SinglePassResult`."""
        from .single_pass import SinglePassResult
        node_errors = {
            name: ErrorProbability(p01=float(self.p01[i, j]),
                                   p10=float(self.p10[i, j]))
            for i, name in enumerate(self.node_names)}
        per_output = {out: float(self.per_output[o, j])
                      for o, out in enumerate(self.outputs)}
        pairs = (0 if self.correlation_pairs is None
                 else int(self.correlation_pairs[j]))
        return SinglePassResult(
            per_output=per_output,
            node_errors=node_errors,
            signal_prob=dict(self.signal_prob),
            used_correlation=self.used_correlation,
            correlation_pairs=pairs,
            correlation_engine=None,
        )


class CompiledSinglePass:
    """A circuit + weight data lowered for vectorized eps sweeps.

    Construct once per (circuit, weights); call :meth:`run_sweep` for each
    batch of failure-probability vectors.  The plan is read-only after
    construction and contains only numpy arrays and plain containers, so it
    pickles cleanly (process-pool fan-out) and is safe to share between
    threads.

    Parameters
    ----------
    circuit:
        Circuit under analysis.
    weights:
        Precomputed weight vectors / signal probabilities.
    input_errors:
        Optional error probabilities at the primary inputs (same initial
        conditions as the scalar pass).
    max_arity:
        Refuse (with :class:`CompiledPassUnsupported`) gates wider than
        this — the per-class tensors scale as ``4**k``.
    """

    def __init__(self, circuit: Circuit,
                 weights: WeightData,
                 input_errors: Optional[Mapping[str, ErrorProbability]] = None,
                 max_arity: int = MAX_COMPILED_ARITY):
        circuit.validate()
        self.circuit = circuit
        self.weights = weights
        with trace_span("compiled_pass.compile", circuit=circuit.name):
            order = circuit.topological_order()
            self.node_names: List[str] = order
            self.index: Dict[str, int] = {n: i for i, n in enumerate(order)}
            gates = circuit.topological_gates()
            self.gate_names: List[str] = gates
            gate_row = {g: i for i, g in enumerate(gates)}

            #: (slot, ErrorProbability) rows seeded from input_errors.
            self.input_error_rows: List[Tuple[int, ErrorProbability]] = [
                (self.index[name], ep)
                for name, ep in dict(input_errors or {}).items()]

            grouped: Dict[Tuple[int, Tuple[int, ...], int], Dict] = {}
            for gate in gates:
                node = circuit.node(gate)
                k = node.arity
                if k > max_arity:
                    raise CompiledPassUnsupported(
                        f"gate {gate!r} has arity {k} > {max_arity}; "
                        "use the scalar pass")
                truth = truth_table(node.gate_type, k)
                key = (circuit.level(gate), truth, k)
                entry = grouped.setdefault(
                    key, {"slots": [], "eps_rows": [], "fanins": [],
                          "weights": []})
                entry["slots"].append(self.index[gate])
                entry["eps_rows"].append(gate_row[gate])
                entry["fanins"].append([self.index[f] for f in node.fanins])
                entry["weights"].append(
                    np.asarray(weights.weights[gate], dtype=np.float64))

            levels: Dict[int, List[_OpGroup]] = {}
            for (level, truth, k), entry in sorted(grouped.items()):
                bits, flip_mask, truth_arr = transition_lowering(truth, k)
                w = np.stack(entry["weights"])              # (m, V)
                side1 = truth_arr.astype(bool)              # (V,)
                w_masked1 = np.where(side1[None, :], w, 0.0).T  # (V, m)
                w_masked0 = np.where(side1[None, :], 0.0, w).T
                levels.setdefault(level, []).append(_OpGroup(
                    arity=k,
                    slots=np.asarray(entry["slots"], dtype=np.intp),
                    eps_rows=np.asarray(entry["eps_rows"], dtype=np.intp),
                    fanin_slots=np.asarray(entry["fanins"], dtype=np.intp),
                    bits=bits,
                    flip_mask=flip_mask,
                    w_masked0=np.ascontiguousarray(w_masked0),
                    w_masked1=np.ascontiguousarray(w_masked1),
                ))
            self.levels: List[List[_OpGroup]] = [
                levels[lv] for lv in sorted(levels)]
            self.num_groups = sum(len(g) for g in self.levels)

            self.output_slots = np.asarray(
                [self.index[o] for o in circuit.outputs], dtype=np.intp)
            self.output_prob1 = np.asarray(
                [weights.signal_prob[o] for o in circuit.outputs],
                dtype=np.float64)
        if obs_metrics.is_enabled():
            obs_metrics.inc("compiled_pass.compiles", circuit=circuit.name)
            obs_metrics.set_gauge("compiled_pass.groups", self.num_groups,
                                  circuit=circuit.name)

    # ------------------------------------------------------------------
    def _eps_matrix(self, specs: Sequence[EpsilonSpec]) -> np.ndarray:
        """Broadcast a batch of eps specs to a dense (gates, E) matrix."""
        mat = np.empty((len(self.gate_names), len(specs)), dtype=np.float64)
        for j, spec in enumerate(specs):
            if isinstance(spec, Mapping):
                mat[:, j] = [epsilon_of(spec, g) for g in self.gate_names]
            else:
                mat[:, j] = float(spec)
        return mat

    def run(self, eps: EpsilonSpec,
            eps10: Optional[EpsilonSpec] = None) -> SweepResult:
        """One-point convenience wrapper around :meth:`run_sweep`."""
        return self.run_sweep([eps], None if eps10 is None else [eps10])

    def run_sweep(self, eps_specs: Sequence[EpsilonSpec],
                  eps10_specs: Optional[Sequence[EpsilonSpec]] = None
                  ) -> SweepResult:
        """Evaluate the propagation pass for every eps point at once.

        ``eps_specs`` is a sequence of failure-probability vectors (scalars
        or per-gate maps); ``eps10_specs``, when given, must have the same
        length and makes every gate's local channel asymmetric exactly as
        in :meth:`SinglePassAnalyzer.run`.
        """
        specs = list(eps_specs)
        if not specs:
            raise ValueError("run_sweep needs at least one eps point")
        eps10_list = None
        if eps10_specs is not None:
            eps10_list = list(eps10_specs)
            if len(eps10_list) != len(specs):
                raise ValueError(
                    f"eps10 sweep length {len(eps10_list)} != eps sweep "
                    f"length {len(specs)}")
        for spec in specs:
            validate_epsilon(spec, self.circuit)
        for spec in eps10_list or ():
            validate_epsilon(spec, self.circuit)

        n_nodes = len(self.node_names)
        n_points = len(specs)
        with trace_span("compiled_pass.run_sweep", circuit=self.circuit.name,
                        points=n_points):
            e01 = self._eps_matrix(specs)
            e10 = e01 if eps10_list is None else self._eps_matrix(eps10_list)
            p01 = np.zeros((n_nodes, n_points), dtype=np.float64)
            p10 = np.zeros((n_nodes, n_points), dtype=np.float64)
            for slot, ep in self.input_error_rows:
                p01[slot] = ep.p01
                p10[slot] = ep.p10
            for level_groups in self.levels:
                for group in level_groups:
                    _eval_group(group, p01, p10,
                                e01[group.eps_rows], e10[group.eps_rows])
            per_output = ((1.0 - self.output_prob1)[:, None]
                          * p01[self.output_slots]
                          + self.output_prob1[:, None]
                          * p10[self.output_slots])
        if obs_metrics.is_enabled():
            labels = {"circuit": self.circuit.name}
            obs_metrics.inc("compiled_pass.sweeps", **labels)
            obs_metrics.inc("compiled_pass.points", n_points, **labels)
            obs_metrics.inc("compiled_pass.gate_evals",
                            len(self.gate_names) * n_points, **labels)
        return SweepResult(
            circuit_name=self.circuit.name,
            eps_specs=specs,
            eps10_specs=eps10_list,
            node_names=list(self.node_names),
            outputs=list(self.circuit.outputs),
            per_output=per_output,
            p01=p01,
            p10=p10,
            signal_prob=dict(self.weights.signal_prob),
            used_correlation=False,
            correlation_pairs=np.zeros(n_points, dtype=np.int64),
        )


def _eval_group(group: _OpGroup, p01: np.ndarray, p10: np.ndarray,
                e01: np.ndarray, e10: np.ndarray) -> None:
    """Evaluate one (level, truth, arity) gate batch over the eps axis.

    Mutates ``p01`` / ``p10`` in place at ``group.slots``.  ``e01`` /
    ``e10`` are the group's local failure probabilities, shape (m, E).
    """
    f01 = p01[group.fanin_slots]            # (m, k, E)
    f10 = p10[group.fanin_slots]
    n_vec = group.bits.shape[0]             # V = 2**k
    m, k, n_eps = f01.shape

    pw0 = np.empty((m, n_eps))
    pw1 = np.empty((m, n_eps))
    # Chunk the gate batch so the (V, chunk, V, E) intermediate stays small.
    rows = max(1, _CHUNK_ELEMENTS // max(1, n_vec * n_vec * n_eps))
    for start in range(0, m, rows):
        sl = slice(start, min(m, start + rows))
        # Per-fanin flip probability under each error-free vector v: the
        # scalar pass's probs[t][events[t]] — p01 where fanin t reads 0,
        # p10 where it reads 1.  Shape (V, mc, k, E).
        pv = np.where(group.bits[:, None, :, None], f10[None, sl],
                      f01[None, sl])
        # Distribution over flip sets u by successive doubling: after step
        # t, axis 2 enumerates all 2**(t+1) flip subsets of fanins 0..t.
        r = np.ones((n_vec, pv.shape[1], 1, n_eps))
        for t in range(k):
            pt = pv[:, :, t, None, :]
            r = np.concatenate((r * (1.0 - pt), r * pt), axis=2)
        # Total probability that fanin errors flip the output, per v.
        flip = np.einsum("vmue,vu->vme", r, group.flip_mask)
        np.minimum(flip, 1.0, out=flip)
        # Weighted components PW(b) = sum_v W[v] * flip[v] over side b.
        pw0[sl] = np.einsum("vm,vme->me", group.w_masked0[:, sl], flip)
        pw1[sl] = np.einsum("vm,vme->me", group.w_masked1[:, sl], flip)

    # Fold in the local failure channel: item (iii) of the paper's Sec. 4,
    # identical to combine_with_local_failure but over the whole batch.
    w0 = group.w_side0[:, None]
    w1 = group.w_side1[:, None]
    r0 = np.divide(pw0, w0, out=np.zeros_like(pw0), where=w0 > 0.0)
    r1 = np.divide(pw1, w1, out=np.zeros_like(pw1), where=w1 > 0.0)
    np.clip(r0, 0.0, 1.0, out=r0)
    np.clip(r1, 0.0, 1.0, out=r1)
    p01[group.slots] = r0 * (1.0 - e10) + (1.0 - r0) * e01
    p10[group.slots] = r1 * (1.0 - e01) + (1.0 - r1) * e10
