"""Multi-circuit tensor kernel: one padded sweep over a batch of plans.

The compiled single-circuit kernel (:class:`~repro.reliability.
compiled_pass.CompiledSinglePass`) already evaluates every eps point of
one circuit in a single level-scheduled array pass.  Production traffic,
though, is many *different* circuits at once — and N back-to-back kernel
invocations serialize on the GIL, repay the per-group dispatch overhead
N times, and run each circuit's (often small) gate batches far below the
vector widths the arrays could sustain.

:class:`TensorBatch` removes the per-circuit axis from the dispatch.  It
pads a batch of compiled plans into one ``(circuit, row, eps)`` state
tensor and merges their level schedules:

* circuits are aligned by topological level **position** — level ``i``
  of the merged schedule runs level ``i`` of every plan that has one
  (correct because circuits are independent: a gate only ever reads
  state of its own circuit's earlier levels);
* within a level, :class:`~repro.reliability.compiled_pass._OpGroup`\\ s
  are merged per ``(truth, arity)`` class across circuits — slot /
  fanin / weight columns concatenated, plus a **circuit-index column**
  (``_OpGroup.circ``) that routes each gate's reads and writes to its
  circuit's plane of the state tensor.  The class's shared ``bits`` /
  ``flip_mask`` tensors appear once, so a NAND2 from circuit 3 and a
  NAND2 from circuit 11 evaluate in the same einsum;
* the row axis is padded to the widest circuit; pad rows are **inactive
  by construction** — no merged group ever indexes them, so they stay
  at their zero initialization and masking is free (the waste is
  surfaced as :attr:`pad_waste_rows`);
* eps batches of different lengths are padded by replicating each
  circuit's last column; pad columns compute harmless duplicate values
  that are sliced away before results are returned.

Gate-level arithmetic is byte-for-byte the single-circuit kernel's —
:func:`~repro.reliability.compiled_pass._eval_group` is shared, with the
circuit column enabling 3-D fancy indexing — so per-circuit results
match solo sweeps to float rounding (pinned ≤ 1e-10 over the full
catalog by ``tests/test_tensor_pass.py``).  The kernel runs through the
:mod:`repro.backend` façade like the single-circuit path, so the same
merged schedule executes on numpy, CuPy, or torch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..backend import get_backend
from ..obs import metrics as obs_metrics
from ..obs import trace_span
from ..spec import EpsilonSpec, validate_sweep_specs
from .compiled_pass import (
    CompiledSinglePass,
    SweepResult,
    _eps_matrix,
    _eval_group,
    _OpGroup,
)

#: Widest gate fused across truth classes with a per-gate flip mask —
#: beyond it the mask's ``4**k`` floats per gate outweigh the dispatch
#: saving and wide gates fall back to the shared-mask (truth, arity)
#: merge.
_FUSE_MAX_ARITY = 6


class TensorBatch:
    """A batch of :class:`CompiledSinglePass` plans merged for one sweep.

    Construct once per batch composition; :meth:`run_sweep` then
    evaluates per-circuit eps batches in a single level-scheduled pass.
    The merge is pure bookkeeping over the plans' already-lowered arrays
    (no re-lowering, no weight recomputation), so building a
    ``TensorBatch`` is cheap relative to even one sweep.

    Parameters
    ----------
    plans:
        Compiled single-pass plans (independence kernel only — the
        correlated kernel's coefficient rows are per-circuit state and
        do not batch).  Order is preserved: result ``i`` of
        :meth:`run_sweep` belongs to ``plans[i]``.
    backend:
        Array-backend name (see :func:`repro.backend.get_backend`);
        ``None``/"auto" follows the process default.
    dtype:
        Override accumulator precision; default requires every plan to
        agree and uses that common dtype.
    """

    def __init__(self, plans: Sequence[CompiledSinglePass],
                 backend: Optional[str] = None,
                 dtype: Optional[np.dtype] = None):
        if not plans:
            raise ValueError("TensorBatch requires at least one plan")
        for plan in plans:
            if not isinstance(plan, CompiledSinglePass):
                raise TypeError(
                    "TensorBatch batches CompiledSinglePass plans; got "
                    f"{type(plan).__name__} (the correlated kernel does "
                    "not batch across circuits)")
        if dtype is None:
            dtypes = {plan.dtype for plan in plans}
            if len(dtypes) > 1:
                raise ValueError(
                    "plans disagree on dtype "
                    f"({sorted(d.name for d in dtypes)}); pass dtype= "
                    "explicitly to re-cast")
            dtype = next(iter(dtypes))
        self.dtype = np.dtype(dtype)
        self.plans: List[CompiledSinglePass] = list(plans)
        self.backend = backend

        with trace_span("tensor_pass.merge", circuits=len(self.plans)):
            self._merge()
        if obs_metrics.is_enabled():
            obs_metrics.inc("tensor_pass.merges")
            obs_metrics.set_gauge("tensor_pass.batch_circuits",
                                  self.n_circuits)
            obs_metrics.set_gauge("tensor_pass.pad_waste_rows",
                                  self.pad_waste_rows)

    # ------------------------------------------------------------------
    @property
    def n_circuits(self) -> int:
        return len(self.plans)

    def _merge(self) -> None:
        plans = self.plans
        #: Row extent of the padded state tensor (widest circuit).
        self.n_rows = max(len(p.node_names) for p in plans)
        #: Pad rows across the whole batch — the cost of rectangularity.
        self.pad_waste_rows = sum(self.n_rows - len(p.node_names)
                                  for p in plans)
        #: Row offset of each circuit in the merged (gates_total, E)
        #: local-failure matrices.
        self.gate_offsets: List[int] = []
        total = 0
        for p in plans:
            self.gate_offsets.append(total)
            total += len(p.gate_names)
        self.n_gate_rows = total

        # Merge level schedules by position; within a position, fuse
        # groups across circuits.  Narrow gates (the overwhelming
        # majority) fuse per *arity* with a per-gate (m, V, V) flip mask
        # — ``bits`` depends only on the arity, so gates of different
        # truth classes share one einsum once the mask rides along per
        # gate.  Wide gates keep the shared-mask (truth, arity) merge:
        # their per-gate masks would cost ``V**2`` floats each.
        # Iteration is plans-in-order then sorted fuse keys, so the
        # merged schedule (and therefore the float accumulation order
        # inside each einsum) is deterministic per batch composition.
        n_levels = max(len(p.levels) for p in plans)
        merged: List[List[_OpGroup]] = []
        for li in range(n_levels):
            classes: Dict[tuple, Dict] = {}
            for ci, plan in enumerate(plans):
                if li >= len(plan.levels):
                    continue
                for group in plan.levels[li]:
                    fused = group.arity <= _FUSE_MAX_ARITY
                    key = ((0, group.arity) if fused
                           else (1, group.arity, group.truth))
                    entry = classes.get(key)
                    if entry is None:
                        entry = {"template": group, "fused": fused,
                                 "slots": [], "eps_rows": [], "fanins": [],
                                 "circ": [], "masks": [],
                                 "wm0": [], "wm1": [], "ws0": [], "ws1": []}
                        classes[key] = entry
                    m = len(group.slots)
                    entry["slots"].append(group.slots)
                    entry["eps_rows"].append(
                        group.eps_rows + self.gate_offsets[ci])
                    entry["fanins"].append(group.fanin_slots)
                    entry["circ"].append(np.full(m, ci, dtype=np.intp))
                    if fused:
                        entry["masks"].append(
                            np.repeat(group.flip_mask[None], m, axis=0))
                    entry["wm0"].append(group.w_masked0)
                    entry["wm1"].append(group.w_masked1)
                    entry["ws0"].append(group.w_side0)
                    entry["ws1"].append(group.w_side1)
            level_groups: List[_OpGroup] = []
            for key in sorted(classes):
                entry = classes[key]
                template: _OpGroup = entry["template"]
                flip_mask = (np.concatenate(entry["masks"], axis=0)
                             if entry["fused"] else template.flip_mask)
                level_groups.append(_OpGroup(
                    arity=template.arity,
                    slots=np.concatenate(entry["slots"]),
                    eps_rows=np.concatenate(entry["eps_rows"]),
                    fanin_slots=np.concatenate(entry["fanins"], axis=0),
                    bits=template.bits,
                    flip_mask=np.ascontiguousarray(flip_mask),
                    w_masked0=np.ascontiguousarray(
                        np.concatenate(entry["wm0"], axis=1)),
                    w_masked1=np.ascontiguousarray(
                        np.concatenate(entry["wm1"], axis=1)),
                    w_side0=np.concatenate(entry["ws0"]),
                    w_side1=np.concatenate(entry["ws1"]),
                    truth=None if entry["fused"] else template.truth,
                    circ=np.concatenate(entry["circ"]),
                ))
            merged.append(level_groups)
        self.levels: List[List[_OpGroup]] = merged
        self.num_groups = sum(len(g) for g in merged)
        #: Groups a sequential run would dispatch — the batching win.
        self.unmerged_groups = sum(p.num_groups for p in plans)

    # ------------------------------------------------------------------
    def run_sweep(self,
                  eps_specs: Sequence[Sequence[EpsilonSpec]],
                  eps10_specs: Optional[
                      Sequence[Optional[Sequence[EpsilonSpec]]]] = None,
                  ) -> List[SweepResult]:
        """Evaluate one eps batch per circuit in a single merged pass.

        ``eps_specs[i]`` is the sweep batch for ``plans[i]`` (the same
        scalars or per-gate maps :meth:`CompiledSinglePass.run_sweep`
        takes); batches may have different lengths — shorter ones are
        padded to the longest by replicating their last point and the
        pad columns are dropped from the returned results.
        ``eps10_specs``, when given, is a parallel sequence of optional
        asymmetric-channel batches.  Returns one :class:`SweepResult`
        per plan, in order, identical in shape and content to a solo
        :meth:`CompiledSinglePass.run_sweep` call.
        """
        plans = self.plans
        if len(eps_specs) != len(plans):
            raise ValueError(
                f"expected {len(plans)} eps batches (one per circuit), "
                f"got {len(eps_specs)}")
        if eps10_specs is not None and len(eps10_specs) != len(plans):
            raise ValueError(
                f"expected {len(plans)} eps10 batches, got "
                f"{len(eps10_specs)}")

        validated: List[tuple] = []
        for i, plan in enumerate(plans):
            e10b = None if eps10_specs is None else eps10_specs[i]
            validated.append(validate_sweep_specs(
                plan.circuit, eps_specs[i], e10b))
        n_points = [len(specs) for specs, _ in validated]
        n_eps = max(n_points)
        any_eps10 = any(e10 is not None for _, e10 in validated)

        bk = get_backend(self.backend)
        with trace_span("tensor_pass", circuits=self.n_circuits,
                        points=n_eps, backend=bk.name,
                        pad_waste_rows=self.pad_waste_rows):
            e01 = np.empty((self.n_gate_rows, n_eps), dtype=self.dtype)
            e10 = (np.empty((self.n_gate_rows, n_eps), dtype=self.dtype)
                   if any_eps10 else e01)
            for i, plan in enumerate(plans):
                specs, e10b = validated[i]
                off = self.gate_offsets[i]
                end = off + len(plan.gate_names)
                block = _eps_matrix(plan.gate_names, specs,
                                    dtype=self.dtype)
                e01[off:end, :n_points[i]] = block
                if n_points[i] < n_eps:
                    # Replicate the last point into the pad columns; the
                    # duplicates are sliced away below.
                    e01[off:end, n_points[i]:] = block[:, -1:]
                if any_eps10:
                    b10 = (block if e10b is None
                           else _eps_matrix(plan.gate_names, e10b,
                                            dtype=self.dtype))
                    e10[off:end, :n_points[i]] = b10
                    if n_points[i] < n_eps:
                        e10[off:end, n_points[i]:] = b10[:, -1:]
            if not bk.is_numpy:
                e01 = bk.asarray(e01)
                e10 = e01 if not any_eps10 else bk.asarray(e10)

            p01 = bk.zeros((self.n_circuits, self.n_rows, n_eps),
                           dtype=self.dtype)
            p10 = bk.zeros((self.n_circuits, self.n_rows, n_eps),
                           dtype=self.dtype)
            for i, plan in enumerate(plans):
                for slot, ep in plan.input_error_rows:
                    p01[i, slot] = ep.p01
                    p10[i, slot] = ep.p10
            for level_groups in self.levels:
                for group in level_groups:
                    rows = (group.eps_rows if bk.is_numpy
                            else bk.index_array(group.eps_rows))
                    _eval_group(group, p01, p10, e01[rows], e10[rows], bk)
            if not bk.is_numpy:
                bk.synchronize()
                p01 = bk.to_numpy(p01)
                p10 = bk.to_numpy(p10)

            results: List[SweepResult] = []
            for i, plan in enumerate(plans):
                specs, e10b = validated[i]
                n_nodes = len(plan.node_names)
                c01 = np.ascontiguousarray(p01[i, :n_nodes, :n_points[i]])
                c10 = np.ascontiguousarray(p10[i, :n_nodes, :n_points[i]])
                per_output = ((1.0 - plan.output_prob1)[:, None]
                              * c01[plan.output_slots]
                              + plan.output_prob1[:, None]
                              * c10[plan.output_slots])
                results.append(SweepResult(
                    circuit_name=plan.circuit.name,
                    eps_specs=specs,
                    eps10_specs=e10b,
                    node_names=list(plan.node_names),
                    outputs=list(plan.circuit.outputs),
                    per_output=per_output,
                    p01=c01,
                    p10=c10,
                    signal_prob=dict(plan.weights.signal_prob),
                    used_correlation=False,
                    correlation_pairs=np.zeros(n_points[i],
                                               dtype=np.int64),
                ))
        if obs_metrics.is_enabled():
            obs_metrics.inc("tensor_pass.sweeps")
            obs_metrics.inc("tensor_pass.circuit_sweeps", self.n_circuits)
            obs_metrics.inc("tensor_pass.points", sum(n_points))
        return results
