"""Side-by-side comparison of every reliability estimator on one circuit.

:func:`compare_methods` runs the applicable subset of the library's
analyses — single-pass with and without correlation coefficients, the
observability closed form, the naive compositional baseline, Monte Carlo,
the stratified estimator, and an exact oracle when the circuit is small
enough — and returns one row per method with its delta estimates and
runtime.  This powers ``python -m repro compare`` and gives new users a
one-call overview of the accuracy/cost landscape the paper maps.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..circuit import Circuit
from ..sim import monte_carlo_reliability, stratified_reliability
from ..spec import EpsilonSpec
from .analytical import compositional_delta
from .closed_form import ObservabilityModel
from .exact import exhaustive_exact_reliability
from .single_pass import SinglePassAnalyzer


@dataclass
class MethodRow:
    """One estimator's result on the comparison circuit."""

    method: str
    per_output: Dict[str, float]
    seconds: float
    note: str = ""

    def mean_delta(self) -> float:
        return float(np.mean(list(self.per_output.values())))


@dataclass
class Comparison:
    """All rows plus the designated reference for error reporting."""

    circuit_name: str
    eps: float
    rows: List[MethodRow] = field(default_factory=list)
    reference: Optional[str] = None

    def row(self, method: str) -> MethodRow:
        for r in self.rows:
            if r.method == method:
                return r
        raise KeyError(method)

    def errors_vs_reference(self) -> Dict[str, float]:
        """Mean relative % error of each method against the reference."""
        if self.reference is None:
            raise ValueError("no reference method available")
        ref = self.row(self.reference).per_output
        result = {}
        for r in self.rows:
            if r.method == self.reference:
                continue
            errs = [abs(r.per_output[o] - ref[o]) / max(ref[o], 1e-12) * 100
                    for o in ref]
            result[r.method] = float(np.mean(errs))
        return result

    def as_table(self) -> str:
        lines = [f"method comparison — {self.circuit_name}, eps={self.eps}",
                 f"{'method':24s} {'mean delta':>11s} {'seconds':>9s}  note"]
        for r in self.rows:
            lines.append(f"{r.method:24s} {r.mean_delta():11.6f} "
                         f"{r.seconds:9.3f}  {r.note}")
        if self.reference:
            lines.append(f"\nmean % error vs {self.reference}:")
            for method, err in self.errors_vs_reference().items():
                lines.append(f"  {method:22s} {err:8.2f}%")
        return "\n".join(lines)


def compare_methods(circuit: Circuit,
                    eps: float,
                    mc_patterns: int = 1 << 16,
                    exact_gate_limit: int = 14,
                    level_gap: Optional[int] = 8,
                    seed: int = 0) -> Comparison:
    """Run every applicable estimator on one circuit at one uniform eps."""
    comparison = Comparison(circuit_name=circuit.name, eps=eps)

    def timed(method: str, fn, note: str = "") -> None:
        t0 = time.perf_counter()
        per_output = fn()
        comparison.rows.append(MethodRow(
            method=method, per_output=per_output,
            seconds=time.perf_counter() - t0, note=note))

    if circuit.num_gates <= exact_gate_limit:
        timed("exact (exhaustive)",
              lambda: exhaustive_exact_reliability(circuit, eps).per_output,
              note="ground truth")
        comparison.reference = "exact (exhaustive)"

    timed("monte carlo",
          lambda: monte_carlo_reliability(
              circuit, eps, n_patterns=mc_patterns,
              seed=seed).per_output,
          note=f"{mc_patterns} patterns")
    if comparison.reference is None:
        comparison.reference = "monte carlo"

    analyzer = SinglePassAnalyzer(circuit, seed=seed,
                                  max_correlation_level_gap=level_gap)
    timed("single-pass (corr)", lambda: analyzer.run(eps).per_output,
          note="Sec. 4 + 4.1")
    plain = SinglePassAnalyzer(circuit, weights=analyzer.weights,
                               use_correlation=False)
    timed("single-pass (indep)", lambda: plain.run(eps).per_output,
          note="Sec. 4 only")

    def closed() -> Dict[str, float]:
        result = {}
        for out in circuit.outputs:
            model = ObservabilityModel(circuit, output=out,
                                       method="sampled",
                                       n_patterns=1 << 13, seed=seed)
            result[out] = model.delta(eps)
        return result

    timed("closed form", closed, note="Sec. 3, Eqn. 3")
    timed("compositional", lambda: compositional_delta(circuit, eps),
          note="prior analytical rules")
    if eps <= 0.05:
        timed("stratified MC",
              lambda: stratified_reliability(
                  circuit, eps, max_failures=3, n_patterns=1 << 12,
                  samples_per_stratum=100, seed=seed).per_output,
              note="rare-event regime")
    return comparison
