"""A compact CDCL SAT solver (watched literals, first-UIP learning, VSIDS).

Written from scratch for this library's testing substrate (Larrabee-style
SAT ATPG, miter-based equivalence).  Design goals are correctness and
clarity over raw speed: two-watched-literal propagation, first-UIP clause
learning with non-chronological backjumping, exponential-decay activity
ordering, and geometric restarts — the standard modern core, small enough
to audit.

The solver is verified against brute-force enumeration on random formulas
(hypothesis) and against the BDD engine on circuit miters.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .cnf import Cnf

_UNASSIGNED = -1


class SolverBudgetExceeded(RuntimeError):
    """A ``solve(max_conflicts=...)`` call ran out of conflict budget.

    Raised *instead of hanging* on hard instances so callers with
    soft-real-time needs (approximate model counting, ATPG sweeps) can
    degrade gracefully.  ``conflicts`` records how many conflicts the
    call consumed before giving up; the solver instance remains valid
    and reusable afterwards.
    """

    def __init__(self, conflicts: int, max_conflicts: int):
        super().__init__(
            f"solver exceeded max_conflicts={max_conflicts} "
            f"(hit {conflicts} conflicts)")
        self.conflicts = conflicts
        self.max_conflicts = max_conflicts


class SatSolver:
    """CDCL solver over a fixed CNF; supports incremental assumptions."""

    def __init__(self, cnf: Cnf):
        self.num_vars = cnf.num_vars
        # Clause database: lists of literals; learned clauses appended.
        self.clauses: List[List[int]] = [list(c) for c in cnf.clauses]
        n = self.num_vars
        self.assign: List[int] = [_UNASSIGNED] * (n + 1)  # 0/1 per var
        self.level: List[int] = [0] * (n + 1)
        self.reason: List[Optional[int]] = [None] * (n + 1)
        self.activity: List[float] = [0.0] * (n + 1)
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.qhead = 0
        # watches[lit] = clause indices watching literal `lit`.
        self.watches: Dict[int, List[int]] = {}
        # Observability tallies (plain ints; published to repro.obs.metrics
        # at the end of each solve() call when metrics are enabled).
        self.num_solve_calls = 0
        self.num_conflicts = 0
        self.num_decisions = 0
        self.num_learned = 0
        self._ok = True
        for idx, clause in enumerate(self.clauses):
            if not self._attach(idx, clause):
                self._ok = False

    # ------------------------------------------------------------------
    # Clause attachment
    # ------------------------------------------------------------------
    def _attach(self, idx: int, clause: List[int]) -> bool:
        if len(clause) == 1:
            return self._enqueue(clause[0], None)
        self.watches.setdefault(clause[0], []).append(idx)
        self.watches.setdefault(clause[1], []).append(idx)
        return True

    # ------------------------------------------------------------------
    # Incremental growth (model counting adds hash constraints and
    # blocking clauses between solve() calls; solve() always resets to
    # decision level 0, so attachment happens on a clean trail).
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate a fresh variable (for XOR chains, activation lits)."""
        self.num_vars += 1
        self.assign.append(_UNASSIGNED)
        self.level.append(0)
        self.reason.append(None)
        self.activity.append(0.0)
        return self.num_vars

    def add_clause(self, literals: Sequence[int]) -> None:
        """Add a clause incrementally (between ``solve()`` calls)."""
        clause = [int(l) for l in literals]
        if not clause:
            self._ok = False
            return
        for lit in clause:
            if lit == 0 or abs(lit) > self.num_vars:
                raise ValueError(f"literal {lit} out of range")
        self._cancel_until(0)
        idx = len(self.clauses)
        self.clauses.append(clause)
        if not self._attach(idx, clause) or self._propagate() is not None:
            self._ok = False

    # ------------------------------------------------------------------
    # Assignment machinery
    # ------------------------------------------------------------------
    def _value(self, lit: int) -> int:
        v = self.assign[abs(lit)]
        if v == _UNASSIGNED:
            return _UNASSIGNED
        return v if lit > 0 else 1 - v

    def _enqueue(self, lit: int, reason_idx: Optional[int]) -> bool:
        value = self._value(lit)
        if value == 0:
            return False  # conflicting enqueue
        if value == 1:
            return True
        var = abs(lit)
        self.assign[var] = 1 if lit > 0 else 0
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason_idx
        self.trail.append(lit)
        return True

    def _propagate(self) -> Optional[int]:
        """Unit propagation; returns a conflicting clause index or None."""
        while self.qhead < len(self.trail):
            lit = self.trail[self.qhead]
            self.qhead += 1
            false_lit = -lit
            watch_list = self.watches.get(false_lit, [])
            new_list: List[int] = []
            i = 0
            while i < len(watch_list):
                idx = watch_list[i]
                i += 1
                clause = self.clauses[idx]
                # Ensure the false literal is in slot 1.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == 1:
                    new_list.append(idx)
                    continue
                # Search a replacement watch.
                moved = False
                for j in range(2, len(clause)):
                    if self._value(clause[j]) != 0:
                        clause[1], clause[j] = clause[j], clause[1]
                        self.watches.setdefault(clause[1], []).append(idx)
                        moved = True
                        break
                if moved:
                    continue
                # Clause is unit or conflicting.
                new_list.append(idx)
                if not self._enqueue(first, idx):
                    new_list.extend(watch_list[i:])
                    self.watches[false_lit] = new_list
                    return idx
            self.watches[false_lit] = new_list
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------
    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100

    def _analyze(self, conflict_idx: int) -> Tuple[List[int], int]:
        learnt: List[int] = [0]  # slot 0 reserved for the UIP literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = None
        idx: Optional[int] = conflict_idx
        trail_pos = len(self.trail) - 1
        current_level = len(self.trail_lim)
        while True:
            assert idx is not None
            for q in self.clauses[idx]:
                if lit is not None and q == lit:
                    continue
                var = abs(q)
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self.level[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(q)
            # Pick the next trail literal to resolve on.
            while not seen[abs(self.trail[trail_pos])]:
                trail_pos -= 1
            lit = self.trail[trail_pos]
            seen[abs(lit)] = False
            trail_pos -= 1
            counter -= 1
            if counter == 0:
                break
            idx = self.reason[abs(lit)]
        learnt[0] = -lit
        # Backjump level: second-highest level in the learnt clause.
        if len(learnt) == 1:
            back_level = 0
        else:
            back_level = max(self.level[abs(q)] for q in learnt[1:])
            # Move one literal of back_level into slot 1 for watching.
            for j in range(1, len(learnt)):
                if self.level[abs(learnt[j])] == back_level:
                    learnt[1], learnt[j] = learnt[j], learnt[1]
                    break
        return learnt, back_level

    def _cancel_until(self, level: int) -> None:
        while len(self.trail_lim) > level:
            mark = self.trail_lim.pop()
            while len(self.trail) > mark:
                lit = self.trail.pop()
                var = abs(lit)
                self.assign[var] = _UNASSIGNED
                self.reason[var] = None
        self.qhead = min(self.qhead, len(self.trail))

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _decide(self) -> Optional[int]:
        best_var, best_act = 0, -1.0
        for v in range(1, self.num_vars + 1):
            if self.assign[v] == _UNASSIGNED and self.activity[v] > best_act:
                best_var, best_act = v, self.activity[v]
        if best_var == 0:
            return None
        return -best_var  # negative-first polarity (CNF-friendly default)

    def solve(self, assumptions: Sequence[int] = (), *,
              max_conflicts: Optional[int] = None
              ) -> Optional[Dict[int, bool]]:
        """Solve; returns {var: bool} for SAT, None for UNSAT.

        ``assumptions`` are literals asserted at decision level 1+; the
        solver state is reset afterwards so the instance is reusable.

        ``max_conflicts`` caps this call's search effort: when the cap
        is reached :class:`SolverBudgetExceeded` is raised (the solver
        stays reusable).  ``None`` means unbounded — the historical
        behaviour.
        """
        self.num_solve_calls += 1
        tallies_at_entry = (self.num_conflicts, self.num_decisions,
                            self.num_learned)
        if not self._ok:
            self._publish_metrics(tallies_at_entry)
            return None
        self._cancel_until(0)
        if self._propagate() is not None:
            self._ok = False
            self._publish_metrics(tallies_at_entry)
            return None
        root_trail = len(self.trail)
        conflicts_budget = 100
        total_conflicts = 0
        try:
            # Assert assumptions, each at its own level.
            for lit in assumptions:
                if self._value(lit) == 1:
                    continue
                if self._value(lit) == 0:
                    return None
                self.trail_lim.append(len(self.trail))
                if not self._enqueue(lit, None):
                    return None
                if self._propagate() is not None:
                    return None
            assumption_level = len(self.trail_lim)

            while True:
                conflict = self._propagate()
                if conflict is not None:
                    total_conflicts += 1
                    self.num_conflicts += 1
                    if (max_conflicts is not None
                            and total_conflicts > max_conflicts):
                        raise SolverBudgetExceeded(total_conflicts,
                                                   max_conflicts)
                    if len(self.trail_lim) <= assumption_level:
                        return None  # conflict at (or below) assumptions
                    learnt, back_level = self._analyze(conflict)
                    back_level = max(back_level, assumption_level)
                    self._cancel_until(back_level)
                    idx = len(self.clauses)
                    self.clauses.append(learnt)
                    self.num_learned += 1
                    if len(learnt) > 1:
                        self.watches.setdefault(learnt[0], []).append(idx)
                        self.watches.setdefault(learnt[1], []).append(idx)
                    self._enqueue(learnt[0], idx if len(learnt) > 1 else None)
                    self.var_inc /= self.var_decay
                    if total_conflicts >= conflicts_budget:
                        conflicts_budget = int(conflicts_budget * 1.5)
                        self._cancel_until(assumption_level)
                    continue
                lit = self._decide()
                if lit is None:
                    return {v: bool(self.assign[v])
                            for v in range(1, self.num_vars + 1)}
                self.num_decisions += 1
                self.trail_lim.append(len(self.trail))
                self._enqueue(lit, None)
        finally:
            self._cancel_until(0)
            del root_trail
            self._publish_metrics(tallies_at_entry)

    def _publish_metrics(self, tallies_at_entry) -> None:
        """Push this call's tally deltas as ``sat.*`` counters (if enabled)."""
        from ..obs import metrics as obs_metrics
        if not obs_metrics.is_enabled():
            return
        c0, d0, l0 = tallies_at_entry
        obs_metrics.inc("sat.calls")
        obs_metrics.inc("sat.conflicts", self.num_conflicts - c0)
        obs_metrics.inc("sat.decisions", self.num_decisions - d0)
        obs_metrics.inc("sat.learned_clauses", self.num_learned - l0)


def solve_cnf(cnf: Cnf,
              assumptions: Sequence[int] = ()) -> Optional[Dict[int, bool]]:
    """One-shot convenience wrapper around :class:`SatSolver`."""
    return SatSolver(cnf).solve(assumptions)
