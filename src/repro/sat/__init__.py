"""From-scratch SAT substrate: CNF, Tseitin encoding, CDCL solver, ATPG."""

from .cnf import Cnf, CircuitEncoder, encode_circuit, miter
from .solver import SatSolver, solve_cnf
from .atpg import SatAtpg, sat_equivalent

__all__ = [
    "Cnf", "CircuitEncoder", "encode_circuit", "miter",
    "SatSolver", "solve_cnf",
    "SatAtpg", "sat_equivalent",
]
