"""From-scratch SAT substrate: CNF, Tseitin encoding, CDCL solver, ATPG."""

from .cnf import Cnf, CircuitEncoder, encode_circuit, miter
from .solver import SatSolver, SolverBudgetExceeded, solve_cnf
from .counting import (ConeCounter, CountResult, XorHashCounter,
                       count_cone_models)
from .atpg import SatAtpg, sat_equivalent

__all__ = [
    "Cnf", "CircuitEncoder", "encode_circuit", "miter",
    "SatSolver", "SolverBudgetExceeded", "solve_cnf",
    "ConeCounter", "CountResult", "XorHashCounter", "count_cone_models",
    "SatAtpg", "sat_equivalent",
]
