"""XOR-hash approximate model counting on the CDCL solver.

The scaling tier (docs/scaling.md) needs *projected* model counts —
"how many primary-input assignments make this cone node 1?" — on cones
whose input counts rule out exhaustive enumeration.  This module
implements the standard ApproxMC recipe (Chakraborty, Meel & Vardi,
CAV'13) on top of :class:`~repro.sat.solver.SatSolver`:

1. **Exact enumeration fallback.**  Every count starts as a bounded
   enumeration (models blocked through incremental clauses): if the cone
   has at most ``pivot`` models the count is *exact* and no hashing
   happens.  Small cones therefore cost a handful of solver calls.
2. **XOR hashing.**  Otherwise a *nested* family of random XOR parity
   constraints over the projection variables splits the solution space
   into ~``2**m`` cells; the smallest ``m`` whose cell holds at most
   ``pivot`` models — found by binary search over ``m``, sound because
   the family is nested so cell counts are monotone — yields the
   estimate ``cell_count * 2**m``.  The median over ``trials``
   independent repetitions is returned.

With ``pivot = ceil(9.84 (1 + eps/(1+eps)) (1 + 1/eps)^2)`` each trial
is within a factor ``1 + eps`` of the true count with probability at
least 0.78, and the median of ``trials >= ceil(6.4 ln(1/delta))`` (odd)
trials is within that factor with probability at least ``1 - delta`` —
the (eps, delta) guarantee quoted in docs/scaling.md.

CDCL search is a resolution engine, and resolution cannot refute parity
systems efficiently — so feeding dense XOR chains to the solver is a
tar pit.  Each probe therefore Gauss-eliminates its hash prefix over
GF(2) first: the depth-``m`` cell is an affine subspace of the
projection space, and when that subspace is small its points are
enumerated outright (through a caller-supplied vectorized batch
evaluator, or one unit-propagation solver call per point) for an
*exact* cell count with no XOR clause in sight.  Only large-cell probes
— which carry few XOR constraints and are easy instances — fall back to
Tseitin parity chains on a fresh solver, where cell membership is
asserted through chain-output assumption literals and blocking clauses
hang off an activation literal retired afterwards.  The hash-free exact
path keeps one persistent solver across ``count()`` calls.

Every solver call carries the ``max_conflicts`` budget so a counting
request degrades into :class:`SolverBudgetExceeded` instead of hanging;
callers (the ``method="sat"`` weight tier) catch it and fall back to
sampling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuit import Circuit
from ..sim import patterns
from ..sim.simulator import simulate
from .cnf import Cnf, CircuitEncoder
from .solver import SatSolver, SolverBudgetExceeded

__all__ = [
    "CountResult", "XorHashCounter", "ConeCounter", "count_cone_models",
]


@dataclass
class CountResult:
    """One (projected) model count: the estimate plus how it was obtained."""

    count: float
    #: True when the count came from complete enumeration (no hashing).
    exact: bool
    #: Number of projection variables (counts live in ``[0, 2**projection]``).
    projection: int
    #: XOR trials that contributed to the median (0 on the exact path).
    trials: int = 0
    #: Solver calls that hit the conflict budget along the way.
    budget_hits: int = 0


def _pivot(epsilon: float) -> int:
    return int(math.ceil(
        9.84 * (1.0 + epsilon / (1.0 + epsilon))
        * (1.0 + 1.0 / epsilon) ** 2))


def _trials(delta: float) -> int:
    t = int(math.ceil(6.4 * math.log(1.0 / delta)))
    return max(3, t | 1)  # odd, so the median is a sample


def _solve_affine(rows: Sequence[Tuple[int, int]], n: int
                  ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Parametrize the solutions of the GF(2) system ``rows`` over ``n`` vars.

    Each row is ``(mask, parity)``: the XOR of the variables in ``mask``
    must equal ``parity``.  Returns ``(x0, basis)`` with ``x0`` one
    solution and ``basis`` a ``(d, n)`` matrix whose GF(2) span offsets
    ``x0`` over the whole solution set — or None when inconsistent.
    """
    # Augmented rows as Python ints: bits 0..n-1 the mask, bit n the parity.
    pivots: Dict[int, int] = {}
    for mask, parity in rows:
        row = mask | (parity << n)
        for p, prow in pivots.items():
            if (row >> p) & 1:
                row ^= prow
        m = row & ((1 << n) - 1)
        if m == 0:
            if row >> n:
                return None  # 0 == 1
            continue  # redundant row
        p = (m & -m).bit_length() - 1
        # Full reduction: clear this pivot from every existing row.
        for q in list(pivots):
            if (pivots[q] >> p) & 1:
                pivots[q] ^= row
        pivots[p] = row
    free = [i for i in range(n) if i not in pivots]
    x0 = np.zeros(n, dtype=np.uint8)
    for p, row in pivots.items():
        x0[p] = (row >> n) & 1
    basis = np.zeros((len(free), n), dtype=np.uint8)
    for j, f in enumerate(free):
        basis[j, f] = 1
        for p, row in pivots.items():
            if (row >> f) & 1:
                basis[j, p] = 1
    return x0, basis


def _affine_points(x0: np.ndarray, basis: np.ndarray) -> np.ndarray:
    """All ``2**d`` points ``x0 ^ span(basis)`` as a ``(2**d, n)`` array."""
    d = basis.shape[0]
    if d == 0:
        return x0[None, :]
    coeff = ((np.arange(1 << d, dtype=np.uint32)[:, None]
              >> np.arange(d, dtype=np.uint32)) & 1).astype(np.uint8)
    return (coeff @ basis) & 1 ^ x0


def _pack_bits(bits: np.ndarray, n_words: int) -> np.ndarray:
    """Pack a ``(n_pts,)`` 0/1 array into ``n_words`` little-endian words."""
    raw = np.packbits(bits, bitorder="little")
    out = np.zeros(n_words * 8, dtype=np.uint8)
    out[:len(raw)] = raw
    return out.view("<u8")


class XorHashCounter:
    """ApproxMC-style counter over one CNF, projected on chosen variables.

    Parameters
    ----------
    cnf:
        The formula.  The counter keeps a pristine copy as the base for
        per-trial solvers and one persistent solver for hash-free work.
    projection_vars:
        Variables the count ranges over (for a Tseitin-encoded cone these
        are the primary-input variables, making the count the number of
        *input vectors*, not raw CNF models).
    epsilon, delta:
        Accuracy knobs: the estimate is within a factor ``1 + epsilon``
        of the truth with probability at least ``1 - delta``.
    max_conflicts:
        Per-solver-call conflict budget (None = unbounded).  When the
        budget makes every trial fail, :class:`SolverBudgetExceeded`
        escapes to the caller.
    seed:
        Seeds the XOR hash draws; counts are deterministic given a seed.
    batch_eval:
        Optional vectorized model checker ``f(points, assumptions) ->
        int``: given a ``(n_pts, n_proj)`` 0/1 array of projection
        assignments (columns in ``projection_vars`` order), return how
        many extend to a model of the CNF under ``assumptions``.  Sound
        only when every projection assignment extends in at most one
        way (true for Tseitin-encoded circuits projected on inputs);
        :class:`ConeCounter` supplies a simulation-based one.  Without
        it, small affine cells are checked one propagation call per
        point, which caps how large a cell is enumerated directly.
    """

    def __init__(self, cnf: Cnf, projection_vars: Sequence[int], *,
                 epsilon: float = 0.8, delta: float = 0.2,
                 max_conflicts: Optional[int] = None, seed: int = 0,
                 batch_eval: Optional[
                     Callable[[np.ndarray, Sequence[int]], int]] = None):
        if epsilon <= 0 or not 0 < delta < 1:
            raise ValueError("need epsilon > 0 and 0 < delta < 1")
        self.proj = [int(v) for v in projection_vars]
        if not self.proj:
            raise ValueError("projection_vars must be non-empty")
        self._base = Cnf(num_vars=cnf.num_vars, clauses=list(cnf.clauses))
        #: Persistent solver for the hash-free exact/enumeration path.
        self.solver = SatSolver(self._base)
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.pivot = _pivot(self.epsilon)
        self.trials = _trials(self.delta)
        self.max_conflicts = max_conflicts
        self._rng = np.random.default_rng(seed)
        self._batch_eval = batch_eval
        #: Cells up to ``2**enum_bits`` points are enumerated directly.
        self._enum_bits = 16 if batch_eval is not None else 10
        #: Last trial's successful hash depth, seeding the next search.
        self._m_hint: Optional[int] = None

    # ------------------------------------------------------------------
    def count(self, assumptions: Sequence[int] = ()) -> CountResult:
        """Projected model count under ``assumptions``.

        Exact (via enumeration) whenever at most ``pivot`` models exist
        — or, with a batch evaluator, whenever the whole projection
        space fits the direct-enumeration cap; otherwise the XOR-hash
        median estimate.
        """
        n = len(self.proj)
        assumptions = list(assumptions)
        if self._batch_eval is not None and n <= self._enum_bits:
            pts = _affine_points(np.zeros(n, dtype=np.uint8),
                                 np.eye(n, dtype=np.uint8))
            c = self._batch_eval(pts, assumptions)
            return CountResult(count=float(c), exact=True, projection=n)
        budget_hits = 0
        c = self._count_up_to(self.solver, assumptions, self.pivot)
        if c <= self.pivot:
            return CountResult(count=float(c), exact=True, projection=n)

        estimates: List[float] = []
        budget_error: Optional[SolverBudgetExceeded] = None
        attempts = 0
        while len(estimates) < self.trials and attempts < 3 * self.trials:
            attempts += 1
            try:
                est = self._one_trial(assumptions)
            except SolverBudgetExceeded as exc:
                budget_hits += 1
                budget_error = exc
                continue
            if est is not None:
                estimates.append(est)
        if not estimates:
            if budget_error is not None:
                raise budget_error
            raise SolverBudgetExceeded(0, self.max_conflicts or 0)
        return CountResult(count=float(np.median(estimates)), exact=False,
                           projection=n, trials=len(estimates),
                           budget_hits=budget_hits)

    def count_exact(self, assumptions: Sequence[int] = ()) -> CountResult:
        """Complete enumeration (exponential in the worst case)."""
        n = len(self.proj)
        assumptions = list(assumptions)
        if self._batch_eval is not None and n <= self._enum_bits:
            pts = _affine_points(np.zeros(n, dtype=np.uint8),
                                 np.eye(n, dtype=np.uint8))
            c = self._batch_eval(pts, assumptions)
        else:
            c = self._count_up_to(self.solver, assumptions, 1 << n)
        return CountResult(count=float(c), exact=True, projection=n)

    # ------------------------------------------------------------------
    def _one_trial(self, assumptions: List[int]) -> Optional[float]:
        """One ApproxMCCore run: smallest hash depth with a small cell.

        Draws one nested family of ``n`` random XOR constraints, then
        binary-searches the smallest depth ``m`` whose cell has at most
        ``pivot`` models (cell counts are monotone in ``m`` because the
        family is nested).
        """
        n = len(self.proj)
        rows = self._draw_rows()
        counts: Dict[int, int] = {}

        def cell_count(m: int) -> int:
            if m not in counts:
                counts[m] = self._probe(rows[:m], assumptions)
            return counts[m]

        # cell(0) is the unhashed space, already known to exceed pivot.
        lo, hi = 0, n
        if cell_count(hi) > self.pivot:
            return None  # even 2**n cells stay big: give up this trial
        # Probe the previous successful depth first to shrink the range.
        if self._m_hint is not None and lo < self._m_hint < hi:
            if cell_count(self._m_hint) > self.pivot:
                lo = self._m_hint
            else:
                hi = self._m_hint
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if cell_count(mid) > self.pivot:
                lo = mid
            else:
                hi = mid
        c = counts[hi]
        if c == 0:
            return None  # hashed past every solution — failed trial
        self._m_hint = hi
        return float(c) * float(2 ** hi)

    def _draw_rows(self) -> List[Tuple[int, int]]:
        """One nested hash family: ``n`` random ``(mask, parity)`` rows."""
        n = len(self.proj)
        masks = self._rng.integers(0, 2, size=(n, n))
        parities = self._rng.integers(0, 2, size=n)
        return [(int(sum(1 << i for i in range(n) if masks[r, i])),
                 int(parities[r])) for r in range(n)]

    def _probe(self, rows: List[Tuple[int, int]],
               assumptions: List[int]) -> int:
        """Models in the cell cut out by ``rows``, capped at ``pivot + 1``."""
        n = len(self.proj)
        sol = _solve_affine(rows, n)
        if sol is None:
            return 0
        x0, basis = sol
        if basis.shape[0] <= self._enum_bits:
            pts = _affine_points(x0, basis)
            if self._batch_eval is not None:
                return self._batch_eval(pts, assumptions)
            found = 0
            for pt in pts:
                lits = assumptions + [v if pt[i] else -v
                                      for i, v in enumerate(self.proj)]
                if self.solver.solve(
                        lits, max_conflicts=self.max_conflicts) is not None:
                    found += 1
                    if found > self.pivot:
                        break
            return found
        return self._count_up_to(self._chain_solver(rows), assumptions,
                                 self.pivot)

    def _chain_solver(self, rows: List[Tuple[int, int]]) -> SatSolver:
        """A fresh solver over the base CNF with ``rows`` as hard XORs.

        Only reached on large-cell probes, which carry few rows — CDCL
        handles those; dense parity systems never get here.
        """
        cnf = Cnf(num_vars=self._base.num_vars,
                  clauses=list(self._base.clauses))
        for mask, parity in rows:
            chosen = [v for i, v in enumerate(self.proj) if (mask >> i) & 1]
            if not chosen:
                if parity:  # 0 == 1: empty cell (caller's Gauss caught it)
                    cnf.add_clause([])
                continue
            acc = chosen[0]
            for v in chosen[1:]:
                y = cnf.new_var()
                cnf.add_clause([-y, acc, v])
                cnf.add_clause([-y, -acc, -v])
                cnf.add_clause([y, -acc, v])
                cnf.add_clause([y, acc, -v])
                acc = y
            cnf.add_clause([acc] if parity else [-acc])
        return SatSolver(cnf)

    def _count_up_to(self, solver: SatSolver, assumptions: List[int],
                     limit: int) -> int:
        """Number of projected models, enumerated up to ``limit + 1``.

        Returns ``limit + 1`` as the "more than limit" sentinel.  Models
        found are blocked through clauses guarded by a fresh activation
        literal, retired with a unit clause once the round ends.
        """
        act = solver.new_var()
        base = assumptions + [act]
        found = 0
        try:
            while found <= limit:
                model = solver.solve(base, max_conflicts=self.max_conflicts)
                if model is None:
                    break
                found += 1
                solver.add_clause([-act] + [(-v if model[v] else v)
                                            for v in self.proj])
        finally:
            solver.add_clause([-act])
        return found


class ConeCounter:
    """Counting interface over one circuit cone, projected on its inputs.

    Encodes the cone once (Tseitin) and answers many counting queries
    phrased over node *names*: ``count({"g5": True, "g7": False})`` is
    the number of primary-input vectors under which g5=1 and g7=0.  The
    circuit itself doubles as the counter's batch evaluator: small hash
    cells are counted exactly by bit-parallel simulation of the cone
    over just the cell's input vectors.
    """

    def __init__(self, circuit: Circuit, *, epsilon: float = 0.8,
                 delta: float = 0.2, max_conflicts: Optional[int] = None,
                 seed: int = 0):
        self.circuit = circuit
        cnf = Cnf()
        self.var = CircuitEncoder(cnf).encode(circuit)
        self._name_of = {v: name for name, v in self.var.items()}
        self.n_inputs = len(circuit.inputs)
        self._counter = XorHashCounter(
            cnf, [self.var[i] for i in circuit.inputs],
            epsilon=epsilon, delta=delta, max_conflicts=max_conflicts,
            seed=seed, batch_eval=self._batch_count)

    def _batch_count(self, points: np.ndarray,
                     assumptions: Sequence[int]) -> int:
        """Points (rows = input vectors) satisfying the assumptions."""
        n_pts = len(points)
        n_words = patterns.words_for_patterns(n_pts)
        pack = {name: _pack_bits(points[:, i], n_words)
                for i, name in enumerate(self.circuit.inputs)}
        values = simulate(self.circuit, pack)
        acc = np.full(n_words, ~np.uint64(0))
        for lit in assumptions:
            v = values[self._name_of[abs(lit)]]
            acc &= v if lit > 0 else ~v
        return patterns.masked_popcount(acc, n_pts)

    def count(self, condition: Optional[Dict[str, bool]] = None,
              exact: bool = False) -> CountResult:
        """Input vectors satisfying ``condition`` (None = all, ``2**n``)."""
        assumptions: List[int] = []
        for name, value in (condition or {}).items():
            v = self.var[name]
            assumptions.append(v if value else -v)
        if exact:
            return self._counter.count_exact(assumptions)
        return self._counter.count(assumptions)

    def probability(self, condition: Dict[str, bool],
                    exact: bool = False) -> float:
        """``count(condition) / 2**n_inputs``."""
        res = self.count(condition, exact=exact)
        return res.count / float(2 ** self.n_inputs)


def count_cone_models(circuit: Circuit, node: str, value: bool = True, *,
                      epsilon: float = 0.8, delta: float = 0.2,
                      max_conflicts: Optional[int] = None,
                      seed: int = 0) -> CountResult:
    """Input vectors of ``node``'s cone driving it to ``value``.

    One-shot convenience: extracts the cone, encodes it, counts.  For
    repeated queries over one cone build a :class:`ConeCounter`.
    """
    cone = circuit.cone(node) if node not in circuit.inputs else None
    if cone is None:
        # A primary input: exactly half the vectors set it to `value`.
        return CountResult(count=1.0, exact=True, projection=1)
    counter = ConeCounter(cone, epsilon=epsilon, delta=delta,
                          max_conflicts=max_conflicts, seed=seed)
    return counter.count({node: value})
