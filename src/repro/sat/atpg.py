"""Larrabee-style SAT-based test generation and equivalence checking.

The paper's testing reference [7] is Larrabee's formulation of test
pattern generation as Boolean satisfiability: encode the fault-free and
faulty circuits over shared inputs, assert that some output differs, and
hand the formula to a SAT solver.  A satisfying assignment *is* the test
vector; UNSAT is a proof of redundancy.

This is the SAT twin of :mod:`repro.testing.atpg` (BDD-based); the test
suite checks the two engines agree fault-for-fault.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..circuit import Circuit, GateType
from ..testing.faults import Fault, StuckAt, full_fault_list
from .cnf import CircuitEncoder, miter
from .solver import SatSolver


def _encode_with_fault(encoder: CircuitEncoder, circuit: Circuit,
                       fault: Fault,
                       input_vars: Dict[str, int]) -> Dict[str, int]:
    """Encode the faulty copy: the fault site is a free variable pinned
    to the stuck value; its driving logic is simply not connected."""
    var: Dict[str, int] = {}
    cnf = encoder.cnf
    for name in circuit.topological_order():
        node = circuit.node(name)
        if name == fault.node:
            v = cnf.new_var()
            var[name] = v
            cnf.add_clause([v] if fault.stuck_at is StuckAt.ONE else [-v])
            continue
        if node.gate_type.is_input:
            var[name] = input_vars[name]
            continue
        v = cnf.new_var()
        var[name] = v
        encoder._encode_gate(node.gate_type, v,
                             [var[f] for f in node.fanins])
    return var


class SatAtpg:
    """SAT-based test generator over one circuit."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit

    def generate_test(self, fault: Fault) -> Optional[Dict[str, int]]:
        """A test vector for the fault, or None if provably redundant."""
        encoder = CircuitEncoder()
        good = encoder.encode(self.circuit)
        input_vars = {pi: good[pi] for pi in self.circuit.inputs}
        bad = _encode_with_fault(encoder, self.circuit, fault, input_vars)
        cnf = encoder.cnf
        diffs = []
        for out in self.circuit.outputs:
            d = cnf.new_var()
            encoder._xor2(d, good[out], bad[out])
            diffs.append(d)
        cnf.add_clause(diffs)  # some output must differ
        model = SatSolver(cnf).solve()
        if model is None:
            return None
        return {pi: int(model[input_vars[pi]])
                for pi in self.circuit.inputs}

    def is_redundant(self, fault: Fault) -> bool:
        return self.generate_test(fault) is None

    def generate_test_set(self,
                          faults: Optional[List[Fault]] = None
                          ) -> Tuple[List[Dict[str, int]], List[Fault]]:
        """Tests for every detectable fault plus the proved-redundant list.

        Greedy compaction by fault simulation: each new vector is dropped
        against the remaining faults before generating the next.
        """
        from ..testing.fault_sim import simulate_faults
        from ..sim import patterns as pat
        remaining = list(faults if faults is not None
                         else full_fault_list(self.circuit))
        tests: List[Dict[str, int]] = []
        redundant: List[Fault] = []
        while remaining:
            fault = remaining[0]
            vector = self.generate_test(fault)
            if vector is None:
                redundant.append(fault)
                remaining.pop(0)
                continue
            tests.append(vector)
            remaining = [f for f in remaining
                         if not _detects(self.circuit, vector, f)]
        return tests, redundant


def _detects(circuit: Circuit, vector: Dict[str, int], fault: Fault) -> bool:
    """Evaluate whether one vector detects one fault (interpreted)."""
    from ..circuit import evaluate_gate
    clean = circuit.evaluate(vector)
    faulty = dict(clean)
    faulty[fault.node] = fault.stuck_at.value_bit
    order = circuit.topological_order()
    start = order.index(fault.node)
    for name in order[start + 1:]:
        node = circuit.node(name)
        if node.gate_type.is_logic:
            faulty[name] = evaluate_gate(
                node.gate_type, [faulty[f] for f in node.fanins])
    return any(faulty[o] != clean[o] for o in circuit.outputs)


def sat_equivalent(c1: Circuit, c2: Circuit) -> Optional[Dict[str, int]]:
    """SAT miter equivalence check.

    Returns None when the circuits are equivalent on ``c1``'s outputs, or
    a counterexample input assignment otherwise — the SAT twin of
    :func:`repro.circuit.are_equivalent`.
    """
    cnf, vars1, _, _ = miter(c1, c2)
    model = SatSolver(cnf).solve()
    if model is None:
        return None
    return {pi: int(model[vars1[pi]]) for pi in c1.inputs}
