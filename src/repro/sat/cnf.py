"""CNF formulas and Tseitin encoding of circuits.

The paper grounds its observability machinery in the testing literature,
citing Larrabee's SAT-based test generation ([7]).  This package provides
that substrate: a CNF container, the standard Tseitin translation of a
gate-level netlist (one variable per node, a constant-size clause set per
gate), and miter construction for equivalence/difference queries.

Literal convention: DIMACS-style signed integers — variable ``v`` is the
positive literal ``v``, its negation ``-v``; variables count from 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..circuit import Circuit, GateType


@dataclass
class Cnf:
    """A CNF formula: clause list over integer variables 1..num_vars."""

    num_vars: int = 0
    clauses: List[Tuple[int, ...]] = field(default_factory=list)

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, literals: Iterable[int]) -> None:
        clause = tuple(literals)
        if not clause:
            raise ValueError("empty clause (trivially UNSAT); add via "
                             "two contradictory unit clauses if intended")
        for lit in clause:
            if lit == 0 or abs(lit) > self.num_vars:
                raise ValueError(f"literal {lit} out of range")
        self.clauses.append(clause)

    def evaluate(self, assignment: Sequence[bool]) -> bool:
        """Check a full assignment (index 1..num_vars; index 0 unused)."""
        for clause in self.clauses:
            if not any(assignment[abs(lit)] == (lit > 0) for lit in clause):
                return False
        return True

    def to_dimacs(self) -> str:
        lines = [f"p cnf {self.num_vars} {len(self.clauses)}"]
        lines += [" ".join(map(str, clause)) + " 0"
                  for clause in self.clauses]
        return "\n".join(lines) + "\n"


class CircuitEncoder:
    """Tseitin-encodes one or more circuits into a shared CNF.

    Each encoded node gets a CNF variable; re-encoding a second circuit
    over the same input variables (via ``input_vars``) builds miters.
    """

    def __init__(self, cnf: Optional[Cnf] = None):
        self.cnf = cnf if cnf is not None else Cnf()

    def encode(self, circuit: Circuit,
               input_vars: Optional[Dict[str, int]] = None,
               prefix: str = "") -> Dict[str, int]:
        """Encode every node; returns the node-name -> variable map.

        ``input_vars`` reuses existing variables for the primary inputs
        (they must cover all of them); fresh variables are created
        otherwise.
        """
        var: Dict[str, int] = {}
        for name in circuit.topological_order():
            node = circuit.node(name)
            if node.gate_type.is_input:
                if input_vars is not None:
                    var[name] = input_vars[name]
                else:
                    var[name] = self.cnf.new_var()
                continue
            v = self.cnf.new_var()
            var[name] = v
            fanins = [var[f] for f in node.fanins]
            self._encode_gate(node.gate_type, v, fanins)
        return var

    # ------------------------------------------------------------------
    def _encode_gate(self, gate_type: GateType, out: int,
                     fanins: List[int]) -> None:
        add = self.cnf.add_clause
        if gate_type is GateType.CONST0:
            add([-out])
            return
        if gate_type is GateType.CONST1:
            add([out])
            return
        if gate_type is GateType.BUF:
            add([-out, fanins[0]])
            add([out, -fanins[0]])
            return
        if gate_type is GateType.NOT:
            add([-out, -fanins[0]])
            add([out, fanins[0]])
            return
        if gate_type in (GateType.AND, GateType.NAND):
            y = out if gate_type is GateType.AND else -out
            # y <-> AND(fanins): (y | -f1 | ... ) and (-y | fi) for each i.
            add([y] + [-f for f in fanins])
            for f in fanins:
                add([-y, f])
            return
        if gate_type in (GateType.OR, GateType.NOR):
            y = out if gate_type is GateType.OR else -out
            add([-y] + list(fanins))
            for f in fanins:
                add([y, -f])
            return
        if gate_type in (GateType.XOR, GateType.XNOR):
            # Decompose wide parity into 2-input steps.
            acc = fanins[0]
            for f in fanins[1:-1]:
                nxt = self.cnf.new_var()
                self._xor2(nxt, acc, f)
                acc = nxt
            target = out if gate_type is GateType.XOR else None
            if target is None:
                # XNOR: out <-> NOT(acc XOR last): encode via aux.
                aux = self.cnf.new_var()
                self._xor2(aux, acc, fanins[-1])
                add([-out, -aux])
                add([out, aux])
            else:
                self._xor2(out, acc, fanins[-1])
            return
        raise ValueError(f"unencodable gate type {gate_type!r}")

    def _xor2(self, y: int, a: int, b: int) -> None:
        add = self.cnf.add_clause
        add([-y, a, b])
        add([-y, -a, -b])
        add([y, -a, b])
        add([y, a, -b])


def encode_circuit(circuit: Circuit) -> Tuple[Cnf, Dict[str, int]]:
    """Tseitin-encode one circuit; returns (cnf, node-name -> variable)."""
    encoder = CircuitEncoder()
    var = encoder.encode(circuit)
    return encoder.cnf, var


def miter(c1: Circuit, c2: Circuit) -> Tuple[Cnf, Dict[str, int],
                                             Dict[str, int], int]:
    """Build a miter: SAT iff the circuits differ on some shared output.

    Returns ``(cnf, vars1, vars2, miter_output_var)``; the miter variable
    is asserted true, so the formula is UNSAT exactly when the circuits
    are equivalent on ``c1``'s outputs.
    """
    if set(c1.inputs) != set(c2.inputs):
        raise ValueError("miter requires identical input sets")
    encoder = CircuitEncoder()
    vars1 = encoder.encode(c1)
    input_vars = {pi: vars1[pi] for pi in c1.inputs}
    vars2 = encoder.encode(c2, input_vars=input_vars)
    cnf = encoder.cnf
    diffs = []
    for out in c1.outputs:
        if out not in c2:
            raise ValueError(f"output {out!r} missing from second circuit")
        d = cnf.new_var()
        encoder._xor2(d, vars1[out], vars2[out])
        diffs.append(d)
    m = cnf.new_var()
    cnf.add_clause([-m] + diffs)
    for d in diffs:
        cnf.add_clause([m, -d])
    cnf.add_clause([m])
    return cnf, vars1, vars2, m
