"""Stuck-at fault model: fault lists and structural collapsing.

The paper builds its observability machinery on "concepts from testing";
this subpackage provides the testing substrate itself: single stuck-at
faults, equivalence collapsing, parallel-pattern fault simulation, and
random-pattern testability measures.  The bridge back to reliability:
a gate's noiseless *observability* equals the detection probability of a
flip at its output, which in turn bounds the detection probabilities of
the stuck-at faults there (``o_g = Pr(SA0 detected) + Pr(SA1 detected)``
for the output-value partition).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..circuit import Circuit, GateType


class StuckAt(enum.Enum):
    """Fault polarity: signal permanently 0 or permanently 1."""

    ZERO = 0
    ONE = 1

    @property
    def value_bit(self) -> int:
        return 0 if self is StuckAt.ZERO else 1


@dataclass(frozen=True)
class Fault:
    """A single stuck-at fault on a node's *output* wire.

    Input-pin faults are modeled by fault collapsing onto driver outputs
    for the gate library used here (see :func:`collapse_faults`); output
    faults are the canonical representatives.
    """

    node: str
    stuck_at: StuckAt

    def __str__(self) -> str:
        return f"{self.node}/SA{self.stuck_at.value_bit}"


def full_fault_list(circuit: Circuit,
                    include_inputs: bool = True) -> List[Fault]:
    """Both stuck-at faults on every node output (optionally inputs too)."""
    faults = []
    for name in circuit.topological_order():
        node = circuit.node(name)
        if node.gate_type.is_constant:
            continue
        if node.gate_type.is_input and not include_inputs:
            continue
        faults.append(Fault(name, StuckAt.ZERO))
        faults.append(Fault(name, StuckAt.ONE))
    return faults


_CONTROLLING = {
    GateType.AND: 0, GateType.NAND: 0,
    GateType.OR: 1, GateType.NOR: 1,
}

_INVERTS = {GateType.NAND, GateType.NOR, GateType.NOT}


def collapse_faults(circuit: Circuit,
                    include_inputs: bool = True) -> List[Fault]:
    """Equivalence-collapse the fault list (classic gate-level rules).

    For an AND gate, any input SA-controlling (SA0) is equivalent to the
    output SA-controlled (SA0); dually for OR/NOR/NAND with the output
    polarity flipped through inversion.  Since this library models faults
    on node outputs, the collapse removes a *fanout-free* driver's
    redundant fault when its single consumer makes it equivalent to the
    consumer's output fault.  XOR/XNOR faults never collapse.

    Returns a reduced list that still covers every equivalence class.
    """
    faults = set(full_fault_list(circuit, include_inputs=include_inputs))
    for name in circuit.topological_order():
        node = circuit.node(name)
        if node.gate_type not in _CONTROLLING and \
                node.gate_type not in (GateType.NOT, GateType.BUF):
            continue
        for fi in node.fanins:
            if circuit.fanout_count(fi) != 1:
                continue  # fanout stems keep their own faults
            driver = circuit.node(fi)
            if driver.gate_type.is_constant:
                continue
            if node.gate_type in (GateType.NOT, GateType.BUF):
                # driver SA-v  ==  output SA-(v ^ inverted)
                inv = node.gate_type is GateType.NOT
                for sa in (StuckAt.ZERO, StuckAt.ONE):
                    faults.discard(Fault(fi, sa))
                del inv
                continue
            c = _CONTROLLING[node.gate_type]
            # input SA-c is equivalent to output SA-(c ^ inverts): drop the
            # input-side fault, keep the canonical output fault.
            faults.discard(Fault(fi, StuckAt.ZERO if c == 0 else StuckAt.ONE))
    return sorted(faults, key=lambda f: (f.node, f.stuck_at.value_bit))


@dataclass
class FaultSimulationResult:
    """Detection statistics from random-pattern fault simulation."""

    #: Patterns each fault was detected on (count), keyed by fault.
    detections: Dict[Fault, int]
    #: Number of patterns simulated.
    n_patterns: int
    #: Which primary output first exposes each detected fault (any one).
    detecting_output: Dict[Fault, str]

    def detection_probability(self, fault: Fault) -> float:
        """Fraction of random patterns that detect the fault."""
        return self.detections.get(fault, 0) / self.n_patterns

    @property
    def detected_faults(self) -> List[Fault]:
        return [f for f, c in self.detections.items() if c > 0]

    @property
    def undetected_faults(self) -> List[Fault]:
        return [f for f, c in self.detections.items() if c == 0]

    def coverage(self) -> float:
        """Fault coverage: detected / total simulated faults."""
        if not self.detections:
            return 1.0
        return len(self.detected_faults) / len(self.detections)
