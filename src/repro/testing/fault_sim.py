"""Bit-parallel stuck-at fault simulation and random-pattern testability.

Classic serial-fault / parallel-pattern simulation: the fault-free circuit
is simulated once per batch; each fault is then injected by forcing its
node to a constant (implemented as an XOR mask against the locally clean
value) and compared at the primary outputs.

The reliability bridge: a gate's flip-observability (Sec. 3 of the paper)
equals the sum of its two stuck-at detection probabilities, because SA0 is
a flip exactly on the patterns where the line carries 1 and SA1 where it
carries 0 — verified in the test suite against the BDD observabilities.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..circuit import Circuit
from ..sim import patterns
from ..sim.simulator import CompiledCircuit
from .faults import Fault, FaultSimulationResult, StuckAt, full_fault_list


def simulate_faults(circuit: Circuit,
                    faults: Optional[Sequence[Fault]] = None,
                    n_patterns: int = 1 << 12,
                    rng: Optional[np.random.Generator] = None,
                    seed: int = 0,
                    exhaustive: bool = False) -> FaultSimulationResult:
    """Random-pattern (or exhaustive) stuck-at fault simulation.

    A fault is *detected* on a pattern when at least one primary output
    differs from the fault-free response.

    Parameters
    ----------
    faults:
        Fault list (default: the full un-collapsed list including primary
        inputs).
    exhaustive:
        Enumerate all input vectors instead of sampling (needs <= 26
        inputs); detection probabilities are then exact.
    """
    if faults is None:
        faults = full_fault_list(circuit)
    compiled = CompiledCircuit(circuit)
    rng = rng if rng is not None else np.random.default_rng(seed)

    if exhaustive:
        if len(circuit.inputs) > 26:
            raise ValueError(
                "exhaustive fault simulation limited to 26 inputs")
        input_pack = patterns.exhaustive_pack(circuit.inputs)
        total = max(64, 1 << len(circuit.inputs))
    else:
        n_words = patterns.words_for_patterns(n_patterns)
        input_pack = patterns.random_pack(circuit.inputs, n_words, rng)
        total = n_patterns

    n_words = len(next(iter(input_pack.values())))
    clean = compiled.run(input_pack)
    detections: Dict[Fault, int] = {}
    detecting_output: Dict[Fault, str] = {}

    for fault in faults:
        slot = compiled.index[fault.node]
        const_pack = (patterns.ones(n_words)
                      if fault.stuck_at is StuckAt.ONE
                      else patterns.zeros(n_words))
        mask = np.bitwise_xor(clean[slot], const_pack)
        if not mask.any():
            detections[fault] = 0  # line already always carries the value
            continue
        if circuit.node(fault.node).gate_type.is_input:
            faulty_inputs = dict(input_pack)
            faulty_inputs[fault.node] = const_pack
            faulty = compiled.run(faulty_inputs)
        else:
            def noise(name: str, words: int,
                      _site=fault.node, _mask=mask) -> Optional[np.ndarray]:
                return _mask if name == _site else None

            faulty = compiled.run(input_pack, noise=noise)
        any_diff = np.zeros(n_words, dtype=np.uint64)
        for out_name, out_slot in compiled.output_slots:
            diff = np.bitwise_xor(clean[out_slot], faulty[out_slot])
            if fault not in detecting_output and diff.any():
                detecting_output[fault] = out_name
            np.bitwise_or(any_diff, diff, out=any_diff)
        detections[fault] = (patterns.masked_popcount(any_diff, total)
                             if total >= 64 else patterns.popcount(any_diff))

    return FaultSimulationResult(detections=detections,
                                 n_patterns=total,
                                 detecting_output=detecting_output)


def random_pattern_testability(circuit: Circuit,
                               n_patterns: int = 1 << 13,
                               seed: int = 0,
                               exhaustive: bool = False
                               ) -> Dict[str, Dict[str, float]]:
    """Per-node testability profile from fault simulation.

    Returns, for every non-constant node: ``controllability`` (probability
    the line is 1), ``sa0`` / ``sa1`` detection probabilities, and
    ``observability`` — their sum, which equals the Sec. 3 noiseless flip
    observability at the any-output level.
    """
    faults = full_fault_list(circuit)
    sim = simulate_faults(circuit, faults, n_patterns=n_patterns, seed=seed,
                          exhaustive=exhaustive)
    from ..sim.simulator import signal_probabilities
    if exhaustive:
        control = signal_probabilities(circuit)
    else:
        control = signal_probabilities(circuit, n_patterns=n_patterns,
                                       rng=np.random.default_rng(seed + 1))
    profile: Dict[str, Dict[str, float]] = {}
    for name in circuit.topological_order():
        if circuit.node(name).gate_type.is_constant:
            continue
        sa0 = sim.detection_probability(Fault(name, StuckAt.ZERO))
        sa1 = sim.detection_probability(Fault(name, StuckAt.ONE))
        profile[name] = {
            "controllability": control[name],
            "sa0": sa0,
            "sa1": sa1,
            "observability": sa0 + sa1,
        }
    return profile


def hard_faults(circuit: Circuit,
                threshold: float = 0.01,
                n_patterns: int = 1 << 13,
                seed: int = 0) -> List[Fault]:
    """Faults with random-pattern detection probability below ``threshold``.

    These are the classic random-pattern-resistant faults; in the
    reliability picture they mark gates whose failures are strongly
    logically masked (low observability), i.e. the *least* reliability-
    critical sites.
    """
    sim = simulate_faults(circuit, n_patterns=n_patterns, seed=seed)
    return [f for f in sim.detections
            if sim.detection_probability(f) < threshold]
