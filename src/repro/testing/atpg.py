"""BDD-based deterministic test generation for stuck-at faults.

A fault is detectable iff the XOR of the fault-free and faulty output
functions is satisfiable; any satisfying assignment is a test vector.  The
ROBDD engine makes this a three-liner per (fault, output) and — unlike
random-pattern simulation — gives a *proof* of redundancy when no test
exists.  Redundant stuck-at faults correspond to lines whose flips are
fully logically masked: their reliability observability is exactly the
detection probability mass the test set certifies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..bdd import Bdd, BddManager, CircuitBdds, build_node_bdds
from ..bdd.ops import _gate_bdd
from ..circuit import Circuit
from .faults import Fault, StuckAt, full_fault_list


class AtpgEngine:
    """Deterministic test generation over one circuit's BDDs."""

    def __init__(self, circuit: Circuit,
                 bdds: Optional[CircuitBdds] = None):
        self.circuit = circuit
        self.bdds = bdds if bdds is not None else build_node_bdds(circuit)

    # ------------------------------------------------------------------
    def _faulty_outputs(self, fault: Fault) -> Dict[str, Bdd]:
        """Output functions with the fault site forced to its stuck value."""
        mgr = self.bdds.manager
        forced = mgr.true if fault.stuck_at is StuckAt.ONE else mgr.false
        rebuilt: Dict[str, Bdd] = {fault.node: forced}
        downstream = set(
            self.circuit.transitive_fanin(self.circuit.outputs))
        for name in self.circuit.topological_order():
            if name == fault.node or name not in downstream:
                continue
            node = self.circuit.node(name)
            if not node.gate_type.is_logic:
                continue
            if not any(f in rebuilt for f in node.fanins):
                continue
            fanins = [rebuilt.get(f, self.bdds[f]) for f in node.fanins]
            rebuilt[name] = _gate_bdd(mgr, node.gate_type, fanins)
        return {o: rebuilt.get(o, self.bdds[o])
                for o in self.circuit.outputs}

    def difference(self, fault: Fault) -> Bdd:
        """Characteristic function of all tests for the fault (any output)."""
        faulty = self._faulty_outputs(fault)
        mgr = self.bdds.manager
        acc = mgr.false
        for out in self.circuit.outputs:
            acc = acc | (self.bdds[out] ^ faulty[out])
        return acc

    def generate_test(self, fault: Fault) -> Optional[Dict[str, int]]:
        """A test vector detecting the fault, or None if it is redundant.

        The vector maps every primary input to 0/1 (unconstrained inputs
        default to 0).
        """
        diff = self.difference(fault)
        assignment = diff.pick_assignment()
        if assignment is None:
            return None
        vector = {name: 0 for name in self.circuit.inputs}
        for name, index in self.bdds.var_index.items():
            if index in assignment:
                vector[name] = assignment[index]
        return vector

    def detection_probability(self, fault: Fault) -> float:
        """Exact fraction of input vectors detecting the fault."""
        return self.difference(fault).probability()

    def is_redundant(self, fault: Fault) -> bool:
        """True when no input vector can ever expose the fault."""
        return self.difference(fault).is_false

    # ------------------------------------------------------------------
    def generate_test_set(self,
                          faults: Optional[List[Fault]] = None
                          ) -> Tuple[List[Dict[str, int]], List[Fault]]:
        """Tests covering all detectable faults, plus the redundant list.

        Greedy compaction: each generated vector is fault-simulated against
        the remaining faults (exactly, via the difference BDDs) and every
        fault it detects is dropped before the next vector is generated.
        """
        remaining = list(faults if faults is not None
                         else full_fault_list(self.circuit))
        tests: List[Dict[str, int]] = []
        redundant: List[Fault] = []
        differences = {f: self.difference(f) for f in remaining}
        while remaining:
            fault = remaining.pop(0)
            diff = differences[fault]
            if diff.is_false:
                redundant.append(fault)
                continue
            assignment = diff.pick_assignment()
            vector = {name: 0 for name in self.circuit.inputs}
            for name, index in self.bdds.var_index.items():
                if index in assignment:
                    vector[name] = assignment[index]
            tests.append(vector)
            vec = [vector[name] for name in _by_index(self.bdds)]
            remaining = [f for f in remaining
                         if not differences[f].evaluate(vec)]
        return tests, redundant


def _by_index(bdds: CircuitBdds) -> List[str]:
    order = sorted(bdds.var_index.items(), key=lambda kv: kv[1])
    return [name for name, _ in order]


def redundant_faults(circuit: Circuit) -> List[Fault]:
    """All stuck-at faults that no input vector can detect."""
    engine = AtpgEngine(circuit)
    return [f for f in full_fault_list(circuit) if engine.is_redundant(f)]
