"""Testing substrate: stuck-at faults, fault simulation, BDD-based ATPG."""

from .faults import (
    Fault,
    FaultSimulationResult,
    StuckAt,
    collapse_faults,
    full_fault_list,
)
from .fault_sim import (
    hard_faults,
    random_pattern_testability,
    simulate_faults,
)
from .atpg import AtpgEngine, redundant_faults

__all__ = [
    "Fault", "FaultSimulationResult", "StuckAt", "collapse_faults",
    "full_fault_list",
    "hard_faults", "random_pattern_testability", "simulate_faults",
    "AtpgEngine", "redundant_faults",
]
