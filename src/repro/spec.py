"""Canonical gate-failure-probability (eps) specifications.

Every analysis in the library takes a *failure-probability vector*: one
``eps`` per gate.  Users write it in one of four equivalent forms:

* a **scalar** — the same eps for every gate (the paper's Table 2
  setting);
* a **per-gate mapping** ``{"g1": 0.1, "g2": 0.05}`` — gates absent from
  the mapping are noise-free;
* a **defaulted mapping** ``{"default": 0.05, "g1": 0.0}`` — the reserved
  key :data:`DEFAULT_KEY` supplies the eps of every gate not named
  explicitly (the natural way to express "harden these two gates");
* a **numeric string** — ``"0.05"`` or ``"1e-10"``, as they arrive from
  the CLI, a requests.jsonl file, or a ``repro serve`` JSON line.

This module is the single parser/validator for all of them.  It replaces
three historically divergent ad-hoc parsers (the CLI's ``_eps_list``, the
Monte Carlo module's ``epsilon_of``/``validate_epsilon``, and the sweep
argument checks duplicated between the scalar and compiled kernels), and
their error messages are preserved verbatim.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple, Union

from .circuit import Circuit

#: One failure-probability vector: a scalar (every gate) or per-gate map.
EpsilonSpec = Union[float, Mapping[str, float]]

#: Reserved mapping key supplying the eps of gates not named explicitly.
DEFAULT_KEY = "default"


def epsilon_of(eps: EpsilonSpec, gate: str) -> float:
    """Resolve a gate's failure probability from a canonical spec.

    A mapping without an entry for ``gate`` falls back to its
    ``"default"`` entry, and to 0.0 (noise-free) when there is none —
    letting callers perturb a gate subset only.
    """
    if isinstance(eps, (int, float)):
        return float(eps)
    value = eps.get(gate)
    if value is None:
        value = eps.get(DEFAULT_KEY, 0.0)
    return float(value)


def validate_epsilon(eps: EpsilonSpec, circuit: Circuit) -> None:
    """Check all failure probabilities lie in [0, 0.5] (BSC model range).

    Mapping keys must name logic gates of ``circuit`` (inputs are
    noise-free in the BSC model); the reserved ``"default"`` key is
    exempt from the membership check but still range-checked.
    """
    if isinstance(eps, Mapping):
        for gate, value in eps.items():
            if gate != DEFAULT_KEY:
                if gate not in circuit:
                    raise ValueError(
                        f"epsilon given for unknown gate {gate!r}")
                if not circuit.node(gate).gate_type.is_logic:
                    raise ValueError(
                        f"epsilon given for non-gate node {gate!r} "
                        "(inputs are noise-free in the BSC model)")
            if not 0.0 <= value <= 0.5:
                raise ValueError(
                    f"epsilon[{gate!r}] = {value} outside [0, 0.5]")
    else:
        if not 0.0 <= float(eps) <= 0.5:
            raise ValueError(f"epsilon = {eps} outside [0, 0.5]")


def parse_epsilon(value) -> EpsilonSpec:
    """Coerce one user-supplied eps value into a canonical spec.

    Accepts a number, a numeric string (``"0.05"``, ``"1e-10"``), or a
    per-gate mapping (optionally carrying the ``"default"`` key) whose
    values may themselves be numeric strings.  Range checking is
    circuit-aware and therefore deferred to :func:`validate_epsilon`.
    """
    if isinstance(value, Mapping):
        parsed = {}
        for gate, v in value.items():
            try:
                parsed[str(gate)] = float(v)
            except (TypeError, ValueError):
                raise ValueError(
                    f"invalid eps for gate {gate!r}: {v!r} is not a "
                    f"probability") from None
        return parsed
    if isinstance(value, bool) or value is None:
        raise ValueError(f"invalid eps spec {value!r}: expected a "
                         f"probability or per-gate mapping")
    try:
        return float(value)
    except (TypeError, ValueError):
        raise ValueError(
            f"invalid eps spec {value!r}: expected a probability or "
            f"per-gate mapping") from None


def parse_eps_list(spec: str) -> List[float]:
    """Parse the CLI's comma-separated eps list (``"0.01,0.05"``).

    Raises :class:`ValueError` with the messages the CLI has always
    shown; the CLI converts them to ``SystemExit`` unchanged.
    """
    try:
        values = [float(tok) for tok in spec.split(",") if tok.strip()]
    except ValueError:
        raise ValueError(
            f"invalid eps spec {spec!r}: expected comma-separated "
            f"probabilities (e.g. 0.01,0.05)") from None
    if not values:
        raise ValueError(
            f"empty eps spec {spec!r}: expected at least one probability "
            f"(e.g. --eps 0.05 or --eps 0.01,0.05)")
    for v in values:
        if not 0.0 <= v <= 0.5:
            raise ValueError(f"eps {v} outside [0, 0.5]")
    return values


def validate_sweep_specs(circuit: Circuit,
                         eps_specs: Sequence[EpsilonSpec],
                         eps10_specs: Optional[Sequence[EpsilonSpec]] = None,
                         ) -> Tuple[List[EpsilonSpec],
                                    Optional[List[EpsilonSpec]]]:
    """Shared sweep-argument validation of the scalar and compiled paths.

    Materializes both spec sequences, checks the eps10 sweep (when given)
    has the same length, and range-checks every point against
    ``circuit``.  Returns ``(specs, eps10_list_or_None)``.
    """
    specs = list(eps_specs)
    if not specs:
        raise ValueError("sweep needs at least one eps point")
    eps10_list = None
    if eps10_specs is not None:
        eps10_list = list(eps10_specs)
        if len(eps10_list) != len(specs):
            raise ValueError(
                f"eps10 sweep length {len(eps10_list)} != eps sweep "
                f"length {len(specs)}")
    for spec in specs:
        validate_epsilon(spec, circuit)
    for spec in eps10_list or ():
        validate_epsilon(spec, circuit)
    return specs, eps10_list
