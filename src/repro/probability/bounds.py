"""Guaranteed signal-probability bounds (Savir-style interval propagation).

One topological pass computes, for every node, an interval that *provably*
contains its exact signal probability: fanins with disjoint transitive
supports combine with the independence product rule; overlapping fanins
combine with the Fréchet–Hoeffding bounds (no independence assumed at
all).  The result brackets the exact BDD value on every circuit — a
property-tested invariant — and collapses to a point on fanout-free logic.

These bounds give cheap certificates around the sampled/correlation
signal-probability estimators used when BDDs are unavailable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..circuit import Circuit, GateType
from ..circuit.analysis import support_bitsets


@dataclass(frozen=True)
class Interval:
    """A closed subinterval of [0, 1] containing a probability."""

    lo: float
    hi: float

    def __post_init__(self):
        if not (0.0 <= self.lo <= self.hi <= 1.0):
            raise ValueError(f"invalid probability interval [{self.lo}, "
                             f"{self.hi}]")

    @property
    def width(self) -> float:
        return self.hi - self.lo

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi

    def complement(self) -> "Interval":
        return Interval(1.0 - self.hi, 1.0 - self.lo)

    def contains(self, p: float, tol: float = 1e-12) -> bool:
        return self.lo - tol <= p <= self.hi + tol


def _clip(x: float) -> float:
    return min(1.0, max(0.0, x))


def _and_interval(a: Interval, b: Interval, independent: bool) -> Interval:
    if independent:
        return Interval(a.lo * b.lo, a.hi * b.hi)
    # Fréchet-Hoeffding: max(0, p+q-1) <= P(A and B) <= min(p, q).
    return Interval(_clip(max(0.0, a.lo + b.lo - 1.0)),
                    _clip(min(a.hi, b.hi)))


def _or_interval(a: Interval, b: Interval, independent: bool) -> Interval:
    return _and_interval(a.complement(), b.complement(),
                         independent).complement()


def _xor_interval(a: Interval, b: Interval, independent: bool) -> Interval:
    if independent:
        # p + q - 2pq is bilinear: extrema lie on rectangle corners.
        corners = [pa + pb - 2.0 * pa * pb
                   for pa in (a.lo, a.hi) for pb in (b.lo, b.hi)]
        return Interval(_clip(min(corners)), _clip(max(corners)))
    # Dependent case, from the Fréchet joint bounds:
    #   |pa - pb| <= P(xor) <= min(pa + pb, 2 - pa - pb).
    # Lower bound over the rectangle: 0 when the intervals overlap
    # (an interior minimum corners would miss), else the gap between them.
    if a.lo <= b.hi and b.lo <= a.hi:
        lo = 0.0
    else:
        lo = min(abs(a.lo - b.hi), abs(a.hi - b.lo))
    # Upper bound: max of min(s, 2 - s) over s = pa + pb in its range,
    # peaking at s = 1.
    s_lo, s_hi = a.lo + b.lo, a.hi + b.hi
    if s_lo <= 1.0 <= s_hi:
        hi = 1.0
    elif s_hi < 1.0:
        hi = s_hi
    else:
        hi = 2.0 - s_lo
    return Interval(_clip(lo), _clip(hi))


def signal_probability_bounds(circuit: Circuit,
                              input_probs: Dict[str, float] = None
                              ) -> Dict[str, Interval]:
    """Sound Pr[node = 1] intervals for every node.

    ``input_probs`` optionally fixes non-uniform input probabilities
    (points); unspecified inputs are exact 0.5 points.
    """
    support = support_bitsets(circuit)
    bounds: Dict[str, Interval] = {}
    # Track the support actually backing each *interval* so that chains
    # of binary combinations inside wide gates stay sound.
    for name in circuit.topological_order():
        node = circuit.node(name)
        if node.gate_type.is_input:
            p = (input_probs or {}).get(name, 0.5)
            bounds[name] = Interval(p, p)
            continue
        if node.gate_type is GateType.CONST0:
            bounds[name] = Interval(0.0, 0.0)
            continue
        if node.gate_type is GateType.CONST1:
            bounds[name] = Interval(1.0, 1.0)
            continue
        if node.gate_type is GateType.BUF:
            bounds[name] = bounds[node.fanins[0]]
            continue
        if node.gate_type is GateType.NOT:
            bounds[name] = bounds[node.fanins[0]].complement()
            continue
        bounds[name] = _gate_bounds(node.gate_type, node.fanins,
                                    bounds, support)
    return bounds


def _gate_bounds(gate_type: GateType, fanins, bounds, support) -> Interval:
    base = {
        GateType.AND: (_and_interval, False),
        GateType.NAND: (_and_interval, True),
        GateType.OR: (_or_interval, False),
        GateType.NOR: (_or_interval, True),
        GateType.XOR: (_xor_interval, False),
        GateType.XNOR: (_xor_interval, True),
    }
    combine, invert = base[gate_type]
    acc = bounds[fanins[0]]
    acc_support = support[fanins[0]]
    for fi in fanins[1:]:
        independent = not (acc_support & support[fi])
        acc = combine(acc, bounds[fi], independent)
        acc_support |= support[fi]
    return acc.complement() if invert else acc


def bound_report(circuit: Circuit) -> Dict[str, Tuple[float, float, float]]:
    """Per-output (lo, hi, width) summary of the probability bounds."""
    bounds = signal_probability_bounds(circuit)
    return {out: (bounds[out].lo, bounds[out].hi, bounds[out].width)
            for out in circuit.outputs}
