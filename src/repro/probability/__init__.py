"""Probability substrate: signal probabilities, weight vectors, correlations."""

from .signal_prob import (
    CorrelationSignalProbability,
    correlation_signal_probabilities,
    exact_signal_probabilities,
    sampled_signal_probabilities,
    sat_signal_probabilities,
)
from .weights import (
    WeightData,
    bdd_weight_vectors,
    compute_weights,
    exhaustive_weight_vectors,
    sampled_weight_vectors,
)
from .sat_weights import SatTierOptions, sat_weight_vectors
from .error_propagation import (
    ERROR_FREE,
    EVENT_0TO1,
    EVENT_1TO0,
    CorrelationFn,
    ErrorProbability,
    combine_with_local_failure,
    conditional_error_probability,
    transition_probability,
    weighted_error_components,
)
from .correlation import ErrorCorrelationEngine, IndependentCorrelations
from .bounds import Interval, bound_report, signal_probability_bounds

__all__ = [
    "CorrelationSignalProbability", "correlation_signal_probabilities",
    "exact_signal_probabilities", "sampled_signal_probabilities",
    "sat_signal_probabilities",
    "WeightData", "bdd_weight_vectors", "compute_weights",
    "exhaustive_weight_vectors", "sampled_weight_vectors",
    "SatTierOptions", "sat_weight_vectors",
    "ERROR_FREE", "EVENT_0TO1", "EVENT_1TO0", "CorrelationFn",
    "ErrorProbability", "combine_with_local_failure",
    "conditional_error_probability", "transition_probability",
    "weighted_error_components",
    "ErrorCorrelationEngine", "IndependentCorrelations",
    "Interval", "bound_report", "signal_probability_bounds",
]
