"""Signal probability estimation (Pr[node = 1] in the error-free circuit).

Four estimators with one interface:

* :func:`exact_signal_probabilities` — BDD-based, exact;
* :func:`sampled_signal_probabilities` — bit-parallel random simulation;
* :func:`sat_signal_probabilities` — SAT-backed cone-local counting (the
  scaling tier; re-exported from :mod:`repro.probability.sat_weights`);
* :class:`CorrelationSignalProbability` — the Ercolani et al. (ETC 1989)
  analytic method the paper cites as [8]: one topological pass propagating
  signal probabilities together with pairwise *correlation coefficients*
  ``C_ab = Pr(a=1, b=1) / (Pr(a=1) Pr(b=1))`` so reconvergent fanout does
  not corrupt the estimates.  The error-event correlation machinery of
  Sec. 4.1 is the direct generalization of this class (four coefficients
  per pair instead of one), so it also serves as its reference
  implementation at the signal level.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..bdd import CircuitBdds, build_node_bdds
from ..circuit import Circuit, truth_table
from ..circuit.analysis import support_bitsets
from ..sim.simulator import signal_probabilities as _sim_signal_probabilities
from .sat_weights import sat_signal_probabilities  # noqa: F401  (re-export)


def exact_signal_probabilities(circuit: Circuit,
                               bdds: Optional[CircuitBdds] = None,
                               input_probs: Optional[Dict[str, float]] = None
                               ) -> Dict[str, float]:
    """Exact Pr[node = 1] for every node, via BDDs."""
    if bdds is None:
        bdds = build_node_bdds(circuit)
    return {name: bdds.signal_probability(name, input_probs)
            for name in circuit.topological_order()}


def sampled_signal_probabilities(circuit: Circuit,
                                 n_patterns: int = 1 << 16,
                                 seed: int = 0,
                                 input_probs: Optional[Dict[str, float]] = None
                                 ) -> Dict[str, float]:
    """Sampled Pr[node = 1] via bit-parallel random-pattern simulation."""
    rng = np.random.default_rng(seed)
    return _sim_signal_probabilities(circuit, n_patterns=n_patterns, rng=rng,
                                     input_probs=input_probs)


def _safe_div(num: float, den: float) -> float:
    return num / den if den > 0.0 else 1.0


class CorrelationSignalProbability:
    """Analytic signal probabilities with pairwise correlation coefficients.

    One topological pass computes ``Pr[node = 1]``; pairwise coefficients
    between wires are computed lazily (memoized) only when a reconvergent
    gate actually needs them, keeping the cost near-linear on circuits with
    sparse reconvergence.

    Parameters
    ----------
    circuit:
        The circuit to analyze.
    input_probs:
        Optional per-input 1-probabilities (default 0.5 each).
    """

    def __init__(self, circuit: Circuit,
                 input_probs: Optional[Dict[str, float]] = None):
        self.circuit = circuit
        self._support = support_bitsets(circuit)
        self._topo_pos = {name: i
                          for i, name in enumerate(circuit.topological_order())}
        self._corr_cache: Dict[Tuple[str, str], float] = {}
        self.prob: Dict[str, float] = {}
        for name in circuit.topological_order():
            node = circuit.node(name)
            if node.gate_type.is_input:
                self.prob[name] = (input_probs or {}).get(name, 0.5)
            elif node.gate_type.is_constant:
                self.prob[name] = float(node.gate_type.value == "const1")
            else:
                self.prob[name] = self._gate_prob(name, cond=None)

    # ------------------------------------------------------------------
    def signal_probability(self, name: str) -> float:
        """Estimated Pr[node = 1]."""
        return self.prob[name]

    def correlation(self, a: str, b: str) -> float:
        """Coefficient ``C_ab = Pr(a=1, b=1) / (Pr(a=1) Pr(b=1))``.

        Independent (support-disjoint) wires return exactly 1.
        """
        if a == b:
            return _safe_div(1.0, self.prob[a])
        if not (self._support[a] & self._support[b]):
            return 1.0
        if self._topo_pos[a] < self._topo_pos[b]:
            a, b = b, a
        key = (a, b)
        cached = self._corr_cache.get(key)
        if cached is not None:
            return cached
        # a is the later wire; expand it through its gate conditioned on b=1.
        node = self.circuit.node(a)
        if not node.gate_type.is_logic:
            # Distinct input/constant wires with overlapping support cannot
            # occur; treat defensively as independent.
            result = 1.0
        else:
            cond_prob = self._gate_prob(a, cond=b)
            result = _safe_div(cond_prob, self.prob[a])
        self._corr_cache[key] = result
        return result

    def joint(self, a: str, b: str) -> float:
        """Estimated Pr(a=1, b=1)."""
        return min(1.0, self.prob[a] * self.prob[b] * self.correlation(a, b))

    # ------------------------------------------------------------------
    def _pair_value_corr(self, i: str, vi: int, j: str, vj: int) -> float:
        """Correlation coefficient for events (i == vi) and (j == vj).

        Derived from the 1-1 coefficient through the marginal identities;
        e.g. ``Pr(i=1, j=0) = Pr(i=1) - Pr(i=1, j=1)``.
        """
        pi, pj = self.prob[i], self.prob[j]
        c11 = self.correlation(i, j)
        if vi and vj:
            return c11
        if vi and not vj:
            return _safe_div(1.0 - pj * c11, 1.0 - pj)
        if not vi and vj:
            return _safe_div(1.0 - pi * c11, 1.0 - pi)
        return _safe_div(1.0 - pi - pj + pi * pj * c11,
                         (1.0 - pi) * (1.0 - pj))

    def _cond_value_prob(self, i: str, vi: int, cond: Optional[str]) -> float:
        """Pr(i == vi | cond = 1) under pairwise scaling (cond None: marginal)."""
        p = self.prob[i] if vi else 1.0 - self.prob[i]
        if cond is None or cond == i:
            if cond == i:
                return 1.0 if vi else 0.0
            return p
        scaled = p * self._pair_value_corr(i, vi, cond, 1)
        return min(1.0, max(0.0, scaled))

    def _gate_prob(self, gate: str, cond: Optional[str]) -> float:
        """Pr(gate = 1 | cond = 1) with pairwise-corrected input joints."""
        node = self.circuit.node(gate)
        fanins = node.fanins
        k = len(fanins)
        truth = truth_table(node.gate_type, k)
        total = 0.0
        for v in range(1 << k):
            if not truth[v]:
                continue
            term = 1.0
            for t in range(k):
                term *= self._cond_value_prob(fanins[t], (v >> t) & 1, cond)
                if term == 0.0:
                    break
            if term == 0.0:
                continue
            for t in range(k):
                for u in range(t + 1, k):
                    if fanins[t] == fanins[u]:
                        # Same wire twice: joint collapses; approximate by
                        # dividing out one marginal.
                        vt, vu = (v >> t) & 1, (v >> u) & 1
                        if vt != vu:
                            term = 0.0
                        else:
                            term = _safe_div(
                                term,
                                self._cond_value_prob(fanins[t], vt, cond))
                        continue
                    term *= self._pair_value_corr(
                        fanins[t], (v >> t) & 1, fanins[u], (v >> u) & 1)
            total += max(0.0, term)
        return min(1.0, max(0.0, total))


def correlation_signal_probabilities(circuit: Circuit,
                                     input_probs: Optional[Dict[str, float]]
                                     = None) -> Dict[str, float]:
    """Convenience wrapper returning the Ercolani-style estimates as a dict."""
    return dict(CorrelationSignalProbability(circuit, input_probs).prob)
