"""SAT-backed weight vectors and signal probabilities (the ``sat`` tier).

The estimator ladder below ``sampled`` in the accuracy-tiers table
(docs/performance.md, docs/scaling.md): every per-node value is derived
from that node's *own* transitive-fanin cone, never from the enclosing
netlist, so a cone-restricted build is bit-identical to the full-circuit
build by construction.  Per cone-input count ``m`` the tier grades:

* ``m <= exact_threshold`` — exact enumeration of the cone (bit-parallel
  exhaustive simulation: every input vector visited once, counts are
  exact integers).  This also fills every other node of the same cone
  for free, exactly.
* ``exact_threshold < m <= approx_threshold`` — XOR-hash approximate
  model counting (:mod:`repro.sat.counting`) with the documented
  (epsilon, delta) multiplicative guarantee; each count carries a
  conflict budget so hard cones degrade instead of hanging.
* ``m > approx_threshold`` (or a counting budget exhausted) — sampled
  estimation over the node's cone, seeded per node name so results do
  not depend on which region of the netlist is being materialized.

Uniform inputs are assumed throughout — unweighted model counting has no
notion of ``input_probs`` (use the ``bdd`` or ``sampled`` tiers there).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..circuit import Circuit, GateType, evaluate_gate
from ..obs import trace_span
from ..sat.counting import ConeCounter
from ..sat.solver import SolverBudgetExceeded
from ..sim import patterns
from ..sim.simulator import exhaustive_simulate, simulate
from .weights import WeightData, _weights_from_packs

__all__ = ["SatTierOptions", "sat_weight_vectors", "sat_signal_probabilities"]


@dataclass(frozen=True)
class SatTierOptions:
    """Knobs of the ``method="sat"`` estimator ladder."""

    #: Multiplicative accuracy of the XOR-hash counter (factor 1+epsilon).
    epsilon: float = 0.8
    #: Failure probability of the (epsilon, delta) guarantee.
    delta: float = 0.2
    #: Cones with at most this many inputs are enumerated exactly.
    exact_threshold: int = 16
    #: Cones above this many inputs skip counting and go straight to the
    #: per-cone sampled fallback (counting cost grows with cone size).
    approx_threshold: int = 24
    #: Conflict budget per solver call inside the counter; exhausting it
    #: falls back to sampling for that node instead of hanging.
    max_conflicts: Optional[int] = 20_000


def _node_seed(seed: int, name: str) -> int:
    """Order-independent per-node RNG seed (full vs cone builds agree)."""
    digest = hashlib.sha256(f"{seed}|{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def sat_weight_vectors(circuit: Circuit, *,
                       n_patterns: int = 1 << 16,
                       seed: int = 0,
                       input_probs: Optional[Dict[str, float]] = None,
                       options: Optional[SatTierOptions] = None
                       ) -> WeightData:
    """Weight vectors + signal probabilities via the SAT counting ladder.

    ``n_patterns`` only sizes the *sampled fallback* arm of the ladder;
    the exact and counting arms ignore it.
    """
    if input_probs:
        raise ValueError(
            "sat weights assume uniform inputs; use bdd/sampled for "
            "non-uniform input_probs")
    opts = options or SatTierOptions()
    with trace_span("weights.sat", circuit=circuit.name):
        weights: Dict[str, np.ndarray] = {}
        signal: Dict[str, float] = {}
        _fill_inputs_and_constants(circuit, signal)
        for gate in circuit.topological_gates():
            if gate not in weights:
                _materialize_gate(circuit, gate, weights, signal,
                                  n_patterns, seed, opts)
        # Any node still missing a signal probability (e.g. a BUF chain
        # head counted as logic) was covered by _materialize_gate; the
        # loop above guarantees coverage of all gates.
        return WeightData(weights=weights, signal_prob=signal, source="sat")


def sat_signal_probabilities(circuit: Circuit,
                             nodes: Optional[Iterable[str]] = None, *,
                             seed: int = 0,
                             n_patterns: int = 1 << 16,
                             options: Optional[SatTierOptions] = None
                             ) -> Dict[str, float]:
    """Signal probabilities of selected ``nodes`` via the same ladder.

    ``nodes`` defaults to every node; restricting it keeps the work
    cone-local (only the named nodes' cones are touched).
    """
    opts = options or SatTierOptions()
    weights: Dict[str, np.ndarray] = {}
    signal: Dict[str, float] = {}
    _fill_inputs_and_constants(circuit, signal)
    wanted = list(nodes) if nodes is not None else circuit.topological_order()
    for name in wanted:
        if name in signal:
            continue
        _materialize_gate(circuit, name, weights, signal,
                          n_patterns, seed, opts)
    return {name: signal[name] for name in wanted}


def _fill_inputs_and_constants(circuit: Circuit,
                               signal: Dict[str, float]) -> None:
    for name in circuit.topological_order():
        node = circuit.node(name)
        if node.gate_type.is_input:
            signal[name] = 0.5
        elif node.gate_type.is_constant:
            signal[name] = float(node.gate_type is GateType.CONST1)


def _materialize_gate(circuit: Circuit, gate: str,
                      weights: Dict[str, np.ndarray],
                      signal: Dict[str, float],
                      n_patterns: int, seed: int,
                      opts: SatTierOptions) -> None:
    """Fill ``gate``'s weight vector and signal probability (ladder)."""
    cone = circuit.cone(gate)
    m = len(cone.inputs)
    if m <= opts.exact_threshold:
        # Exact enumeration: one bit-parallel sweep fills the whole cone.
        values = exhaustive_simulate(cone)
        cone_patterns = max(64, 1 << m)
        data = _weights_from_packs(cone, values, cone_patterns, "sat")
        for g, vec in data.weights.items():
            weights.setdefault(g, vec)
        for n, p in data.signal_prob.items():
            signal.setdefault(n, p)
        return
    if m <= opts.approx_threshold:
        try:
            _count_gate(cone, gate, weights, signal, seed, opts)
            return
        except SolverBudgetExceeded:
            pass  # degrade to the sampled arm below
    _sample_gate(circuit, cone, gate, weights, signal, n_patterns, seed)


def _count_gate(cone: Circuit, gate: str,
                weights: Dict[str, np.ndarray],
                signal: Dict[str, float],
                seed: int, opts: SatTierOptions) -> None:
    """XOR-hash counting over one gate's cone (approximate, budgeted)."""
    counter = ConeCounter(cone, epsilon=opts.epsilon, delta=opts.delta,
                          max_conflicts=opts.max_conflicts,
                          seed=_node_seed(seed, gate))
    fanins = cone.fanins(gate)
    k = len(fanins)
    counts = np.empty(1 << k, dtype=np.float64)
    for v in range(1 << k):
        cond = {fi: bool((v >> t) & 1) for t, fi in enumerate(fanins)}
        counts[v] = counter.count(cond).count
    # Normalizing tames the counter's per-cell noise and keeps the
    # vector a distribution; exact counts renormalize to themselves.
    mass = float(counts.sum())
    vec = (counts / mass if mass > 0
           else np.full(1 << k, 1.0 / (1 << k)))
    weights[gate] = vec
    # Pr(gate = 1) follows from the weight vector and the gate's truth
    # table (the gate is deterministic given its fanins) — no extra
    # counting call, and the pair stays self-consistent.
    gate_type = cone.node(gate).gate_type
    truth = np.asarray([evaluate_gate(gate_type,
                                      [(v >> t) & 1 for t in range(k)])
                        for v in range(1 << k)], dtype=np.float64)
    signal[gate] = float(np.dot(vec, truth))


def _sample_gate(circuit: Circuit, cone: Circuit, gate: str,
                 weights: Dict[str, np.ndarray],
                 signal: Dict[str, float],
                 n_patterns: int, seed: int) -> None:
    """Sampled fallback over one cone, seeded by the gate's name.

    Patterns are drawn per cone input from one node-seeded stream (in
    the full circuit's input order), so the estimate depends only on the
    cone — not on the enclosing region being materialized.
    """
    rng = np.random.default_rng(_node_seed(seed, gate))
    n_words = patterns.words_for_patterns(n_patterns)
    cone_inputs = set(cone.inputs)
    pack = {name: patterns.random_words(n_words, rng)
            for name in circuit.inputs if name in cone_inputs}
    values = simulate(cone, pack)
    tmask = patterns.tail_mask(n_patterns)
    fanins = cone.fanins(gate)
    k = len(fanins)
    fan = np.stack([values[fi][:n_words] for fi in fanins])
    fan[:, -1] &= tmask
    counts = np.empty(1 << k, dtype=np.int64)
    for v in range(1 << k):
        acc = np.full(n_words, np.uint64(0xFFFF_FFFF_FFFF_FFFF))
        acc[-1] &= tmask
        for t in range(k):
            sel = fan[t] if (v >> t) & 1 else np.bitwise_not(fan[t])
            np.bitwise_and(acc, sel, out=acc)
        counts[v] = patterns.popcount(acc)
    weights[gate] = counts / n_patterns
    out = values[gate][:n_words].copy()
    out[-1] &= tmask
    signal[gate] = patterns.popcount(out) / n_patterns
