"""Error-event correlation coefficients for reconvergent fanout (Sec. 4.1).

For a pair of wires ``v, w`` the paper defines four correlation
coefficients — one per combination of a ``0→1`` or ``1→0`` error on each
wire — as the joint probability of the two events divided by the product of
their marginals.  The :class:`ErrorCorrelationEngine` computes them:

* at a *fanout source*, two copies of the same node carry identical events:
  same-direction coefficient ``1 / Pr(event)``, cross-direction 0;
* wires with disjoint transitive fanin cones are independent: all four
  coefficients are 1;
* otherwise the topologically later wire is expanded through its gate using
  the Fig. 4 conditional expression, recursing on its fanins' coefficients.

All results are memoized; a configurable pair budget degrades gracefully to
independence (coefficient 1) if a pathological circuit would otherwise
require quadratically many pairs.

The *structural* part of the analysis — which wire pairs can be correlated
at all, and which wire of a pair is expanded — lives in
:class:`PairStructure` so that the scalar engine and the compiled
correlated kernel (:class:`repro.reliability.compiled_pass.
CompiledCorrelatedPass`) share one classification and one deterministic
pair-ordering contract and cannot diverge on iteration order.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Tuple

from ..circuit import Circuit, truth_table
from ..circuit.analysis import support_bitsets
from .error_propagation import (
    ErrorProbability,
    conditional_error_probability,
)
from .weights import WeightData


class PairStructure:
    """Eps-independent structural facts about wire pairs (Sec. 4.1).

    Bundles the transitive-fanin support bitsets, topological positions and
    logic levels of every wire, plus the **canonical pair-ordering
    contract**:

    * a coefficient key is always stored with the *topologically later*
      wire first — :meth:`canonical` maps both query orders
      ``(a, ea, b, eb)`` / ``(b, eb, a, ea)`` to the same key, so a pair
      has exactly one memo entry and one compiled coefficient row;
    * topological position (not the wire *name*) breaks the tie because the
      Fig. 4 expansion must recurse through the later wire's gate — its
      fanins, and the conditioning wire, are all strictly earlier, which is
      what makes the recursion well-founded and the resulting coefficient
      values independent of query order.

    Both the scalar :class:`ErrorCorrelationEngine` and the compiled
    correlated kernel build their classification on this object, so the two
    paths see the same canonical keys by construction.
    """

    def __init__(self, circuit: Circuit,
                 max_level_gap: Optional[int] = None):
        self.circuit = circuit
        self.max_level_gap = max_level_gap
        self.support = support_bitsets(circuit)
        order = circuit.topological_order()
        self.topo_pos: Dict[str, int] = {n: i for i, n in enumerate(order)}
        self.level: Dict[str, int] = {n: circuit.level(n) for n in order}

    def canonical(self, a: str, ea: int, b: str, eb: int
                  ) -> Tuple[str, int, str, int]:
        """The unique key form of a cross-wire pair: later wire first."""
        if self.topo_pos[a] < self.topo_pos[b]:
            return b, eb, a, ea
        return a, ea, b, eb

    def overlaps(self, a: str, b: str) -> bool:
        """Whether the two wires' transitive fanin cones intersect."""
        return bool(self.support[a] & self.support[b])

    def gapped(self, a: str, b: str) -> bool:
        """Whether the level-gap locality cap drops this (canonical) pair."""
        return (self.max_level_gap is not None
                and self.level[a] - self.level[b] > self.max_level_gap)


class ErrorCorrelationEngine:
    """Lazily computes the four error-event coefficients per wire pair.

    The engine is wired into the single-pass analysis: the ``errors``
    mapping is the analysis' evolving per-node table, filled in topological
    order, so every lookup the engine performs refers to already-processed
    nodes.  Instances are callables matching
    :data:`~repro.probability.error_propagation.CorrelationFn`.

    Parameters
    ----------
    circuit:
        Circuit under analysis.
    weights:
        Weight vectors/signal probabilities shared with the single pass.
    errors:
        Mutable mapping node → :class:`ErrorProbability`, owned by the
        single-pass analysis.
    eps_of:
        Callable giving each gate's failure probability.
    max_pairs:
        Memoization budget; beyond it new pairs return 1 (independence).
    max_level_gap:
        Optional locality cap: a coefficient is only expanded when the
        logic-level gap between the two wires is at most this value
        (longer-range pairs fall back to independence).  Correlation
        strength decays with the logic distance from the shared fanout
        stem, so a modest cap retains most of the Sec. 4.1 accuracy at a
        fraction of the cost on large circuits; ``None`` (default) expands
        every structurally correlated pair.
    """

    def __init__(self, circuit: Circuit,
                 weights: WeightData,
                 errors: Mapping[str, ErrorProbability],
                 eps_of,
                 max_pairs: int = 1_000_000,
                 max_level_gap: Optional[int] = None,
                 eps10_of=None):
        self.circuit = circuit
        self.weights = weights
        self.errors = errors
        self.eps_of = eps_of
        #: Optional asymmetric 1->0 local flip probability per gate.
        self.eps10_of = eps10_of
        self.max_pairs = max_pairs
        self.max_level_gap = max_level_gap
        #: Shared structural classification + canonical-ordering contract.
        self.structure = PairStructure(circuit, max_level_gap=max_level_gap)
        self._support = self.structure.support
        self._topo_pos = self.structure.topo_pos
        self._level = self.structure.level
        #: Memoized coefficients, keyed in *canonical* form only (see
        #: :meth:`PairStructure.canonical`): the topologically later wire
        #: first, so each cross-wire pair has exactly one entry.
        self._cache: Dict[Tuple[str, int, str, int], float] = {}
        self._truth_cache: Dict[str, tuple] = {}
        #: Set when the pair budget was exhausted at least once.
        self.budget_exceeded = False
        # Observability tallies (plain ints so the hot path stays cheap;
        # the single pass publishes them to repro.obs.metrics after a run).
        #: Lookups answered from the memo table.
        self.cache_hits = 0
        #: Pairs returned as independent because their fanin cones are
        #: disjoint (no correlation possible).
        self.pairs_independent = 0
        #: Pairs dropped to independence by the level-gap locality cap.
        self.pairs_dropped_level_gap = 0
        #: Pairs dropped to independence by the memo budget.
        self.pairs_dropped_budget = 0

    # ------------------------------------------------------------------
    def __call__(self, a: str, ea: int, b: str, eb: int) -> float:
        """Coefficient for the joint occurrence of ``a``'s and ``b``'s events."""
        if a == b:
            if ea != eb:
                return 0.0  # a wire cannot err in both directions at once
            p = float(self.errors[a].of_event(ea))
            # Cap at 1e9: a coefficient only ever multiplies probabilities,
            # so beyond this the products are ~0 either way, and finite
            # caps keep downstream float products overflow-free.
            return min(1.0 / p, 1e9) if p > 1e-9 else 1e9 if p > 0 else 1.0
        if not (self._support[a] & self._support[b]):
            self.pairs_independent += 1
            return 1.0
        a, ea, b, eb = self.structure.canonical(a, ea, b, eb)
        if self.structure.gapped(a, b):
            self.pairs_dropped_level_gap += 1
            return 1.0
        key = (a, ea, b, eb)
        cached = self._cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        if len(self._cache) >= self.max_pairs:
            self.budget_exceeded = True
            self.pairs_dropped_budget += 1
            return 1.0
        self._cache[key] = 1.0  # cycle guard; overwritten below
        result = self._expand(a, ea, b, eb)
        self._cache[key] = result
        return result

    # ------------------------------------------------------------------
    def _expand(self, a: str, ea: int, b: str, eb: int) -> float:
        """Expand the later wire ``a`` through its gate, conditioned on b."""
        node = self.circuit.node(a)
        if not node.gate_type.is_logic:
            # Overlapping supports with a distinct input/constant cannot
            # happen structurally; independent by convention.
            return 1.0
        marginal = self.errors[a].of_event(ea)
        if marginal <= 0.0:
            return 1.0
        p_b = self.errors[b].of_event(eb)
        if p_b <= 0.0:
            return 1.0
        truth = self._truth_of(a)
        conditional = conditional_error_probability(
            side=0 if ea == 0 else 1,
            truth=truth,
            weights=self.weights.weights[a],
            fanins=node.fanins,
            errors=self.errors,
            eps=self.eps_of(a),
            corr=self,
            cond=(b, eb),
            eps10=self.eps10_of(a) if self.eps10_of else None,
        )
        marginal = float(marginal)
        if marginal <= 1e-300:
            return 1.0  # degenerate marginal: any coefficient scales ~0
        coefficient = conditional / marginal
        # Feasibility cap: Pr(joint) <= min(marginals).  Denormal-tiny
        # marginals would overflow the reciprocal; the cap is irrelevant
        # there (any term using it is ~0), so skip it.
        largest = max(float(marginal), float(p_b))
        if largest > 1e-300:
            coefficient = min(coefficient, 1.0 / largest)
        return max(0.0, min(coefficient, 1e9))

    def _truth_of(self, gate: str) -> tuple:
        cached = self._truth_cache.get(gate)
        if cached is None:
            node = self.circuit.node(gate)
            cached = truth_table(node.gate_type, node.arity)
            self._truth_cache[gate] = cached
        return cached

    @property
    def pairs_computed(self) -> int:
        """Number of memoized (wire, event) pair coefficients."""
        return len(self._cache)

    # -- deterministic views / seeding ---------------------------------
    def coefficient_items(self) -> Iterator[
            Tuple[Tuple[str, int, str, int], float]]:
        """Memoized coefficients in a deterministic order.

        Keys are canonical (later wire first); iteration is sorted by wire
        ids — ``(a, ea, b, eb)`` lexicographically — so two engines that
        memoized the same pairs yield identical sequences regardless of the
        order the pairs were first queried in.
        """
        return iter(sorted(self._cache.items()))

    def seed(self, items: Mapping[Tuple[str, int, str, int], float]) -> None:
        """Pre-populate the memo table with already-computed coefficients.

        ``items`` must be keyed in canonical form (the compiled correlated
        kernel produces exactly that); subsequent lookups hit the memo and
        uncached pairs still fall back to the lazy scalar expansion, so a
        seeded engine behaves like one that already answered those queries.
        """
        self._cache.update(items)


class IndependentCorrelations:
    """A null correlation provider: every coefficient is 1.

    Plugging this into the single pass reproduces the plain Sec. 4
    algorithm (independence assumed at reconvergence), which the ablation
    benchmarks compare against the Sec. 4.1 corrected variant.
    """

    budget_exceeded = False
    pairs_computed = 0
    cache_hits = 0
    pairs_independent = 0
    pairs_dropped_level_gap = 0
    pairs_dropped_budget = 0

    def __call__(self, a: str, ea: int, b: str, eb: int) -> float:
        return 1.0
