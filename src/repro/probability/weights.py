"""Gate weight vectors: joint signal probability distributions of gate inputs.

The single-pass algorithm (paper Sec. 4) consumes, for every gate, a *weight
vector* ``W``: the probability of each error-free input combination.  For a
2-input gate ``W`` has four entries ``W00, W01, W10, W11`` (index bit ``t``
is fanin ``t``'s value).  Weight vectors depend only on circuit structure —
never on the gate failure probabilities — so they are computed once and
reused across reliability sweeps, exactly as the paper prescribes.

Three interchangeable sources are provided:

* :func:`bdd_weight_vectors` — exact, symbolic (the paper's BDD route);
* :func:`exhaustive_weight_vectors` — exact, via full-enumeration bit-parallel
  simulation (practical up to ~26 inputs);
* :func:`sampled_weight_vectors` — estimated from random-pattern simulation
  (the paper's other route; scales to any circuit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..bdd import BddSizeLimitError, CircuitBdds, build_node_bdds
from ..circuit import Circuit
from ..obs import trace_span
from ..sim import patterns
from ..sim.simulator import exhaustive_simulate, simulate


@dataclass
class WeightData:
    """Weight vectors for every gate plus per-node signal probabilities.

    Attributes
    ----------
    weights:
        ``weights[gate][v]`` is the probability that the error-free values
        of the gate's fanins equal the bit-pattern ``v`` (bit ``t`` of ``v``
        = fanin ``t``).  Entries sum to 1 per gate.
    signal_prob:
        ``signal_prob[node]`` = Pr[node = 1] error-free.  Needed for the
        final weighting ``delta_y = Pr(y=0) Pr(y01) + Pr(y=1) Pr(y10)``.
    source:
        Which estimator produced the data ("bdd", "exhaustive", "sampled").
    """

    weights: Dict[str, np.ndarray]
    signal_prob: Dict[str, float]
    source: str = "unknown"

    def weight(self, gate: str) -> np.ndarray:
        return self.weights[gate]

    def output_side_weight(self, gate: str, truth: tuple, side: int) -> float:
        """Total weight W(side) of input vectors producing output ``side``."""
        w = self.weights[gate]
        mask = np.asarray(truth, dtype=np.int8) == side
        return float(np.dot(w, mask))


def bdd_weight_vectors(circuit: Circuit,
                       bdds: Optional[CircuitBdds] = None,
                       input_probs: Optional[Dict[str, float]] = None
                       ) -> WeightData:
    """Exact weight vectors via BDDs (paper Sec. 4, symbolic route).

    May raise :class:`~repro.bdd.BddSizeLimitError` on circuits whose BDDs
    blow up; callers then fall back to :func:`sampled_weight_vectors`.
    """
    with trace_span("weights.bdd", circuit=circuit.name):
        if bdds is None:
            with trace_span("weights.bdd.build"):
                bdds = build_node_bdds(circuit)
        probs = [0.5] * bdds.manager.num_vars
        if input_probs:
            for name, p in input_probs.items():
                probs[bdds.var_index[name]] = p

        signal_prob = {name: bdds[name].probability(probs)
                       for name in circuit.topological_order()}
        weights: Dict[str, np.ndarray] = {}
        for gate in circuit.topological_gates():
            fanins = circuit.fanins(gate)
            k = len(fanins)
            vec = np.zeros(1 << k)
            for v in range(1 << k):
                acc = None
                for t, fi in enumerate(fanins):
                    lit = bdds[fi] if (v >> t) & 1 else ~bdds[fi]
                    acc = lit if acc is None else acc & lit
                vec[v] = acc.probability(probs) if acc is not None else 1.0
            weights[gate] = vec
        bdds.manager.publish_metrics()
        return WeightData(weights=weights, signal_prob=signal_prob,
                          source="bdd")


#: Soft cap on elements of one ``(2**k, k, words)`` selection tensor in
#: :func:`_weights_from_packs`; the word axis is chunked beyond it.
_PACK_CHUNK_ELEMENTS = 1 << 22


def _weights_from_packs(circuit: Circuit,
                        values: Dict[str, np.ndarray],
                        n_patterns: int,
                        source: str) -> WeightData:
    """Count joint input combinations per gate from simulated packs.

    All ``2**k`` joint counts of a gate are produced by one vectorized
    popcount over the stacked (and complemented) fanin packs, with the
    partial tail word pre-masked on both stacks so plain row popcounts are
    exact — no per-vector Python loop.
    """
    n_words = patterns.words_for_patterns(n_patterns)
    tmask = patterns.tail_mask(n_patterns)

    names = list(values)
    row = {name: i for i, name in enumerate(names)}
    masked = np.stack([values[name][:n_words] for name in names])
    masked[:, -1] &= tmask

    counts = np.zeros(len(names), dtype=np.int64)
    rows = max(1, _PACK_CHUNK_ELEMENTS // max(1, n_words))
    for start in range(0, len(names), rows):
        counts[start:start + rows] = patterns.rowwise_popcount(
            masked[start:start + rows])
    signal_prob = {name: int(counts[i]) / n_patterns
                   for i, name in enumerate(names)}

    # Batch gates by arity; for each subset S of fanins count the patterns
    # where every fanin in S is 1 (one AND-reduce + row popcount across the
    # whole gate batch), then recover the exact joint counts with an
    # integer superset Möbius transform:
    #   joint[v] = sum_{S >= v} (-1)^{|S|-|v|} m[S].
    by_arity: Dict[int, list] = {}
    for gate in circuit.topological_gates():
        by_arity.setdefault(len(circuit.fanins(gate)), []).append(gate)

    weights: Dict[str, np.ndarray] = {}
    for k, gates in by_arity.items():
        n_vec = 1 << k
        fanin_rows = np.asarray(
            [[row[fi] for fi in circuit.fanins(g)] for g in gates])
        chunk = max(1, _PACK_CHUNK_ELEMENTS // max(1, n_vec * n_words))
        for start in range(0, len(gates), chunk):
            batch = gates[start:start + chunk]
            rows_sl = fanin_rows[start:start + chunk]
            fan = masked[rows_sl]                            # (m, k, W)
            m = np.empty((len(batch), n_vec), dtype=np.int64)
            m[:, 0] = n_patterns
            # Subset-AND packs built by peeling the lowest set bit, so
            # each multi-bit subset costs one AND + one popcount; the
            # single-bit counts were already computed for signal_prob.
            and_packs: Dict[int, np.ndarray] = {}
            for subset in range(1, n_vec):
                low_bit = subset & -subset
                t = low_bit.bit_length() - 1
                rest = subset ^ low_bit
                if rest == 0:
                    m[:, subset] = counts[rows_sl[:, t]]
                    if n_vec > 2:
                        and_packs[subset] = fan[:, t, :]
                else:
                    p = np.bitwise_and(and_packs[rest], fan[:, t, :])
                    and_packs[subset] = p
                    m[:, subset] = patterns.rowwise_popcount(p)
            joint = m
            for t in range(k):
                bit = 1 << t
                low = [v for v in range(n_vec) if not v & bit]
                joint[:, low] -= joint[:, [v | bit for v in low]]
            vecs = joint / n_patterns
            for i, gate in enumerate(batch):
                weights[gate] = vecs[i]
    return WeightData(weights=weights, signal_prob=signal_prob, source=source)


def exhaustive_weight_vectors(circuit: Circuit) -> WeightData:
    """Exact weight vectors by enumerating all input vectors (<= 26 inputs)."""
    with trace_span("weights.exhaustive", circuit=circuit.name):
        values = exhaustive_simulate(circuit)
        n_patterns = max(64, 1 << len(circuit.inputs))
        return _weights_from_packs(circuit, values, n_patterns, "exhaustive")


def sampled_weight_vectors(circuit: Circuit,
                           n_patterns: int = 1 << 16,
                           rng: Optional[np.random.Generator] = None,
                           seed: int = 0,
                           input_probs: Optional[Dict[str, float]] = None
                           ) -> WeightData:
    """Weight vectors estimated from random-pattern simulation."""
    with trace_span("weights.sampled", circuit=circuit.name,
                    n_patterns=n_patterns):
        rng = rng if rng is not None else np.random.default_rng(seed)
        n_words = patterns.words_for_patterns(n_patterns)
        pack = patterns.random_pack(circuit.inputs, n_words, rng, input_probs)
        values = simulate(circuit, pack)
        return _weights_from_packs(circuit, values, n_patterns, "sampled")


def compute_weights(circuit: Circuit,
                    method: str = "auto",
                    n_patterns: int = 1 << 16,
                    seed: int = 0,
                    bdd_node_limit: int = 500_000,
                    input_probs: Optional[Dict[str, float]] = None,
                    cache_dir: Optional[str] = None) -> WeightData:
    """Pick a weight-vector estimator suited to the circuit size.

    ``method`` is one of ``"auto"``, ``"bdd"``, ``"exhaustive"``,
    ``"sampled"``, ``"sat"``.  Auto prefers exact enumeration for small
    input counts, then BDDs (abandoning them if they exceed
    ``bdd_node_limit`` nodes), then sampling.  A non-uniform
    ``input_probs`` distribution rules out the exhaustive
    (uniform-enumeration) and sat (unweighted-counting) routes.  The
    ``sat`` tier (see docs/scaling.md) grades per cone: exact
    enumeration for small cones, XOR-hash approximate model counting in
    the mid range, per-cone sampling beyond.

    ``cache_dir``, when given, consults a persistent disk cache first
    (see :mod:`repro.probability.weight_cache`) keyed by the circuit's
    structural hash plus ``(method, seed, n_patterns, input_probs)``;
    stale or corrupt entries are recomputed and overwritten.
    """
    if cache_dir is not None:
        from . import weight_cache
        cached = weight_cache.load_weights(
            cache_dir, circuit, method, n_patterns, seed, input_probs)
        if cached is not None:
            return cached
        data = _compute_weights(circuit, method, n_patterns, seed,
                                bdd_node_limit, input_probs)
        weight_cache.store_weights(cache_dir, circuit, method, n_patterns,
                                   seed, input_probs, data)
        return data
    return _compute_weights(circuit, method, n_patterns, seed,
                            bdd_node_limit, input_probs)


def _compute_weights(circuit: Circuit, method: str, n_patterns: int,
                     seed: int, bdd_node_limit: int,
                     input_probs: Optional[Dict[str, float]]) -> WeightData:
    if method == "bdd":
        return bdd_weight_vectors(circuit, input_probs=input_probs)
    if method == "exhaustive":
        if input_probs:
            raise ValueError(
                "exhaustive weights assume uniform inputs; use bdd/sampled")
        return exhaustive_weight_vectors(circuit)
    if method == "sampled":
        return sampled_weight_vectors(circuit, n_patterns=n_patterns,
                                      seed=seed, input_probs=input_probs)
    if method == "sat":
        from .sat_weights import sat_weight_vectors
        return sat_weight_vectors(circuit, n_patterns=n_patterns, seed=seed,
                                  input_probs=input_probs)
    if method != "auto":
        raise ValueError(f"unknown weight method {method!r}")
    if len(circuit.inputs) <= 20 and not input_probs:
        return exhaustive_weight_vectors(circuit)
    try:
        from ..bdd import BddManager
        bdds = build_node_bdds(circuit, BddManager(node_limit=bdd_node_limit))
        return bdd_weight_vectors(circuit, bdds=bdds,
                                  input_probs=input_probs)
    except BddSizeLimitError:
        return sampled_weight_vectors(circuit, n_patterns=n_patterns,
                                      seed=seed, input_probs=input_probs)
