"""Gate weight vectors: joint signal probability distributions of gate inputs.

The single-pass algorithm (paper Sec. 4) consumes, for every gate, a *weight
vector* ``W``: the probability of each error-free input combination.  For a
2-input gate ``W`` has four entries ``W00, W01, W10, W11`` (index bit ``t``
is fanin ``t``'s value).  Weight vectors depend only on circuit structure —
never on the gate failure probabilities — so they are computed once and
reused across reliability sweeps, exactly as the paper prescribes.

Three interchangeable sources are provided:

* :func:`bdd_weight_vectors` — exact, symbolic (the paper's BDD route);
* :func:`exhaustive_weight_vectors` — exact, via full-enumeration bit-parallel
  simulation (practical up to ~26 inputs);
* :func:`sampled_weight_vectors` — estimated from random-pattern simulation
  (the paper's other route; scales to any circuit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..bdd import BddSizeLimitError, CircuitBdds, build_node_bdds
from ..circuit import Circuit
from ..obs import trace_span
from ..sim import patterns
from ..sim.simulator import exhaustive_simulate, simulate


@dataclass
class WeightData:
    """Weight vectors for every gate plus per-node signal probabilities.

    Attributes
    ----------
    weights:
        ``weights[gate][v]`` is the probability that the error-free values
        of the gate's fanins equal the bit-pattern ``v`` (bit ``t`` of ``v``
        = fanin ``t``).  Entries sum to 1 per gate.
    signal_prob:
        ``signal_prob[node]`` = Pr[node = 1] error-free.  Needed for the
        final weighting ``delta_y = Pr(y=0) Pr(y01) + Pr(y=1) Pr(y10)``.
    source:
        Which estimator produced the data ("bdd", "exhaustive", "sampled").
    """

    weights: Dict[str, np.ndarray]
    signal_prob: Dict[str, float]
    source: str = "unknown"

    def weight(self, gate: str) -> np.ndarray:
        return self.weights[gate]

    def output_side_weight(self, gate: str, truth: tuple, side: int) -> float:
        """Total weight W(side) of input vectors producing output ``side``."""
        w = self.weights[gate]
        return float(sum(w[v] for v in range(len(w)) if truth[v] == side))


def bdd_weight_vectors(circuit: Circuit,
                       bdds: Optional[CircuitBdds] = None,
                       input_probs: Optional[Dict[str, float]] = None
                       ) -> WeightData:
    """Exact weight vectors via BDDs (paper Sec. 4, symbolic route).

    May raise :class:`~repro.bdd.BddSizeLimitError` on circuits whose BDDs
    blow up; callers then fall back to :func:`sampled_weight_vectors`.
    """
    with trace_span("weights.bdd", circuit=circuit.name):
        if bdds is None:
            with trace_span("weights.bdd.build"):
                bdds = build_node_bdds(circuit)
        probs = [0.5] * bdds.manager.num_vars
        if input_probs:
            for name, p in input_probs.items():
                probs[bdds.var_index[name]] = p

        signal_prob = {name: bdds[name].probability(probs)
                       for name in circuit.topological_order()}
        weights: Dict[str, np.ndarray] = {}
        for gate in circuit.topological_gates():
            fanins = circuit.fanins(gate)
            k = len(fanins)
            vec = np.zeros(1 << k)
            for v in range(1 << k):
                acc = None
                for t, fi in enumerate(fanins):
                    lit = bdds[fi] if (v >> t) & 1 else ~bdds[fi]
                    acc = lit if acc is None else acc & lit
                vec[v] = acc.probability(probs) if acc is not None else 1.0
            weights[gate] = vec
        bdds.manager.publish_metrics()
        return WeightData(weights=weights, signal_prob=signal_prob,
                          source="bdd")


def _weights_from_packs(circuit: Circuit,
                        values: Dict[str, np.ndarray],
                        n_patterns: int,
                        source: str) -> WeightData:
    """Count joint input combinations per gate from simulated packs."""
    signal_prob = {
        name: patterns.masked_popcount(pack, n_patterns) / n_patterns
        for name, pack in values.items()}
    weights: Dict[str, np.ndarray] = {}
    for gate in circuit.topological_gates():
        fanins = circuit.fanins(gate)
        k = len(fanins)
        vec = np.zeros(1 << k)
        for v in range(1 << k):
            acc = None
            for t, fi in enumerate(fanins):
                pack = values[fi]
                word = pack if (v >> t) & 1 else np.bitwise_not(pack)
                acc = word.copy() if acc is None else np.bitwise_and(acc, word)
            count = patterns.masked_popcount(acc, n_patterns)
            vec[v] = count / n_patterns
        weights[gate] = vec
    return WeightData(weights=weights, signal_prob=signal_prob, source=source)


def exhaustive_weight_vectors(circuit: Circuit) -> WeightData:
    """Exact weight vectors by enumerating all input vectors (<= 26 inputs)."""
    with trace_span("weights.exhaustive", circuit=circuit.name):
        values = exhaustive_simulate(circuit)
        n_patterns = max(64, 1 << len(circuit.inputs))
        return _weights_from_packs(circuit, values, n_patterns, "exhaustive")


def sampled_weight_vectors(circuit: Circuit,
                           n_patterns: int = 1 << 16,
                           rng: Optional[np.random.Generator] = None,
                           seed: int = 0,
                           input_probs: Optional[Dict[str, float]] = None
                           ) -> WeightData:
    """Weight vectors estimated from random-pattern simulation."""
    with trace_span("weights.sampled", circuit=circuit.name,
                    n_patterns=n_patterns):
        rng = rng if rng is not None else np.random.default_rng(seed)
        n_words = patterns.words_for_patterns(n_patterns)
        pack = patterns.random_pack(circuit.inputs, n_words, rng, input_probs)
        values = simulate(circuit, pack)
        return _weights_from_packs(circuit, values, n_patterns, "sampled")


def compute_weights(circuit: Circuit,
                    method: str = "auto",
                    n_patterns: int = 1 << 16,
                    seed: int = 0,
                    bdd_node_limit: int = 500_000,
                    input_probs: Optional[Dict[str, float]] = None
                    ) -> WeightData:
    """Pick a weight-vector estimator suited to the circuit size.

    ``method`` is one of ``"auto"``, ``"bdd"``, ``"exhaustive"``,
    ``"sampled"``.  Auto prefers exact enumeration for small input counts,
    then BDDs (abandoning them if they exceed ``bdd_node_limit`` nodes),
    then sampling.  A non-uniform ``input_probs`` distribution rules out
    the exhaustive (uniform-enumeration) route.
    """
    if method == "bdd":
        return bdd_weight_vectors(circuit, input_probs=input_probs)
    if method == "exhaustive":
        if input_probs:
            raise ValueError(
                "exhaustive weights assume uniform inputs; use bdd/sampled")
        return exhaustive_weight_vectors(circuit)
    if method == "sampled":
        return sampled_weight_vectors(circuit, n_patterns=n_patterns,
                                      seed=seed, input_probs=input_probs)
    if method != "auto":
        raise ValueError(f"unknown weight method {method!r}")
    if len(circuit.inputs) <= 20 and not input_probs:
        return exhaustive_weight_vectors(circuit)
    try:
        from ..bdd import BddManager
        bdds = build_node_bdds(circuit, BddManager(node_limit=bdd_node_limit))
        return bdd_weight_vectors(circuit, bdds=bdds,
                                  input_probs=input_probs)
    except BddSizeLimitError:
        return sampled_weight_vectors(circuit, n_patterns=n_patterns,
                                      seed=seed, input_probs=input_probs)
