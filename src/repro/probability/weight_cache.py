"""Persistent disk cache for weight vectors.

Weight vectors depend only on circuit structure and the estimator
parameters — never on gate failure probabilities — which makes them ideal
to cache across processes: an eps sweep, a Monte Carlo cross-check and a
report over the same netlist can all reuse one weight computation.

Entries are ``.npz`` files under a user-supplied directory, keyed by a
SHA-256 digest over

* the circuit's *structural hash* (topological ``name|type|fanins`` lines
  plus the input/output interface — see :func:`structural_hash`), and
* the estimator parameters ``(method, seed, n_patterns, input_probs)``.

Every entry embeds its full key manifest; :func:`load_weights` re-verifies
it on read, so a stale file (e.g. a netlist edited in place under the same
name), a truncated write, or a corrupt archive is treated as a miss and
recomputed — never an exception.  Writes go through a temp file +
``os.replace`` so concurrent readers cannot observe partial entries.

A process-local **memory tier** sits in front of the disk files: decoded
:class:`WeightData` objects are kept in an LRU keyed by entry path, each
remembered together with the file's ``(mtime_ns, size)`` fingerprint.  A
memory hit whose backing file changed (or vanished) is invalidated and
falls through to the disk read, so the corruption/staleness guarantees
above survive unchanged — the tier only skips redundant ``.npz`` decoding.
Long-lived services (the :mod:`repro.engine` session registry) can
:func:`pin_weights` hot circuits so eviction never touches them.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

from ..circuit import Circuit
from ..obs import metrics as obs_metrics
from ..obs import trace_span
from .weights import WeightData

#: Bump when the on-disk layout changes; old entries become misses.
CACHE_FORMAT_VERSION = 1


class MemoryTier:
    """Process-local LRU of decoded weight entries over the disk tier.

    Entries are keyed by their disk path and validated on every read
    against the file's ``(mtime_ns, size)`` fingerprint, so the memory
    tier can never serve data the disk tier would reject.  Pinned paths
    are exempt from LRU eviction (but not from freshness invalidation).
    """

    def __init__(self, capacity: int = 32):
        self.capacity = capacity
        self._entries: "OrderedDict[str, Tuple[Tuple[int, int], WeightData]]"\
            = OrderedDict()
        self._pinned = set()

    @staticmethod
    def _fingerprint(path: str) -> Optional[Tuple[int, int]]:
        try:
            st = os.stat(path)
        except OSError:
            return None
        return (st.st_mtime_ns, st.st_size)

    def get(self, path: str) -> Optional[WeightData]:
        item = self._entries.get(path)
        if item is None:
            return None
        if self._fingerprint(path) != item[0]:
            # Backing file changed or vanished: the decoded copy is stale.
            del self._entries[path]
            return None
        self._entries.move_to_end(path)
        return item[1]

    def put(self, path: str, data: WeightData) -> None:
        fp = self._fingerprint(path)
        if fp is None:
            return
        self._entries[path] = (fp, data)
        self._entries.move_to_end(path)
        while len(self._entries) > self.capacity:
            victim = next((p for p in self._entries
                           if p not in self._pinned), None)
            if victim is None:
                break  # everything is pinned; let the tier overfill
            del self._entries[victim]

    def pin(self, path: str) -> None:
        self._pinned.add(path)

    def unpin(self, path: str) -> None:
        self._pinned.discard(path)

    def clear(self) -> None:
        self._entries.clear()
        self._pinned.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def pinned_count(self) -> int:
        return len(self._pinned)


#: The process-wide memory tier consulted by :func:`load_weights`.
_MEMORY = MemoryTier()


def memory_tier() -> MemoryTier:
    """The process-wide memory tier (for inspection, pinning, clearing)."""
    return _MEMORY


def pin_weights(cache_dir: str, circuit: Circuit, method: str,
                n_patterns: int, seed: int,
                input_probs: Optional[Dict[str, float]] = None) -> str:
    """Exempt one entry from memory-tier eviction; returns its path.

    Pinning does not load anything by itself — the next
    :func:`load_weights` (or :func:`store_weights`) populates the tier,
    after which the decoded entry stays resident until
    :func:`unpin_weights`.
    """
    path = _entry_path(cache_dir,
                       cache_key(circuit, method, n_patterns, seed,
                                 input_probs))
    _MEMORY.pin(path)
    return path


def unpin_weights(path: str) -> None:
    """Release a pin taken by :func:`pin_weights`."""
    _MEMORY.unpin(path)


def structural_hash(circuit: Circuit) -> str:
    """SHA-256 digest of the circuit's structure (not its name).

    Two circuits hash equal iff they have the same inputs (in order), the
    same outputs (in order), and the same gates — name, type and ordered
    fanin list — in topological order.  Gate failure probabilities, weight
    sources and other analysis state do not participate.
    """
    h = hashlib.sha256()
    h.update(("inputs:" + ",".join(circuit.inputs) + "\n").encode())
    h.update(("outputs:" + ",".join(circuit.outputs) + "\n").encode())
    for name in circuit.topological_order():
        node = circuit.node(name)
        line = f"{name}|{node.gate_type.value}|{','.join(node.fanins)}\n"
        h.update(line.encode())
    return h.hexdigest()


def cache_key(circuit: Circuit, method: str, n_patterns: int, seed: int,
              input_probs: Optional[Dict[str, float]] = None) -> str:
    """Digest naming the cache entry for one (circuit, parameters) pair."""
    manifest = _manifest(structural_hash(circuit), method, n_patterns, seed,
                         input_probs)
    return hashlib.sha256(manifest.encode()).hexdigest()


def _manifest(circuit_hash: str, method: str, n_patterns: int, seed: int,
              input_probs: Optional[Dict[str, float]]) -> str:
    return json.dumps({
        "format": CACHE_FORMAT_VERSION,
        "circuit_hash": circuit_hash,
        "method": method,
        "n_patterns": int(n_patterns),
        "seed": int(seed),
        "input_probs": sorted((input_probs or {}).items()),
    }, sort_keys=True)


def _entry_path(cache_dir: str, key: str) -> str:
    return os.path.join(cache_dir, f"weights-{key}.npz")


def _decode_weight_archive(path: str, expected: str) -> WeightData:
    """Decode one weight-entry archive, re-verifying its manifest.

    Raises on any corruption/mismatch; callers turn that into a miss.
    """
    with np.load(path, allow_pickle=False) as archive:
        if bytes(archive["manifest"].tobytes()).decode() != expected:
            raise ValueError("manifest mismatch")
        names = [str(n) for n in archive["gate_names"]]
        nodes = [str(n) for n in archive["node_names"]]
        signal = archive["signal_prob"].astype(np.float64)
        if len(nodes) != len(signal):
            raise ValueError("signal_prob length mismatch")
        flat = archive["weights_flat"].astype(np.float64)
        lengths = archive["weights_len"].astype(np.int64)
        if len(lengths) != len(names) or lengths.sum() != len(flat):
            raise ValueError("weight vector layout mismatch")
        offsets = np.concatenate(([0], np.cumsum(lengths)))
        weights = {}
        for i, gate in enumerate(names):
            vec = flat[offsets[i]:offsets[i + 1]].copy()
            if len(vec) == 0 or len(vec) & (len(vec) - 1):
                raise ValueError("weight vector not 2**k long")
            weights[gate] = vec
        source = str(archive["source"][()])
    return WeightData(
        weights=weights,
        signal_prob={n: float(p) for n, p in zip(nodes, signal)},
        source=source,
    )


def _encode_weight_archive(manifest: str, data: WeightData) -> Dict[str, np.ndarray]:
    gate_names = list(data.weights)
    node_names = list(data.signal_prob)
    vectors = [np.asarray(data.weights[g], dtype=np.float64)
               for g in gate_names]
    return {
        "manifest": np.frombuffer(manifest.encode(), dtype=np.uint8),
        "gate_names": np.asarray(gate_names),
        "node_names": np.asarray(node_names),
        "signal_prob": np.asarray(
            [data.signal_prob[n] for n in node_names], dtype=np.float64),
        "source": np.asarray(data.source),
        "weights_flat": (np.concatenate(vectors) if vectors
                         else np.empty(0, dtype=np.float64)),
        "weights_len": np.asarray([len(v) for v in vectors],
                                  dtype=np.int64),
    }


def _atomic_savez(cache_dir: str, path: str,
                  arrays: Dict[str, np.ndarray]) -> None:
    fd, tmp = tempfile.mkstemp(suffix=".npz.tmp", dir=cache_dir)
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez(fh, **arrays)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load_weights(cache_dir: str, circuit: Circuit, method: str,
                 n_patterns: int, seed: int,
                 input_probs: Optional[Dict[str, float]] = None
                 ) -> Optional[WeightData]:
    """Return the cached :class:`WeightData`, or None on miss.

    Corrupt archives, layout-version skew, and manifest mismatches all
    read as misses (the caller recomputes and overwrites); only the
    file-system errors of an *existing, healthy* directory propagate.
    """
    expected = _manifest(structural_hash(circuit), method, n_patterns,
                         seed, input_probs)
    key = hashlib.sha256(expected.encode()).hexdigest()
    path = _entry_path(cache_dir, key)
    resident = _MEMORY.get(path)
    if resident is not None:
        _note("weights_cache.memory_hits", circuit)
        return resident
    if not os.path.exists(path):
        _note("weights_cache.misses", circuit)
        return None
    with trace_span("weights_cache.load", circuit=circuit.name):
        try:
            data = _decode_weight_archive(path, expected)
        except Exception:
            # Anything unreadable is a stale/corrupt entry: miss, not crash.
            _note("weights_cache.corrupt", circuit)
            return None
    _note("weights_cache.hits", circuit)
    _MEMORY.put(path, data)
    return data


def store_weights(cache_dir: str, circuit: Circuit, method: str,
                  n_patterns: int, seed: int,
                  input_probs: Optional[Dict[str, float]],
                  data: WeightData) -> None:
    """Atomically persist one weight computation."""
    manifest = _manifest(structural_hash(circuit), method, n_patterns, seed,
                         input_probs)
    key = hashlib.sha256(manifest.encode()).hexdigest()
    os.makedirs(cache_dir, exist_ok=True)
    arrays = _encode_weight_archive(manifest, data)
    path = _entry_path(cache_dir, key)
    with trace_span("weights_cache.store", circuit=circuit.name):
        _atomic_savez(cache_dir, path, arrays)
    _MEMORY.put(path, data)
    _note("weights_cache.stores", circuit)


# ======================================================================
# Per-cone weight entries (lazy scaling tier)
# ======================================================================
#
# The lazy weight store (repro.scale.LazyWeightData) materializes weight
# vectors one output cone at a time, and each materialized cone is worth
# persisting on its own.  Cone entries are *partial* views of a circuit,
# so they live in a dedicated key namespace — a ``conewt-`` filename
# prefix plus a ``kind: "cone_weights"`` manifest field — and can never
# shadow (or be shadowed by) the full-circuit ``weights-`` entries even
# if a digest ever collided: the embedded manifest is re-verified on
# every read and the two manifest schemas are disjoint.

#: Bump when the per-cone entry layout changes; old entries become misses.
CONE_WEIGHTS_FORMAT_VERSION = 1


def _cone_manifest(circuit_hash: str, cone_root: str, method: str,
                   n_patterns: int, seed: int,
                   input_probs: Optional[Dict[str, float]]) -> str:
    return json.dumps({
        "format": CONE_WEIGHTS_FORMAT_VERSION,
        "kind": "cone_weights",
        "circuit_hash": circuit_hash,
        "cone_root": cone_root,
        "method": method,
        "n_patterns": int(n_patterns),
        "seed": int(seed),
        "input_probs": sorted((input_probs or {}).items()),
    }, sort_keys=True)


def _cone_entry_path(cache_dir: str, key: str) -> str:
    return os.path.join(cache_dir, f"conewt-{key}.npz")


def load_cone_weights(cache_dir: str, circuit: Circuit, cone_root: str,
                      method: str, n_patterns: int, seed: int,
                      input_probs: Optional[Dict[str, float]] = None
                      ) -> Optional[WeightData]:
    """Cached weights for one cone of ``circuit``, or None on miss.

    ``circuit`` is the *full* circuit the cone was cut from (its
    structural hash keys the entry, so an edited netlist invalidates all
    its cones at once); ``cone_root`` names the node whose transitive
    fanin the entry covers.  Same corruption policy as
    :func:`load_weights`.
    """
    expected = _cone_manifest(structural_hash(circuit), cone_root, method,
                              n_patterns, seed, input_probs)
    key = hashlib.sha256(expected.encode()).hexdigest()
    path = _cone_entry_path(cache_dir, key)
    resident = _MEMORY.get(path)
    if resident is not None:
        _note("conewt_cache.memory_hits", circuit)
        return resident
    if not os.path.exists(path):
        _note("conewt_cache.misses", circuit)
        return None
    with trace_span("conewt_cache.load", circuit=circuit.name):
        try:
            data = _decode_weight_archive(path, expected)
        except Exception:
            _note("conewt_cache.corrupt", circuit)
            return None
    _note("conewt_cache.hits", circuit)
    _MEMORY.put(path, data)
    return data


def store_cone_weights(cache_dir: str, circuit: Circuit, cone_root: str,
                       method: str, n_patterns: int, seed: int,
                       input_probs: Optional[Dict[str, float]],
                       data: WeightData) -> None:
    """Atomically persist one materialized cone's weights."""
    manifest = _cone_manifest(structural_hash(circuit), cone_root, method,
                              n_patterns, seed, input_probs)
    key = hashlib.sha256(manifest.encode()).hexdigest()
    os.makedirs(cache_dir, exist_ok=True)
    arrays = _encode_weight_archive(manifest, data)
    path = _cone_entry_path(cache_dir, key)
    with trace_span("conewt_cache.store", circuit=circuit.name):
        _atomic_savez(cache_dir, path, arrays)
    _MEMORY.put(path, data)
    _note("conewt_cache.stores", circuit)


def _note(counter: str, circuit: Circuit) -> None:
    if obs_metrics.is_enabled():
        obs_metrics.inc(counter, circuit=circuit.name)


# ======================================================================
# Correlation-plan cache
# ======================================================================
#
# The compiled correlated kernel's pair-discovery walk (which wire pairs
# get a coefficient row) depends only on circuit structure and the two
# correlation knobs — never on eps — so its result is cached the same way
# as weight vectors: an ``.npz`` per (structure, max_level_gap, max_pairs)
# key holding the canonical pair table as an ``(n, 4)`` int array of
# ``(later_slot, event, earlier_slot, event)`` rows over the topological
# order, or an explicit "unsupported" marker when the budget was exceeded
# (so repeat runs skip straight to the scalar fallback).

#: Bump when the correlation-plan layout changes; old entries become misses.
CORRELATION_PLAN_FORMAT_VERSION = 1


def _corr_manifest(circuit_hash: str, max_level_gap: Optional[int],
                   max_pairs: int) -> str:
    return json.dumps({
        "format": CORRELATION_PLAN_FORMAT_VERSION,
        "kind": "correlation_plan",
        "circuit_hash": circuit_hash,
        "max_level_gap": max_level_gap,
        "max_pairs": int(max_pairs),
    }, sort_keys=True)


def _corr_entry_path(cache_dir: str, key: str) -> str:
    return os.path.join(cache_dir, f"corrplan-{key}.npz")


def load_correlation_plan(cache_dir: str, circuit: Circuit,
                          max_level_gap: Optional[int],
                          max_pairs: int) -> Optional[dict]:
    """Return ``{"unsupported": bool, "pairs": (n, 4) int array}`` or None.

    Same corruption policy as :func:`load_weights`: anything unreadable or
    with a mismatched manifest is a miss, never an exception.
    """
    expected = _corr_manifest(structural_hash(circuit), max_level_gap,
                              max_pairs)
    key = hashlib.sha256(expected.encode()).hexdigest()
    path = _corr_entry_path(cache_dir, key)
    if not os.path.exists(path):
        _note("corrplan_cache.misses", circuit)
        return None
    with trace_span("corrplan_cache.load", circuit=circuit.name):
        try:
            with np.load(path, allow_pickle=False) as archive:
                if bytes(archive["manifest"].tobytes()).decode() != expected:
                    raise ValueError("manifest mismatch")
                unsupported = bool(archive["unsupported"][()])
                pairs = archive["pairs"].astype(np.int64)
                if pairs.ndim != 2 or pairs.shape[1] != 4:
                    raise ValueError("pair table layout mismatch")
                n_nodes = len(circuit.topological_order())
                if len(pairs) and (pairs[:, (0, 2)].min() < 0
                                   or pairs[:, (0, 2)].max() >= n_nodes):
                    raise ValueError("pair slot out of range")
        except Exception:
            _note("corrplan_cache.corrupt", circuit)
            return None
    _note("corrplan_cache.hits", circuit)
    return {"unsupported": unsupported, "pairs": pairs}


# ======================================================================
# Workspace-state entries (durable engine warm state)
# ======================================================================
#
# The serve tier checkpoints named edit sessions by serializing each
# session's :class:`~repro.incremental.CircuitWorkspace` — mutated
# netlist, simulation packs, weight vectors, eps state, typed edit log —
# into one ``.npz`` per session name, stored alongside the weight and
# correlation-plan entries and following the same rules: a full manifest
# embedded in the archive and re-verified on read, atomic
# temp-file + ``os.replace`` writes, and corruption treated as a miss
# (the engine then rebuilds cold), never an exception.

#: Bump when the workspace-state layout changes; old entries become misses.
WORKSPACE_STATE_FORMAT_VERSION = 1


def _workspace_entry_path(state_dir: str, session_name: str) -> str:
    digest = hashlib.sha256(session_name.encode()).hexdigest()[:24]
    return os.path.join(state_dir, f"wstate-{digest}.npz")


def store_workspace_state(state_dir: str, session_name: str,
                          manifest: dict, arrays: dict) -> str:
    """Atomically persist one workspace state; returns the entry path.

    ``manifest``/``arrays`` come from ``CircuitWorkspace.to_state()``;
    the session name is stamped into the stored manifest so an entry can
    never be replayed under a different name (hash-prefix collisions
    read as misses instead of resurrecting the wrong session).
    """
    manifest = dict(manifest)
    manifest["session"] = session_name
    blob = json.dumps(manifest, sort_keys=True)
    payload = dict(arrays)
    payload["manifest"] = np.frombuffer(blob.encode(), dtype=np.uint8)
    os.makedirs(state_dir, exist_ok=True)
    path = _workspace_entry_path(state_dir, session_name)
    with trace_span("wstate_cache.store", session=session_name):
        fd, tmp = tempfile.mkstemp(suffix=".npz.tmp", dir=state_dir)
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, **payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    if obs_metrics.is_enabled():
        obs_metrics.inc("wstate_cache.stores", session=session_name)
    return path


def load_workspace_state(state_dir: str, session_name: str
                         ) -> Optional[Tuple[dict, dict]]:
    """Return ``(manifest, arrays)`` for one session, or None on miss.

    Same policy as :func:`load_weights`: a missing file, a truncated or
    corrupt archive, a format-version skew, or a manifest naming a
    different session all read as misses.
    """
    path = _workspace_entry_path(state_dir, session_name)
    if not os.path.exists(path):
        return None
    with trace_span("wstate_cache.load", session=session_name):
        try:
            with np.load(path, allow_pickle=False) as archive:
                manifest = json.loads(
                    bytes(archive["manifest"].tobytes()).decode())
                if manifest.get("kind") != "workspace_state":
                    raise ValueError("not a workspace-state entry")
                if manifest.get("format") != WORKSPACE_STATE_FORMAT_VERSION:
                    raise ValueError("format version skew")
                if manifest.get("session") != session_name:
                    raise ValueError("session name mismatch")
                arrays = {name: archive[name].copy()
                          for name in ("packs", "weights_flat",
                                       "weights_len", "signal_prob")}
        except Exception:
            if obs_metrics.is_enabled():
                obs_metrics.inc("wstate_cache.corrupt",
                                session=session_name)
            return None
    if obs_metrics.is_enabled():
        obs_metrics.inc("wstate_cache.hits", session=session_name)
    return manifest, arrays


def store_correlation_plan(cache_dir: str, circuit: Circuit,
                           max_level_gap: Optional[int], max_pairs: int,
                           pairs=None, unsupported: bool = False) -> None:
    """Atomically persist one pair-discovery result (or its refusal)."""
    manifest = _corr_manifest(structural_hash(circuit), max_level_gap,
                              max_pairs)
    key = hashlib.sha256(manifest.encode()).hexdigest()
    os.makedirs(cache_dir, exist_ok=True)
    table = (np.asarray(pairs, dtype=np.int64).reshape(-1, 4)
             if pairs is not None and len(pairs)
             else np.empty((0, 4), dtype=np.int64))
    arrays = {
        "manifest": np.frombuffer(manifest.encode(), dtype=np.uint8),
        "unsupported": np.asarray(bool(unsupported)),
        "pairs": table,
    }
    with trace_span("corrplan_cache.store", circuit=circuit.name):
        fd, tmp = tempfile.mkstemp(suffix=".npz.tmp", dir=cache_dir)
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, **arrays)
            os.replace(tmp, _corr_entry_path(cache_dir, key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    _note("corrplan_cache.stores", circuit)
