"""Core error-propagation math of the single-pass algorithm (paper Table 1).

Given a gate's truth table, its weight vector, and the ``0→1`` / ``1→0``
error probabilities of its fanins, :func:`weighted_error_components`
computes the weighted input error vector ``PW`` — the probability that
input errors alone flip the gate's error-free output — separately for the
output-0 and output-1 sides.  The paper tabulates this for a 2-input AND
(Table 1); here it is implemented for arbitrary gate types and arities by
summing over all (error-free vector, perturbed vector) transitions.

The same function implements the correlation-coefficient weighting of
Sec. 4.1 / Fig. 4: a ``corr`` callback supplies coefficients between error
events on wire pairs, and an optional conditioning event ``cond`` scales
every fanin flip probability by its coefficient with that event (the
``Pr(l_{0→1} | k_{0→1})`` expansion used when propagating coefficients).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence, Tuple

import numpy as np

#: Error-event codes: a 0→1 flip and a 1→0 flip.
EVENT_0TO1 = 0
EVENT_1TO0 = 1

#: Signature of a correlation-coefficient provider:
#: ``corr(a, event_a, b, event_b)`` returns the coefficient for the joint
#: occurrence of the two error events (1.0 for independent wires).
CorrelationFn = Callable[[str, int, str, int], float]


@dataclass(frozen=True)
class ErrorProbability:
    """Conditional error probabilities of one wire.

    ``p01`` = Pr[wire reads 1 | its error-free value is 0]; ``p10`` is the
    symmetric 1→0 probability.  These are the quantities the single pass
    propagates from inputs to outputs.
    """

    p01: float = 0.0
    p10: float = 0.0

    def of_event(self, event: int) -> float:
        return self.p01 if event == EVENT_0TO1 else self.p10

    def total(self, signal_prob_one: float) -> float:
        """Unconditional error probability given Pr[wire = 1]."""
        return ((1.0 - signal_prob_one) * self.p01
                + signal_prob_one * self.p10)


ERROR_FREE = ErrorProbability(0.0, 0.0)


def _clamp01(x: float) -> float:
    if x < 0.0:
        return 0.0
    if x > 1.0:
        return 1.0
    return x


class _LruCache:
    """A small bounded mapping with least-recently-used eviction.

    The transition structures below are keyed by (truth table, arity);
    distinct gate *functions* are few in any one netlist, but a process
    analyzing many circuits (library characterization, random-circuit
    sweeps) would otherwise accumulate entries without bound.
    """

    def __init__(self, maxsize: int):
        self.maxsize = maxsize
        self._data: "OrderedDict" = OrderedDict()

    def get(self, key):
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()


#: Cap on memoized per-truth-table structures (LRU-evicted beyond this).
TRANSITION_CACHE_MAX = 512

# Per-truth-table transition structure, shared by every gate with the same
# function: for each error-free input vector v, the tuple
# (output bit, per-position flip events, perturbations) where perturbations
# lists, for each output-flipping perturbed vector, the positions that flip.
_TransitionTable = Tuple[Tuple[int, Tuple[int, ...], Tuple[Tuple[int, ...], ...]], ...]
_TRANSITION_CACHE = _LruCache(TRANSITION_CACHE_MAX)


def _transition_table(truth: Tuple[int, ...], k: int) -> _TransitionTable:
    key = (truth, k)
    table = _TRANSITION_CACHE.get(key)
    if table is not None:
        return table
    rows = []
    for v in range(1 << k):
        b = truth[v]
        events = tuple(EVENT_0TO1 if not ((v >> t) & 1) else EVENT_1TO0
                       for t in range(k))
        perturbations = tuple(
            tuple(t for t in range(k) if ((v ^ vp) >> t) & 1)
            for vp in range(1 << k) if truth[vp] != b)
        rows.append((b, events, perturbations))
    table = tuple(rows)
    _TRANSITION_CACHE.put(key, table)
    return table


#: Lowered (array-form) transition structures for the compiled kernel.
_LOWERING_CACHE = _LruCache(TRANSITION_CACHE_MAX)


def transition_lowering(truth: Sequence[int], k: int
                        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Lower one truth table into the arrays the compiled kernel consumes.

    Returns ``(bits, flip_mask, truth_arr)`` for a ``k``-input gate with
    ``V = 2**k`` input vectors:

    * ``bits[v, t]`` — value of fanin ``t`` in error-free vector ``v``
      (selects whether that fanin's flip probability is its ``p01`` or its
      ``p10``, i.e. the per-position error *event* of the scalar pass);
    * ``flip_mask[v, u]`` — 1.0 when perturbing vector ``v`` by the flip
      set ``u`` (bit ``t`` of ``u`` flips fanin ``t``) changes the gate
      output, i.e. ``truth[v ^ u] != truth[v]``; this is the dense form of
      the scalar pass's per-``v`` perturbation lists;
    * ``truth_arr[v]`` — the error-free output bit.

    The arrays depend only on the gate *function*, so they are shared by
    every gate with the same (truth, arity) and cached under the same LRU
    policy as the scalar transition tables.
    """
    key = (tuple(truth), k)
    cached = _LOWERING_CACHE.get(key)
    if cached is not None:
        return cached
    v = np.arange(1 << k)
    bits = ((v[:, None] >> np.arange(k)[None, :]) & 1).astype(bool)
    truth_arr = np.asarray(truth, dtype=np.int8)
    flip_mask = (truth_arr[v[:, None] ^ v[None, :]]
                 != truth_arr[:, None]).astype(np.float64)
    lowered = (bits, flip_mask, truth_arr)
    _LOWERING_CACHE.put(key, lowered)
    return lowered


#: Lowered correlated perturbation programs, keyed on the gate function
#: *and* the correlation-plan structure of the gate instance (which input
#: vectors carry weight, which fanins are error-free) — see
#: :func:`correlated_transition_lowering`.
_CORRELATED_LOWERING_CACHE = _LruCache(TRANSITION_CACHE_MAX)


def correlated_transition_lowering(truth: Sequence[int], k: int,
                                   active_mask: int,
                                   error_free_mask: int) -> tuple:
    """Per-vector perturbation programs for the compiled correlated kernel.

    Returns a tuple of rows ``(v, b, events, perts)`` — one per error-free
    input vector ``v`` with nonzero weight (bit ``v`` of ``active_mask``)
    that has at least one feasible perturbation — where ``b`` is the
    error-free output, ``events[t]`` the error event by which fanin ``t``
    leaves its value in ``v``, and ``perts`` is a tuple of
    ``(flips, nonflips)`` position tuples in the exact iteration order of
    the scalar :func:`_correlated_transition`.

    The correlation-plan structure of the gate *instance* prunes the
    programs without changing any value the scalar pass would compute:

    * a perturbation whose flip set touches a fanin in ``error_free_mask``
      (a noise-free primary input or a constant, whose flip probability is
      identically 0) contributes exactly 0 and is dropped;
    * error-free fanins are dropped from ``nonflips`` (their ``1 - p``
      factor is exactly 1).

    Unlike :func:`transition_lowering` the result is keyed on
    ``(truth, k, active_mask, error_free_mask)`` — the per-instance plan
    structure — under the same LRU policy, so gates with the same function
    *and* the same weight/error-free pattern share one lowering.
    """
    key = (tuple(truth), k, int(active_mask), int(error_free_mask))
    cached = _CORRELATED_LOWERING_CACHE.get(key)
    if cached is not None:
        return cached
    table = _transition_table(tuple(truth), k)
    rows = []
    for v in range(1 << k):
        if not (active_mask >> v) & 1:
            continue
        b, events, perturbations = table[v]
        perts = []
        for flips in perturbations:
            if any((error_free_mask >> t) & 1 for t in flips):
                continue
            nonflips = tuple(t for t in range(k)
                             if t not in flips
                             and not ((error_free_mask >> t) & 1))
            perts.append((flips, nonflips))
        if perts:
            rows.append((v, b, events, tuple(perts)))
    lowered = tuple(rows)
    _CORRELATED_LOWERING_CACHE.put(key, lowered)
    return lowered


def transition_probability(v: int, v_perturbed: int,
                           fanins: Sequence[str],
                           errors: Mapping[str, ErrorProbability],
                           corr: Optional[CorrelationFn] = None,
                           cond: Optional[Tuple[str, int]] = None) -> float:
    """Probability that fanin errors turn error-free vector ``v`` into
    ``v_perturbed``.

    Independence across fanins is assumed unless ``corr`` is given, in which
    case: each pair of *flipping* fanins contributes one pairwise
    coefficient; each non-flipping fanin's flip probability (inside its
    ``1 - p`` factor) is scaled by its coefficients with every flipping
    fanin; and, when ``cond`` names a conditioning error event, every flip
    probability is additionally scaled by its coefficient with that event —
    exactly the structure of the paper's Fig. 4 expression.
    """
    k = len(fanins)
    flip_positions = [t for t in range(k)
                      if ((v >> t) ^ (v_perturbed >> t)) & 1]
    # The event by which fanin t would leave its error-free value.
    events = [EVENT_0TO1 if not ((v >> t) & 1) else EVENT_1TO0
              for t in range(k)]

    term = 1.0
    for t in flip_positions:
        p = errors[fanins[t]].of_event(events[t])
        if corr is not None and cond is not None:
            p *= corr(fanins[t], events[t], cond[0], cond[1])
        term *= _clamp01(p)
        if term == 0.0:
            return 0.0
    if corr is not None:
        for a in range(len(flip_positions)):
            for b in range(a + 1, len(flip_positions)):
                ta, tb = flip_positions[a], flip_positions[b]
                term *= corr(fanins[ta], events[ta], fanins[tb], events[tb])
        term = max(0.0, term)
        if term == 0.0:
            return 0.0
    flips = set(flip_positions)
    for t in range(k):
        if t in flips:
            continue
        p = errors[fanins[t]].of_event(events[t])
        if p > 0.0 and corr is not None:
            scale = 1.0
            if cond is not None:
                scale *= corr(fanins[t], events[t], cond[0], cond[1])
            for u in flip_positions:
                scale *= corr(fanins[t], events[t], fanins[u], events[u])
                if scale > 1e12:
                    scale = 1e12  # overflow guard; clamped below anyway
            p = _clamp01(p * scale)
        term *= 1.0 - p
    return max(0.0, term)


def weighted_error_components(truth: Sequence[int],
                              weights: Sequence[float],
                              fanins: Sequence[str],
                              errors: Mapping[str, ErrorProbability],
                              corr: Optional[CorrelationFn] = None,
                              cond: Optional[Tuple[str, int]] = None
                              ) -> Tuple[float, float, float, float]:
    """Compute ``(PW(0), W(0), PW(1), W(1))`` for one gate.

    ``PW(b)`` is the total weighted probability that input errors flip the
    output away from error-free value ``b``; ``W(b)`` is the total weight of
    input vectors with output ``b`` (paper Sec. 4, items i–ii).
    """
    k = len(fanins)
    table = _transition_table(tuple(truth), k)
    # Per-fanin (p01, p10), fetched once.
    probs = [(errors[f].p01, errors[f].p10) for f in fanins]
    pw = [0.0, 0.0]
    w_side = [0.0, 0.0]

    if corr is None:
        # Independence fast path (plain Sec. 4 algorithm).
        for v in range(1 << k):
            b, events, perturbations = table[v]
            w = weights[v]
            w_side[b] += w
            if w == 0.0:
                continue
            flip_prob = 0.0
            for flips in perturbations:
                term = 1.0
                for t in range(k):
                    p = probs[t][events[t]]
                    term *= p if t in flips else 1.0 - p
                    if term == 0.0:
                        break
                flip_prob += term
            pw[b] += w * min(1.0, flip_prob)
        return pw[0], w_side[0], pw[1], w_side[1]

    for v in range(1 << k):
        b, events, perturbations = table[v]
        w = weights[v]
        w_side[b] += w
        if w == 0.0:
            continue
        flip_prob = 0.0
        for flips in perturbations:
            flip_prob += _correlated_transition(
                k, flips, events, fanins, probs, corr, cond)
        pw[b] += w * min(1.0, flip_prob)
    return pw[0], w_side[0], pw[1], w_side[1]


def _correlated_transition(k: int,
                           flips: Tuple[int, ...],
                           events: Tuple[int, ...],
                           fanins: Sequence[str],
                           probs: Sequence[Tuple[float, float]],
                           corr: CorrelationFn,
                           cond: Optional[Tuple[str, int]]) -> float:
    """One perturbation's probability with correlation weighting."""
    term = 1.0
    min_flip = 1.0
    for t in flips:
        p = probs[t][events[t]]
        if cond is not None:
            p *= corr(fanins[t], events[t], cond[0], cond[1])
        p = _clamp01(p)
        if p < min_flip:
            min_flip = p
        term *= p
        if term == 0.0:
            return 0.0
    n_flips = len(flips)
    for a in range(n_flips):
        for b2 in range(a + 1, n_flips):
            ta, tb = flips[a], flips[b2]
            term *= corr(fanins[ta], events[ta], fanins[tb], events[tb])
            if term > 1e12:
                term = 1e12  # cap intermediates; a later factor may be 0
    if term <= 0.0:
        return 0.0
    # Feasibility: the joint of all flips can never exceed any single flip
    # probability.  Products of several large pairwise coefficients (3-way
    # correlated cliques, e.g. TMR voters) would otherwise overshoot.
    if term > min_flip:
        term = min_flip
    for t in range(k):
        if t in flips:
            continue
        p = probs[t][events[t]]
        if p > 0.0:
            scale = 1.0
            if cond is not None:
                scale *= corr(fanins[t], events[t], cond[0], cond[1])
            for u in flips:
                scale *= corr(fanins[t], events[t], fanins[u], events[u])
                if scale > 1e12:
                    scale = 1e12  # overflow guard; clamped below anyway
            p = _clamp01(p * scale)
        term *= 1.0 - p
    return max(0.0, term)


def combine_with_local_failure(pw0: float, w0: float,
                               pw1: float, w1: float,
                               eps: float,
                               eps10: Optional[float] = None
                               ) -> ErrorProbability:
    """Fold the local gate failure into the propagated components.

    Implements the paper's item (iii):
    ``Pr(g_{0→1}) = (1-eps) PW(0)/W(0) + eps (1 - PW(0)/W(0))`` and its
    1→0 counterpart.  A side with zero weight (output constant on that
    side) is conventionally assigned the pure local failure probability —
    downstream terms give it zero weight, so the value never matters.

    With ``eps10`` the local channel is *asymmetric*: the gate's computed
    output flips 0→1 with probability ``eps`` and 1→0 with ``eps10`` (the
    BSC acts on the computed value, so when input errors already flipped
    the output to 1, staying wrong means *not* suffering a 1→0 flip):

        Pr(g 0→1) = r0 (1 - eps10) + (1 - r0) eps01.
    """
    e01 = eps
    e10 = eps if eps10 is None else eps10
    r0 = _clamp01(pw0 / w0) if w0 > 0.0 else 0.0
    r1 = _clamp01(pw1 / w1) if w1 > 0.0 else 0.0
    return ErrorProbability(
        p01=r0 * (1.0 - e10) + (1.0 - r0) * e01,
        p10=r1 * (1.0 - e01) + (1.0 - r1) * e10,
    )


def conditional_error_probability(side: int,
                                  truth: Sequence[int],
                                  weights: Sequence[float],
                                  fanins: Sequence[str],
                                  errors: Mapping[str, ErrorProbability],
                                  eps: float,
                                  corr: Optional[CorrelationFn],
                                  cond: Tuple[str, int],
                                  eps10: Optional[float] = None) -> float:
    """``Pr(g flips from side | cond event)`` — the Fig. 4 expansion.

    Used by the correlation engine when propagating coefficients through a
    gate: ``eps + (1 - 2 eps) * PW(side | cond) / W(side)`` (symmetric
    case; the asymmetric generalization substitutes the directional local
    flip probabilities).
    """
    e01 = eps
    e10 = eps if eps10 is None else eps10
    pw0, w0, pw1, w1 = weighted_error_components(
        truth, weights, fanins, errors, corr=corr, cond=cond)
    pw, w = (pw0, w0) if side == 0 else (pw1, w1)
    local = e01 if side == 0 else e10
    if w <= 0.0:
        return local
    r = _clamp01(pw / w)
    return _clamp01(local + r * (1.0 - e01 - e10))
