"""Structural circuit transforms.

These support the paper's application studies:

* :func:`expand_xor` rebuilds XOR/XNOR gates as 4-NAND networks — the
  relationship between the c499/c1355 benchmark pair, used to construct our
  c1355 stand-in from the c499 stand-in;
* :func:`triplicate_gates` inserts selective triple-modular redundancy at a
  chosen gate subset (Sec. 5.1, "introduce redundancy at selected gates");
* :func:`limit_fanout` produces a bounded-fanout version of a circuit by
  duplicating logic cones, the mechanism behind the low-/high-fanout b9
  comparison of Fig. 8;
* :func:`strip_buffers` removes BUF gates (useful after I/O round trips);
* :func:`combinational_envelope` exposes a sequential circuit's next-state
  functions as primary outputs of its combinational core — the per-frame
  slice that time-frame unrolling and steady-state iteration replicate.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .circuit import Circuit, CircuitError
from .gate import GateType
from .sequential import SequentialCircuit


def _remap(fanins: Sequence[str], mapping: Dict[str, str]) -> List[str]:
    return [mapping.get(fi, fi) for fi in fanins]


def expand_xor(circuit: Circuit, name: Optional[str] = None) -> Circuit:
    """Return a copy with every 2-input XOR/XNOR expanded into NAND logic.

    ``a XOR b`` becomes the classic 4-NAND network; XNOR adds an inverter
    implemented as a 2-input NAND with tied inputs.  Wider XOR gates are
    first decomposed into a chain of 2-input XORs.  Gate count per XOR grows
    from 1 to 4, mirroring how c1355 implements c499's function.
    """
    out = Circuit(name or f"{circuit.name}_nand")
    mapping: Dict[str, str] = {}
    fresh = _FreshNamer(circuit, prefix="xx")

    def emit_xor2(a: str, b: str, invert: bool) -> str:
        n1 = out.add_gate(fresh(), GateType.NAND, [a, b])
        n2 = out.add_gate(fresh(), GateType.NAND, [a, n1])
        n3 = out.add_gate(fresh(), GateType.NAND, [b, n1])
        n4 = out.add_gate(fresh(), GateType.NAND, [n2, n3])
        if invert:
            return out.add_gate(fresh(), GateType.NAND, [n4, n4])
        return n4

    for node_name in circuit.topological_order():
        node = circuit.node(node_name)
        if node.gate_type.is_input:
            out.add_input(node_name)
        elif node.gate_type.is_constant:
            out.add_const(node_name,
                          1 if node.gate_type is GateType.CONST1 else 0)
        elif node.gate_type in (GateType.XOR, GateType.XNOR):
            fis = _remap(node.fanins, mapping)
            acc = fis[0]
            for nxt in fis[1:-1]:
                acc = emit_xor2(acc, nxt, invert=False)
            acc = emit_xor2(acc, fis[-1],
                            invert=node.gate_type is GateType.XNOR)
            # Give the final node the original name via a buffer so outputs
            # keep their names.
            mapping[node_name] = out.add_gate(node_name, GateType.BUF, [acc])
        else:
            out.add_gate(node_name, node.gate_type, _remap(node.fanins, mapping))
    for o in circuit.outputs:
        out.set_output(mapping.get(o, o))
    return out


def triplicate_gates(circuit: Circuit, gates: Iterable[str],
                     name: Optional[str] = None,
                     roles: Optional[Dict[str, Tuple[str, str]]] = None
                     ) -> Circuit:
    """Selective TMR: triplicate the chosen gates and vote on their outputs.

    Each selected gate ``g`` is replaced by three copies fed by the same
    fanins and a 2-of-3 majority voter (three ANDs + one OR) whose output
    takes over ``g``'s name.  Downstream logic is untouched.  Voter gates
    are themselves subject to noise in later analysis, as in real redundant
    logic.

    ``roles``, if provided, is filled with ``node -> (role, protected)``
    entries where role is ``"copy"`` or ``"voter"`` — reliability flows use
    it to give hardened voter cells a different failure probability than
    the replicated logic.
    """
    chosen = set(gates)
    for g in chosen:
        if not circuit.node(g).gate_type.is_logic:
            raise CircuitError(f"cannot triplicate non-gate node {g!r}")
    out = Circuit(name or f"{circuit.name}_tmr")
    fresh = _FreshNamer(circuit, prefix="tmr")

    def note(node: str, role: str, protected: str) -> None:
        if roles is not None:
            roles[node] = (role, protected)

    for node_name in circuit.topological_order():
        node = circuit.node(node_name)
        if node.gate_type.is_input:
            out.add_input(node_name)
        elif node.gate_type.is_constant:
            out.add_const(node_name,
                          1 if node.gate_type is GateType.CONST1 else 0)
        elif node_name in chosen:
            copies = [out.add_gate(fresh(), node.gate_type, node.fanins)
                      for _ in range(3)]
            p01 = out.add_gate(fresh(), GateType.AND, [copies[0], copies[1]])
            p02 = out.add_gate(fresh(), GateType.AND, [copies[0], copies[2]])
            p12 = out.add_gate(fresh(), GateType.AND, [copies[1], copies[2]])
            out.add_gate(node_name, GateType.OR, [p01, p02, p12])
            for c in copies:
                note(c, "copy", node_name)
            for v in (p01, p02, p12, node_name):
                note(v, "voter", node_name)
        else:
            out.add_gate(node_name, node.gate_type, node.fanins)
    for o in circuit.outputs:
        out.set_output(o)
    return out


def limit_fanout(circuit: Circuit, max_fanout: int,
                 name: Optional[str] = None) -> Circuit:
    """Duplicate gates so that no gate drives more than ``max_fanout`` wires.

    Gates whose fanout exceeds the bound are cloned (sharing fanins) and the
    fanout wires are distributed round-robin over the clones.  Primary
    inputs are never duplicated (they are noise-free sources).  Gate count
    grows; depth is unchanged — this realizes the "low fanout version"
    synthesis of Fig. 8 structurally.
    """
    if max_fanout < 1:
        raise ValueError("max_fanout must be >= 1")
    out = Circuit(name or f"{circuit.name}_fo{max_fanout}")
    fresh = _FreshNamer(circuit, prefix="dup")
    output_set = set(circuit.outputs)
    # For each over-driven gate, the list of clone names; consumers pick
    # clones round-robin through this rotor.
    clones: Dict[str, List[str]] = {}
    rotor: Dict[str, int] = {}

    def pick(fi: str) -> str:
        if fi not in clones:
            return fi
        names = clones[fi]
        i = rotor[fi]
        rotor[fi] = (i + 1) % len(names)
        return names[i]

    for node_name in circuit.topological_order():
        node = circuit.node(node_name)
        if node.gate_type.is_input:
            out.add_input(node_name)
            continue
        if node.gate_type.is_constant:
            out.add_const(node_name,
                          1 if node.gate_type is GateType.CONST1 else 0)
            continue
        fo = circuit.fanout_count(node_name)
        if node_name in output_set:
            fo += 1  # the output port is one more consumer
        if fo <= max_fanout:
            out.add_gate(node_name, node.gate_type,
                         [pick(fi) for fi in node.fanins])
            continue
        n_copies = -(-fo // max_fanout)  # ceil division
        names = [node_name] + [fresh() for _ in range(n_copies - 1)]
        for copy_name in names:
            out.add_gate(copy_name, node.gate_type,
                         [pick(fi) for fi in node.fanins])
        clones[node_name] = names
        rotor[node_name] = 1 if node_name in output_set else 0
    for o in circuit.outputs:
        out.set_output(o)
    return out


def strip_buffers(circuit: Circuit, name: Optional[str] = None) -> Circuit:
    """Remove BUF gates, rewiring consumers to the buffer's fanin.

    Buffers driving primary outputs are kept so output names survive.
    """
    out = Circuit(name or circuit.name)
    mapping: Dict[str, str] = {}
    output_set = set(circuit.outputs)
    for node_name in circuit.topological_order():
        node = circuit.node(node_name)
        if node.gate_type.is_input:
            out.add_input(node_name)
        elif node.gate_type.is_constant:
            out.add_const(node_name,
                          1 if node.gate_type is GateType.CONST1 else 0)
        elif (node.gate_type is GateType.BUF
              and node_name not in output_set):
            mapping[node_name] = mapping.get(node.fanins[0], node.fanins[0])
        else:
            out.add_gate(node_name, node.gate_type,
                         _remap(node.fanins, mapping))
    for o in circuit.outputs:
        out.set_output(mapping.get(o, o))
    return out


class _FreshNamer:
    """Generate node names guaranteed fresh w.r.t. an existing circuit."""

    def __init__(self, circuit: Circuit, prefix: str):
        self._taken = set(circuit.topological_order())
        self._prefix = prefix
        self._n = 0

    def __call__(self) -> str:
        while True:
            candidate = f"{self._prefix}_{self._n}"
            self._n += 1
            if candidate not in self._taken:
                self._taken.add(candidate)
                return candidate


def combinational_envelope(seq: SequentialCircuit,
                           name: Optional[str] = None,
                           prefix: str = "ns") -> Circuit:
    """One clock cycle of a sequential circuit as a combinational circuit.

    Returns a copy of the core in which every flip-flop's next-state
    driver is also exposed as a primary output named ``{prefix}_{q}`` (a
    BUF alias, so existing output declarations are untouched).  State
    inputs stay free inputs.  This is the per-frame building block: an
    unrolled circuit is ``k`` envelopes chained state-output to
    state-input.
    """
    seq.validate()
    out = seq.core.copy(name or f"{seq.name}_envelope")
    fresh = _FreshNamer(out, prefix=prefix)
    for ff in seq.flops:
        alias = f"{prefix}_{ff.name}"
        if alias in out:
            alias = fresh()
        out.add_gate(alias, GateType.BUF, [ff.data])
        out.set_output(alias)
    out.validate()
    return out
