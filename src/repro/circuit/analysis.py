"""Structural analysis of circuits: supports, fanout, reconvergence.

These views feed the reliability algorithms:

* *support bitsets* let the correlation-coefficient machinery decide in O(1)
  whether two wires can be correlated at all (disjoint transitive fanin
  cones ⇒ statistically independent error events);
* *reconvergence detection* identifies the gates where the single-pass
  algorithm's independence assumption breaks (Sec. 4.1 of the paper);
* *fanout and level statistics* drive the Fig. 8 redundancy-free
  design-space exploration (low- vs high-fanout synthesis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from .circuit import Circuit


def node_index(circuit: Circuit) -> Dict[str, int]:
    """Assign each node a dense index in topological order."""
    return {name: i for i, name in enumerate(circuit.topological_order())}


def support_bitsets(circuit: Circuit) -> Dict[str, int]:
    """Transitive-fanin bitsets (over *all* nodes) for every node.

    The bitset of node ``n`` has bit ``index[m]`` set for every node ``m`` in
    the transitive fanin cone of ``n``, *including n itself*.  Python ints
    make this memory-frugal and the union a single ``|``.
    """
    index = node_index(circuit)
    bits: Dict[str, int] = {}
    for name in circuit.topological_order():
        node = circuit.node(name)
        mask = 1 << index[name]
        for fi in node.fanins:
            mask |= bits[fi]
        bits[name] = mask
    return bits


def input_support(circuit: Circuit) -> Dict[str, Set[str]]:
    """Primary-input support set of every node."""
    supp: Dict[str, Set[str]] = {}
    for name in circuit.topological_order():
        node = circuit.node(name)
        if node.gate_type.is_input:
            supp[name] = {name}
        elif node.gate_type.is_constant:
            supp[name] = set()
        else:
            acc: Set[str] = set()
            for fi in node.fanins:
                acc |= supp[fi]
            supp[name] = acc
    return supp


def cone_size(circuit: Circuit, output: str) -> int:
    """Number of logic gates in the transitive fanin cone of a node.

    Matches the paper's usage for Fig. 6 ("cone sizes of the two outputs are
    662 and 1034 gates").
    """
    return sum(1 for n in circuit.transitive_fanin([output])
               if circuit.node(n).gate_type.is_logic)


def fanout_stems(circuit: Circuit) -> List[str]:
    """Nodes with more than one fanout wire (the sources of reconvergence)."""
    return [n for n in circuit.topological_order()
            if circuit.fanout_count(n) > 1]


def reconvergent_gates(circuit: Circuit) -> Dict[str, List[Tuple[str, str]]]:
    """Find gates whose inputs have overlapping transitive fanin cones.

    Returns a map from gate name to the list of fanin pairs (i, j) whose
    supports intersect — exactly the sites where the single-pass algorithm
    must apply correlation coefficients.  A gate wired to the same fanin
    twice also counts.
    """
    bits = support_bitsets(circuit)
    result: Dict[str, List[Tuple[str, str]]] = {}
    for name in circuit.topological_gates():
        node = circuit.node(name)
        pairs = []
        fi = node.fanins
        for a in range(len(fi)):
            for b in range(a + 1, len(fi)):
                if bits[fi[a]] & bits[fi[b]]:
                    pairs.append((fi[a], fi[b]))
        if pairs:
            result[name] = pairs
    return result


def is_tree(circuit: Circuit) -> bool:
    """True when no node (input or gate) has fanout greater than one.

    On such circuits the single-pass analysis is provably exact (paper,
    Sec. 4), a property the test suite checks against the exhaustive oracle.
    """
    return not fanout_stems(circuit)


@dataclass(frozen=True)
class CircuitStats:
    """Summary statistics used in reports and the Fig. 8 discussion."""

    name: str
    num_inputs: int
    num_outputs: int
    num_gates: int
    depth: int
    max_fanout: int
    total_output_levels: int
    num_fanout_stems: int
    num_reconvergent_gates: int

    def as_row(self) -> str:
        return (f"{self.name:12s} in={self.num_inputs:4d} out={self.num_outputs:3d} "
                f"gates={self.num_gates:5d} depth={self.depth:3d} "
                f"maxfo={self.max_fanout:3d} stems={self.num_fanout_stems:4d} "
                f"reconv={self.num_reconvergent_gates:4d}")


def circuit_stats(circuit: Circuit) -> CircuitStats:
    """Compute a :class:`CircuitStats` summary for a circuit."""
    fanouts = [circuit.fanout_count(n) for n in circuit.topological_order()]
    total_levels = sum(circuit.level(o) for o in circuit.outputs)
    return CircuitStats(
        name=circuit.name,
        num_inputs=len(circuit.inputs),
        num_outputs=len(circuit.outputs),
        num_gates=circuit.num_gates,
        depth=circuit.depth,
        max_fanout=max(fanouts, default=0),
        total_output_levels=total_levels,
        num_fanout_stems=len(fanout_stems(circuit)),
        num_reconvergent_gates=len(reconvergent_gates(circuit)),
    )
