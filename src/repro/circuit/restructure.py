"""Function-preserving restructuring transforms.

Two optimization-flavored rewrites used by the reliability applications:

* :func:`rebalance_chains` converts skewed chains of one associative gate
  type into balanced trees — the depth-reduction move behind the Fig. 8
  result (fewer levels of noise between inputs and outputs, same gates);
* :func:`map_to_nand` technology-maps a circuit onto 2-input NAND gates
  only (the c499 → c1355 style mapping, generalized to every gate type).

Both preserve the Boolean functions exactly (asserted by tests on random
circuits) while changing the reliability profile, making them natural
moves for redundancy-free reliability optimization.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .circuit import Circuit
from .gate import GateType
from .transform import _FreshNamer

_ASSOCIATIVE = (GateType.AND, GateType.OR, GateType.XOR)


def rebalance_chains(circuit: Circuit, name: Optional[str] = None) -> Circuit:
    """Rebuild single-use chains of AND/OR/XOR gates as balanced trees.

    A gate ``g`` of associative type T absorbs a fanin ``f`` when ``f`` has
    the same type and ``g`` is its only consumer (and ``f`` is not a
    primary output).  The collected leaves are re-combined as a balanced
    tree using the same number of 2-input gates; the root keeps ``g``'s
    name.  Depth shrinks from O(chain length) to O(log); the function and
    gate count are unchanged.
    """
    out = Circuit(name or f"{circuit.name}_balanced")
    fresh = _FreshNamer(circuit, prefix="bal")
    output_set = set(circuit.outputs)
    absorbed: set = set()

    def leaves_of(gate: str, gate_type: GateType) -> List[str]:
        node = circuit.node(gate)
        collected: List[str] = []
        for fi in node.fanins:
            fi_node = circuit.node(fi)
            if (fi_node.gate_type is gate_type
                    and circuit.fanout_count(fi) == 1
                    and fi not in output_set):
                absorbed.add(fi)
                collected.extend(leaves_of(fi, gate_type))
            else:
                collected.append(fi)
        return collected

    plans: Dict[str, List[str]] = {}
    for gate in circuit.topological_gates():
        node = circuit.node(gate)
        if node.gate_type not in _ASSOCIATIVE or gate in absorbed:
            continue
        leaves = leaves_of(gate, node.gate_type)
        if len(leaves) > 2:
            plans[gate] = leaves

    for node_name in circuit.topological_order():
        node = circuit.node(node_name)
        if node.gate_type.is_input:
            out.add_input(node_name)
        elif node.gate_type.is_constant:
            out.add_const(node_name,
                          1 if node.gate_type is GateType.CONST1 else 0)
        elif node_name in absorbed:
            continue  # rebuilt inside its consumer's tree
        elif node_name in plans:
            layer = list(plans[node_name])
            while len(layer) > 2:
                nxt = []
                for i in range(0, len(layer) - 1, 2):
                    nxt.append(out.add_gate(fresh(), node.gate_type,
                                            [layer[i], layer[i + 1]]))
                if len(layer) % 2:
                    nxt.append(layer[-1])
                layer = nxt
            out.add_gate(node_name, node.gate_type, layer)
        else:
            out.add_gate(node_name, node.gate_type, node.fanins)
    for o in circuit.outputs:
        out.set_output(o)
    return out


def map_to_nand(circuit: Circuit, name: Optional[str] = None) -> Circuit:
    """Technology-map every gate onto 2-input NANDs (plus tied-input NOTs).

    Standard decompositions: NOT = NAND(a, a); AND = NOT(NAND); OR =
    NAND(NOT a, NOT b); XOR = 4 NANDs; wide gates decompose through
    2-input trees first.  The function is preserved; gate count and depth
    grow — quantifying the reliability cost of a NAND-only library is the
    c499 vs c1355 comparison generalized.
    """
    out = Circuit(name or f"{circuit.name}_nand2")
    fresh = _FreshNamer(circuit, prefix="nm")
    mapping: Dict[str, str] = {}

    def nand(a: str, b: str, result_name: Optional[str] = None) -> str:
        return out.add_gate(result_name or fresh(), GateType.NAND, [a, b])

    def inv(a: str, result_name: Optional[str] = None) -> str:
        return nand(a, a, result_name)

    def emit_and2(a: str, b: str, result_name=None) -> str:
        return inv(nand(a, b), result_name)

    def emit_or2(a: str, b: str, result_name=None) -> str:
        return nand(inv(a), inv(b), result_name)

    def emit_xor2(a: str, b: str, result_name=None) -> str:
        n1 = nand(a, b)
        return nand(nand(a, n1), nand(b, n1), result_name)

    def reduce_tree(emit, operands: List[str], result_name: str) -> str:
        layer = list(operands)
        while len(layer) > 2:
            nxt = []
            for i in range(0, len(layer) - 1, 2):
                nxt.append(emit(layer[i], layer[i + 1]))
            if len(layer) % 2:
                nxt.append(layer[-1])
            layer = nxt
        return emit(layer[0], layer[1], result_name)

    for node_name in circuit.topological_order():
        node = circuit.node(node_name)
        gt = node.gate_type
        fis = [mapping.get(f, f) for f in node.fanins]
        if gt.is_input:
            out.add_input(node_name)
        elif gt.is_constant:
            out.add_const(node_name, 1 if gt is GateType.CONST1 else 0)
        elif gt is GateType.BUF:
            mapping[node_name] = inv(inv(fis[0]), node_name)
        elif gt is GateType.NOT:
            mapping[node_name] = inv(fis[0], node_name)
        elif gt is GateType.NAND and len(fis) == 2:
            mapping[node_name] = nand(fis[0], fis[1], node_name)
        elif gt is GateType.AND:
            mapping[node_name] = reduce_tree(emit_and2, fis, node_name)
        elif gt is GateType.NAND:
            target = reduce_tree(emit_and2, fis, fresh())
            mapping[node_name] = inv(target, node_name)
        elif gt is GateType.OR:
            mapping[node_name] = reduce_tree(emit_or2, fis, node_name)
        elif gt is GateType.NOR:
            target = reduce_tree(emit_or2, fis, fresh())
            mapping[node_name] = inv(target, node_name)
        elif gt is GateType.XOR:
            mapping[node_name] = reduce_tree(emit_xor2, fis, node_name)
        elif gt is GateType.XNOR:
            target = reduce_tree(emit_xor2, fis, fresh())
            mapping[node_name] = inv(target, node_name)
        else:  # pragma: no cover - exhaustive
            raise ValueError(f"unmappable gate type {gt!r}")
    for o in circuit.outputs:
        out.set_output(mapping.get(o, o))
    from .transform import strip_buffers
    return strip_buffers(out, name=out.name)
