"""Gate primitives: types, arity rules, and Boolean evaluation.

Every combinational node in a :class:`~repro.circuit.circuit.Circuit` has a
:class:`GateType`.  The reliability algorithms in this package only ever need
two things from a gate: its truth table (for weight-vector and error
propagation math) and fast scalar/word evaluation (for simulation).  Both are
provided here so the rest of the code base never special-cases gate kinds.
"""

from __future__ import annotations

import enum
from functools import lru_cache, reduce
from typing import Sequence, Tuple


class GateType(enum.Enum):
    """The kinds of nodes supported in a circuit netlist.

    ``INPUT`` marks a primary input (no fanins).  ``CONST0``/``CONST1`` are
    constant drivers (no fanins).  ``DFF``/``LATCH`` are sequential state
    elements (one data fanin); they never appear inside a combinational
    :class:`~repro.circuit.circuit.Circuit` — the
    :class:`~repro.circuit.sequential.SequentialCircuit` wrapper holds them
    as :class:`~repro.circuit.sequential.FlipFlop` records.  All remaining
    types are logic gates whose output is a Boolean function of their
    fanins.
    """

    INPUT = "input"
    CONST0 = "const0"
    CONST1 = "const1"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    NAND = "nand"
    OR = "or"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    DFF = "dff"
    LATCH = "latch"

    @property
    def is_input(self) -> bool:
        return self is GateType.INPUT

    @property
    def is_constant(self) -> bool:
        return self in (GateType.CONST0, GateType.CONST1)

    @property
    def is_state(self) -> bool:
        """True for sequential state elements (flip-flops and latches)."""
        return self in (GateType.DFF, GateType.LATCH)

    @property
    def is_logic(self) -> bool:
        """True for nodes computing a function of one or more fanins."""
        return not (self.is_input or self.is_constant or self.is_state)


#: Sequential state-element types (one data fanin, no truth table).
STATE_TYPES = frozenset({GateType.DFF, GateType.LATCH})

#: Gate types that accept exactly one fanin.
UNARY_TYPES = frozenset({GateType.BUF, GateType.NOT})

#: Gate types that accept two or more fanins.
MULTI_INPUT_TYPES = frozenset(
    {GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
     GateType.XOR, GateType.XNOR}
)

#: Gate types whose output is the complement of a simpler base function.
INVERTING_TYPES = frozenset(
    {GateType.NOT, GateType.NAND, GateType.NOR, GateType.XNOR}
)

_BASE_OF_INVERTING = {
    GateType.NOT: GateType.BUF,
    GateType.NAND: GateType.AND,
    GateType.NOR: GateType.OR,
    GateType.XNOR: GateType.XOR,
}


class GateArityError(ValueError):
    """Raised when a gate is constructed with an unsupported fanin count."""


def check_arity(gate_type: GateType, arity: int) -> None:
    """Validate that ``gate_type`` accepts ``arity`` fanins.

    Raises :class:`GateArityError` on violation.  XOR/XNOR with more than two
    fanins use parity semantics (odd number of 1s), matching common netlist
    formats.
    """
    if gate_type.is_input or gate_type.is_constant:
        if arity != 0:
            raise GateArityError(
                f"{gate_type.value} node must have no fanins, got {arity}")
    elif gate_type in STATE_TYPES:
        if arity != 1:
            raise GateArityError(
                f"{gate_type.value} element must have exactly 1 data fanin, "
                f"got {arity}")
    elif gate_type in UNARY_TYPES:
        if arity != 1:
            raise GateArityError(
                f"{gate_type.value} gate must have exactly 1 fanin, got {arity}")
    elif gate_type in MULTI_INPUT_TYPES:
        if arity < 2:
            raise GateArityError(
                f"{gate_type.value} gate must have >= 2 fanins, got {arity}")
    else:  # pragma: no cover - enum is exhaustive
        raise GateArityError(f"unknown gate type {gate_type!r}")


def evaluate_gate(gate_type: GateType, values: Sequence[int]) -> int:
    """Evaluate a gate on scalar 0/1 fanin values and return 0 or 1.

    XOR/XNOR with more than two fanins compute parity (odd number of ones).
    """
    if gate_type is GateType.CONST0:
        return 0
    if gate_type is GateType.CONST1:
        return 1
    if gate_type is GateType.BUF:
        return values[0] & 1
    if gate_type is GateType.NOT:
        return (values[0] & 1) ^ 1
    if gate_type is GateType.AND:
        return int(all(v & 1 for v in values))
    if gate_type is GateType.NAND:
        return int(not all(v & 1 for v in values))
    if gate_type is GateType.OR:
        return int(any(v & 1 for v in values))
    if gate_type is GateType.NOR:
        return int(not any(v & 1 for v in values))
    if gate_type is GateType.XOR:
        return reduce(lambda a, b: a ^ (b & 1), values, 0)
    if gate_type is GateType.XNOR:
        return reduce(lambda a, b: a ^ (b & 1), values, 0) ^ 1
    if gate_type is GateType.INPUT:
        raise ValueError("primary inputs carry values; they are not evaluated")
    if gate_type.is_state:
        raise ValueError(
            f"{gate_type.value} is a state element, not a Boolean function; "
            "unroll the sequential circuit (repro.circuit.unroll) first")
    raise ValueError(f"unknown gate type {gate_type!r}")  # pragma: no cover


@lru_cache(maxsize=None)
def truth_table(gate_type: GateType, arity: int) -> Tuple[int, ...]:
    """Return the gate's truth table as a tuple of 2**arity output bits.

    Entry ``k`` is the output for the input vector whose bit ``t`` (LSB =
    fanin 0) is ``(k >> t) & 1``.  Used by the single-pass algorithm's
    weighted-input-error machinery, which iterates over all input minterms.
    The result is an immutable tuple keyed by (type, arity) alone, so it
    is memoized process-wide — compile/lower paths call this per gate.
    """
    check_arity(gate_type, arity)
    if gate_type.is_state:
        raise ValueError(
            f"{gate_type.value} has no truth table: state elements are "
            "handled by SequentialCircuit, not the combinational algorithms")
    if gate_type.is_constant:
        return (evaluate_gate(gate_type, ()),)
    return tuple(
        evaluate_gate(gate_type, [(k >> t) & 1 for t in range(arity)])
        for k in range(1 << arity)
    )


def inverted_type(gate_type: GateType) -> GateType:
    """Return the gate type computing the complement function, if named.

    ``AND <-> NAND``, ``OR <-> NOR``, ``XOR <-> XNOR``, ``BUF <-> NOT``,
    ``CONST0 <-> CONST1``.  Raises ``ValueError`` for ``INPUT``.
    """
    pairs = {
        GateType.AND: GateType.NAND, GateType.NAND: GateType.AND,
        GateType.OR: GateType.NOR, GateType.NOR: GateType.OR,
        GateType.XOR: GateType.XNOR, GateType.XNOR: GateType.XOR,
        GateType.BUF: GateType.NOT, GateType.NOT: GateType.BUF,
        GateType.CONST0: GateType.CONST1, GateType.CONST1: GateType.CONST0,
    }
    if gate_type not in pairs:
        raise ValueError(f"{gate_type.value} has no complement type")
    return pairs[gate_type]


def base_type(gate_type: GateType) -> Tuple[GateType, bool]:
    """Decompose a gate into (non-inverting base type, output inverted?)."""
    if gate_type in INVERTING_TYPES:
        return _BASE_OF_INVERTING[gate_type], True
    return gate_type, False


#: Mapping from lowercase gate names (as used by netlist formats and the CLI)
#: to :class:`GateType`.
NAME_TO_TYPE = {t.value: t for t in GateType}
NAME_TO_TYPE.update({
    "inv": GateType.NOT,
    "buff": GateType.BUF,
    "buffer": GateType.BUF,
    "vdd": GateType.CONST1,
    "gnd": GateType.CONST0,
    "one": GateType.CONST1,
    "zero": GateType.CONST0,
    "ff": GateType.DFF,
})


def parse_gate_type(name: str) -> GateType:
    """Map a textual gate name (case-insensitive) to a :class:`GateType`."""
    try:
        return NAME_TO_TYPE[name.strip().lower()]
    except KeyError:
        raise ValueError(f"unknown gate type name {name!r}") from None
