"""Time-frame unrolling: a stateful netlist as ``k`` combinational frames.

The standard sequential-analysis idiom: replicate the combinational core
once per clock cycle, wiring each frame's state inputs to the previous
frame's next-state drivers.  Frame-0 state inputs become free primary
inputs (unknown initial state) or constants (known ``init`` values).

Naming is fully deterministic — node ``n`` of frame ``t`` is ``n@t`` —
so unrolling the same circuit with the same frame count always produces a
structurally identical :class:`~repro.circuit.circuit.Circuit` (stable
``structural_hash``, hence stable engine-session and weight-cache keys).

Every primary output appears once per frame as ``o@t``; downstream result
objects group these suffixes back into per-frame delta dicts (see
``SinglePassResult.per_frame``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from .circuit import Circuit, CircuitError
from .gate import GateType
from .sequential import SequentialCircuit

#: Separator between a core node name and its frame index.
FRAME_SEP = "@"


def frame_name(node: str, frame: int) -> str:
    """The unrolled name of core node ``node`` in frame ``frame``."""
    return f"{node}{FRAME_SEP}{frame}"


def split_frame_name(name: str) -> Optional[tuple]:
    """Split ``n@t`` into ``(n, t)``; None when ``name`` has no frame tag."""
    base, sep, tail = name.rpartition(FRAME_SEP)
    if not sep or not tail.isdigit():
        return None
    return base, int(tail)


def unroll(circuit: Union[Circuit, SequentialCircuit], frames: int, *,
           name: Optional[str] = None,
           use_init: bool = True) -> Circuit:
    """Expand a netlist into ``frames`` combinational time frames.

    Parameters
    ----------
    circuit:
        A :class:`SequentialCircuit`, or a plain combinational
        :class:`Circuit` (treated as a zero-flop wrapper).
    frames:
        Number of clock cycles (``k >= 1``).
    use_init:
        When True (default), flip-flops carrying a known ``init`` value
        start frame 0 from a constant of that value; otherwise every
        frame-0 state input is a free primary input (signal probability
        one half — the unknown-initial-state model).

    Returns the unrolled :class:`Circuit`.  As a special case, a
    combinational circuit unrolled for one frame is returned as a plain
    copy with its original node names, so ``unroll(c, 1)`` is
    bit-identical to analyzing ``c`` directly.
    """
    frames = int(frames)
    if frames < 1:
        raise CircuitError(f"frames must be >= 1, got {frames}")
    if isinstance(circuit, SequentialCircuit):
        seq = circuit
    else:
        seq = SequentialCircuit(circuit, ())
    if not seq.flops and frames == 1:
        return seq.core.copy(name or seq.core.name)
    seq.validate()

    core = seq.core
    flops = {ff.name: ff for ff in seq.flops}
    out = Circuit(name or f"{seq.name}_u{frames}")
    topo = core.topological_order()
    # frame_map[t][core_node] -> unrolled node name
    frame_map: List[Dict[str, str]] = []
    for t in range(frames):
        fmap: Dict[str, str] = {}
        for node_name in topo:
            node = core.node(node_name)
            unrolled = frame_name(node_name, t)
            if node.gate_type.is_input and node_name in flops:
                ff = flops[node_name]
                if t == 0:
                    if use_init and ff.init is not None:
                        _add(out, unrolled, lambda: out.add_const(
                            unrolled, ff.init))
                    else:
                        _add(out, unrolled, lambda: out.add_input(unrolled))
                    fmap[node_name] = unrolled
                else:
                    # State input of frame t is the previous frame's
                    # next-state driver — a pure aliasing, no node added.
                    fmap[node_name] = frame_map[t - 1][ff.data]
            elif node.gate_type.is_input:
                _add(out, unrolled, lambda: out.add_input(unrolled))
                fmap[node_name] = unrolled
            elif node.gate_type.is_constant:
                value = 1 if node.gate_type is GateType.CONST1 else 0
                _add(out, unrolled, lambda: out.add_const(unrolled, value))
                fmap[node_name] = unrolled
            else:
                fanins = [fmap[fi] for fi in node.fanins]
                _add(out, unrolled, lambda: out.add_gate(
                    unrolled, node.gate_type, fanins))
                fmap[node_name] = unrolled
        frame_map.append(fmap)

    for t in range(frames):
        for po in core.outputs:
            target = frame_name(po, t)
            mapped = frame_map[t][po]
            if mapped != target:
                # The output is a (pseudo-)input whose frame-t value lives
                # under another node's name; buffer it so every frame's
                # outputs are uniformly named o@t.
                out.add_gate(target, GateType.BUF, [mapped])
            out.set_output(target)
    out.validate()
    return out


def _add(circuit: Circuit, name: str, adder) -> None:
    if name in circuit:
        raise CircuitError(
            f"unroll name collision: core already contains {name!r} "
            f"(node names may not embed frame tags)")
    adder()
