"""BDD-based combinational equivalence checking.

`are_equivalent` proves (not samples) that two circuits compute the same
functions at every shared output — the workhorse behind the function
-preserving transforms (XOR expansion, NAND mapping, rebalancing, TMR) and
the c499/c1355 stand-in pair.  Returns a counterexample input assignment
when the circuits differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .circuit import Circuit


@dataclass
class EquivalenceResult:
    """Outcome of an equivalence check."""

    equivalent: bool
    #: Output where the first difference was found (None if equivalent).
    failing_output: Optional[str] = None
    #: An input assignment exposing the difference (None if equivalent).
    counterexample: Optional[Dict[str, int]] = None

    def __bool__(self) -> bool:
        return self.equivalent


def are_equivalent(c1: Circuit, c2: Circuit,
                   outputs: Optional[Sequence[str]] = None,
                   node_limit: int = 2_000_000) -> EquivalenceResult:
    """Prove or refute functional equivalence of two circuits.

    Requirements: identical primary-input name sets, and each checked
    output name present in both circuits (default: ``c1``'s outputs, which
    must then all exist in ``c2``).  Both circuits are built into one BDD
    manager over a shared variable order, so equal functions hash-cons to
    the same node and the check per output is a pointer comparison.

    Raises :class:`~repro.bdd.BddSizeLimitError` if the shared build
    exceeds ``node_limit`` (fall back to random simulation in that case).
    """
    # Imported here: repro.bdd depends on repro.circuit, so a module-level
    # import would be circular during package initialization.
    from ..bdd import BddManager, build_node_bdds

    if set(c1.inputs) != set(c2.inputs):
        raise ValueError(
            "circuits have different primary-input sets: "
            f"{sorted(set(c1.inputs) ^ set(c2.inputs))[:6]} ...")
    checked = list(outputs) if outputs is not None else list(c1.outputs)
    for out in checked:
        if out not in c1 or out not in c2:
            raise ValueError(f"output {out!r} missing from one circuit")

    order = c1.inputs
    manager = BddManager(node_limit=node_limit)
    bdds1 = build_node_bdds(c1, manager, var_order=order)
    bdds2 = build_node_bdds(c2, manager, var_order=order)

    for out in checked:
        if bdds1[out] == bdds2[out]:
            continue
        difference = bdds1[out] ^ bdds2[out]
        assignment = difference.pick_assignment()
        counterexample = {name: 0 for name in c1.inputs}
        for name, index in bdds1.var_index.items():
            if assignment and index in assignment:
                counterexample[name] = assignment[index]
        return EquivalenceResult(equivalent=False, failing_output=out,
                                 counterexample=counterexample)
    return EquivalenceResult(equivalent=True)
