"""Fluent construction helpers for :class:`~repro.circuit.circuit.Circuit`.

The :class:`CircuitBuilder` removes the name bookkeeping from programmatic
circuit construction: it auto-generates gate names, accepts nested calls, and
returns node names so expressions read like structural HDL::

    b = CircuitBuilder("fulladder")
    a, bb, cin = b.inputs("a", "b", "cin")
    s = b.xor(b.xor(a, bb), cin)
    cout = b.or_(b.and_(a, bb), b.and_(b.xor(a, bb), cin))
    b.outputs(s=s, cout=cout)
    circuit = b.build()
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .circuit import Circuit, CircuitError
from .gate import GateType
from .sequential import FlipFlop, SequentialCircuit


class CircuitBuilder:
    """Incrementally build a :class:`Circuit` with auto-named gates."""

    def __init__(self, name: str = "circuit", prefix: str = "g"):
        self._circuit = Circuit(name)
        self._prefix = prefix
        self._counter = 0
        self._output_aliases: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def fresh_name(self, hint: Optional[str] = None) -> str:
        """Generate a node name that is unused in the circuit."""
        base = hint or self._prefix
        while True:
            candidate = f"{base}{self._counter}"
            self._counter += 1
            if candidate not in self._circuit:
                return candidate

    def input(self, name: str) -> str:
        """Declare one primary input."""
        return self._circuit.add_input(name)

    def inputs(self, *names: str) -> Tuple[str, ...]:
        """Declare several primary inputs and return their names."""
        return tuple(self._circuit.add_input(n) for n in names)

    def input_bus(self, stem: str, width: int) -> List[str]:
        """Declare a bus of inputs named ``stem0 .. stem{width-1}``."""
        return [self._circuit.add_input(f"{stem}{i}") for i in range(width)]

    def const(self, value: int, name: Optional[str] = None) -> str:
        return self._circuit.add_const(name or self.fresh_name("const"), value)

    def gate(self, gate_type: GateType, *fanins: str,
             name: Optional[str] = None) -> str:
        """Add a gate of any type; returns the new node name."""
        return self._circuit.add_gate(name or self.fresh_name(),
                                      gate_type, fanins)

    # Named conveniences (trailing underscores dodge keywords).
    def and_(self, *fanins: str, name: Optional[str] = None) -> str:
        return self.gate(GateType.AND, *fanins, name=name)

    def nand(self, *fanins: str, name: Optional[str] = None) -> str:
        return self.gate(GateType.NAND, *fanins, name=name)

    def or_(self, *fanins: str, name: Optional[str] = None) -> str:
        return self.gate(GateType.OR, *fanins, name=name)

    def nor(self, *fanins: str, name: Optional[str] = None) -> str:
        return self.gate(GateType.NOR, *fanins, name=name)

    def xor(self, *fanins: str, name: Optional[str] = None) -> str:
        return self.gate(GateType.XOR, *fanins, name=name)

    def xnor(self, *fanins: str, name: Optional[str] = None) -> str:
        return self.gate(GateType.XNOR, *fanins, name=name)

    def not_(self, fanin: str, name: Optional[str] = None) -> str:
        return self.gate(GateType.NOT, fanin, name=name)

    def buf(self, fanin: str, name: Optional[str] = None) -> str:
        return self.gate(GateType.BUF, fanin, name=name)

    def output(self, node: str) -> str:
        """Mark an existing node as a primary output."""
        self._circuit.set_output(node)
        return node

    def outputs(self, *nodes: str, **named: str) -> None:
        """Mark outputs; ``named`` entries add a BUF with the alias name.

        ``b.outputs(s=sum_node)`` creates a buffer named ``s`` driven by
        ``sum_node`` and marks it as an output, giving the port a stable
        name independent of internal gate naming.
        """
        for node in nodes:
            self._circuit.set_output(node)
        for alias, node in named.items():
            if alias == node:
                self._circuit.set_output(node)
            else:
                buf = self._circuit.add_gate(alias, GateType.BUF, [node])
                self._circuit.set_output(buf)
                self._output_aliases[alias] = node

    def build(self) -> Circuit:
        """Validate and return the constructed circuit."""
        self._circuit.validate()
        return self._circuit

    @property
    def circuit(self) -> Circuit:
        """Access the (possibly incomplete) circuit under construction."""
        return self._circuit


class SequentialBuilder(CircuitBuilder):
    """Build a :class:`~repro.circuit.sequential.SequentialCircuit`.

    Flip-flop outputs are declared up front (they are pseudo-inputs of the
    combinational core, so gates may reference them before their data
    drivers exist); each is later closed by naming its next-state driver::

        b = SequentialBuilder("counter1")
        q = b.state("q")                 # Q pin, usable immediately
        d = b.xor(q, b.input("en"))
        b.next_state(q, d)               # D pin
        b.outputs(count=q)
        seq = b.build_sequential()
    """

    def __init__(self, name: str = "circuit", prefix: str = "g"):
        super().__init__(name, prefix)
        self._flops: Dict[str, Dict] = {}

    def state(self, name: str, gate_type: GateType = GateType.DFF,
              init: Optional[int] = None) -> str:
        """Declare one state element's output (``Q``) as a core input."""
        if not gate_type.is_state:
            raise CircuitError(
                f"state {name!r}: {gate_type.value!r} is not a state type")
        self._circuit.add_input(name)
        self._flops[name] = {"gate_type": gate_type, "init": init,
                             "data": None}
        return name

    def dff(self, name: str, init: Optional[int] = None) -> str:
        """Shorthand for :meth:`state` with a D flip-flop."""
        return self.state(name, GateType.DFF, init)

    def next_state(self, state: str, data: str) -> str:
        """Wire a declared state element's data (``D``) pin to a node."""
        if state not in self._flops:
            raise CircuitError(f"{state!r} was not declared with state()")
        if data not in self._circuit:
            raise CircuitError(
                f"next_state({state!r}): driver {data!r} is undefined")
        self._flops[state]["data"] = data
        return state

    def build_sequential(self) -> SequentialCircuit:
        """Validate and return the constructed sequential circuit."""
        flops = []
        for name, spec in self._flops.items():
            if spec["data"] is None:
                raise CircuitError(
                    f"state {name!r} has no next_state() driver")
            flops.append(FlipFlop(name=name, data=spec["data"],
                                  gate_type=spec["gate_type"],
                                  init=spec["init"]))
        seq = SequentialCircuit(self._circuit, flops)
        seq.validate()
        return seq
