"""The :class:`Circuit` netlist data structure.

A circuit is a DAG of named nodes.  Primary inputs have type
:attr:`~repro.circuit.gate.GateType.INPUT`; every other node is a constant or
a logic gate with an ordered tuple of fanin node names.  Any node may be
marked as a primary output (the same node may drive several named outputs,
which matters for multi-output reliability consolidation).

The class is mutable during construction and caches derived views
(topological order, fanout map, levels) lazily; any mutation invalidates the
caches.  All reliability algorithms operate on these views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from .gate import GateType, check_arity, evaluate_gate


class CircuitError(ValueError):
    """Raised for structurally invalid circuit constructions or queries."""


@dataclass(frozen=True)
class Node:
    """A single netlist node: a primary input, constant, or logic gate."""

    name: str
    gate_type: GateType
    fanins: Tuple[str, ...] = ()

    @property
    def arity(self) -> int:
        return len(self.fanins)


class Circuit:
    """A combinational logic circuit represented as a named-node DAG.

    Parameters
    ----------
    name:
        Human-readable circuit name (used by writers and reports).

    Notes
    -----
    Node insertion order is preserved and used as a tie-break in the
    topological order, so circuits are fully deterministic across runs.
    """

    def __init__(self, name: str = "circuit"):
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._outputs: List[str] = []
        self._caches_valid = False
        self._topo: List[str] = []
        self._fanouts: Dict[str, Tuple[str, ...]] = {}
        self._levels: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> str:
        """Add a primary input node and return its name."""
        self._add_node(Node(name, GateType.INPUT))
        return name

    def add_const(self, name: str, value: int) -> str:
        """Add a constant driver node with the given 0/1 value."""
        gate_type = GateType.CONST1 if value else GateType.CONST0
        self._add_node(Node(name, gate_type))
        return name

    def add_gate(self, name: str, gate_type: GateType,
                 fanins: Sequence[str]) -> str:
        """Add a logic gate node.

        ``fanins`` must already exist in the circuit; this enforces that the
        netlist is entered in topological order, which keeps cycle detection
        trivial and matches how netlist files are parsed (forward references
        are resolved by the parsers before calling this).
        """
        if isinstance(gate_type, str):
            raise TypeError("gate_type must be a GateType, not str")
        if gate_type.is_state:
            raise CircuitError(
                f"gate {name!r}: {gate_type.value} is a state element; "
                "Circuit is combinational — build a SequentialCircuit "
                "(repro.circuit.sequential) and unroll it for analysis")
        check_arity(gate_type, len(fanins))
        for fi in fanins:
            if fi not in self._nodes:
                raise CircuitError(
                    f"gate {name!r}: fanin {fi!r} is not defined yet")
        self._add_node(Node(name, gate_type, tuple(fanins)))
        return name

    def set_output(self, name: str) -> None:
        """Mark an existing node as a primary output.

        A node may be listed as an output only once; multi-output circuits
        list several distinct nodes.
        """
        if name not in self._nodes:
            raise CircuitError(f"cannot mark unknown node {name!r} as output")
        if name in self._outputs:
            raise CircuitError(f"node {name!r} is already an output")
        self._outputs.append(name)
        self._caches_valid = False

    def _add_node(self, node: Node) -> None:
        if node.name in self._nodes:
            raise CircuitError(f"duplicate node name {node.name!r}")
        if not node.name:
            raise CircuitError("node name must be non-empty")
        self._nodes[node.name] = node
        self._caches_valid = False

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, name: str) -> Node:
        """Return the :class:`Node` with the given name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise CircuitError(f"no node named {name!r}") from None

    @property
    def nodes(self) -> Mapping[str, Node]:
        """Read-only view of all nodes, in insertion order."""
        return dict(self._nodes)

    @property
    def inputs(self) -> List[str]:
        """Primary input names, in insertion order."""
        return [n.name for n in self._nodes.values() if n.gate_type.is_input]

    @property
    def outputs(self) -> List[str]:
        """Primary output names, in the order they were declared."""
        return list(self._outputs)

    @property
    def gates(self) -> List[str]:
        """Names of all logic gates (excludes inputs and constants)."""
        return [n.name for n in self._nodes.values() if n.gate_type.is_logic]

    @property
    def num_gates(self) -> int:
        """Number of logic gates — the 'size' column of the paper's Table 2."""
        return len(self.gates)

    def fanins(self, name: str) -> Tuple[str, ...]:
        return self.node(name).fanins

    def fanouts(self, name: str) -> Tuple[str, ...]:
        """Names of nodes that use ``name`` as a fanin (with multiplicity 1).

        A gate using the same fanin twice appears once here; use
        :meth:`fanout_count` for wire multiplicity.
        """
        self._ensure_caches()
        return self._fanouts.get(name, ())

    def fanout_count(self, name: str) -> int:
        """Number of fanout *wires* leaving a node (counts multiplicity)."""
        self._ensure_caches()
        return sum(self._nodes[g].fanins.count(name)
                   for g in self._fanouts.get(name, ()))

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def _ensure_caches(self) -> None:
        if self._caches_valid:
            return
        # Nodes were entered in topological order by construction; verify
        # and record, rather than re-sorting.
        seen = set()
        topo: List[str] = []
        fanouts: Dict[str, List[str]] = {}
        for node in self._nodes.values():
            for fi in node.fanins:
                if fi not in seen:
                    raise CircuitError(
                        f"node {node.name!r} uses {fi!r} before definition")
            seen.add(node.name)
            topo.append(node.name)
            for fi in dict.fromkeys(node.fanins):
                fanouts.setdefault(fi, []).append(node.name)
        levels: Dict[str, int] = {}
        for node in self._nodes.values():
            if node.gate_type.is_input or node.gate_type.is_constant:
                levels[node.name] = 0
            else:
                levels[node.name] = 1 + max(levels[fi] for fi in node.fanins)
        self._topo = topo
        self._fanouts = {k: tuple(v) for k, v in fanouts.items()}
        self._levels = levels
        self._caches_valid = True

    def topological_order(self) -> List[str]:
        """All node names in a topological order (inputs first)."""
        self._ensure_caches()
        return list(self._topo)

    def topological_gates(self) -> List[str]:
        """Logic-gate names only, in topological order."""
        self._ensure_caches()
        return [n for n in self._topo if self._nodes[n].gate_type.is_logic]

    def level(self, name: str) -> int:
        """Logic level of a node: 0 for inputs/constants, else 1 + max fanin."""
        self._ensure_caches()
        return self._levels[self.node(name).name]

    @property
    def depth(self) -> int:
        """Maximum logic level over all nodes (0 for a gate-free circuit)."""
        self._ensure_caches()
        return max(self._levels.values(), default=0)

    def transitive_fanin(self, names: Iterable[str],
                         include_roots: bool = True) -> List[str]:
        """Nodes in the transitive fanin cone of ``names``, topologically.

        Includes primary inputs.  ``include_roots`` controls whether the seed
        nodes themselves are part of the result.
        """
        roots = [self.node(n).name for n in names]
        wanted = set(roots)
        stack = list(roots)
        while stack:
            cur = stack.pop()
            for fi in self._nodes[cur].fanins:
                if fi not in wanted:
                    wanted.add(fi)
                    stack.append(fi)
        if not include_roots:
            wanted -= set(roots)
        return [n for n in self.topological_order() if n in wanted]

    def cone(self, output: str, name: Optional[str] = None) -> "Circuit":
        """Extract the single-output sub-circuit feeding ``output``.

        The returned circuit contains exactly the transitive fanin cone of
        ``output`` and declares ``output`` as its only primary output.
        """
        keep = set(self.transitive_fanin([output]))
        sub = Circuit(name or f"{self.name}_cone_{output}")
        for node_name in self.topological_order():
            if node_name not in keep:
                continue
            node = self._nodes[node_name]
            sub._add_node(node)
        sub.set_output(output)
        return sub

    def subcircuit(self, outputs: Iterable[str],
                   name: Optional[str] = None) -> "Circuit":
        """Extract the union-cone sub-circuit feeding ``outputs``.

        The multi-output generalization of :meth:`cone`: the result holds
        exactly the union of the transitive fanin cones of ``outputs``
        (primary inputs keep their relative order) and declares the given
        nodes — in this circuit's output order where applicable, appended
        otherwise — as its primary outputs.
        """
        wanted = [self.node(o).name for o in outputs]
        if not wanted:
            raise CircuitError("subcircuit needs at least one output")
        keep = set(self.transitive_fanin(wanted))
        sub = Circuit(name or f"{self.name}_cone")
        for node_name in self.topological_order():
            if node_name in keep:
                sub._add_node(self._nodes[node_name])
        wanted_set = set(wanted)
        ordered = [o for o in self._outputs if o in wanted_set]
        ordered += [o for o in wanted if o not in ordered]
        for out in ordered:
            sub.set_output(out)
        return sub

    def copy(self, name: Optional[str] = None) -> "Circuit":
        """Return an independent copy of this circuit."""
        dup = Circuit(name or self.name)
        dup._nodes = dict(self._nodes)
        dup._outputs = list(self._outputs)
        return dup

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, assignment: Mapping[str, int]) -> Dict[str, int]:
        """Evaluate every node for one primary-input assignment.

        ``assignment`` maps each primary input name to 0/1.  Returns a dict
        from every node name to its value.  This is the slow reference
        evaluator; simulation uses :mod:`repro.sim`.
        """
        values: Dict[str, int] = {}
        for name in self.topological_order():
            node = self._nodes[name]
            if node.gate_type.is_input:
                try:
                    values[name] = assignment[name] & 1
                except KeyError:
                    raise CircuitError(
                        f"no value supplied for primary input {name!r}"
                    ) from None
            else:
                values[name] = evaluate_gate(
                    node.gate_type, [values[fi] for fi in node.fanins])
        return values

    def evaluate_outputs(self, assignment: Mapping[str, int]) -> Dict[str, int]:
        """Evaluate and return only the primary-output values."""
        values = self.evaluate(assignment)
        return {o: values[o] for o in self._outputs}

    # ------------------------------------------------------------------
    # Validation and reporting
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`CircuitError` if broken.

        Checks: at least one output, every output defined, no dangling logic
        (warning-level issues are not raised), arity rules already enforced
        at construction.
        """
        self._ensure_caches()
        if not self._outputs:
            raise CircuitError(f"circuit {self.name!r} declares no outputs")
        for out in self._outputs:
            if out not in self._nodes:
                raise CircuitError(f"output {out!r} is undefined")

    def __repr__(self) -> str:
        return (f"Circuit({self.name!r}: {len(self.inputs)} inputs, "
                f"{self.num_gates} gates, {len(self._outputs)} outputs)")

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())
