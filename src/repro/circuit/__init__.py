"""Circuit substrate: gate model, netlist DAG, analysis, and transforms."""

from .gate import (
    GateType,
    GateArityError,
    evaluate_gate,
    truth_table,
    inverted_type,
    parse_gate_type,
)
from .circuit import Circuit, CircuitError, Node
from .builder import CircuitBuilder, SequentialBuilder
from .sequential import FlipFlop, SequentialCircuit, is_sequential
from .unroll import frame_name, split_frame_name, unroll
from .analysis import (
    CircuitStats,
    circuit_stats,
    cone_size,
    fanout_stems,
    input_support,
    is_tree,
    node_index,
    reconvergent_gates,
    support_bitsets,
)
from .transform import (
    combinational_envelope,
    expand_xor,
    limit_fanout,
    strip_buffers,
    triplicate_gates,
)
from .restructure import map_to_nand, rebalance_chains
from .equivalence import EquivalenceResult, are_equivalent

__all__ = [
    "GateType", "GateArityError", "evaluate_gate", "truth_table",
    "inverted_type", "parse_gate_type",
    "Circuit", "CircuitError", "Node", "CircuitBuilder",
    "SequentialBuilder", "FlipFlop", "SequentialCircuit", "is_sequential",
    "frame_name", "split_frame_name", "unroll", "combinational_envelope",
    "CircuitStats", "circuit_stats", "cone_size", "fanout_stems",
    "input_support", "is_tree", "node_index", "reconvergent_gates",
    "support_bitsets",
    "expand_xor", "limit_fanout", "strip_buffers", "triplicate_gates",
    "map_to_nand", "rebalance_chains",
    "EquivalenceResult", "are_equivalent",
]
