"""Sequential netlists: flip-flops over a combinational core.

A :class:`SequentialCircuit` keeps the library's central invariant — every
:class:`~repro.circuit.circuit.Circuit` is purely combinational — while
letting netlists carry state.  The wrapper holds:

* ``core`` — the combinational logic, where every flip-flop's output
  (its *state name*, the ``Q`` pin) appears as a pseudo primary input;
* ``flops`` — one :class:`FlipFlop` record per state element, naming the
  core node that computes its next-state value (the ``D`` pin).

All reliability machinery stays combinational: analyses either unroll the
wrapper into ``k`` time frames (:func:`repro.circuit.unroll.unroll`) or
iterate the core frame by frame
(:class:`~repro.reliability.sequential.SequentialAnalyzer`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .circuit import Circuit, CircuitError
from .gate import GateType


@dataclass(frozen=True)
class FlipFlop:
    """One state element: output (``Q``) name, data (``D``) driver, kind.

    ``init`` is the optional known power-on value (0/1); ``None`` means the
    initial state is unknown and is modeled as a free input with signal
    probability one half.
    """

    name: str
    data: str
    gate_type: GateType = GateType.DFF
    init: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.gate_type.is_state:
            raise CircuitError(
                f"flip-flop {self.name!r}: gate type "
                f"{self.gate_type.value!r} is not a state element")
        if self.init not in (None, 0, 1):
            raise CircuitError(
                f"flip-flop {self.name!r}: init must be None, 0, or 1, "
                f"got {self.init!r}")


class SequentialCircuit:
    """A stateful netlist: a combinational core plus flip-flop records.

    The core's primary inputs are the union of the true primary inputs and
    the flip-flop state names; the core's outputs are the declared primary
    outputs (next-state drivers need not be outputs — they are named by the
    flop records).
    """

    def __init__(self, core: Circuit, flops: Sequence[FlipFlop],
                 name: Optional[str] = None):
        self.core = core
        self.flops: Tuple[FlipFlop, ...] = tuple(flops)
        self.name = name or core.name
        self._by_name: Dict[str, FlipFlop] = {}
        for ff in self.flops:
            if ff.name in self._by_name:
                raise CircuitError(
                    f"duplicate flip-flop output {ff.name!r}")
            self._by_name[ff.name] = ff

    # -- accessors ------------------------------------------------------
    @property
    def state_names(self) -> List[str]:
        """Flip-flop output (``Q``) names, in declaration order."""
        return [ff.name for ff in self.flops]

    @property
    def inputs(self) -> List[str]:
        """True primary inputs (state pseudo-inputs excluded)."""
        states = set(self._by_name)
        return [pi for pi in self.core.inputs if pi not in states]

    @property
    def outputs(self) -> List[str]:
        return self.core.outputs

    @property
    def num_gates(self) -> int:
        return self.core.num_gates

    @property
    def num_flops(self) -> int:
        return len(self.flops)

    def flop(self, name: str) -> FlipFlop:
        try:
            return self._by_name[name]
        except KeyError:
            raise CircuitError(f"no flip-flop named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.core

    # -- validation -----------------------------------------------------
    def validate(self) -> None:
        """Check the wrapper invariants; raise :class:`CircuitError`.

        Every state name must be a primary input of the core, every data
        driver an existing core node, and the core itself valid.
        """
        for ff in self.flops:
            if ff.name not in self.core:
                raise CircuitError(
                    f"flip-flop output {ff.name!r} is not a core node")
            if not self.core.node(ff.name).gate_type.is_input:
                raise CircuitError(
                    f"flip-flop output {ff.name!r} must be a pseudo-input "
                    "of the combinational core")
            if ff.data not in self.core:
                raise CircuitError(
                    f"flip-flop {ff.name!r}: data driver {ff.data!r} is "
                    "not defined in the core")
        self.core.validate()

    # -- identity -------------------------------------------------------
    def structural_signature(self) -> str:
        """SHA-256 over the core structure plus the flop wiring.

        The sequential analogue of
        :func:`repro.probability.weight_cache.structural_hash`: two
        wrappers with identical cores and identical flop records share a
        signature, so engine sessions can be keyed on it.
        """
        from ..probability.weight_cache import structural_hash
        h = hashlib.sha256()
        h.update(structural_hash(self.core).encode())
        for ff in self.flops:
            init = "x" if ff.init is None else str(ff.init)
            h.update(f"|{ff.name}|{ff.gate_type.value}|{ff.data}|{init}"
                     .encode())
        return h.hexdigest()

    def copy(self, name: Optional[str] = None) -> "SequentialCircuit":
        return SequentialCircuit(self.core.copy(), self.flops,
                                 name=name or self.name)

    def __repr__(self) -> str:
        return (f"SequentialCircuit({self.name!r}: "
                f"{len(self.inputs)} inputs, {self.num_gates} gates, "
                f"{self.num_flops} flops, {len(self.outputs)} outputs)")


def is_sequential(obj) -> bool:
    """True when ``obj`` is a :class:`SequentialCircuit`."""
    return isinstance(obj, SequentialCircuit)
