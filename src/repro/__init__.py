"""repro — accurate and scalable reliability analysis of logic circuits.

A from-scratch reproduction of Choudhury & Mohanram, *Accurate and scalable
reliability analysis of logic circuits* (DATE 2007): the observability-based
closed form, the single-pass algorithm with correlation coefficients for
reconvergent fanout, and every substrate they rest on (netlist model and
I/O, ROBDD engine, bit-parallel Monte Carlo fault injection, PTM and
exhaustive oracles, benchmark circuit generators, and the Sec. 5.1
applications).

Quick start::

    import repro

    result = repro.analyze("b9", 0.05)           # cold: builds the session
    print(result.per_output)                     # delta_y per output
    result = repro.analyze("b9", 0.01)           # warm: kernel time only
    curve = repro.sweep("b9", [0.001, 0.01, 0.1])

``repro.analyze`` / ``repro.sweep`` route through a process-wide
persistent :class:`~repro.engine.AnalysisEngine` that keeps each
circuit's eps-independent state (weight vectors, compiled plans) hot
between calls; see ``docs/engine.md``.  The underlying classes
(:class:`SinglePassAnalyzer` et al.) remain available for direct use.
"""

from . import obs
from .circuit import (
    Circuit,
    CircuitBuilder,
    CircuitError,
    GateType,
    circuit_stats,
)
from .io import load_bench, load_blif, save_bench, save_blif, save_verilog
from .probability import ErrorProbability, WeightData, compute_weights
from .reliability import (
    ConsolidatedAnalyzer,
    ObservabilityModel,
    SinglePassAnalyzer,
    SinglePassResult,
    TensorBatch,
    exhaustive_exact_reliability,
    ptm_reliability,
)
from .sim import monte_carlo_reliability
from .circuits import get_benchmark, list_benchmarks, TABLE2_BENCHMARKS
from .incremental import CircuitWorkspace, EditReport, parse_edit
from .engine import (
    AnalysisEngine,
    AnalysisRequest,
    AnalysisResponse,
    analyze,
    default_engine,
    set_default_engine,
    sweep,
)

__version__ = "1.1.0"

__all__ = [
    "Circuit", "CircuitBuilder", "CircuitError", "GateType", "circuit_stats",
    "load_bench", "load_blif", "save_bench", "save_blif", "save_verilog",
    "ErrorProbability", "WeightData", "compute_weights",
    "ConsolidatedAnalyzer", "ObservabilityModel", "SinglePassAnalyzer",
    "SinglePassResult", "TensorBatch", "exhaustive_exact_reliability",
    "ptm_reliability", "monte_carlo_reliability",
    "get_benchmark", "list_benchmarks", "TABLE2_BENCHMARKS",
    "CircuitWorkspace", "EditReport", "parse_edit",
    "AnalysisEngine", "AnalysisRequest", "AnalysisResponse",
    "analyze", "sweep", "default_engine", "set_default_engine",
    "obs",
    "__version__",
]
