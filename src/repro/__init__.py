"""repro — accurate and scalable reliability analysis of logic circuits.

A from-scratch reproduction of Choudhury & Mohanram, *Accurate and scalable
reliability analysis of logic circuits* (DATE 2007): the observability-based
closed form, the single-pass algorithm with correlation coefficients for
reconvergent fanout, and every substrate they rest on (netlist model and
I/O, ROBDD engine, bit-parallel Monte Carlo fault injection, PTM and
exhaustive oracles, benchmark circuit generators, and the Sec. 5.1
applications).

Quick start::

    from repro import get_benchmark, SinglePassAnalyzer

    circuit = get_benchmark("b9")
    analyzer = SinglePassAnalyzer(circuit)       # weights computed once
    result = analyzer.run(0.05)                  # eps for every gate
    print(result.per_output)                     # delta_y per output
"""

from . import obs
from .circuit import (
    Circuit,
    CircuitBuilder,
    CircuitError,
    GateType,
    circuit_stats,
)
from .io import load_bench, load_blif, save_bench, save_blif, save_verilog
from .probability import ErrorProbability, WeightData, compute_weights
from .reliability import (
    ConsolidatedAnalyzer,
    ObservabilityModel,
    SinglePassAnalyzer,
    SinglePassResult,
    exhaustive_exact_reliability,
    ptm_reliability,
    single_pass_reliability,
)
from .sim import monte_carlo_reliability
from .circuits import get_benchmark, list_benchmarks, TABLE2_BENCHMARKS

__version__ = "1.0.0"

__all__ = [
    "Circuit", "CircuitBuilder", "CircuitError", "GateType", "circuit_stats",
    "load_bench", "load_blif", "save_bench", "save_blif", "save_verilog",
    "ErrorProbability", "WeightData", "compute_weights",
    "ConsolidatedAnalyzer", "ObservabilityModel", "SinglePassAnalyzer",
    "SinglePassResult", "exhaustive_exact_reliability", "ptm_reliability",
    "single_pass_reliability", "monte_carlo_reliability",
    "get_benchmark", "list_benchmarks", "TABLE2_BENCHMARKS",
    "obs",
    "__version__",
]
