"""Pluggable array backend: one numpy-shaped namespace, many libraries.

The compiled kernels (:mod:`repro.reliability.compiled_pass`) and the
multi-circuit tensor pass (:mod:`repro.reliability.tensor_pass`) are pure
array programs — indexing, broadcasting, ``where``/``minimum``/``einsum``
— with no numpy-only tricks left on the hot path.  This module gives them
a minimal façade over that vocabulary so the same kernel code runs on

* **numpy** — the zero-dependency default, always available;
* **CuPy** — drop-in numpy on CUDA, optional;
* **torch** — CPU or GPU tensors, optional (the CI backend-parity job
  runs the kernels under ``REPRO_ARRAY_BACKEND=torch``).

Selection is by name: the ``REPRO_ARRAY_BACKEND`` environment variable,
the CLI's ``--backend`` flag (which calls :func:`set_default_backend`),
or an explicit ``backend=`` argument to the kernels.  A requested backend
whose library is not importable **falls back to numpy with a warning**
rather than failing — numpy stays the floor everywhere, and optional
accelerators never become load-bearing.

The façade is deliberately tiny.  Kernels may only touch:

``asarray / zeros / empty / ones`` (creation, explicit dtype),
``where / minimum / maximum / clip`` (elementwise selection),
``concatenate / einsum`` (structure), ``to_numpy`` (exfiltration), and
basic arithmetic / comparison operators plus integer fancy indexing,
which every supported library implements natively.
"""

from __future__ import annotations

import os
import warnings
from typing import Any, Dict, Optional

import numpy as np

#: Names :func:`get_backend` understands, in probe order.
BACKEND_NAMES = ("numpy", "cupy", "torch")

_ENV_VAR = "REPRO_ARRAY_BACKEND"


class BackendUnavailable(RuntimeError):
    """The requested array library is not importable in this process."""


class NumpyBackend:
    """The reference backend: a thin veneer over numpy itself."""

    name = "numpy"
    #: True only for the numpy backend — kernels use it to skip no-op
    #: host/device transfers on the default path.
    is_numpy = True

    def __init__(self) -> None:
        self.xp = np

    # -- creation -------------------------------------------------------
    def asarray(self, x: Any, dtype: Any = None) -> Any:
        return np.asarray(x, dtype=dtype)

    def zeros(self, shape: Any, dtype: Any) -> Any:
        return np.zeros(shape, dtype=dtype)

    def empty(self, shape: Any, dtype: Any) -> Any:
        return np.empty(shape, dtype=dtype)

    def ones(self, shape: Any, dtype: Any) -> Any:
        return np.ones(shape, dtype=dtype)

    # -- elementwise ----------------------------------------------------
    def where(self, cond: Any, a: Any, b: Any) -> Any:
        return np.where(cond, a, b)

    def minimum(self, a: Any, b: Any) -> Any:
        return np.minimum(a, b)

    def maximum(self, a: Any, b: Any) -> Any:
        return np.maximum(a, b)

    def clip(self, a: Any, lo: Any, hi: Any) -> Any:
        return np.clip(a, lo, hi)

    # -- structure ------------------------------------------------------
    def concatenate(self, arrays: Any, axis: int = 0) -> Any:
        return np.concatenate(arrays, axis=axis)

    def einsum(self, subscripts: str, *operands: Any) -> Any:
        return np.einsum(subscripts, *operands)

    # -- host interop ---------------------------------------------------
    def to_numpy(self, x: Any) -> np.ndarray:
        return np.asarray(x)

    def index_array(self, x: Any) -> Any:
        """Integer array usable for fancy indexing on this backend."""
        return np.asarray(x, dtype=np.intp)

    def synchronize(self) -> None:
        """Barrier for async devices (no-op on host backends)."""


class CupyBackend(NumpyBackend):
    """CuPy: numpy's API on CUDA; only creation/transfer differ."""

    name = "cupy"
    is_numpy = False

    def __init__(self) -> None:  # pragma: no cover - needs CUDA
        try:
            import cupy
        except ImportError as exc:
            raise BackendUnavailable("cupy is not installed") from exc
        self.xp = cupy

    def asarray(self, x, dtype=None):  # pragma: no cover - needs CUDA
        return self.xp.asarray(x, dtype=dtype)

    def zeros(self, shape, dtype):  # pragma: no cover - needs CUDA
        return self.xp.zeros(shape, dtype=dtype)

    def empty(self, shape, dtype):  # pragma: no cover - needs CUDA
        return self.xp.empty(shape, dtype=dtype)

    def ones(self, shape, dtype):  # pragma: no cover - needs CUDA
        return self.xp.ones(shape, dtype=dtype)

    def where(self, cond, a, b):  # pragma: no cover - needs CUDA
        return self.xp.where(cond, a, b)

    def minimum(self, a, b):  # pragma: no cover - needs CUDA
        return self.xp.minimum(a, b)

    def maximum(self, a, b):  # pragma: no cover - needs CUDA
        return self.xp.maximum(a, b)

    def clip(self, a, lo, hi):  # pragma: no cover - needs CUDA
        return self.xp.clip(a, lo, hi)

    def concatenate(self, arrays, axis=0):  # pragma: no cover - needs CUDA
        return self.xp.concatenate(arrays, axis=axis)

    def einsum(self, subscripts, *operands):  # pragma: no cover
        return self.xp.einsum(subscripts, *operands)

    def to_numpy(self, x):  # pragma: no cover - needs CUDA
        return self.xp.asnumpy(x)

    def index_array(self, x):  # pragma: no cover - needs CUDA
        return self.xp.asarray(x, dtype=self.xp.intp)

    def synchronize(self) -> None:  # pragma: no cover - needs CUDA
        self.xp.cuda.get_current_stream().synchronize()


class TorchBackend:
    """PyTorch tensors behind the numpy-shaped façade (CPU by default)."""

    name = "torch"
    is_numpy = False

    def __init__(self, device: Optional[str] = None) -> None:
        try:
            import torch
        except ImportError as exc:
            raise BackendUnavailable("torch is not installed") from exc
        self.xp = torch
        self.device = device or os.environ.get("REPRO_TORCH_DEVICE", "cpu")

    def _dtype(self, dtype: Any) -> Any:
        torch = self.xp
        if dtype is None or isinstance(dtype, torch.dtype):
            return dtype
        return {
            np.dtype(np.float64): torch.float64,
            np.dtype(np.float32): torch.float32,
            np.dtype(np.bool_): torch.bool,
            np.dtype(np.intp): torch.long,
            np.dtype(np.int64): torch.long,
        }[np.dtype(dtype)]

    # -- creation -------------------------------------------------------
    def asarray(self, x, dtype=None):
        torch = self.xp
        if isinstance(x, torch.Tensor):
            return x.to(dtype=self._dtype(dtype)) if dtype is not None else x
        return torch.as_tensor(np.ascontiguousarray(x),
                               dtype=self._dtype(dtype), device=self.device)

    def zeros(self, shape, dtype):
        return self.xp.zeros(shape, dtype=self._dtype(dtype),
                             device=self.device)

    def empty(self, shape, dtype):
        return self.xp.empty(shape, dtype=self._dtype(dtype),
                             device=self.device)

    def ones(self, shape, dtype):
        return self.xp.ones(shape, dtype=self._dtype(dtype),
                            device=self.device)

    # -- elementwise ----------------------------------------------------
    def where(self, cond, a, b):
        return self.xp.where(cond, a, b)

    def minimum(self, a, b):
        if not isinstance(b, self.xp.Tensor):
            return self.xp.clamp(a, max=b)
        return self.xp.minimum(a, b)

    def maximum(self, a, b):
        if not isinstance(b, self.xp.Tensor):
            return self.xp.clamp(a, min=b)
        return self.xp.maximum(a, b)

    def clip(self, a, lo, hi):
        return self.xp.clamp(a, min=lo, max=hi)

    # -- structure ------------------------------------------------------
    def concatenate(self, arrays, axis=0):
        return self.xp.cat(tuple(arrays), dim=axis)

    def einsum(self, subscripts, *operands):
        return self.xp.einsum(subscripts, *operands)

    # -- host interop ---------------------------------------------------
    def to_numpy(self, x):
        if isinstance(x, self.xp.Tensor):
            return x.detach().cpu().numpy()
        return np.asarray(x)

    def index_array(self, x):
        return self.xp.as_tensor(np.ascontiguousarray(x),
                                 dtype=self.xp.long, device=self.device)

    def synchronize(self) -> None:
        if self.device != "cpu" and self.xp.cuda.is_available():
            self.xp.cuda.synchronize()  # pragma: no cover - needs CUDA


_CONSTRUCTORS = {
    "numpy": NumpyBackend,
    "cupy": CupyBackend,
    "torch": TorchBackend,
}

#: Memoized backend instances (one per name per process).
_INSTANCES: Dict[str, Any] = {}

#: Process-wide default name set by :func:`set_default_backend`
#: (the CLI's ``--backend``); ``None`` defers to the environment.
_DEFAULT_NAME: Optional[str] = None


def available_backends() -> Dict[str, bool]:
    """Capability probe: ``{backend name: importable right now}``."""
    import importlib.util
    out = {"numpy": True}
    for name in ("cupy", "torch"):
        try:
            out[name] = importlib.util.find_spec(name) is not None
        except (ImportError, ValueError):  # pragma: no cover - exotic envs
            out[name] = False
    return out


def set_default_backend(name: Optional[str]) -> None:
    """Set the process-wide default backend name (``None``/"auto" resets).

    Unknown names raise immediately; an *unavailable* (but known) backend
    is accepted here and falls back to numpy at :func:`get_backend` time,
    so e.g. ``--backend torch`` on a torch-less host degrades gracefully.
    """
    global _DEFAULT_NAME
    if name in (None, "auto"):
        _DEFAULT_NAME = None
        return
    if name not in _CONSTRUCTORS:
        raise ValueError(
            f"unknown array backend {name!r}: expected one of "
            f"{', '.join(BACKEND_NAMES)} (or 'auto')")
    _DEFAULT_NAME = name


def default_backend_name() -> str:
    """The name :func:`get_backend` resolves when called without one."""
    if _DEFAULT_NAME is not None:
        return _DEFAULT_NAME
    env = os.environ.get(_ENV_VAR, "").strip()
    return env if env else "numpy"


def get_backend(name: Optional[str] = None,
                strict: bool = False) -> NumpyBackend:
    """Resolve a backend instance by name, falling back to numpy.

    ``name=None`` / ``"auto"`` resolves the process default (CLI flag,
    else ``REPRO_ARRAY_BACKEND``, else numpy).  When the resolved library
    is absent the numpy backend is returned and a ``RuntimeWarning`` is
    emitted — pass ``strict=True`` to get :class:`BackendUnavailable`
    instead (used by tests that must not silently skip a backend).
    """
    if name in (None, "auto"):
        name = default_backend_name()
    if name not in _CONSTRUCTORS:
        raise ValueError(
            f"unknown array backend {name!r}: expected one of "
            f"{', '.join(BACKEND_NAMES)} (or 'auto')")
    instance = _INSTANCES.get(name)
    if instance is not None:
        return instance
    try:
        instance = _CONSTRUCTORS[name]()
    except BackendUnavailable:
        if strict:
            raise
        warnings.warn(
            f"array backend {name!r} is not available in this "
            "environment; falling back to numpy",
            RuntimeWarning, stacklevel=2)
        # The fallback is NOT memoized under the failed name: a later
        # strict resolve must still raise, and a library appearing
        # mid-process (rare, but tests do it) must be re-probed.
        return get_backend("numpy")
    _INSTANCES[name] = instance
    return instance
