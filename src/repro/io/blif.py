"""Berkeley Logic Interchange Format (BLIF) reader and writer.

The reader supports ``.model``, ``.inputs``, ``.outputs``, ``.names``
(arbitrary single-output covers), ``.latch``, and ``.end``.  Covers that
match a standard gate (BUF/NOT/AND/NAND/OR/NOR/XOR/XNOR and constants) are
imported as that gate; any other cover is synthesized into a two-level
NOT/AND/OR network so that *every* valid combinational BLIF file can be
analyzed.  ``.latch`` elements parse into a
:class:`~repro.circuit.sequential.SequentialCircuit` (one global clock;
latch type/control tokens are ignored).  Subcircuits are rejected.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..circuit import (
    Circuit,
    CircuitError,
    FlipFlop,
    GateType,
    SequentialCircuit,
)


class BlifFormatError(CircuitError):
    """Raised for malformed or unsupported BLIF input."""


def _tokenize(text: str) -> List[List[str]]:
    """Split BLIF text into logical lines (handling ``\\`` continuations)."""
    logical: List[str] = []
    buffer = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        if line.endswith("\\"):
            buffer += line[:-1] + " "
            continue
        logical.append(buffer + line)
        buffer = ""
    if buffer.strip():
        logical.append(buffer)
    return [ln.split() for ln in logical]


def _classify_cover(n_in: int, cubes: List[Tuple[str, str]]
                    ) -> Optional[Tuple[GateType, List[int]]]:
    """Recognize a cover as a standard gate.

    Returns ``(gate_type, input_polarities)`` where polarity 1 means the
    fanin is used directly and 0 means complemented, or ``None`` when the
    cover is not a standard gate shape.  Only covers whose recognized form
    uses every input exactly once qualify.
    """
    if n_in == 0:
        if len(cubes) == 1 and cubes[0][1] == "1":
            return GateType.CONST1, []
        return GateType.CONST0, []
    on_cubes = [c for c, v in cubes if v == "1"]
    off_cubes = [c for c, v in cubes if v == "0"]
    if on_cubes and off_cubes:
        return None  # mixed covers are nonstandard; synthesize
    target = on_cubes if on_cubes else off_cubes
    inverted_output = bool(off_cubes)
    if not target:
        return (GateType.CONST1 if inverted_output else GateType.CONST0), []
    if n_in == 1:
        cube = target[0]
        if len(target) != 1 or cube not in ("0", "1"):
            return None
        pol = 1 if cube == "1" else 0
        if inverted_output:
            pol ^= 1
        return (GateType.BUF if pol else GateType.NOT), [1]
    # Single full cube => AND-like.
    if len(target) == 1 and "-" not in target[0]:
        pols = [1 if ch == "1" else 0 for ch in target[0]]
        return (GateType.NAND if inverted_output else GateType.AND), pols
    # One single-literal cube per input => OR-like.
    if (len(target) == n_in
            and all(c.count("-") == n_in - 1 for c in target)):
        pols: List[Optional[int]] = [None] * n_in
        for cube in target:
            pos = next(i for i, ch in enumerate(cube) if ch != "-")
            if pols[pos] is not None:
                return None
            pols[pos] = 1 if cube[pos] == "1" else 0
        assert all(p is not None for p in pols)
        return (GateType.NOR if inverted_output else GateType.OR), list(pols)
    # Parity covers (all 2^(n-1) odd cubes) => XOR-like.
    if len(target) == 1 << (n_in - 1) and all("-" not in c for c in target):
        ones = {c for c in target}
        odd = {format(k, f"0{n_in}b")[::-1]  # bit i of k = input i
               for k in range(1 << n_in)
               if bin(k).count("1") % 2 == 1}
        odd = {"".join(c) for c in odd}
        if ones == odd:
            gt = GateType.XNOR if inverted_output else GateType.XOR
            return gt, [1] * n_in
        even = {format(k, f"0{n_in}b")[::-1] for k in range(1 << n_in)
                if bin(k).count("1") % 2 == 0}
        if ones == even:
            gt = GateType.XOR if inverted_output else GateType.XNOR
            return gt, [1] * n_in
    return None


class _BlifBuilder:
    """Accumulates parsed .names entries, then emits in dependency order."""

    def __init__(self, model: str):
        self.model = model
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        # target -> (fanins, cubes)
        self.covers: Dict[str, Tuple[List[str], List[Tuple[str, str]]]] = {}
        self.order: List[str] = []
        # .latch records: (data, output, init-or-None), in file order.
        self.latches: List[Tuple[str, str, Optional[int]]] = []

    def build(self) -> Union[Circuit, SequentialCircuit]:
        circuit = Circuit(self.model)
        for pi in self.inputs:
            circuit.add_input(pi)
        latch_outputs = [q for _, q, _ in self.latches]
        for q in latch_outputs:
            if q in circuit or q in self.covers:
                raise BlifFormatError(f"latch output {q!r} defined twice")
            # Latch outputs are pseudo-inputs of the combinational core.
            circuit.add_input(q)
        defined = set(self.inputs) | set(self.covers) | set(latch_outputs)
        for d, q, _ in self.latches:
            if d not in defined:
                raise BlifFormatError(
                    f".latch {q!r}: data input {d!r} is undefined")
        emitted = set(self.inputs) | set(latch_outputs)
        pending = list(self.order)
        counter = [0]

        def fresh() -> str:
            while True:
                cand = f"_blif{counter[0]}"
                counter[0] += 1
                if cand not in circuit and cand not in self.covers:
                    return cand

        def emit(target: str) -> None:
            fanins, cubes = self.covers[target]
            std = _classify_cover(len(fanins), cubes)
            if std is not None:
                gate_type, pols = std
                if gate_type.is_constant:
                    circuit.add_const(
                        target, 1 if gate_type is GateType.CONST1 else 0)
                    return
                wired = []
                for fi, pol in zip(fanins, pols):
                    if pol:
                        wired.append(fi)
                    else:
                        inv = fresh()
                        circuit.add_gate(inv, GateType.NOT, [fi])
                        wired.append(inv)
                if gate_type in (GateType.BUF, GateType.NOT):
                    circuit.add_gate(target, gate_type, [wired[0]])
                else:
                    circuit.add_gate(target, gate_type, wired)
                return
            _synthesize_cover(circuit, target, fanins, cubes, fresh)

        while pending:
            progressed = False
            still = []
            for t in pending:
                fanins, _ = self.covers[t]
                if all(f in emitted for f in fanins):
                    for f in fanins:
                        if f not in circuit:
                            raise BlifFormatError(
                                f".names {t!r} references undefined {f!r}")
                    emit(t)
                    emitted.add(t)
                    progressed = True
                else:
                    missing = [f for f in fanins
                               if f not in emitted and f not in self.covers]
                    if missing:
                        raise BlifFormatError(
                            f".names {t!r} references undefined {missing[0]!r}")
                    still.append(t)
            if not progressed:
                raise BlifFormatError(
                    f"combinational cycle involving: {', '.join(still[:5])}")
            pending = still
        for po in self.outputs:
            if po not in circuit:
                raise BlifFormatError(f"output {po!r} is undefined")
            circuit.set_output(po)
        circuit.validate()
        if self.latches:
            seq = SequentialCircuit(
                circuit,
                [FlipFlop(name=q, data=d, gate_type=GateType.DFF, init=init)
                 for d, q, init in self.latches],
                name=self.model)
            seq.validate()
            return seq
        return circuit


def _synthesize_cover(circuit: Circuit, target: str, fanins: List[str],
                      cubes: List[Tuple[str, str]], fresh) -> None:
    """Emit a two-level network realizing an arbitrary single-output cover."""
    on_cubes = [c for c, v in cubes if v == "1"]
    off_cubes = [c for c, v in cubes if v == "0"]
    use_cubes, invert = (on_cubes, False) if on_cubes else (off_cubes, True)
    inverters: Dict[str, str] = {}

    def inverted(fi: str) -> str:
        if fi not in inverters:
            inv = fresh()
            circuit.add_gate(inv, GateType.NOT, [fi])
            inverters[fi] = inv
        return inverters[fi]

    products: List[str] = []
    for cube in use_cubes:
        if len(cube) != len(fanins):
            raise BlifFormatError(
                f".names {target!r}: cube {cube!r} has wrong width")
        lits = []
        for fi, ch in zip(fanins, cube):
            if ch == "1":
                lits.append(fi)
            elif ch == "0":
                lits.append(inverted(fi))
            elif ch != "-":
                raise BlifFormatError(
                    f".names {target!r}: bad cube character {ch!r}")
        if not lits:
            # Tautological cube: constant output.
            circuit.add_const(target, 0 if invert else 1)
            return
        if len(lits) == 1:
            products.append(lits[0])
        else:
            p = fresh()
            circuit.add_gate(p, GateType.AND, lits)
            products.append(p)
    if not products:
        circuit.add_const(target, 1 if invert else 0)
    elif len(products) == 1:
        circuit.add_gate(target, GateType.NOT if invert else GateType.BUF,
                         [products[0]])
    else:
        circuit.add_gate(target, GateType.NOR if invert else GateType.OR,
                         products)


def loads_blif(text: str, name: Optional[str] = None
               ) -> Union[Circuit, SequentialCircuit]:
    """Parse BLIF text into a circuit.

    Returns a :class:`SequentialCircuit` when the model declares
    ``.latch`` elements, else a plain combinational :class:`Circuit`.
    """
    lines = _tokenize(text)
    builder: Optional[_BlifBuilder] = None
    current_names: Optional[Tuple[str, List[str]]] = None
    cubes: List[Tuple[str, str]] = []

    def flush_names() -> None:
        nonlocal current_names, cubes
        if current_names is None:
            return
        target, fanins = current_names
        assert builder is not None
        if target in builder.covers:
            raise BlifFormatError(f"node {target!r} defined twice")
        builder.covers[target] = (fanins, list(cubes))
        builder.order.append(target)
        current_names, cubes = None, []

    for tokens in lines:
        head = tokens[0]
        if head.startswith("."):
            flush_names()
            directive = head.lower()
            if directive == ".model":
                builder = _BlifBuilder(
                    name or (tokens[1] if len(tokens) > 1 else "blif"))
            elif directive == ".inputs":
                _require(builder, head).inputs.extend(tokens[1:])
            elif directive == ".outputs":
                _require(builder, head).outputs.extend(tokens[1:])
            elif directive == ".names":
                if len(tokens) < 2:
                    raise BlifFormatError(".names requires a target signal")
                current_names = (tokens[-1], tokens[1:-1])
            elif directive == ".end":
                break
            elif directive == ".latch":
                _require(builder, head).latches.append(_parse_latch(tokens))
            elif directive in (".subckt", ".gate", ".mlatch"):
                raise BlifFormatError(
                    f"{directive} is not supported")
            else:
                # Unknown dot-directives (e.g. .default_input_arrival) are
                # ignored for interoperability.
                continue
        else:
            if current_names is None:
                raise BlifFormatError(f"unexpected line: {' '.join(tokens)}")
            n_in = len(current_names[1])
            if n_in == 0:
                if len(tokens) != 1 or tokens[0] not in ("0", "1"):
                    raise BlifFormatError(
                        f"bad constant row for {current_names[0]!r}")
                cubes.append(("", tokens[0]))
            else:
                if len(tokens) != 2:
                    raise BlifFormatError(
                        f"bad cover row for {current_names[0]!r}: "
                        f"{' '.join(tokens)}")
                if len(tokens[0]) != n_in:
                    raise BlifFormatError(
                        f"cube {tokens[0]!r} for {current_names[0]!r} has "
                        f"width {len(tokens[0])}, expected {n_in}")
                if tokens[1] not in ("0", "1"):
                    raise BlifFormatError(
                        f"cover output must be 0 or 1, got {tokens[1]!r}")
                cubes.append((tokens[0], tokens[1]))
    flush_names()
    if builder is None:
        raise BlifFormatError("no .model found")
    return builder.build()


def _require(builder: Optional[_BlifBuilder], directive: str) -> _BlifBuilder:
    if builder is None:
        raise BlifFormatError(f"{directive} before .model")
    return builder


def _parse_latch(tokens: List[str]) -> Tuple[str, str, Optional[int]]:
    """Parse ``.latch <input> <output> [<type> <control>] [<init-val>]``.

    The optional init value follows the BLIF convention: 0/1 are known
    power-on states, 2 (don't care) and 3 (unknown) map to ``None``.
    Latch type and control tokens are accepted and ignored (the library
    models one global clock).
    """
    body = tokens[1:]
    if len(body) < 2:
        raise BlifFormatError(
            ".latch requires <input> <output> "
            "[<type> <control>] [<init-val>]")
    d, q = body[0], body[1]
    rest = body[2:]
    init: Optional[int] = None
    if rest and rest[-1] in ("0", "1", "2", "3"):
        value = int(rest.pop())
        init = value if value in (0, 1) else None
    if len(rest) not in (0, 2):
        raise BlifFormatError(
            f".latch {q!r}: unexpected tokens {' '.join(rest)!r}")
    return d, q, init


def load_blif(path: Union[str, Path]) -> Union[Circuit, SequentialCircuit]:
    """Read a BLIF file from disk."""
    path = Path(path)
    return loads_blif(path.read_text(), name=path.stem)


_COVER_OF_TYPE = {
    GateType.BUF: lambda n: [("1", "1")],
    GateType.NOT: lambda n: [("0", "1")],
    GateType.AND: lambda n: [("1" * n, "1")],
    GateType.NAND: lambda n: [("1" * n, "0")],
    GateType.OR: lambda n: [("-" * i + "1" + "-" * (n - i - 1), "1")
                            for i in range(n)],
    GateType.NOR: lambda n: [("-" * i + "1" + "-" * (n - i - 1), "0")
                             for i in range(n)],
}


def dumps_blif(circuit: Union[Circuit, SequentialCircuit]) -> str:
    """Serialize a circuit to BLIF text (XOR/XNOR emitted as parity covers).

    Sequential circuits emit one ``.latch`` line per state element (init
    value 3 — unknown — unless the flop carries a known ``init``).
    """
    latch_lines: List[str] = []
    if isinstance(circuit, SequentialCircuit):
        seq = circuit
        for ff in seq.flops:
            init = 3 if ff.init is None else ff.init
            latch_lines.append(f".latch {ff.data} {ff.name} {init}")
        inputs = seq.inputs
        circuit = seq.core
    else:
        inputs = circuit.inputs
    lines = [f".model {circuit.name}",
             ".inputs " + " ".join(inputs),
             ".outputs " + " ".join(circuit.outputs)]
    lines.extend(latch_lines)
    for node in circuit:
        if node.gate_type.is_input:
            continue
        if node.gate_type.is_constant:
            lines.append(f".names {node.name}")
            if node.gate_type is GateType.CONST1:
                lines.append("1")
            continue
        lines.append(f".names {' '.join(node.fanins)} {node.name}")
        n = node.arity
        if node.gate_type in _COVER_OF_TYPE:
            rows = _COVER_OF_TYPE[node.gate_type](n)
            lines.extend(f"{cube} {val}" for cube, val in rows)
        else:  # XOR / XNOR: explicit parity cover
            want = 1 if node.gate_type is GateType.XOR else 0
            for k in range(1 << n):
                if bin(k).count("1") % 2 == want:
                    cube = "".join(str((k >> i) & 1) for i in range(n))
                    lines.append(f"{cube} 1")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def save_blif(circuit: Union[Circuit, SequentialCircuit],
              path: Union[str, Path]) -> None:
    """Write a circuit to a BLIF file."""
    Path(path).write_text(dumps_blif(circuit))
