"""Graphviz DOT writer for circuit visualization.

Renders the netlist DAG (inputs as diamonds, gates as boxes labeled with
their type, outputs double-circled) and can color nodes by any scalar
annotation — per-node error probability, observability, criticality —
turning the reliability analyses into heat maps:

    from repro.io import dumps_dot
    result = SinglePassAnalyzer(c).run(0.05)
    text = dumps_dot(c, heat={n: result.node_delta(n) for n in c.gates})
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Union

from ..circuit import Circuit


def _quote(name: str) -> str:
    escaped = name.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _heat_color(value: float, lo: float, hi: float) -> str:
    """Map a scalar to a white->red HSV fill."""
    if hi <= lo:
        frac = 0.0
    else:
        frac = min(1.0, max(0.0, (value - lo) / (hi - lo)))
    # Hue 0 (red); saturation scales with the value; full brightness.
    return f"0.000 {frac:.3f} 1.000"


def dumps_dot(circuit: Circuit,
              heat: Optional[Dict[str, float]] = None,
              heat_label: str = "heat") -> str:
    """Serialize the circuit as a Graphviz digraph.

    ``heat`` optionally maps node names to scalars rendered as a
    white-to-red fill (plus a numeric suffix in the node label).
    """
    lines = [f"digraph {_quote(circuit.name)} {{",
             "  rankdir=LR;",
             "  node [fontname=\"Helvetica\", fontsize=10];"]
    lo = min(heat.values()) if heat else 0.0
    hi = max(heat.values()) if heat else 1.0
    outputs = set(circuit.outputs)
    for node in circuit:
        name = node.name
        attrs = []
        if node.gate_type.is_input:
            attrs.append("shape=diamond")
            label = name
        elif node.gate_type.is_constant:
            attrs.append("shape=plaintext")
            label = "1" if node.gate_type.value == "const1" else "0"
        else:
            attrs.append("shape=box")
            label = f"{name}\\n{node.gate_type.value.upper()}"
        if name in outputs:
            attrs.append("peripheries=2")
        if heat and name in heat:
            label += f"\\n{heat_label}={heat[name]:.3g}"
            attrs.append("style=filled")
            attrs.append(
                f'fillcolor="{_heat_color(heat[name], lo, hi)}"')
        attrs.append(f'label="{label}"')
        lines.append(f"  {_quote(name)} [{', '.join(attrs)}];")
    for node in circuit:
        for fi in node.fanins:
            lines.append(f"  {_quote(fi)} -> {_quote(node.name)};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def save_dot(circuit: Circuit, path: Union[str, Path],
             heat: Optional[Dict[str, float]] = None,
             heat_label: str = "heat") -> None:
    """Write the circuit's DOT rendering to a file."""
    Path(path).write_text(dumps_dot(circuit, heat=heat,
                                    heat_label=heat_label))
