"""Reader for the structural Verilog subset this library writes.

Supports one module with ``input``/``output``/``wire`` declarations and
``assign`` statements whose right-hand sides are single-operator
expressions (``a & b & c``, ``a ^ b``, ``~(...)``, ``~a``, ``1'b0``,
``1'b1``) plus escaped identifiers — exactly the shape
:func:`repro.io.verilog.dumps_verilog` produces, so netlists round-trip.
General Verilog is out of scope (use the ``.bench``/BLIF readers for
interchange).
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..circuit import Circuit, CircuitError, GateType

_MODULE_RE = re.compile(r"module\s+(\S+)\s*\((.*?)\)\s*;", re.DOTALL)
_DECL_RE = re.compile(r"^\s*(input|output|wire)\s+(.+?)\s*;\s*$")
_ASSIGN_RE = re.compile(r"^\s*assign\s+(.+?)\s*=\s*(.+?)\s*;\s*$")

_OP_TYPES = {
    "&": (GateType.AND, GateType.NAND),
    "|": (GateType.OR, GateType.NOR),
    "^": (GateType.XOR, GateType.XNOR),
}


class VerilogFormatError(CircuitError):
    """Raised for Verilog text outside the supported structural subset."""


def _split_tokens(decl: str) -> List[str]:
    """Split a declaration/port list on commas, honoring escaped names."""
    return [tok.strip() for tok in decl.split(",") if tok.strip()]


def _unescape(name: str) -> str:
    name = name.strip()
    if name.startswith("\\"):
        return name[1:].strip()
    return name


def _parse_operands(expr: str) -> Tuple[Optional[str], List[str]]:
    """Return (operator, operands) for a single-op expression."""
    ops_present = [op for op in "&|^" if op in expr]
    if len(ops_present) > 1:
        raise VerilogFormatError(
            f"mixed operators not supported: {expr!r}")
    if not ops_present:
        return None, [_unescape(expr)]
    op = ops_present[0]
    return op, [_unescape(tok) for tok in expr.split(op)]


def loads_verilog(text: str) -> Circuit:
    """Parse the supported structural-Verilog subset into a circuit."""
    # Strip comments.
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)
    header = _MODULE_RE.search(text)
    if not header:
        raise VerilogFormatError("no module header found")
    name = header.group(1)
    body = text[header.end():]
    end = body.find("endmodule")
    if end < 0:
        raise VerilogFormatError("missing endmodule")
    body = body[:end]

    inputs: List[str] = []
    outputs: List[str] = []
    assigns: Dict[str, Tuple[Optional[GateType], List[str], int]] = {}
    order: List[str] = []
    # Re-join statements split across lines: statements end with ';'.
    statements = [s.strip() + ";" for s in body.split(";") if s.strip()]
    for stmt in statements:
        decl = _DECL_RE.match(stmt)
        if decl:
            kind, names = decl.group(1), _split_tokens(decl.group(2))
            cleaned = [_unescape(n) for n in names]
            if kind == "input":
                inputs.extend(cleaned)
            elif kind == "output":
                outputs.extend(cleaned)
            continue  # wires carry no information we need
        assign = _ASSIGN_RE.match(stmt)
        if assign:
            target = _unescape(assign.group(1))
            expr = assign.group(2).strip()
            inverted = False
            if expr.startswith("~"):
                inverted = True
                expr = expr[1:].strip()
                if expr.startswith("(") and expr.endswith(")"):
                    expr = expr[1:-1].strip()
            if expr in ("1'b0", "1'b1"):
                const = 1 if expr.endswith("1") else 0
                if inverted:
                    const ^= 1
                assigns[target] = (None, [], const)
                order.append(target)
                continue
            op, operands = _parse_operands(expr)
            if op is None:
                gate_type = GateType.NOT if inverted else GateType.BUF
            else:
                gate_type = _OP_TYPES[op][1 if inverted else 0]
            assigns[target] = (gate_type, operands, -1)
            order.append(target)
            continue
        raise VerilogFormatError(f"unsupported statement: {stmt!r}")

    circuit = Circuit(name)
    for pi in inputs:
        circuit.add_input(pi)
    emitted = set(inputs)
    pending = list(order)
    while pending:
        progressed = False
        still = []
        for target in pending:
            gate_type, operands, const = assigns[target]
            if gate_type is None:
                circuit.add_const(target, const)
                emitted.add(target)
                progressed = True
                continue
            if all(o in emitted for o in operands):
                for o in operands:
                    if o not in circuit:
                        raise VerilogFormatError(
                            f"assign {target!r} references undefined {o!r}")
                circuit.add_gate(target, gate_type, operands)
                emitted.add(target)
                progressed = True
            else:
                missing = [o for o in operands
                           if o not in emitted and o not in assigns]
                if missing:
                    raise VerilogFormatError(
                        f"assign {target!r} references undefined "
                        f"{missing[0]!r}")
                still.append(target)
        if not progressed:
            raise VerilogFormatError(
                f"combinational cycle involving: {', '.join(still[:5])}")
        pending = still
    for po in outputs:
        if po not in circuit:
            raise VerilogFormatError(f"output {po!r} undefined")
        circuit.set_output(po)
    circuit.validate()
    return circuit


def load_verilog(path: Union[str, Path]) -> Circuit:
    """Read a supported-subset Verilog file from disk."""
    return loads_verilog(Path(path).read_text())
