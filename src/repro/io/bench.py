"""ISCAS-85/89 ``.bench`` netlist reader and writer.

The ``.bench`` format is the lingua franca for the benchmark family the
paper evaluates (c499, c1355, c1908, ...)::

    # c17
    INPUT(1)
    INPUT(2)
    OUTPUT(22)
    10 = NAND(1, 3)
    22 = NAND(10, 16)

Files may define gates in any order; the reader resolves forward references
and rejects combinational cycles.  Sequential elements (``DFF``/``LATCH``,
the ISCAS-89 extension) are supported: ``q = DFF(d)`` declares a state
element whose output ``q`` is a pseudo-input of the combinational core and
whose next-state driver is ``d``.  A netlist containing any state element
parses into a :class:`~repro.circuit.sequential.SequentialCircuit`;
otherwise the plain combinational :class:`~repro.circuit.Circuit` is
returned, exactly as before.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Tuple, Union

from ..circuit import (
    Circuit,
    CircuitError,
    FlipFlop,
    GateType,
    SequentialCircuit,
    parse_gate_type,
)

_LINE_RE = re.compile(
    r"^\s*(?P<name>[^\s=()]+)\s*=\s*(?P<op>[A-Za-z0-9_]+)\s*"
    r"\((?P<args>[^)]*)\)\s*$")
_DECL_RE = re.compile(r"^\s*(INPUT|OUTPUT)\s*\(\s*([^)\s]+)\s*\)\s*$",
                      re.IGNORECASE)


class BenchFormatError(CircuitError):
    """Raised for malformed ``.bench`` input."""


def loads_bench(text: str, name: str = "bench"
                ) -> Union[Circuit, SequentialCircuit]:
    """Parse ``.bench`` text into a circuit.

    Returns a :class:`SequentialCircuit` when the netlist declares DFF or
    LATCH elements, else a plain combinational :class:`Circuit`.
    """
    inputs: List[str] = []
    outputs: List[str] = []
    gates: Dict[str, Tuple[GateType, List[str]]] = {}
    flops: Dict[str, Tuple[GateType, str]] = {}
    order: List[str] = []

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        decl = _DECL_RE.match(line)
        if decl:
            kind, node = decl.group(1).upper(), decl.group(2)
            (inputs if kind == "INPUT" else outputs).append(node)
            continue
        m = _LINE_RE.match(line)
        if not m:
            raise BenchFormatError(f"line {lineno}: cannot parse {raw!r}")
        gate_name = m.group("name")
        op = m.group("op").lower()
        try:
            gate_type = parse_gate_type(op)
        except ValueError as exc:
            raise BenchFormatError(f"line {lineno}: {exc}") from None
        args = [a.strip() for a in m.group("args").split(",") if a.strip()]
        if gate_name in gates or gate_name in flops or gate_name in inputs:
            raise BenchFormatError(
                f"line {lineno}: node {gate_name!r} defined twice")
        if gate_type.is_state:
            if len(args) != 1:
                raise BenchFormatError(
                    f"line {lineno}: {op.upper()} takes exactly one "
                    f"data input, got {len(args)}")
            flops[gate_name] = (gate_type, args[0])
            continue
        gates[gate_name] = (gate_type, args)
        order.append(gate_name)

    circuit = Circuit(name)
    for pi in inputs:
        circuit.add_input(pi)
    # Flip-flop outputs are pseudo-inputs of the combinational core:
    # any gate may read them, and the flop record names their driver.
    for q in flops:
        circuit.add_input(q)

    defined = set(inputs) | set(flops) | set(gates)
    for q, (_, data) in flops.items():
        if data not in defined:
            raise BenchFormatError(
                f"flip-flop {q!r}: next-state driver {data!r} is undefined")
    consumed = {fi for _, (_, args) in gates.items() for fi in args}
    consumed.update(data for _, data in flops.values())
    for q in flops:
        if q not in consumed and q not in outputs:
            raise BenchFormatError(
                f"flip-flop output {q!r} feeds no gate and is not an "
                f"output (dangling state element)")

    # Emit gates in dependency order (files may forward-reference).
    emitted = set(inputs) | set(flops)
    pending = list(order)
    while pending:
        progressed = False
        still_pending = []
        for g in pending:
            gate_type, args = gates[g]
            if all(a in emitted for a in args):
                for a in args:
                    if a not in circuit:
                        raise BenchFormatError(
                            f"gate {g!r} references undefined node {a!r}")
                circuit.add_gate(g, gate_type, args)
                emitted.add(g)
                progressed = True
            else:
                missing = [a for a in args
                           if a not in emitted and a not in gates]
                if missing:
                    raise BenchFormatError(
                        f"gate {g!r} references undefined node {missing[0]!r}")
                still_pending.append(g)
        if not progressed:
            raise BenchFormatError(
                f"combinational cycle involving: {', '.join(still_pending[:5])}")
        pending = still_pending

    for po in outputs:
        if po not in circuit:
            raise BenchFormatError(f"OUTPUT({po}) is undefined")
        circuit.set_output(po)
    circuit.validate()
    if flops:
        seq = SequentialCircuit(
            circuit,
            [FlipFlop(name=q, data=data, gate_type=gate_type)
             for q, (gate_type, data) in flops.items()],
            name=name)
        seq.validate()
        return seq
    return circuit


def load_bench(path: Union[str, Path]) -> Union[Circuit, SequentialCircuit]:
    """Read a ``.bench`` file from disk."""
    path = Path(path)
    return loads_bench(path.read_text(), name=path.stem)


def dumps_bench(circuit: Union[Circuit, SequentialCircuit]) -> str:
    """Serialize a circuit to ``.bench`` text.

    Sequential circuits emit one ``q = DFF(d)`` (or ``LATCH``) line per
    state element; their state pseudo-inputs are not declared as INPUTs.
    Constants are not representable in ``.bench``; circuits containing
    CONST0/CONST1 nodes raise :class:`BenchFormatError`.
    """
    flops: Tuple = ()
    if isinstance(circuit, SequentialCircuit):
        seq = circuit
        flops = seq.flops
        core = seq.core
        lines = [f"# {seq.name}", f"# {len(seq.inputs)} inputs, "
                 f"{len(seq.outputs)} outputs, {seq.num_flops} flops, "
                 f"{seq.num_gates} gates"]
        pis = seq.inputs
    else:
        core = circuit
        lines = [f"# {circuit.name}", f"# {len(circuit.inputs)} inputs, "
                 f"{len(circuit.outputs)} outputs, "
                 f"{circuit.num_gates} gates"]
        pis = circuit.inputs
    for pi in pis:
        lines.append(f"INPUT({pi})")
    for po in core.outputs:
        lines.append(f"OUTPUT({po})")
    lines.append("")
    for ff in flops:
        lines.append(f"{ff.name} = {ff.gate_type.value.upper()}({ff.data})")
    for gname in core.topological_gates():
        node = core.node(gname)
        lines.append(
            f"{gname} = {node.gate_type.value.upper()}"
            f"({', '.join(node.fanins)})")
    for node in core:
        if node.gate_type.is_constant:
            raise BenchFormatError(
                f"constant node {node.name!r} cannot be written to .bench")
    return "\n".join(lines) + "\n"


def save_bench(circuit: Union[Circuit, SequentialCircuit],
               path: Union[str, Path]) -> None:
    """Write a circuit to a ``.bench`` file."""
    Path(path).write_text(dumps_bench(circuit))
