"""ISCAS-85 ``.bench`` netlist reader and writer.

The ``.bench`` format is the lingua franca for the benchmark family the
paper evaluates (c499, c1355, c1908, ...)::

    # c17
    INPUT(1)
    INPUT(2)
    OUTPUT(22)
    10 = NAND(1, 3)
    22 = NAND(10, 16)

Files may define gates in any order; the reader resolves forward references
and rejects combinational cycles.  Sequential elements (DFF) are rejected —
the paper and this library address combinational reliability.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Tuple, Union

from ..circuit import Circuit, CircuitError, GateType, parse_gate_type

_LINE_RE = re.compile(
    r"^\s*(?P<name>[^\s=()]+)\s*=\s*(?P<op>[A-Za-z0-9_]+)\s*"
    r"\((?P<args>[^)]*)\)\s*$")
_DECL_RE = re.compile(r"^\s*(INPUT|OUTPUT)\s*\(\s*([^)\s]+)\s*\)\s*$",
                      re.IGNORECASE)

_UNSUPPORTED_OPS = {"dff", "latch", "ff"}


class BenchFormatError(CircuitError):
    """Raised for malformed ``.bench`` input."""


def loads_bench(text: str, name: str = "bench") -> Circuit:
    """Parse a ``.bench`` netlist from a string into a :class:`Circuit`."""
    inputs: List[str] = []
    outputs: List[str] = []
    gates: Dict[str, Tuple[GateType, List[str]]] = {}
    order: List[str] = []

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        decl = _DECL_RE.match(line)
        if decl:
            kind, node = decl.group(1).upper(), decl.group(2)
            (inputs if kind == "INPUT" else outputs).append(node)
            continue
        m = _LINE_RE.match(line)
        if not m:
            raise BenchFormatError(f"line {lineno}: cannot parse {raw!r}")
        gate_name = m.group("name")
        op = m.group("op").lower()
        if op in _UNSUPPORTED_OPS:
            raise BenchFormatError(
                f"line {lineno}: sequential element {op.upper()} is not "
                f"supported (combinational circuits only)")
        try:
            gate_type = parse_gate_type(op)
        except ValueError as exc:
            raise BenchFormatError(f"line {lineno}: {exc}") from None
        args = [a.strip() for a in m.group("args").split(",") if a.strip()]
        if gate_name in gates or gate_name in inputs:
            raise BenchFormatError(
                f"line {lineno}: node {gate_name!r} defined twice")
        gates[gate_name] = (gate_type, args)
        order.append(gate_name)

    circuit = Circuit(name)
    for pi in inputs:
        circuit.add_input(pi)

    # Emit gates in dependency order (files may forward-reference).
    emitted = set(inputs)
    pending = list(order)
    while pending:
        progressed = False
        still_pending = []
        for g in pending:
            gate_type, args = gates[g]
            if all(a in emitted for a in args):
                for a in args:
                    if a not in circuit:
                        raise BenchFormatError(
                            f"gate {g!r} references undefined node {a!r}")
                circuit.add_gate(g, gate_type, args)
                emitted.add(g)
                progressed = True
            else:
                missing = [a for a in args
                           if a not in emitted and a not in gates]
                if missing:
                    raise BenchFormatError(
                        f"gate {g!r} references undefined node {missing[0]!r}")
                still_pending.append(g)
        if not progressed:
            raise BenchFormatError(
                f"combinational cycle involving: {', '.join(still_pending[:5])}")
        pending = still_pending

    for po in outputs:
        if po not in circuit:
            raise BenchFormatError(f"OUTPUT({po}) is undefined")
        circuit.set_output(po)
    circuit.validate()
    return circuit


def load_bench(path: Union[str, Path]) -> Circuit:
    """Read a ``.bench`` file from disk."""
    path = Path(path)
    return loads_bench(path.read_text(), name=path.stem)


def dumps_bench(circuit: Circuit) -> str:
    """Serialize a circuit to ``.bench`` text.

    Constants are not representable in ``.bench``; circuits containing
    CONST0/CONST1 nodes raise :class:`BenchFormatError`.
    """
    lines = [f"# {circuit.name}", f"# {len(circuit.inputs)} inputs, "
             f"{len(circuit.outputs)} outputs, {circuit.num_gates} gates"]
    for pi in circuit.inputs:
        lines.append(f"INPUT({pi})")
    for po in circuit.outputs:
        lines.append(f"OUTPUT({po})")
    lines.append("")
    for gname in circuit.topological_gates():
        node = circuit.node(gname)
        lines.append(
            f"{gname} = {node.gate_type.value.upper()}"
            f"({', '.join(node.fanins)})")
    for node in circuit:
        if node.gate_type.is_constant:
            raise BenchFormatError(
                f"constant node {node.name!r} cannot be written to .bench")
    return "\n".join(lines) + "\n"


def save_bench(circuit: Circuit, path: Union[str, Path]) -> None:
    """Write a circuit to a ``.bench`` file."""
    Path(path).write_text(dumps_bench(circuit))
