"""Structural Verilog writer (for viewing circuits in standard EDA tools).

Only a writer is provided: the reliability flow consumes ``.bench``/BLIF and
programmatic circuits; Verilog output exists so that generated benchmark
stand-ins can be inspected, synthesized, or cross-checked externally.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, Union

from ..circuit import Circuit, GateType

_ID_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")

_GATE_OP = {
    GateType.AND: " & ",
    GateType.NAND: " & ",
    GateType.OR: " | ",
    GateType.NOR: " | ",
    GateType.XOR: " ^ ",
    GateType.XNOR: " ^ ",
}

_INVERTING = {GateType.NAND, GateType.NOR, GateType.XNOR, GateType.NOT}


def _escape(name: str) -> str:
    """Return a legal Verilog identifier for a netlist node name."""
    if _ID_RE.match(name):
        return name
    return "\\" + name + " "


def dumps_verilog(circuit: Circuit) -> str:
    """Serialize a circuit as a single structural Verilog module."""
    esc: Dict[str, str] = {n: _escape(n) for n in circuit.topological_order()}
    module = re.sub(r"[^A-Za-z0-9_]", "_", circuit.name) or "top"
    ports = [esc[p] for p in circuit.inputs] + [esc[p] for p in circuit.outputs]
    lines = [f"module {module} ({', '.join(ports)});"]
    for pi in circuit.inputs:
        lines.append(f"  input {esc[pi]};")
    for po in circuit.outputs:
        lines.append(f"  output {esc[po]};")
    out_set = set(circuit.outputs)
    for g in circuit.topological_gates():
        if g not in out_set:
            lines.append(f"  wire {esc[g]};")
    for node in circuit:
        if node.gate_type.is_input:
            continue
        if node.gate_type is GateType.CONST0:
            expr = "1'b0"
        elif node.gate_type is GateType.CONST1:
            expr = "1'b1"
        elif node.gate_type in (GateType.BUF, GateType.NOT):
            expr = esc[node.fanins[0]]
        else:
            expr = _GATE_OP[node.gate_type].join(esc[f] for f in node.fanins)
        if node.gate_type in _INVERTING:
            expr = f"~({expr})"
        lines.append(f"  assign {esc[node.name]} = {expr};")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def save_verilog(circuit: Circuit, path: Union[str, Path]) -> None:
    """Write a circuit to a Verilog file."""
    Path(path).write_text(dumps_verilog(circuit))
