"""Netlist I/O: ISCAS-85 ``.bench``, BLIF, and structural Verilog."""

from .bench import (
    BenchFormatError,
    dumps_bench,
    load_bench,
    loads_bench,
    save_bench,
)
from .blif import (
    BlifFormatError,
    dumps_blif,
    load_blif,
    loads_blif,
    save_blif,
)
from .verilog import dumps_verilog, save_verilog
from .verilog_reader import VerilogFormatError, load_verilog, loads_verilog
from .dot import dumps_dot, save_dot

__all__ = [
    "BenchFormatError", "dumps_bench", "load_bench", "loads_bench",
    "save_bench",
    "BlifFormatError", "dumps_blif", "load_blif", "loads_blif", "save_blif",
    "dumps_verilog", "save_verilog",
    "VerilogFormatError", "load_verilog", "loads_verilog",
    "dumps_dot", "save_dot",
]
