"""Packed-pattern utilities for 64-bit parallel logic simulation.

A *pattern pack* assigns one value per simulated input vector to a signal,
packed 64 patterns per ``numpy.uint64`` word — the same representation as
the paper's "64-bit parallel pattern simulator".  Pattern ``k`` lives in bit
``k % 64`` of word ``k // 64``.

Highlights:

* :func:`bernoulli_words` draws Bernoulli(p) bits using the binary-expansion
  trick: combining ``precision`` uniform random words with AND/OR according
  to the binary digits of ``p``.  This costs O(precision) word operations
  per word instead of one floating-point comparison per *bit*, which is what
  makes Monte Carlo noise injection tractable in pure numpy.
* :func:`exhaustive_words` builds the counting patterns that enumerate all
  ``2**n`` input vectors for exact (non-sampled) simulation of small cones.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

WORD_BITS = 64

_ALL_ONES = np.uint64(0xFFFF_FFFF_FFFF_FFFF)

#: Byte-wise popcount table for :func:`popcount`.
_POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

# The first six exhaustive-pattern words are constants (periods 2,4,...,64).
_EXHAUSTIVE_WORD = [
    np.uint64(0xAAAA_AAAA_AAAA_AAAA),
    np.uint64(0xCCCC_CCCC_CCCC_CCCC),
    np.uint64(0xF0F0_F0F0_F0F0_F0F0),
    np.uint64(0xFF00_FF00_FF00_FF00),
    np.uint64(0xFFFF_0000_FFFF_0000),
    np.uint64(0xFFFF_FFFF_0000_0000),
]


def words_for_patterns(n_patterns: int) -> int:
    """Number of 64-bit words needed to hold ``n_patterns`` patterns."""
    if n_patterns <= 0:
        raise ValueError("n_patterns must be positive")
    return -(-n_patterns // WORD_BITS)


def tail_mask(n_patterns: int) -> np.uint64:
    """Mask selecting the valid bits of the final (possibly partial) word."""
    rem = n_patterns % WORD_BITS
    if rem == 0:
        return _ALL_ONES
    return np.uint64((1 << rem) - 1)


def zeros(n_words: int) -> np.ndarray:
    """An all-zero pattern pack."""
    return np.zeros(n_words, dtype=np.uint64)


def ones(n_words: int) -> np.ndarray:
    """An all-one pattern pack."""
    return np.full(n_words, _ALL_ONES, dtype=np.uint64)


def random_words(n_words: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform random 64-bit words (fair-coin bits)."""
    return rng.integers(0, _ALL_ONES, size=n_words, dtype=np.uint64,
                        endpoint=True)


def bernoulli_words(p: float, n_words: int, rng: np.random.Generator,
                    precision: int = 24) -> np.ndarray:
    """Pattern pack whose bits are independent Bernoulli(p) draws.

    ``p`` is rounded to ``precision`` binary digits (default 2**-24 ≈ 6e-8
    resolution, far below Monte Carlo sampling error).  Runs in
    O(precision * n_words) word operations.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability {p} outside [0, 1]")
    scaled = round(p * (1 << precision))
    if scaled <= 0:
        return zeros(n_words)
    if scaled >= 1 << precision:
        return ones(n_words)
    # Skip trailing zero digits: AND-ing into an all-zero accumulator is a
    # no-op, so start at the lowest set digit (an OR).
    start = (scaled & -scaled).bit_length() - 1
    n_draws = precision - start
    draws = rng.integers(0, _ALL_ONES, size=(n_draws, n_words),
                         dtype=np.uint64, endpoint=True)
    acc = draws[0].copy()
    for row, j in zip(draws[1:], range(start + 1, precision)):
        if (scaled >> j) & 1:
            np.bitwise_or(acc, row, out=acc)
        else:
            np.bitwise_and(acc, row, out=acc)
    return acc


def exhaustive_words(var_index: int, n_vars: int) -> np.ndarray:
    """Counting pattern for input ``var_index`` enumerating all 2**n vectors.

    Pattern ``k`` assigns bit ``(k >> var_index) & 1`` to the input, so the
    full set of packs over all inputs enumerates every input vector exactly
    once.  Requires ``n_vars >= 6`` patterns to fill whole words; smaller
    spaces are padded by wrap-around (callers mask with :func:`tail_mask` or
    simply exploit the periodicity, which keeps counts proportional).
    """
    if not 0 <= var_index < n_vars:
        raise ValueError("var_index out of range")
    n_words = max(1, 1 << max(0, n_vars - 6))
    if var_index < 6:
        return np.full(n_words, _EXHAUSTIVE_WORD[var_index], dtype=np.uint64)
    word_ids = np.arange(n_words, dtype=np.uint64)
    bit = (word_ids >> np.uint64(var_index - 6)) & np.uint64(1)
    return np.where(bit.astype(bool), _ALL_ONES, np.uint64(0))


def exhaustive_pack(input_names: Sequence[str]) -> Dict[str, np.ndarray]:
    """Exhaustive pattern packs for a full input list, keyed by name."""
    n = len(input_names)
    return {name: exhaustive_words(i, n) for i, name in enumerate(input_names)}


def random_pack(input_names: Sequence[str], n_words: int,
                rng: np.random.Generator,
                input_probs: Optional[Dict[str, float]] = None
                ) -> Dict[str, np.ndarray]:
    """Random pattern packs for each input, fair coins by default.

    ``input_probs`` overrides the 1-probability of selected inputs (for
    non-uniform input distributions).
    """
    pack = {}
    for name in input_names:
        p = (input_probs or {}).get(name)
        if p is None:
            pack[name] = random_words(n_words, rng)
        else:
            pack[name] = bernoulli_words(p, n_words, rng)
    return pack


def popcount(words: np.ndarray) -> int:
    """Total number of set bits in a pattern pack."""
    if hasattr(np, "bitwise_count"):  # numpy >= 2.0
        return int(np.bitwise_count(words).sum())
    return int(_POPCOUNT8[words.view(np.uint8)].sum(dtype=np.int64))


def masked_popcount(words: np.ndarray, n_patterns: int) -> int:
    """Set bits among the first ``n_patterns`` patterns only."""
    n_words = words_for_patterns(n_patterns)
    if n_words > len(words):
        raise ValueError("pattern pack shorter than n_patterns")
    full = popcount(words[:n_words - 1])
    last = int(words[n_words - 1] & tail_mask(n_patterns))
    return full + bin(last).count("1")


def rowwise_popcount(words2d: np.ndarray) -> np.ndarray:
    """Set bits per row of a 2-D word array, shape ``(rows,)``.

    One vectorized pass over the whole stack — the batched counterpart of
    :func:`popcount` for counting many packs at once.
    """
    w = np.ascontiguousarray(words2d)
    if hasattr(np, "bitwise_count"):  # numpy >= 2.0
        return np.bitwise_count(w).sum(axis=-1, dtype=np.int64)
    bytes2d = w.view(np.uint8).reshape(w.shape[0], -1)
    return _POPCOUNT8[bytes2d].sum(axis=-1, dtype=np.int64)


def rowwise_masked_popcount(words2d: np.ndarray,
                            n_patterns: int) -> np.ndarray:
    """Per-row set bits among the first ``n_patterns`` patterns only."""
    n_words = words_for_patterns(n_patterns)
    if n_words > words2d.shape[-1]:
        raise ValueError("pattern pack shorter than n_patterns")
    mask = tail_mask(n_patterns)
    if mask == _ALL_ONES:
        return rowwise_popcount(words2d[:, :n_words])
    sliced = words2d[:, :n_words].copy()
    sliced[:, -1] &= mask
    return rowwise_popcount(sliced)


def unpack_bits(words: np.ndarray, n_patterns: int) -> np.ndarray:
    """Expand a pattern pack into an array of 0/1 uint8 values."""
    bits = np.unpackbits(words.view(np.uint8), bitorder="little")
    return bits[:n_patterns]


def pack_bits(bits: Sequence[int]) -> np.ndarray:
    """Pack a 0/1 sequence into a pattern pack (final word zero-padded)."""
    arr = np.asarray(bits, dtype=np.uint8)
    n_words = words_for_patterns(len(arr)) if len(arr) else 1
    padded = np.zeros(n_words * WORD_BITS, dtype=np.uint8)
    padded[:len(arr)] = arr & 1
    return np.packbits(padded, bitorder="little").view(np.uint64)
