"""Bit-parallel simulation and Monte Carlo fault injection."""

from . import patterns
from .simulator import (
    CompiledCircuit,
    evaluate_gate_words,
    exhaustive_simulate,
    signal_probabilities,
    simulate,
    simulate_outputs,
)
from .montecarlo import (
    EpsilonSpec,
    MonteCarloResult,
    epsilon_of,
    monte_carlo_asymmetric_reliability,
    monte_carlo_delta_curve,
    monte_carlo_observabilities,
    monte_carlo_reliability,
    noisy_observabilities,
    validate_epsilon,
)
from .rare_event import (
    StratifiedEstimator,
    StratifiedResult,
    stratified_reliability,
)

__all__ = [
    "patterns",
    "CompiledCircuit", "evaluate_gate_words", "exhaustive_simulate",
    "signal_probabilities", "simulate", "simulate_outputs",
    "EpsilonSpec", "MonteCarloResult", "epsilon_of",
    "monte_carlo_asymmetric_reliability",
    "monte_carlo_delta_curve", "monte_carlo_observabilities",
    "monte_carlo_reliability", "noisy_observabilities", "validate_epsilon",
    "StratifiedEstimator", "StratifiedResult", "stratified_reliability",
]
