"""64-bit parallel-pattern logic simulation of circuits.

:func:`simulate` evaluates every node of a circuit on a pattern pack (one
``numpy.uint64`` word = 64 input vectors), exactly as in the paper's Monte
Carlo substrate.  :class:`CompiledCircuit` pre-resolves the topological
order and fanin indices once so repeated simulations (thousands of noisy
replays) skip all dictionary lookups.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..circuit import Circuit, GateType
from . import patterns


def _eval_and(fanins: List[np.ndarray]) -> np.ndarray:
    acc = np.bitwise_and(fanins[0], fanins[1])
    for f in fanins[2:]:
        np.bitwise_and(acc, f, out=acc)
    return acc


def _eval_or(fanins: List[np.ndarray]) -> np.ndarray:
    acc = np.bitwise_or(fanins[0], fanins[1])
    for f in fanins[2:]:
        np.bitwise_or(acc, f, out=acc)
    return acc


def _eval_xor(fanins: List[np.ndarray]) -> np.ndarray:
    acc = np.bitwise_xor(fanins[0], fanins[1])
    for f in fanins[2:]:
        np.bitwise_xor(acc, f, out=acc)
    return acc


def evaluate_gate_words(gate_type: GateType,
                        fanins: List[np.ndarray],
                        n_words: int) -> np.ndarray:
    """Evaluate one gate bitwise over pattern packs."""
    if gate_type is GateType.CONST0:
        return patterns.zeros(n_words)
    if gate_type is GateType.CONST1:
        return patterns.ones(n_words)
    if gate_type is GateType.BUF:
        return fanins[0].copy()
    if gate_type is GateType.NOT:
        return np.bitwise_not(fanins[0])
    if gate_type is GateType.AND:
        return _eval_and(fanins)
    if gate_type is GateType.NAND:
        return np.bitwise_not(_eval_and(fanins))
    if gate_type is GateType.OR:
        return _eval_or(fanins)
    if gate_type is GateType.NOR:
        return np.bitwise_not(_eval_or(fanins))
    if gate_type is GateType.XOR:
        return _eval_xor(fanins)
    if gate_type is GateType.XNOR:
        return np.bitwise_not(_eval_xor(fanins))
    raise ValueError(f"cannot simulate node of type {gate_type!r}")


class CompiledCircuit:
    """A circuit lowered to flat arrays for fast repeated simulation.

    Node values live in one list indexed by dense topological position;
    each gate stores its type and fanin indices.  Constructing this once and
    replaying it per Monte Carlo batch is what keeps the pure-Python MC
    baseline usable on the ~2600-gate stand-ins.
    """

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        order = circuit.topological_order()
        self.index: Dict[str, int] = {name: i for i, name in enumerate(order)}
        self.names: List[str] = order
        self.input_slots: List[Tuple[str, int]] = []
        #: (slot, gate_type, fanin slot tuple) per non-input node, topo order.
        self.ops: List[Tuple[int, GateType, Tuple[int, ...]]] = []
        for name in order:
            node = circuit.node(name)
            if node.gate_type.is_input:
                self.input_slots.append((name, self.index[name]))
            else:
                self.ops.append((
                    self.index[name], node.gate_type,
                    tuple(self.index[f] for f in node.fanins)))
        self.output_slots: List[Tuple[str, int]] = [
            (o, self.index[o]) for o in circuit.outputs]
        #: Slots of logic gates, for noise injection ordering.
        self.gate_slots: List[Tuple[str, int]] = [
            (name, self.index[name]) for name in circuit.topological_gates()]

    def run(self, input_pack: Mapping[str, np.ndarray],
            noise: Optional[Callable[[str, int], Optional[np.ndarray]]] = None,
            value_noise: Optional[
                Callable[[str, np.ndarray], Optional[np.ndarray]]] = None
            ) -> List[Optional[np.ndarray]]:
        """Simulate once; returns the per-slot value list.

        ``noise(name, n_words)`` — if given — returns a flip mask XOR-ed
        into each logic gate's output (or None for no noise at that gate),
        implementing the paper's BSC gate model: the gate computes on its
        (possibly erroneous) fanin values, then its output is flipped
        bitwise with probability eps.

        ``value_noise(name, computed)`` additionally receives the gate's
        computed pack, enabling *value-dependent* channels (asymmetric
        0→1 / 1→0 flip probabilities).
        """
        n_words = len(next(iter(input_pack.values())))
        values: List[Optional[np.ndarray]] = [None] * len(self.names)
        for name, slot in self.input_slots:
            pack = input_pack[name]
            if len(pack) != n_words:
                raise ValueError(f"input {name!r} pack length mismatch")
            values[slot] = pack
        for slot, gate_type, fanin_slots in self.ops:
            fanins = [values[f] for f in fanin_slots]
            out = evaluate_gate_words(gate_type, fanins, n_words)
            if noise is not None:
                mask = noise(self.names[slot], n_words)
                if mask is not None:
                    np.bitwise_xor(out, mask, out=out)
            if value_noise is not None:
                mask = value_noise(self.names[slot], out)
                if mask is not None:
                    np.bitwise_xor(out, mask, out=out)
            values[slot] = out
        return values


def simulate(circuit: Circuit,
             input_pack: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Error-free parallel-pattern simulation; returns all node packs."""
    compiled = CompiledCircuit(circuit)
    values = compiled.run(input_pack)
    return {name: values[slot] for name, slot in
            ((n, compiled.index[n]) for n in compiled.names)}


def simulate_outputs(circuit: Circuit,
                     input_pack: Mapping[str, np.ndarray]
                     ) -> Dict[str, np.ndarray]:
    """Error-free simulation returning only primary-output packs."""
    compiled = CompiledCircuit(circuit)
    values = compiled.run(input_pack)
    return {name: values[slot] for name, slot in compiled.output_slots}


def exhaustive_simulate(circuit: Circuit) -> Dict[str, np.ndarray]:
    """Simulate the circuit over all 2**n input vectors (n = #inputs).

    For fewer than six inputs the single word holds the truth table
    repeated cyclically; bit ``k`` of the packs still equals the node value
    on input vector ``k`` for ``k < 2**n``.
    """
    if len(circuit.inputs) > 26:
        raise ValueError("exhaustive simulation limited to 26 inputs")
    return simulate(circuit, patterns.exhaustive_pack(circuit.inputs))


def signal_probabilities(circuit: Circuit,
                         n_patterns: Optional[int] = None,
                         rng: Optional[np.random.Generator] = None,
                         input_probs: Optional[Dict[str, float]] = None
                         ) -> Dict[str, float]:
    """Per-node Pr[node = 1], exactly (small circuits) or by sampling.

    With ``n_patterns`` unset and at most 26 inputs, the exhaustive packs
    give exact probabilities; otherwise ``n_patterns`` random vectors are
    sampled with the given generator.
    """
    if n_patterns is None and len(circuit.inputs) <= 26 and not input_probs:
        values = exhaustive_simulate(circuit)
        denom = max(64, 1 << len(circuit.inputs))
        return {name: patterns.popcount(pack) / denom
                for name, pack in values.items()}
    if n_patterns is None:
        n_patterns = 1 << 16
    rng = rng or np.random.default_rng(0)
    n_words = patterns.words_for_patterns(n_patterns)
    pack = patterns.random_pack(circuit.inputs, n_words, rng, input_probs)
    values = simulate(circuit, pack)
    return {name: patterns.masked_popcount(v, n_patterns) / n_patterns
            for name, v in values.items()}
