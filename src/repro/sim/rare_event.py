"""Stratified (rare-event) Monte Carlo for the small-eps regime.

Plain fault-injection sampling is hopeless at realistic gate failure rates
(eps ~ 1e-6: one useful sample per million).  Conditioning on the number
of failing gates fixes this: with a uniform eps the failure count K is
Binomial(n, eps), ``Pr(output error | K = 0) = 0``, and the conditional
error probabilities for K = 1, 2, ... are eps-independent structural
quantities estimated once by simulating uniformly chosen failure sets.

    delta = sum_k Pr(K = k) * p_k,    p_k = Pr(error | exactly k flips)

For k = 1 the estimator sweeps every gate exactly (p_1 = mean
observability), reproducing the closed form's single-failure regime with
zero variance; higher strata are sampled.  The truncation error beyond
``max_failures`` is bounded by the binomial tail and reported.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..circuit import Circuit
from ..obs import metrics as obs_metrics
from ..obs import trace_span
from . import patterns
from .simulator import CompiledCircuit


@dataclass
class StratifiedResult:
    """Stratified reliability estimate for one uniform eps."""

    #: Per-output delta estimate.
    per_output: Dict[str, float]
    #: Pr[at least one output errs].
    any_output: float
    #: Conditional error probabilities p_k per stratum (any-output).
    strata: Dict[int, float]
    #: Upper bound on the truncated binomial tail mass.
    tail_bound: float

    def delta(self, output: Optional[str] = None) -> float:
        if output is None:
            if len(self.per_output) != 1:
                raise ValueError("output name required for multi-output result")
            return next(iter(self.per_output.values()))
        return self.per_output[output]


class StratifiedEstimator:
    """Reusable conditional-MC engine: strata sampled once, eps swept free.

    The conditional probabilities ``p_k`` do not depend on eps, so after
    construction :meth:`evaluate` re-weights them for any eps in O(k_max)
    — the same weights-once-sweep-many structure as the single pass.
    """

    def __init__(self, circuit: Circuit,
                 max_failures: int = 3,
                 n_patterns: int = 1 << 12,
                 samples_per_stratum: int = 200,
                 seed: int = 0):
        if max_failures < 1:
            raise ValueError("max_failures must be >= 1")
        self.circuit = circuit
        self.max_failures = max_failures
        compiled = CompiledCircuit(circuit)
        rng = np.random.default_rng(seed)
        n_words = patterns.words_for_patterns(n_patterns)
        input_pack = patterns.random_pack(circuit.inputs, n_words, rng)
        clean = compiled.run(input_pack)
        gate_names = [name for name, _ in compiled.gate_slots]
        n = len(gate_names)
        all_ones = patterns.ones(n_words)

        def error_fractions(flip_set) -> Dict[str, float]:
            def noise(name: str, words: int) -> Optional[np.ndarray]:
                return all_ones if name in flip_set else None

            noisy = compiled.run(input_pack, noise=noise)
            fractions = {}
            any_diff = np.zeros(n_words, dtype=np.uint64)
            for out, slot in compiled.output_slots:
                diff = np.bitwise_xor(clean[slot], noisy[slot])
                fractions[out] = (
                    patterns.masked_popcount(diff, n_patterns) / n_patterns)
                np.bitwise_or(any_diff, diff, out=any_diff)
            fractions["*"] = (
                patterns.masked_popcount(any_diff, n_patterns) / n_patterns)
            return fractions

        #: p_k per output name ("*" = any output), per stratum k.
        self.conditional: Dict[int, Dict[str, float]] = {}
        # k = 1: exact sweep over every single-gate flip.
        with trace_span("rare_event.stratum", circuit=circuit.name, k=1):
            acc = {out: 0.0 for out in circuit.outputs}
            acc["*"] = 0.0
            for gate in gate_names:
                fr = error_fractions({gate})
                for key in acc:
                    acc[key] += fr[key] / n
            self.conditional[1] = acc
        if obs_metrics.is_enabled():
            obs_metrics.inc("rare_event.exact_sweeps", n,
                            circuit=circuit.name)
        # k >= 2: sample failure sets uniformly without replacement.
        for k in range(2, max_failures + 1):
            if k > n:
                self.conditional[k] = {key: acc["*"] * 0 for key in acc}
                continue
            with trace_span("rare_event.stratum", circuit=circuit.name, k=k):
                sums = {key: 0.0 for key in acc}
                for _ in range(samples_per_stratum):
                    chosen = rng.choice(n, size=k, replace=False)
                    fr = error_fractions({gate_names[int(c)] for c in chosen})
                    for key in sums:
                        sums[key] += fr[key]
                self.conditional[k] = {key: v / samples_per_stratum
                                       for key, v in sums.items()}
            if obs_metrics.is_enabled():
                obs_metrics.inc("rare_event.stratum_samples",
                                samples_per_stratum,
                                circuit=circuit.name, k=k)
        self._n_gates = n

    def evaluate(self, eps: float) -> StratifiedResult:
        """Reweight the strata for one uniform gate failure probability."""
        if not 0.0 <= eps <= 0.5:
            raise ValueError(f"eps {eps} outside [0, 0.5]")
        with trace_span("rare_event.evaluate", eps=eps):
            return self._evaluate(eps)

    def _evaluate(self, eps: float) -> StratifiedResult:
        n = self._n_gates
        per_output = {out: 0.0 for out in self.circuit.outputs}
        any_output = 0.0
        strata = {}
        for k, cond in self.conditional.items():
            weight = math.comb(n, k) * eps ** k * (1 - eps) ** (n - k)
            strata[k] = cond["*"]
            any_output += weight * cond["*"]
            for out in per_output:
                per_output[out] += weight * cond[out]
        # Tail: all mass beyond max_failures errs with probability <= 1.
        tail = 1.0 - sum(
            math.comb(n, k) * eps ** k * (1 - eps) ** (n - k)
            for k in range(self.max_failures + 1))
        return StratifiedResult(per_output=per_output,
                                any_output=min(1.0, any_output),
                                strata=strata,
                                tail_bound=max(0.0, tail))


def stratified_reliability(circuit: Circuit, eps: float,
                           **kwargs) -> StratifiedResult:
    """One-shot stratified estimate (see :class:`StratifiedEstimator`)."""
    return StratifiedEstimator(circuit, **kwargs).evaluate(eps)
