"""Monte Carlo reliability analysis by fault injection (the paper's baseline).

Implements the "standard technique" the paper compares against: simulate the
error-free circuit and a noisy replica — every gate output XOR-ed with a
Bernoulli(eps) flip mask — on the same random input patterns, and count
output disagreements.  All bit-parallel: 64 patterns per word.

This module is both the accuracy reference for the single-pass algorithm
(Table 2, Figs. 1/5/6/7) and the performance foil (runtime columns of
Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from ..circuit import Circuit
from ..obs import metrics as obs_metrics
from ..obs import trace_span
# Canonical eps-spec handling lives in repro.spec; re-exported here because
# this module was its historical home and many callers import from it.
from ..spec import EpsilonSpec, epsilon_of, validate_epsilon
from . import patterns
from .simulator import CompiledCircuit


@dataclass
class MonteCarloResult:
    """Estimated output error probabilities from fault-injection sampling."""

    #: Pr[output differs from its error-free value], per output name.
    per_output: Dict[str, float]
    #: Pr[at least one output differs] (the consolidated error of Sec. 5.1).
    any_output: float
    #: Number of sampled input vectors.
    n_patterns: int

    def delta(self, output: Optional[str] = None) -> float:
        """The delta estimate for one output (default: the only output)."""
        if output is None:
            if len(self.per_output) != 1:
                raise ValueError("output name required for multi-output result")
            return next(iter(self.per_output.values()))
        return self.per_output[output]

    def standard_error(self, output: str) -> float:
        """Binomial standard error of the per-output estimate."""
        p = self.per_output[output]
        return float(np.sqrt(max(p * (1.0 - p), 0.0) / self.n_patterns))

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable view (shared ``ResultProtocol`` surface)."""
        return {
            "per_output": {out: float(d)
                           for out, d in self.per_output.items()},
            "any_output": float(self.any_output),
            "n_patterns": self.n_patterns,
        }


def monte_carlo_reliability(circuit: Circuit,
                            eps: EpsilonSpec,
                            n_patterns: int = 1 << 16,
                            rng: Optional[np.random.Generator] = None,
                            seed: int = 0,
                            batch_words: int = 1 << 12,
                            noise_precision: int = 24,
                            input_probs: Optional[Dict[str, float]] = None
                            ) -> MonteCarloResult:
    """Estimate delta(eps) for every output by fault-injection simulation.

    Parameters
    ----------
    eps:
        Gate failure probability: a scalar applied to every gate (the
        paper's Table 2 setting) or a per-gate mapping (Fig. 7 setting).
    n_patterns:
        Number of random input vectors (the paper uses 6.4M; the default
        65 536 keeps pure-Python runs quick — raise it for tighter
        estimates).
    batch_words:
        Words simulated per batch; bounds memory at roughly
        ``num_nodes * batch_words * 8`` bytes.
    noise_precision:
        Binary digits used to quantize eps when drawing flip masks.
    """
    validate_epsilon(eps, circuit)
    rng = rng if rng is not None else np.random.default_rng(seed)
    with trace_span("mc.run", circuit=circuit.name, n_patterns=n_patterns):
        with trace_span("mc.compile"):
            compiled = CompiledCircuit(circuit)
        gate_eps = {name: epsilon_of(eps, name)
                    for name, _ in compiled.gate_slots}

        diff_counts = {name: 0 for name, _ in compiled.output_slots}
        any_count = 0
        remaining = n_patterns
        while remaining > 0:
            batch_patterns = min(remaining, batch_words * patterns.WORD_BITS)
            n_words = patterns.words_for_patterns(batch_patterns)
            input_pack = patterns.random_pack(
                circuit.inputs, n_words, rng, input_probs)
            clean = compiled.run(input_pack)

            def noise(name: str, words: int) -> Optional[np.ndarray]:
                e = gate_eps[name]
                if e <= 0.0:
                    return None
                return patterns.bernoulli_words(e, words, rng,
                                                noise_precision)

            noisy = compiled.run(input_pack, noise=noise)
            any_diff = np.zeros(n_words, dtype=np.uint64)
            for name, slot in compiled.output_slots:
                diff = np.bitwise_xor(clean[slot], noisy[slot])
                diff_counts[name] += patterns.masked_popcount(diff,
                                                              batch_patterns)
                np.bitwise_or(any_diff, diff, out=any_diff)
            any_count += patterns.masked_popcount(any_diff, batch_patterns)
            remaining -= batch_patterns
            if obs_metrics.is_enabled():
                # Batch-granular reporting: the per-pattern hot loop above
                # stays untouched.
                done = n_patterns - remaining
                labels = {"circuit": circuit.name}
                obs_metrics.inc("mc.samples", batch_patterns, **labels)
                obs_metrics.inc("mc.batches", **labels)
                p = any_count / done
                stderr = float(np.sqrt(max(p * (1.0 - p), 0.0) / done))
                obs_metrics.set_gauge("mc.stderr", stderr, **labels)
                if p > 0.0:
                    obs_metrics.set_gauge("mc.rel_stderr", stderr / p,
                                          **labels)

    per_output = {name: count / n_patterns
                  for name, count in diff_counts.items()}
    return MonteCarloResult(per_output=per_output,
                            any_output=any_count / n_patterns,
                            n_patterns=n_patterns)


def monte_carlo_delta_curve(circuit: Circuit,
                            eps_values: Sequence[float],
                            output: Optional[str] = None,
                            n_patterns: int = 1 << 16,
                            seed: int = 0,
                            **kwargs) -> Dict[float, float]:
    """delta(eps) sampled over a sweep of uniform gate failure rates.

    Returns ``{eps: delta}`` for one output (default: the single output, or
    the consolidated any-output probability if ``output == "*"``).
    """
    curve: Dict[float, float] = {}
    for i, e in enumerate(eps_values):
        result = monte_carlo_reliability(
            circuit, e, n_patterns=n_patterns, seed=seed + i, **kwargs)
        if output == "*":
            curve[e] = result.any_output
        else:
            curve[e] = result.delta(output)
    return curve


def monte_carlo_asymmetric_reliability(circuit: Circuit,
                                       eps01: EpsilonSpec,
                                       eps10: EpsilonSpec,
                                       n_patterns: int = 1 << 16,
                                       rng: Optional[np.random.Generator]
                                       = None,
                                       seed: int = 0,
                                       batch_words: int = 1 << 12,
                                       noise_precision: int = 24
                                       ) -> MonteCarloResult:
    """Fault-injection estimate under asymmetric gate channels.

    Each gate's *computed* output flips 0→1 with ``eps01`` and 1→0 with
    ``eps10`` — the value-dependent generalization of the BSC model, and
    the sampling reference for ``SinglePassAnalyzer.run(eps, eps10=...)``.
    """
    validate_epsilon(eps01, circuit)
    validate_epsilon(eps10, circuit)
    rng = rng if rng is not None else np.random.default_rng(seed)
    compiled = CompiledCircuit(circuit)
    e01 = {name: epsilon_of(eps01, name) for name, _ in compiled.gate_slots}
    e10 = {name: epsilon_of(eps10, name) for name, _ in compiled.gate_slots}

    diff_counts = {name: 0 for name, _ in compiled.output_slots}
    any_count = 0
    remaining = n_patterns
    while remaining > 0:
        batch_patterns = min(remaining, batch_words * patterns.WORD_BITS)
        n_words = patterns.words_for_patterns(batch_patterns)
        input_pack = patterns.random_pack(circuit.inputs, n_words, rng)
        clean = compiled.run(input_pack)

        def value_noise(name: str,
                        computed: np.ndarray) -> Optional[np.ndarray]:
            up, down = e01[name], e10[name]
            if up <= 0.0 and down <= 0.0:
                return None
            mask = patterns.zeros(len(computed))
            if up > 0.0:
                rise = patterns.bernoulli_words(up, len(computed), rng,
                                                noise_precision)
                np.bitwise_or(mask,
                              np.bitwise_and(rise,
                                             np.bitwise_not(computed)),
                              out=mask)
            if down > 0.0:
                fall = patterns.bernoulli_words(down, len(computed), rng,
                                                noise_precision)
                np.bitwise_or(mask, np.bitwise_and(fall, computed),
                              out=mask)
            return mask

        noisy = compiled.run(input_pack, value_noise=value_noise)
        any_diff = np.zeros(n_words, dtype=np.uint64)
        for name, slot in compiled.output_slots:
            diff = np.bitwise_xor(clean[slot], noisy[slot])
            diff_counts[name] += patterns.masked_popcount(diff,
                                                          batch_patterns)
            np.bitwise_or(any_diff, diff, out=any_diff)
        any_count += patterns.masked_popcount(any_diff, batch_patterns)
        remaining -= batch_patterns
        if obs_metrics.is_enabled():
            labels = {"circuit": circuit.name, "mode": "asymmetric"}
            obs_metrics.inc("mc.samples", batch_patterns, **labels)
            obs_metrics.inc("mc.batches", **labels)

    per_output = {name: count / n_patterns
                  for name, count in diff_counts.items()}
    return MonteCarloResult(per_output=per_output,
                            any_output=any_count / n_patterns,
                            n_patterns=n_patterns)


def noisy_observabilities(circuit: Circuit,
                          eps: EpsilonSpec,
                          output: Optional[str] = None,
                          n_patterns: int = 1 << 14,
                          seed: int = 0,
                          noise_precision: int = 24) -> Dict[str, float]:
    """Observability of each gate measured *in the presence of noise*.

    Sec. 3.1(ii) of the paper: noiseless observabilities assume sensitized
    paths stay sensitized, but failures at other gates perturb them.  Here
    the rest of the circuit runs noisy (two common replicas differing only
    in the forced flip at the probed gate), so the returned values are the
    effective propagation probabilities under failure rate ``eps`` — their
    deviation from :func:`monte_carlo_observabilities` quantifies the
    distortion the paper describes (ablation benchmark).
    """
    validate_epsilon(eps, circuit)
    if output is None:
        if len(circuit.outputs) != 1:
            raise ValueError("output name required for multi-output circuit")
        output = circuit.outputs[0]
    rng = np.random.default_rng(seed)
    compiled = CompiledCircuit(circuit)
    n_words = patterns.words_for_patterns(n_patterns)
    input_pack = patterns.random_pack(circuit.inputs, n_words, rng)
    out_slot = dict(compiled.output_slots)[output]
    all_ones = patterns.ones(n_words)
    result: Dict[str, float] = {}
    for probe, _ in compiled.gate_slots:
        # One shared noise realization for both replicas.
        noise_masks = {
            name: patterns.bernoulli_words(
                epsilon_of(eps, name), n_words, rng, noise_precision)
            for name, _ in compiled.gate_slots}

        def base_noise(name: str, words: int) -> Optional[np.ndarray]:
            return noise_masks[name]

        def probed_noise(name: str, words: int) -> Optional[np.ndarray]:
            if name == probe:
                return np.bitwise_xor(noise_masks[name], all_ones)
            return noise_masks[name]

        base = compiled.run(input_pack, noise=base_noise)
        probed = compiled.run(input_pack, noise=probed_noise)
        diff = np.bitwise_xor(base[out_slot], probed[out_slot])
        result[probe] = patterns.masked_popcount(diff, n_patterns) / n_patterns
    return result


def monte_carlo_observabilities(circuit: Circuit,
                                output: Optional[str] = None,
                                n_patterns: int = 1 << 14,
                                rng: Optional[np.random.Generator] = None,
                                seed: int = 0) -> Dict[str, float]:
    """Sampled noiseless observability of every gate at one output.

    Observability of gate ``g`` = Pr[a forced flip of g's output changes the
    primary output] over random input vectors (all other gates noise-free).
    This is the simulation estimator the closed-form analysis of Sec. 3 can
    use when BDDs are too large.
    """
    if output is None:
        if len(circuit.outputs) != 1:
            raise ValueError("output name required for multi-output circuit")
        output = circuit.outputs[0]
    rng = rng if rng is not None else np.random.default_rng(seed)
    compiled = CompiledCircuit(circuit)
    n_words = patterns.words_for_patterns(n_patterns)
    input_pack = patterns.random_pack(circuit.inputs, n_words, rng)
    clean = compiled.run(input_pack)
    out_slot = dict(compiled.output_slots)[output]
    observabilities: Dict[str, float] = {}
    all_ones = patterns.ones(n_words)
    for gate_name, _ in compiled.gate_slots:

        def noise(name: str, words: int) -> Optional[np.ndarray]:
            return all_ones if name == gate_name else None

        flipped = compiled.run(input_pack, noise=noise)
        diff = np.bitwise_xor(clean[out_slot], flipped[out_slot])
        observabilities[gate_name] = (
            patterns.masked_popcount(diff, n_patterns) / n_patterns)
    return observabilities
