"""Observability: tracing spans, metrics, structured logs, run reports.

The measurement layer for every analysis engine (see
docs/observability.md).  Four small pieces:

* :mod:`repro.obs.trace` — hierarchical spans with monotonic timing,
  exportable as a flat table or Chrome ``chrome://tracing`` JSON;
* :mod:`repro.obs.metrics` — named counters / gauges / histograms with
  labels, ``snapshot()`` / ``reset()``;
* :mod:`repro.obs.logging` — structured stdlib logging, configured once;
* :mod:`repro.obs.runlog` — JSON-lines run reports combining all of the
  above with engine results.

Everything is **disabled by default and zero-cost when disabled**: the
span/counter entry points check a module flag and return immediately, so
instrumented hot paths run at un-instrumented speed (guarded by
``benchmarks/test_obs_overhead.py``).  Enable around a region::

    from repro import obs

    obs.enable()                  # tracing + metrics
    result = analyzer.run(0.05)
    print(obs.get_tracer().as_table())
    print(obs.metrics.snapshot())
    obs.disable()

or use the CLI plumbing: every subcommand accepts ``--metrics-out``,
``--trace-out``, and ``-v``.
"""

from __future__ import annotations

from . import metrics
from . import runlog
from .logging import configure as configure_logging
from .logging import get_logger
from .metrics import (
    MetricsRegistry,
    get_registry,
)
from .propagate import TelemetryPayload
from .propagate import capture as capture_telemetry
from .runlog import RunRecord, append_record, build_record, read_runlog
from .trace import Span, Tracer, get_tracer, trace_span

from . import trace as _trace_mod

__all__ = [
    "trace_span", "Span", "Tracer", "get_tracer",
    "metrics", "MetricsRegistry", "get_registry",
    "TelemetryPayload", "capture_telemetry",
    "get_logger", "configure_logging",
    "runlog", "RunRecord", "build_record", "append_record", "read_runlog",
    "enable", "disable", "is_enabled", "reset",
]


def enable(tracing: bool = True, metrics_: bool = True) -> None:
    """Turn on span and/or metric collection process-wide."""
    if tracing:
        _trace_mod.set_enabled(True)
    if metrics_:
        metrics.set_enabled(True)


def disable() -> None:
    """Turn off both tracing and metrics."""
    _trace_mod.set_enabled(False)
    metrics.set_enabled(False)


def is_enabled() -> bool:
    """True if either tracing or metrics collection is on."""
    return _trace_mod.is_enabled() or metrics.is_enabled()


def reset() -> None:
    """Clear collected spans and metric series (flags unchanged)."""
    _trace_mod.reset()
    metrics.reset()
