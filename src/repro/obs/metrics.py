"""Process-local metrics registry: counters, gauges, and histograms.

Engines report *what happened* through named instruments —
``single_pass.gates_processed``, ``correlation.pairs_tracked``,
``mc.samples``, ``bdd.nodes_allocated``, ``sat.calls`` — optionally
labeled with dimensions (``counter("mc.samples", circuit="b9")``).  A
snapshot of the registry is embedded in every run report (see
``repro.obs.runlog``) so a run's behaviour is reproducible as data, not
just as a log line.

Like tracing, the registry is **off by default and zero-cost when
disabled**: the module-level convenience functions (:func:`inc`,
:func:`set_gauge`, :func:`observe`) check one flag and return.  Hot loops
should additionally batch — accumulate plain ints locally and report a
total per phase — rather than call per item; see docs/observability.md
for the conventions.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "counter",
    "gauge",
    "histogram",
    "inc",
    "set_gauge",
    "observe",
    "snapshot",
    "to_prometheus",
    "reset",
    "set_enabled",
    "is_enabled",
]

_ENABLED = False

#: A metric series key: (name, sorted label items).
SeriesKey = Tuple[str, Tuple[Tuple[str, Any], ...]]

_DEFAULT_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1,
                    1.0, 10.0, 100.0, 1000.0)


def _series_key(name: str, labels: Mapping[str, Any]) -> SeriesKey:
    return (name, tuple(sorted(labels.items())))


def _prom_name(prefix: str, name: str) -> str:
    """Sanitize a dotted metric name into a Prometheus identifier."""
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"{prefix}_{cleaned}" if prefix else cleaned


def _prom_value(value: Union[int, float]) -> str:
    """Render a sample value (integers stay integral for readability)."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _prom_labels(labels: Mapping[str, Any]) -> str:
    """Render a label set as ``{k="v",...}`` with value escaping."""
    if not labels:
        return ""
    parts = []
    for key, value in sorted(labels.items()):
        text = str(value).replace("\\", r"\\").replace('"', r'\"')
        text = text.replace("\n", r"\n")
        parts.append(f'{key}="{text}"')
    return "{" + ",".join(parts) + "}"


class Counter:
    """Monotonically increasing count (events, items, calls)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Mapping[str, Any]):
        self.name = name
        self.labels = dict(labels)
        self.value = 0

    def inc(self, n: Union[int, float] = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (n={n})")
        self.value += n

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "counter", "name": self.name,
                "labels": self.labels, "value": self.value}


class Gauge:
    """Last-observed value (running stderr, cache size, node count)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Mapping[str, Any]):
        self.name = name
        self.labels = dict(labels)
        self.value: Optional[float] = None

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def add(self, delta: Union[int, float]) -> None:
        self.value = (self.value or 0) + delta

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "gauge", "name": self.name,
                "labels": self.labels, "value": self.value}


class Histogram:
    """Bucketed distribution of observations (durations, sizes).

    Buckets are upper-bound-inclusive, cumulative on export (Prometheus
    convention); count/sum/min/max come for free.
    """

    __slots__ = ("name", "labels", "buckets", "bucket_counts",
                 "count", "sum", "min", "max")

    def __init__(self, name: str, labels: Mapping[str, Any],
                 buckets: Tuple[float, ...] = _DEFAULT_BUCKETS):
        self.name = name
        self.labels = dict(labels)
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # +overflow
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Union[int, float]) -> None:
        value = float(value)
        # First bucket whose upper bound is >= value; past-the-end is the
        # overflow slot.
        self.bucket_counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) by linear interpolation.

        Prometheus-style: the target rank is located in the cumulative
        bucket counts, then interpolated linearly between the bucket's
        lower and upper bounds.  The estimate is clamped to the observed
        ``[min, max]`` range (which also makes single-value and overflow
        cases exact); an empty histogram returns 0.0.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        target = q * self.count
        running = 0.0
        prev_bound: Optional[float] = None
        for bound, n in zip(self.buckets, self.bucket_counts):
            if n and running + n >= target:
                lo = (self.min if prev_bound is None
                      else max(prev_bound, self.min))
                hi = min(self.max, bound)
                if hi <= lo:
                    return lo
                frac = (target - running) / n
                return lo + (hi - lo) * frac
            running += n
            prev_bound = bound
        # Target rank lies in the overflow bucket (> last bound).
        return self.max

    def to_dict(self) -> Dict[str, Any]:
        cumulative = []
        running = 0
        for bound, n in zip(self.buckets, self.bucket_counts):
            running += n
            cumulative.append({"le": bound, "count": running})
        return {"type": "histogram", "name": self.name, "labels": self.labels,
                "count": self.count, "sum": self.sum,
                "min": self.min, "max": self.max, "mean": self.mean(),
                "buckets": cumulative}


class MetricsRegistry:
    """Named instrument series, keyed by (name, labels)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._series: Dict[SeriesKey, Union[Counter, Gauge, Histogram]] = {}

    def _get(self, cls, name: str, labels: Mapping[str, Any], **kwargs):
        key = _series_key(name, labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = cls(name, labels, **kwargs)
                self._series[key] = series
            elif not isinstance(series, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(series).__name__}, not {cls.__name__}")
            return series

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str,
                  buckets: Tuple[float, ...] = _DEFAULT_BUCKETS,
                  **labels) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    def snapshot(self) -> List[Dict[str, Any]]:
        """Serializable dump of every series, sorted by (name, labels)."""
        with self._lock:
            series = list(self._series.values())
        return [s.to_dict() for s in sorted(
            series, key=lambda s: (s.name, sorted(s.labels.items())))]

    def value(self, name: str, **labels) -> Any:
        """Current value of one counter/gauge series (KeyError if absent)."""
        with self._lock:
            series = self._series[_series_key(name, labels)]
        return series.value

    def merge(self, snapshot: List[Dict[str, Any]]) -> int:
        """Fold a foreign registry snapshot into this registry.

        ``snapshot`` is the output of :meth:`snapshot` (typically shipped
        home from a worker process in a ``TelemetryPayload``).  Counters
        add, gauges take the snapshot's value (last-write-wins), and
        histograms add bucket deltas positionally — the local series is
        (re)created with the snapshot's bucket bounds, so merging is exact
        when both sides use the same bounds.  Returns the number of series
        merged.
        """
        for entry in snapshot:
            kind = entry["type"]
            name = entry["name"]
            labels = entry.get("labels", {})
            if kind == "counter":
                self.counter(name, **labels).inc(entry["value"])
            elif kind == "gauge":
                if entry["value"] is not None:
                    self.gauge(name, **labels).set(entry["value"])
            elif kind == "histogram":
                bounds = tuple(b["le"] for b in entry["buckets"])
                hist = self.histogram(name, buckets=bounds or _DEFAULT_BUCKETS,
                                      **labels)
                running = 0
                deltas = []
                for bucket in entry["buckets"]:
                    deltas.append(bucket["count"] - running)
                    running = bucket["count"]
                deltas.append(entry["count"] - running)  # overflow slot
                for i, n in enumerate(deltas):
                    if i < len(hist.bucket_counts):
                        hist.bucket_counts[i] += n
                hist.count += entry["count"]
                hist.sum += entry["sum"]
                if entry["min"] is not None:
                    hist.min = (entry["min"] if hist.min is None
                                else min(hist.min, entry["min"]))
                if entry["max"] is not None:
                    hist.max = (entry["max"] if hist.max is None
                                else max(hist.max, entry["max"]))
            else:
                raise ValueError(f"unknown series type {kind!r}")
        return len(snapshot)

    def to_prometheus(self, prefix: str = "repro") -> str:
        """Render every series in Prometheus text exposition format.

        Metric names are sanitized (dots become underscores) and prefixed;
        counters gain the conventional ``_total`` suffix, histograms emit
        cumulative ``_bucket{le=...}`` lines plus ``_sum``/``_count``.
        """
        out: List[str] = []
        seen_types: Dict[str, str] = {}
        for entry in self.snapshot():
            kind = entry["type"]
            name = _prom_name(prefix, entry["name"])
            if kind == "counter":
                name += "_total"
            if name not in seen_types:
                seen_types[name] = kind
                out.append(f"# HELP {name} repro metric {entry['name']}")
                out.append(f"# TYPE {name} {kind}")
            labels = _prom_labels(entry.get("labels", {}))
            if kind == "counter":
                out.append(f"{name}{labels} {_prom_value(entry['value'])}")
            elif kind == "gauge":
                value = entry["value"]
                out.append(f"{name}{labels} "
                           f"{_prom_value(0 if value is None else value)}")
            elif kind == "histogram":
                base = dict(entry.get("labels", {}))
                for bucket in entry["buckets"]:
                    lab = _prom_labels({**base, "le": _prom_value(bucket['le'])})
                    out.append(f"{name}_bucket{lab} {bucket['count']}")
                lab = _prom_labels({**base, "le": "+Inf"})
                out.append(f"{name}_bucket{lab} {entry['count']}")
                out.append(f"{name}_sum{labels} {_prom_value(entry['sum'])}")
                out.append(f"{name}_count{labels} {entry['count']}")
        return "\n".join(out) + ("\n" if out else "")

    def reset(self) -> None:
        """Drop every series."""
        with self._lock:
            self._series.clear()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _REGISTRY


def counter(name: str, **labels) -> Counter:
    return _REGISTRY.counter(name, **labels)


def gauge(name: str, **labels) -> Gauge:
    return _REGISTRY.gauge(name, **labels)


def histogram(name: str, **labels) -> Histogram:
    return _REGISTRY.histogram(name, **labels)


def inc(name: str, n: Union[int, float] = 1, **labels) -> None:
    """Increment a counter; no-op while metrics are disabled."""
    if not _ENABLED:
        return
    _REGISTRY.counter(name, **labels).inc(n)


def set_gauge(name: str, value: Union[int, float], **labels) -> None:
    """Set a gauge; no-op while metrics are disabled."""
    if not _ENABLED:
        return
    _REGISTRY.gauge(name, **labels).set(value)


def observe(name: str, value: Union[int, float], **labels) -> None:
    """Record a histogram observation; no-op while metrics are disabled."""
    if not _ENABLED:
        return
    _REGISTRY.histogram(name, **labels).observe(value)


def snapshot() -> List[Dict[str, Any]]:
    """Snapshot the global registry (works even while disabled)."""
    return _REGISTRY.snapshot()


def to_prometheus(prefix: str = "repro") -> str:
    """Render the global registry in Prometheus text exposition format."""
    return _REGISTRY.to_prometheus(prefix=prefix)


def reset() -> None:
    """Clear the global registry (keeps the enabled flag)."""
    _REGISTRY.reset()


def set_enabled(on: bool) -> None:
    """Globally enable or disable metric collection."""
    global _ENABLED
    _ENABLED = bool(on)


def is_enabled() -> bool:
    return _ENABLED
