"""Process-local metrics registry: counters, gauges, and histograms.

Engines report *what happened* through named instruments —
``single_pass.gates_processed``, ``correlation.pairs_tracked``,
``mc.samples``, ``bdd.nodes_allocated``, ``sat.calls`` — optionally
labeled with dimensions (``counter("mc.samples", circuit="b9")``).  A
snapshot of the registry is embedded in every run report (see
``repro.obs.runlog``) so a run's behaviour is reproducible as data, not
just as a log line.

Like tracing, the registry is **off by default and zero-cost when
disabled**: the module-level convenience functions (:func:`inc`,
:func:`set_gauge`, :func:`observe`) check one flag and return.  Hot loops
should additionally batch — accumulate plain ints locally and report a
total per phase — rather than call per item; see docs/observability.md
for the conventions.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "counter",
    "gauge",
    "histogram",
    "inc",
    "set_gauge",
    "observe",
    "snapshot",
    "reset",
    "set_enabled",
    "is_enabled",
]

_ENABLED = False

#: A metric series key: (name, sorted label items).
SeriesKey = Tuple[str, Tuple[Tuple[str, Any], ...]]

_DEFAULT_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1,
                    1.0, 10.0, 100.0, 1000.0)


def _series_key(name: str, labels: Mapping[str, Any]) -> SeriesKey:
    return (name, tuple(sorted(labels.items())))


class Counter:
    """Monotonically increasing count (events, items, calls)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Mapping[str, Any]):
        self.name = name
        self.labels = dict(labels)
        self.value = 0

    def inc(self, n: Union[int, float] = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (n={n})")
        self.value += n

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "counter", "name": self.name,
                "labels": self.labels, "value": self.value}


class Gauge:
    """Last-observed value (running stderr, cache size, node count)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Mapping[str, Any]):
        self.name = name
        self.labels = dict(labels)
        self.value: Optional[float] = None

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def add(self, delta: Union[int, float]) -> None:
        self.value = (self.value or 0) + delta

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "gauge", "name": self.name,
                "labels": self.labels, "value": self.value}


class Histogram:
    """Bucketed distribution of observations (durations, sizes).

    Buckets are upper-bound-inclusive, cumulative on export (Prometheus
    convention); count/sum/min/max come for free.
    """

    __slots__ = ("name", "labels", "buckets", "bucket_counts",
                 "count", "sum", "min", "max")

    def __init__(self, name: str, labels: Mapping[str, Any],
                 buckets: Tuple[float, ...] = _DEFAULT_BUCKETS):
        self.name = name
        self.labels = dict(labels)
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # +overflow
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Union[int, float]) -> None:
        value = float(value)
        # First bucket whose upper bound is >= value; past-the-end is the
        # overflow slot.
        self.bucket_counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        cumulative = []
        running = 0
        for bound, n in zip(self.buckets, self.bucket_counts):
            running += n
            cumulative.append({"le": bound, "count": running})
        return {"type": "histogram", "name": self.name, "labels": self.labels,
                "count": self.count, "sum": self.sum,
                "min": self.min, "max": self.max, "mean": self.mean(),
                "buckets": cumulative}


class MetricsRegistry:
    """Named instrument series, keyed by (name, labels)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._series: Dict[SeriesKey, Union[Counter, Gauge, Histogram]] = {}

    def _get(self, cls, name: str, labels: Mapping[str, Any], **kwargs):
        key = _series_key(name, labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = cls(name, labels, **kwargs)
                self._series[key] = series
            elif not isinstance(series, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(series).__name__}, not {cls.__name__}")
            return series

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str,
                  buckets: Tuple[float, ...] = _DEFAULT_BUCKETS,
                  **labels) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    def snapshot(self) -> List[Dict[str, Any]]:
        """Serializable dump of every series, sorted by (name, labels)."""
        with self._lock:
            series = list(self._series.values())
        return [s.to_dict() for s in sorted(
            series, key=lambda s: (s.name, sorted(s.labels.items())))]

    def value(self, name: str, **labels) -> Any:
        """Current value of one counter/gauge series (KeyError if absent)."""
        with self._lock:
            series = self._series[_series_key(name, labels)]
        return series.value

    def reset(self) -> None:
        """Drop every series."""
        with self._lock:
            self._series.clear()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _REGISTRY


def counter(name: str, **labels) -> Counter:
    return _REGISTRY.counter(name, **labels)


def gauge(name: str, **labels) -> Gauge:
    return _REGISTRY.gauge(name, **labels)


def histogram(name: str, **labels) -> Histogram:
    return _REGISTRY.histogram(name, **labels)


def inc(name: str, n: Union[int, float] = 1, **labels) -> None:
    """Increment a counter; no-op while metrics are disabled."""
    if not _ENABLED:
        return
    _REGISTRY.counter(name, **labels).inc(n)


def set_gauge(name: str, value: Union[int, float], **labels) -> None:
    """Set a gauge; no-op while metrics are disabled."""
    if not _ENABLED:
        return
    _REGISTRY.gauge(name, **labels).set(value)


def observe(name: str, value: Union[int, float], **labels) -> None:
    """Record a histogram observation; no-op while metrics are disabled."""
    if not _ENABLED:
        return
    _REGISTRY.histogram(name, **labels).observe(value)


def snapshot() -> List[Dict[str, Any]]:
    """Snapshot the global registry (works even while disabled)."""
    return _REGISTRY.snapshot()


def reset() -> None:
    """Clear the global registry (keeps the enabled flag)."""
    _REGISTRY.reset()


def set_enabled(on: bool) -> None:
    """Globally enable or disable metric collection."""
    global _ENABLED
    _ENABLED = bool(on)


def is_enabled() -> bool:
    return _ENABLED
