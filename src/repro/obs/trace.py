"""Hierarchical span tracing with monotonic-clock timing.

The tracer is the library's answer to "where does the time go?": code
wraps phases in ``with trace_span("single_pass.weights"):`` blocks, spans
nest through a thread-local stack, and the collected spans export as a
flat table (for terminals) or Chrome ``chrome://tracing`` JSON (for the
timeline viewer at ``chrome://tracing`` / https://ui.perfetto.dev).

Design constraints (see docs/observability.md):

* **Zero cost when disabled.**  Tracing is off by default; ``trace_span``
  checks one module-level flag and returns a shared no-op context manager
  without allocating anything.  Hot engine loops stay unaffected.
* **Monotonic clocks only.**  Spans time with ``time.perf_counter()`` —
  wall-clock ``time.time()`` is subject to NTP steps and is never used
  for intervals anywhere in this library.
* **Thread safety.**  The span *stack* is thread-local (nesting is a
  per-thread notion); the finished-span list is guarded by a lock so
  multi-threaded runs merge into one trace keyed by thread id.
* **Cross-process splicing.**  Worker processes collect spans against
  their own tracer and ship them home in a
  :class:`~repro.obs.propagate.TelemetryPayload`; the parent calls
  :meth:`Tracer.splice` to re-time them onto its own epoch and parent
  them under the dispatching span, so one Chrome trace shows the whole
  fan-out with each worker on its own ``pid`` track.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "Span",
    "SpanHandle",
    "Tracer",
    "get_tracer",
    "trace_span",
    "set_enabled",
    "is_enabled",
    "reset",
]

#: Module-level fast-path flag.  Checked before any span work happens so
#: that instrumentation costs one global load + branch when tracing is off.
_ENABLED = False


@dataclass
class Span:
    """One finished timed region."""

    name: str
    #: Seconds since the tracer's epoch (a perf_counter origin).
    start: float
    #: Span duration in seconds.
    duration: float
    #: Nesting depth at the time the span was opened (0 = top level).
    depth: int
    #: Name of the enclosing span, or None at top level.
    parent: Optional[str]
    thread_id: int
    #: Free-form labels attached at the call site (e.g. eps, gate counts).
    attrs: Dict[str, Any] = field(default_factory=dict)
    #: OS process id the span was recorded in; None means "this process"
    #: (spans only carry an explicit pid after a cross-process splice).
    pid: Optional[int] = None


class Tracer:
    """Collects :class:`Span` records from ``trace_span`` blocks."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._spans: List[Span] = []
        #: perf_counter value all span starts are measured relative to.
        self.epoch = time.perf_counter()

    # -- span stack ----------------------------------------------------
    def _stack(self) -> List["SpanHandle"]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def push(self, handle: "SpanHandle") -> None:
        self._stack().append(handle)

    def pop(self, handle: "SpanHandle") -> None:
        stack = self._stack()
        if stack and stack[-1] is handle:
            stack.pop()
        elif handle in stack:  # tolerate out-of-order exits
            stack.remove(handle)

    def current(self) -> Optional["SpanHandle"]:
        stack = self._stack()
        return stack[-1] if stack else None

    def record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    # -- introspection -------------------------------------------------
    @property
    def spans(self) -> List[Span]:
        """Finished spans, in completion order (children before parents)."""
        with self._lock:
            return list(self._spans)

    def reset(self) -> None:
        """Drop all finished spans and restart the epoch."""
        with self._lock:
            self._spans.clear()
            self.epoch = time.perf_counter()

    def splice(self, spans: List[Span], *, offset: float = 0.0,
               pid: Optional[int] = None,
               parent: Optional[str] = None,
               depth_base: int = 0) -> int:
        """Merge spans recorded by another tracer (usually another process).

        ``offset`` is added to every start time, re-expressing the spans
        on *this* tracer's epoch (the caller aligns the foreign window to
        the local dispatch time — perf_counter origins are per-process).
        Top-level foreign spans are re-parented under ``parent`` and all
        depths shift by ``depth_base``, so the spliced subtree renders
        beneath the dispatching span; ``pid`` labels the spans' process
        track in the Chrome export.  Returns the number of spans merged.
        """
        merged = [Span(name=s.name,
                       start=s.start + offset,
                       duration=s.duration,
                       depth=s.depth + depth_base,
                       parent=s.parent if s.parent is not None else parent,
                       thread_id=s.thread_id,
                       attrs=dict(s.attrs),
                       pid=s.pid if s.pid is not None else pid)
                  for s in spans]
        with self._lock:
            self._spans.extend(merged)
        return len(merged)

    def find(self, name: str) -> List[Span]:
        """All finished spans with the given name."""
        return [s for s in self.spans if s.name == name]

    def total(self, name: str) -> float:
        """Summed duration of every span with the given name, in seconds."""
        return sum(s.duration for s in self.find(name))

    # -- exporters -----------------------------------------------------
    def as_rows(self) -> List[Dict[str, Any]]:
        """Flat table rows (dicts), sorted by start time."""
        rows = []
        for span in sorted(self.spans, key=lambda s: s.start):
            rows.append({
                "name": span.name,
                "start_s": span.start,
                "duration_s": span.duration,
                "depth": span.depth,
                "parent": span.parent,
                "thread": span.thread_id,
                **({"pid": span.pid} if span.pid is not None else {}),
                **({"attrs": span.attrs} if span.attrs else {}),
            })
        return rows

    def as_table(self) -> str:
        """Human-readable indented table of spans."""
        lines = [f"{'span':<44s} {'start':>10s} {'duration':>12s}"]
        for span in sorted(self.spans, key=lambda s: (s.thread_id, s.start)):
            label = "  " * span.depth + span.name
            lines.append(f"{label:<44s} {span.start * 1e3:>8.2f}ms "
                         f"{span.duration * 1e3:>10.3f}ms")
        return "\n".join(lines)

    def to_chrome_trace(self) -> Dict[str, Any]:
        """Chrome Trace Event JSON (complete "X" events, microseconds)."""
        events = []
        for span in sorted(self.spans, key=lambda s: s.start):
            events.append({
                "name": span.name,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": span.pid if span.pid is not None else 1,
                "tid": span.thread_id,
                "cat": span.name.split(".", 1)[0],
                "args": dict(span.attrs),
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path) -> None:
        """Write :meth:`to_chrome_trace` JSON to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh, indent=1)

    def phase_timings(self) -> Dict[str, float]:
        """``{span name: summed duration}`` over all finished spans."""
        totals: Dict[str, float] = {}
        for span in self.spans:
            totals[span.name] = totals.get(span.name, 0.0) + span.duration
        return totals


class SpanHandle:
    """Context manager for one live span (created by :func:`trace_span`)."""

    __slots__ = ("tracer", "name", "attrs", "depth", "parent", "_t0")

    def __init__(self, tracer: Tracer, name: str, attrs: Dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.depth = 0
        self.parent: Optional[str] = None
        self._t0 = 0.0

    def __enter__(self) -> "SpanHandle":
        enclosing = self.tracer.current()
        if enclosing is not None:
            self.depth = enclosing.depth + 1
            self.parent = enclosing.name
        self.tracer.push(self)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        t1 = time.perf_counter()
        self.tracer.pop(self)
        self.tracer.record(Span(
            name=self.name,
            start=self._t0 - self.tracer.epoch,
            duration=t1 - self._t0,
            depth=self.depth,
            parent=self.parent,
            thread_id=threading.get_ident(),
            attrs=self.attrs,
        ))

    def set(self, **attrs) -> None:
        """Attach labels to the span from inside the block."""
        self.attrs.update(attrs)


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass

    def set(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()
_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer."""
    return _TRACER


def trace_span(name: str, **attrs):
    """Open a timed span; no-op (and allocation-free) when tracing is off.

    Usage::

        with trace_span("single_pass.run", eps=0.05):
            ...
    """
    if not _ENABLED:
        return _NULL_SPAN
    return SpanHandle(_TRACER, name, attrs)


def set_enabled(on: bool) -> None:
    """Globally enable or disable span collection."""
    global _ENABLED
    _ENABLED = bool(on)


def is_enabled() -> bool:
    return _ENABLED


def reset() -> None:
    """Clear collected spans (keeps the enabled flag)."""
    _TRACER.reset()
