"""Structured JSON-lines run reports.

A *runlog* is the durable artifact of one analysis run: what circuit, what
parameters, how long each phase took, what the metrics registry counted,
and what the engine produced — one JSON object per line, append-friendly,
trivially greppable and loadable into pandas.  The CLI writes one record
per eps point via ``--metrics-out FILE``.

Schema (``schema_version`` 2)::

    {
      "schema_version": 2,
      "timestamp": 1754460000.0,          # wall clock, seconds since epoch
      "command": "analyze",               # CLI subcommand or API caller tag
      "circuit": {"name": ..., "inputs": n, "outputs": n, "gates": n,
                  "depth": n},
      "params": {...},                    # eps, seed, estimator knobs
      "phases": [{"name": ..., "duration_s": ...}, ...],
      "metrics": [...],                   # repro.obs.metrics snapshot
      "telemetry": {...} | null,          # per-request engine telemetry
                                          # block (see docs/observability.md);
                                          # added in v2, null for plain runs
      "results": {...},                   # engine output, e.g. per-output delta
      "library": {"version": "1.0.0", "git": "..." | null},
    }

Version history: v1 had no ``telemetry`` key; v2 adds it (readers should
use ``record.get("telemetry")``).

``timestamp`` is the one deliberate wall-clock field (it labels the run;
it never measures an interval — all durations come from the
``perf_counter``-based tracer).
"""

from __future__ import annotations

import json
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from . import metrics as _metrics
from . import trace as _trace

__all__ = [
    "SCHEMA_VERSION",
    "RunRecord",
    "build_record",
    "append_record",
    "read_runlog",
    "git_describe",
    "library_version",
]

SCHEMA_VERSION = 2


def library_version() -> str:
    from .. import __version__
    return __version__


def git_describe() -> Optional[str]:
    """``git describe --always --dirty`` of the installed tree, or None.

    Never raises: reports are written in environments without git, without
    a checkout, or with subprocess disabled.
    """
    try:
        root = Path(__file__).resolve().parents[3]
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=root, capture_output=True, text=True, timeout=5)
        if out.returncode == 0:
            return out.stdout.strip() or None
    except Exception:
        pass
    return None


@dataclass
class RunRecord:
    """One structured run report (one JSON line)."""

    command: str
    circuit: Dict[str, Any] = field(default_factory=dict)
    params: Dict[str, Any] = field(default_factory=dict)
    phases: List[Dict[str, Any]] = field(default_factory=list)
    metrics: List[Dict[str, Any]] = field(default_factory=list)
    telemetry: Optional[Dict[str, Any]] = None
    results: Dict[str, Any] = field(default_factory=dict)
    library: Dict[str, Any] = field(default_factory=dict)
    timestamp: float = 0.0
    schema_version: int = SCHEMA_VERSION

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "timestamp": self.timestamp,
            "command": self.command,
            "circuit": self.circuit,
            "params": self.params,
            "phases": self.phases,
            "metrics": self.metrics,
            "telemetry": self.telemetry,
            "results": self.results,
            "library": self.library,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=False, default=_jsonable)


def _jsonable(value: Any) -> Any:
    """Fallback serializer: numpy scalars, paths, sets."""
    for attr in ("item",):  # numpy scalar -> python scalar
        if hasattr(value, attr):
            return value.item()
    if isinstance(value, Path):
        return str(value)
    if isinstance(value, (set, frozenset, tuple)):
        return sorted(value) if isinstance(value, (set, frozenset)) \
            else list(value)
    return str(value)


def _circuit_summary(circuit) -> Dict[str, Any]:
    """Structure header for a :class:`repro.circuit.Circuit`."""
    from ..circuit import circuit_stats
    stats = circuit_stats(circuit)
    return {
        "name": circuit.name,
        "inputs": stats.num_inputs,
        "outputs": stats.num_outputs,
        "gates": stats.num_gates,
        "depth": stats.depth,
        "max_fanout": stats.max_fanout,
        "fanout_stems": stats.num_fanout_stems,
        "reconvergent_gates": stats.num_reconvergent_gates,
    }


def build_record(command: str,
                 circuit=None,
                 params: Optional[Dict[str, Any]] = None,
                 results: Optional[Dict[str, Any]] = None,
                 tracer: Optional[_trace.Tracer] = None,
                 include_metrics: bool = True,
                 telemetry: Optional[Dict[str, Any]] = None) -> RunRecord:
    """Assemble a :class:`RunRecord` from the live tracer and registry.

    Phase entries are the tracer's per-span-name duration totals; the
    metrics section is the registry snapshot.  Both are empty when the
    respective subsystem is disabled — the record is still valid.
    ``telemetry`` carries a per-request engine telemetry block (schema
    v2); pass the ``telemetry`` field of an ``AnalysisResponse``.
    """
    tracer = tracer or _trace.get_tracer()
    phases = [{"name": name, "duration_s": duration}
              for name, duration in sorted(tracer.phase_timings().items())]
    return RunRecord(
        command=command,
        circuit=_circuit_summary(circuit) if circuit is not None else {},
        params=dict(params or {}),
        phases=phases,
        metrics=_metrics.snapshot() if include_metrics else [],
        telemetry=dict(telemetry) if telemetry is not None else None,
        results=dict(results or {}),
        library={"version": library_version(), "git": git_describe()},
        timestamp=time.time(),
    )


def append_record(path: Union[str, Path], record: RunRecord) -> None:
    """Append one record to a JSON-lines runlog file."""
    with open(path, "a") as fh:
        fh.write(record.to_json() + "\n")


def read_runlog(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a JSON-lines runlog back into dicts (blank lines skipped)."""
    records = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records
