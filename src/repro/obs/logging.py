"""Structured stdlib logging, configured once for the whole library.

Every module gets its logger through :func:`get_logger` (namespaced under
``repro.``); the CLI calls :func:`configure` with the ``-v`` count.  By
default the ``repro`` logger carries a ``NullHandler`` — a library must
never print unless asked — and ``configure`` attaches exactly one stream
handler no matter how many times it runs.
"""

from __future__ import annotations

import logging
from typing import Optional

__all__ = ["get_logger", "configure", "verbosity_to_level"]

_ROOT_NAME = "repro"
_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATEFMT = "%H:%M:%S"

#: The handler `configure` installed, if any (so reconfiguring replaces
#: the level rather than stacking handlers).
_handler: Optional[logging.Handler] = None

logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` namespace.

    ``get_logger("sim.montecarlo")`` and ``get_logger(__name__)`` (for a
    ``repro.*`` module) both yield ``repro.sim.montecarlo``.
    """
    if not name:
        return logging.getLogger(_ROOT_NAME)
    if name == _ROOT_NAME or name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def verbosity_to_level(verbosity: int) -> int:
    """Map a ``-v`` count to a stdlib level: 0→WARNING, 1→INFO, 2+→DEBUG."""
    if verbosity <= 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def configure(verbosity: int = 0, stream=None) -> logging.Logger:
    """Install (or retune) the single stream handler on the root logger.

    Idempotent: repeated calls adjust the level in place instead of
    attaching duplicate handlers.  Returns the ``repro`` root logger.
    """
    global _handler
    root = logging.getLogger(_ROOT_NAME)
    level = verbosity_to_level(verbosity)
    if _handler is None:
        _handler = logging.StreamHandler(stream)
        _handler.setFormatter(logging.Formatter(_FORMAT, datefmt=_DATEFMT))
        root.addHandler(_handler)
    elif stream is not None:
        _handler.setStream(stream)
    _handler.setLevel(level)
    root.setLevel(level)
    return root
