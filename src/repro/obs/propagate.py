"""Cross-process telemetry propagation.

The engine's worker lanes (``repro.engine.core``) are separate OS
processes, and ``repro.obs`` state is process-local: spans recorded in a
lane would be silently dropped.  :class:`TelemetryPayload` is the wire
format that fixes this — a worker captures its tracer spans and metric
snapshot after running a batch, ships the payload home pickled alongside
the results, and the parent calls :meth:`TelemetryPayload.merge_into` to
splice the spans onto its own tracer (re-timed onto the local epoch, on
their own ``pid`` track) and fold the counters into its registry.

Clock model: ``perf_counter`` origins are per-process, so a worker's span
starts are meaningless on the parent's timeline.  The parent therefore
passes ``at=`` — its own epoch-relative time for the dispatch — and the
payload's spans are shifted so the earliest worker span lands there.
Wall-clock ``captured_at`` (``time.time()``) rides along for queue-wait
style cross-process deltas, which monotonic clocks cannot provide.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from . import metrics as _metrics
from . import trace as _trace
from .metrics import MetricsRegistry
from .trace import Span, Tracer

__all__ = ["TelemetryPayload", "capture"]


@dataclass
class TelemetryPayload:
    """Spans + metric deltas recorded in one process, ready to ship."""

    #: Finished spans, on the *recording* process's epoch.
    spans: List[Span] = field(default_factory=list)
    #: ``MetricsRegistry.snapshot()`` output from the recording process.
    metrics: List[Dict[str, Any]] = field(default_factory=list)
    #: OS pid of the recording process.
    pid: int = 0
    #: Wall-clock time the payload was captured (``time.time()``).
    captured_at: float = 0.0

    def merge_into(self, tracer: Optional[Tracer] = None,
                   registry: Optional[MetricsRegistry] = None,
                   *, at: float = 0.0,
                   parent: Optional[str] = None,
                   depth_base: int = 0) -> int:
        """Splice this payload into a local tracer and registry.

        ``at`` is the local epoch-relative time the foreign window should
        start (usually the dispatch time of the lane batch); ``parent``
        re-parents the worker's top-level spans under the dispatching
        span.  Defaults merge into the process-global tracer/registry.
        Returns the number of spans spliced.
        """
        tracer = tracer if tracer is not None else _trace.get_tracer()
        registry = (registry if registry is not None
                    else _metrics.get_registry())
        merged = 0
        if self.spans:
            base = min(s.start for s in self.spans)
            merged = tracer.splice(self.spans, offset=at - base,
                                   pid=self.pid or None, parent=parent,
                                   depth_base=depth_base)
        if self.metrics:
            registry.merge(self.metrics)
        return merged

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (spans flattened to plain dicts)."""
        return {
            "pid": self.pid,
            "captured_at": self.captured_at,
            "spans": [{"name": s.name, "start": s.start,
                       "duration": s.duration, "depth": s.depth,
                       "parent": s.parent, "thread_id": s.thread_id,
                       "attrs": dict(s.attrs),
                       **({"pid": s.pid} if s.pid is not None else {})}
                      for s in self.spans],
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TelemetryPayload":
        return cls(
            spans=[Span(name=s["name"], start=s["start"],
                        duration=s["duration"], depth=s.get("depth", 0),
                        parent=s.get("parent"),
                        thread_id=s.get("thread_id", 0),
                        attrs=dict(s.get("attrs", {})),
                        pid=s.get("pid"))
                   for s in data.get("spans", [])],
            metrics=list(data.get("metrics", [])),
            pid=data.get("pid", 0),
            captured_at=data.get("captured_at", 0.0),
        )


def capture(tracer: Optional[Tracer] = None,
            registry: Optional[MetricsRegistry] = None) -> TelemetryPayload:
    """Snapshot the current process's spans + metrics into a payload.

    Captures from the process-global tracer/registry by default.  The
    caller typically pairs this with ``obs.reset()`` at batch start so
    the payload carries only the current batch's telemetry.
    """
    tracer = tracer if tracer is not None else _trace.get_tracer()
    registry = registry if registry is not None else _metrics.get_registry()
    return TelemetryPayload(spans=tracer.spans,
                            metrics=registry.snapshot(),
                            pid=os.getpid(),
                            captured_at=time.time())
