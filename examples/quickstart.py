"""Quickstart: analyze a benchmark circuit's reliability.

Uses the two-line façade — ``repro.analyze`` / ``repro.sweep`` — which
routes every call through a process-wide persistent engine: the first
call on a circuit builds its session (weight vectors + compiled plans),
every later call reuses it at kernel speed.  A few points are
cross-checked against the Monte Carlo fault-injection baseline — the
core comparison of the paper's Table 2, in ~30 lines of user code.

Run:  python examples/quickstart.py
"""

import time

import repro

circuit = repro.get_benchmark("b9")
print(f"circuit: {circuit}")

# The first analyze() call computes the weight vectors once; the engine
# keeps them hot, so sweeping eps afterwards is O(gates) per point.
t0 = time.perf_counter()
repro.analyze(circuit, 0.05)
print(f"session warm in {time.perf_counter() - t0:.2f}s")

output = circuit.outputs[0]
eps_values = [0.02, 0.05, 0.1, 0.2, 0.3]

t0 = time.perf_counter()
sweep = repro.sweep(circuit, eps_values)
sweep_ms = (time.perf_counter() - t0) * 1000

print(f"\ndelta(eps) for output {output!r} "
      f"(single-pass sweep: {sweep_ms:.1f}ms total):")
print(f"{'eps':>6s} {'single-pass':>12s} {'monte carlo':>12s}")
for i, eps in enumerate(eps_values):
    sp = sweep.point(i).per_output[output]
    mc = repro.monte_carlo_reliability(circuit, eps, n_patterns=1 << 16,
                                       seed=100 + i).per_output[output]
    print(f"{eps:6.2f} {sp:12.6f} {mc:12.6f}")

# Per-gate failure probabilities are first-class: rank gates with the
# closed-form gradient, zero out the most critical one, and watch the
# output error drop.
from repro import ObservabilityModel

per_gate = {g: 0.05 for g in circuit.topological_gates()}
model = ObservabilityModel(circuit, output=output, method="sampled", seed=1)
most_critical = model.critical_gates(per_gate, top_k=1)[0]
baseline = repro.analyze(circuit, per_gate).per_output[output]
hardened = repro.analyze(
    circuit, {**per_gate, most_critical: 0.0}).per_output[output]
print(f"\nhardening the most critical gate ({most_critical}): "
      f"delta {baseline:.6f} -> {hardened:.6f}")
