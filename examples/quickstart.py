"""Quickstart: analyze a benchmark circuit's reliability.

Builds the b9 stand-in, runs the single-pass analysis for a sweep of gate
failure probabilities, and cross-checks a few points against the Monte
Carlo fault-injection baseline — the core comparison of the paper's
Table 2, in ~30 lines of user code.

Run:  python examples/quickstart.py
"""

import time

from repro import SinglePassAnalyzer, get_benchmark, monte_carlo_reliability

circuit = get_benchmark("b9")
print(f"circuit: {circuit}")

# Weight vectors are computed once here and reused across every run —
# sweeping eps afterwards is O(gates) per point.
t0 = time.perf_counter()
analyzer = SinglePassAnalyzer(circuit, seed=0)
print(f"weights ready in {time.perf_counter() - t0:.2f}s "
      f"({analyzer.weights.source})")

output = circuit.outputs[0]
print(f"\ndelta(eps) for output {output!r}:")
print(f"{'eps':>6s} {'single-pass':>12s} {'monte carlo':>12s} {'sp time':>9s}")
for i, eps in enumerate([0.02, 0.05, 0.1, 0.2, 0.3]):
    t0 = time.perf_counter()
    sp = analyzer.run(eps).per_output[output]
    sp_time = time.perf_counter() - t0
    mc = monte_carlo_reliability(circuit, eps, n_patterns=1 << 16,
                                 seed=100 + i).per_output[output]
    print(f"{eps:6.2f} {sp:12.6f} {mc:12.6f} {sp_time * 1000:8.1f}ms")

# Per-gate failure probabilities are first-class: rank gates with the
# closed-form gradient, zero out the most critical one, and watch the
# output error drop.
from repro import ObservabilityModel

per_gate = {g: 0.05 for g in circuit.topological_gates()}
model = ObservabilityModel(circuit, output=output, method="sampled", seed=1)
most_critical = model.critical_gates(per_gate, top_k=1)[0]
baseline = analyzer.run(per_gate).per_output[output]
hardened = analyzer.run({**per_gate, most_critical: 0.0}).per_output[output]
print(f"\nhardening the most critical gate ({most_critical}): "
      f"delta {baseline:.6f} -> {hardened:.6f}")
