"""Netlist I/O tour: parse, convert, transform, and analyze a file.

Shows the file-format side of the library: write a ``.bench`` netlist,
read it back, convert to BLIF and Verilog, expand its XORs into NAND logic
(the c499 -> c1355 transformation), and verify with both the single-pass
analysis and an exact oracle that the expansion changed the circuit's
*reliability* even though its *function* is identical.

Run:  python examples/netlist_io_tour.py
"""

import tempfile
from pathlib import Path

from repro import (
    analyze,
    exhaustive_exact_reliability,
    load_bench,
    save_blif,
    save_verilog,
)
from repro.circuit import expand_xor, strip_buffers

BENCH_TEXT = """\
# a 2-bit parity/compare slice
INPUT(a0)
INPUT(a1)
INPUT(b0)
INPUT(b1)
OUTPUT(diff)
OUTPUT(odd)
x0 = XOR(a0, b0)
x1 = XOR(a1, b1)
diff = OR(x0, x1)
odd = XOR(x0, x1)
"""

workdir = Path(tempfile.mkdtemp(prefix="repro_io_"))
bench_path = workdir / "slice.bench"
bench_path.write_text(BENCH_TEXT)

circuit = load_bench(bench_path)
print(f"parsed: {circuit}")

save_blif(circuit, workdir / "slice.blif")
save_verilog(circuit, workdir / "slice.v")
print(f"wrote {workdir / 'slice.blif'} and {workdir / 'slice.v'}")
print("\nVerilog view:")
print((workdir / "slice.v").read_text())

nand_version = strip_buffers(expand_xor(circuit), name="slice_nand")
print(f"XOR-expanded: {nand_version} "
      f"(gate count {circuit.num_gates} -> {nand_version.num_gates})")

# Same function...
for vec in range(16):
    assignment = {"a0": vec & 1, "a1": (vec >> 1) & 1,
                  "b0": (vec >> 2) & 1, "b1": (vec >> 3) & 1}
    assert (circuit.evaluate_outputs(assignment)
            == nand_version.evaluate_outputs(assignment))
print("functional equivalence on all 16 input vectors: OK")

# ...different reliability: more (noisy) gates and more reconvergence.
eps = 0.02
for c in (circuit, nand_version):
    sp = analyze(c, eps)
    exact = exhaustive_exact_reliability(c, eps)
    print(f"{c.name:12s} delta[diff]: single-pass={sp.per_output['diff']:.5f} "
          f"exact={exact.per_output['diff']:.5f}")
print("\nthe NAND mapping is functionally identical but less reliable per "
      "gate-eps — each XOR became four noisy NANDs (c499 vs c1355 in the "
      "paper's Table 2).")
