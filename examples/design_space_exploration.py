"""Redundancy-free design-space exploration (the paper's Fig. 8 study).

Two syntheses of comparable logic — a low-fanout/shallow version and a
high-fanout/deep version of the b9 stand-in — are scored by their
*consolidated* output error (probability that at least one output errs).
No redundancy is added anywhere; the reliability gap comes purely from
structure, and the report relates it to logic depth as the paper does.

Run:  python examples/design_space_exploration.py
"""

from repro.apps import explain_ranking, score_candidates
from repro.circuits import get_benchmark

low = get_benchmark("b9_low_fanout")
high = get_benchmark("b9_high_fanout")

# The paper plots eps in [0, 0.15]; our stand-ins' consolidated error
# saturates earlier (more outputs than real b9 keep their curves apart only
# at small eps), so the sweep concentrates there.
eps_values = [0.0, 0.005, 0.01, 0.02, 0.03, 0.05]
scores = score_candidates([low, high], eps_values, seed=0,
                          max_correlation_level_gap=8)

print("consolidated output error (any output wrong):")
header = "  ".join(f"{e:>7.3f}" for e in eps_values)
print(f"{'eps':>10s}  {header}")
for s in scores:
    row = "  ".join(f"{s.consolidated_curve[e]:7.4f}" for e in eps_values)
    print(f"{s.name:>10s}  {row}")

print()
print(explain_ranking(scores))
