"""Testing-substrate tour: fault simulation, ATPG, and the bridge to
reliability.

The paper's methods are built "by coupling probability theory with
concepts from testing": a gate's reliability observability IS the sum of
its two stuck-at detection probabilities.  This example demonstrates that
identity numerically, generates a compact deterministic test set two ways
(BDD-based and Larrabee-style SAT-based), and exhibits a provably
redundant fault — a line whose failures can never be observed, and which
therefore contributes nothing to the output error probability.

Run:  python examples/testing_and_atpg.py
"""

from repro.circuit import CircuitBuilder
from repro.circuits import c17
from repro.reliability import bdd_observabilities
from repro.sat import SatAtpg
from repro.testing import (
    AtpgEngine,
    Fault,
    StuckAt,
    full_fault_list,
    simulate_faults,
)

circuit = c17()
print(f"circuit: {circuit} (the published ISCAS-85 c17 netlist)")

# --- fault simulation ------------------------------------------------
sim = simulate_faults(circuit, exhaustive=True)
print(f"\nstuck-at faults: {len(sim.detections)}, "
      f"coverage {sim.coverage() * 100:.0f}% (exhaustive patterns)")

# --- the testing <-> reliability bridge -------------------------------
print("\nobservability = Pr(SA0 detected) + Pr(SA1 detected):")
for output in circuit.outputs:
    obs = bdd_observabilities(circuit, output=output)
print(f"{'gate':>6s} {'sa0':>7s} {'sa1':>7s} {'sum':>7s} "
      f"{'observability':>14s}")
from repro.testing import random_pattern_testability
profile = random_pattern_testability(circuit, exhaustive=True)
for gate in circuit.topological_gates():
    entry = profile[gate]
    print(f"{gate:>6s} {entry['sa0']:7.4f} {entry['sa1']:7.4f} "
          f"{entry['sa0'] + entry['sa1']:7.4f} "
          f"{entry['observability']:14.4f}")

# --- deterministic test generation, two engines -----------------------
bdd_tests, bdd_redundant = AtpgEngine(circuit).generate_test_set()
sat_tests, sat_redundant = SatAtpg(circuit).generate_test_set()
print(f"\ncompact test sets: BDD engine {len(bdd_tests)} vectors, "
      f"SAT engine {len(sat_tests)} vectors "
      f"(for {len(full_fault_list(circuit))} faults); "
      f"redundant faults: {len(bdd_redundant)}")

# --- a provably redundant fault ---------------------------------------
b = CircuitBuilder("red")
a, c = b.inputs("a", "c")
blocked = b.and_(a, b.not_(a))  # constant 0: can never be observed high
b.outputs(b.or_(blocked, c, name="y"))
red_circuit = b.build()
engine = AtpgEngine(red_circuit)
fault = Fault(blocked, StuckAt.ZERO)
print(f"\nredundant fault demo: {fault} in y = (a AND NOT a) OR c")
print(f"  BDD proof of redundancy: {engine.is_redundant(fault)}")
print("  reliability reading: that line's flips are fully masked — its "
      "observability is 0 and hardening it buys nothing.")
