"""Selective redundancy insertion driven by single-pass analysis.

Sec. 5.1: rather than triplicating every gate, use the per-node error
information from single-pass analysis to harden only the gates that
dominate output failures.  This example sweeps the protection budget on
the cu stand-in, showing the diminishing returns curve, and then prints
the asymmetric-redundancy targets (gates whose 0->1 and 1->0 error
probabilities differ most — where quadded-style one-sided protection
is cheapest).

Run:  python examples/selective_hardening.py
"""

from repro.apps import asymmetric_targets, hardening_sweep
from repro.circuits import get_benchmark

circuit = get_benchmark("cu")
eps = 0.02
print(f"circuit: {circuit}, uniform eps = {eps}")

# Voters are assumed built from hardened (oversized) cells at 10x lower
# failure probability; with voters as noisy as the logic, TMR at uniform
# eps is a net loss — the analysis quantifies that too (try voter_eps=None).
print("\nselective TMR sweep (top-k most sensitive gates hardened):")
print(f"{'k':>3s} {'extra gates':>12s} {'mean improvement':>18s}")
for k, outcome in hardening_sweep(circuit, eps, k_values=[1, 2, 4, 8, 16],
                                  voter_eps=eps / 10,
                                  evaluate="monte_carlo"):
    print(f"{k:3d} {outcome.gate_overhead:12d} "
          f"{outcome.mean_improvement * 100:17.1f}%")

print("\nasymmetric error profile (top 0->1 error sites):")
for gate, weight in asymmetric_targets(circuit, eps, "0to1", top_k=5):
    print(f"  {gate:8s} weighted Pr(0->1) = {weight:.5f}")
print("asymmetric error profile (top 1->0 error sites):")
for gate, weight in asymmetric_targets(circuit, eps, "1to0", top_k=5):
    print(f"  {gate:8s} weighted Pr(1->0) = {weight:.5f}")

print("\nnote: a quadded-logic style scheme would protect the first list "
      "with the 0->1-suppressing structure and the second with its dual, "
      "instead of paying full TMR everywhere.")
