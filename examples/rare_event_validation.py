"""Validating the closed form in the soft-error regime with stratified MC.

At realistic failure rates (eps ~ 1e-6 per cycle and below) plain Monte
Carlo cannot resolve delta at all — a 65 536-pattern run expects ~0 failed
evaluations.  The stratified estimator conditions on the number of failing
gates, resolving delta down to arbitrarily small eps; the Sec. 3 closed
form should agree there (single-failure dominance), and both should peel
away from each other only as eps grows into the multi-failure regime.

Run:  python examples/rare_event_validation.py
"""

from repro import ObservabilityModel, get_benchmark, monte_carlo_reliability
from repro.sim import StratifiedEstimator

circuit = get_benchmark("cu")
output = circuit.outputs[0]
print(f"circuit: {circuit}, output {output}\n")

estimator = StratifiedEstimator(circuit, max_failures=3,
                                n_patterns=1 << 13,
                                samples_per_stratum=300, seed=0)
model = ObservabilityModel(circuit, output=output)

print(f"{'eps':>8s} {'stratified':>12s} {'tail bound':>11s} "
      f"{'closed form':>12s} {'plain MC (64k)':>15s}")
for eps in (1e-8, 1e-6, 1e-4, 1e-3, 1e-2):
    result = estimator.evaluate(eps)
    strat = result.per_output[output]
    closed = model.delta(eps)
    mc = monte_carlo_reliability(circuit, eps, n_patterns=1 << 16,
                                 seed=2).per_output[output]
    print(f"{eps:8.0e} {strat:12.3e} {result.tail_bound:11.1e} "
          f"{closed:12.3e} {mc:15.3e}")

print("\nreading: below eps ~ 1e-4 plain MC reports 0 (no failures in the "
      "sample) while the stratified estimate and the closed form agree to "
      "a few percent.  The stratified estimator is only valid while its "
      "tail bound is negligible — with 59 gates and 3 strata that means "
      "eps up to ~1e-2; beyond that, plain MC takes over (and is cheap "
      "there anyway).  The two estimators cover complementary regimes.")
