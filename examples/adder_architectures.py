"""Reliability comparison of adder architectures.

Same function — an 8-bit add — in three classic topologies:

* ripple-carry: fewest gates, deepest logic;
* carry-lookahead: shallow carries, heavy fanout;
* Kogge-Stone: logarithmic depth, most gates.

The single-pass analysis scores each under the same gate failure
probability, quantifying the depth-vs-gate-count reliability trade that
the paper's Fig. 8 discussion predicts.  Monte Carlo cross-checks the
analytic numbers.

Run:  python examples/adder_architectures.py
"""

import numpy as np

from repro import SinglePassAnalyzer, monte_carlo_reliability
from repro.circuit import circuit_stats
from repro.circuits import (
    carry_lookahead_adder,
    kogge_stone_adder,
    ripple_carry_adder,
)

WIDTH = 8
EPS = 0.01

adders = [
    ripple_carry_adder(WIDTH),
    carry_lookahead_adder(WIDTH),
    kogge_stone_adder(WIDTH),
]

print(f"{WIDTH}-bit adders, every gate eps = {EPS}\n")
print(f"{'adder':10s} {'gates':>6s} {'depth':>6s} {'maxfo':>6s} "
      f"{'mean delta (sp)':>16s} {'mean delta (mc)':>16s} "
      f"{'worst output':>13s}")

for circuit in adders:
    stats = circuit_stats(circuit)
    analyzer = SinglePassAnalyzer(circuit, max_correlation_level_gap=8)
    result = analyzer.run(EPS)
    mc = monte_carlo_reliability(circuit, EPS, n_patterns=1 << 16, seed=1)
    sp_mean = np.mean(list(result.per_output.values()))
    mc_mean = np.mean(list(mc.per_output.values()))
    worst = max(result.per_output, key=result.per_output.get)
    print(f"{circuit.name:10s} {stats.num_gates:6d} {stats.depth:6d} "
          f"{stats.max_fanout:6d} {sp_mean:16.5f} {mc_mean:16.5f} "
          f"{worst:>13s}")

print("\nreading: the ripple adder's high-order sum bits accumulate the "
      "whole carry chain's noise (deep logic); the prefix adders flatten "
      "the chain at the cost of more noisy gates — which wins depends on "
      "eps and on which outputs matter.")
