"""Soft-error-rate estimation with the observability closed form.

The paper's Sec. 5.1 singles out SER estimation as the natural client of
the Sec. 3 closed form: single-event upsets are localized to one gate, so
single-failure dominance holds and Eqn. (3) is essentially exact.  This
example models a 16-bit ripple-carry adder under particle strikes, reports
per-output FIT, and ranks the gates that dominate the soft error rate.

Run:  python examples/soft_error_estimation.py
"""

from repro.apps import estimate_ser, uniform_ser_model, GateSerModel
from repro.circuits import ripple_carry_adder

circuit = ripple_carry_adder(16)
print(f"circuit: {circuit}")

# A flat strike model: every gate upsets at 2e-12 upsets/second (order of
# terrestrial neutron-induced rates for a small cell); clock 1 GHz.
models = uniform_ser_model(circuit, upset_rate_per_sec=2e-12)

# Make the carry chain 5x more vulnerable (larger diffusion area), the way
# a real cell-level characterization would differentiate gates.
for gate in circuit.topological_gates():
    if "and" in circuit.node(gate).gate_type.value:
        models[gate] = GateSerModel(upset_rate_per_sec=1e-11)

report = estimate_ser(circuit, models, clock_hz=1e9,
                      output=circuit.outputs[-1])

print("\nper-output failure probability (per cycle) and FIT:")
for out in circuit.outputs:
    p = report.per_output_failure_probability[out]
    fit = report.per_output_fit[out]
    print(f"  {out:8s} p={p:.3e}  FIT={fit:.3f}")

print(f"\ntop gates by contribution to {circuit.outputs[-1]!r} SER:")
ranked = sorted(report.gate_contributions.items(),
                key=lambda kv: kv[1], reverse=True)
for gate, contribution in ranked[:8]:
    print(f"  {gate:8s} {contribution:.3e}")

print("\nnote: high-order sum bits see more logic (longer carry chains), "
      "so their FIT grows with bit position — logical masking quantified "
      "by the observability model.")
