"""Tests for structural circuit transforms."""

import pytest

from repro.circuit import (
    CircuitBuilder,
    CircuitError,
    GateType,
    expand_xor,
    limit_fanout,
    strip_buffers,
    triplicate_gates,
)
from tests.conftest import all_assignments


def equivalent(c1, c2) -> bool:
    if set(c1.outputs) != set(c2.outputs):
        return False
    for assignment in all_assignments(c1):
        if c1.evaluate_outputs(assignment) != c2.evaluate_outputs(assignment):
            return False
    return True


class TestExpandXor:
    def test_functionally_equivalent(self, full_adder_circuit):
        expanded = expand_xor(full_adder_circuit)
        assert equivalent(full_adder_circuit, expanded)

    def test_no_xor_left(self, full_adder_circuit):
        expanded = expand_xor(full_adder_circuit)
        kinds = {expanded.node(g).gate_type for g in expanded.gates}
        assert GateType.XOR not in kinds
        assert GateType.XNOR not in kinds

    def test_xnor_expansion(self):
        b = CircuitBuilder("x")
        a, c = b.inputs("a", "c")
        b.outputs(b.xnor(a, c, name="y"))
        circuit = b.build()
        expanded = expand_xor(circuit)
        assert equivalent(circuit, expanded)

    def test_wide_xor_expansion(self):
        b = CircuitBuilder("w")
        a, c, d = b.inputs("a", "c", "d")
        b.outputs(b.gate(GateType.XOR, a, c, d, name="y"))
        circuit = b.build()
        assert equivalent(circuit, expand_xor(circuit))

    def test_gate_count_grows(self, full_adder_circuit):
        assert expand_xor(full_adder_circuit).num_gates > \
            full_adder_circuit.num_gates

    def test_untouched_circuit_passthrough(self):
        b = CircuitBuilder("plain")
        a, c = b.inputs("a", "c")
        b.outputs(b.nand(a, c, name="y"))
        circuit = b.build()
        expanded = expand_xor(circuit)
        assert equivalent(circuit, expanded)
        assert expanded.num_gates == 1


class TestTriplicate:
    def test_function_preserved(self, full_adder_circuit):
        hardened = triplicate_gates(full_adder_circuit, ["t", "c1"])
        assert equivalent(full_adder_circuit, hardened)

    def test_gate_overhead_is_six_per_gate(self, full_adder_circuit):
        hardened = triplicate_gates(full_adder_circuit, ["t"])
        assert hardened.num_gates == full_adder_circuit.num_gates + 6

    def test_roles_reported(self, full_adder_circuit):
        roles = {}
        triplicate_gates(full_adder_circuit, ["t"], roles=roles)
        kinds = [role for role, _ in roles.values()]
        assert kinds.count("copy") == 3
        assert kinds.count("voter") == 4
        assert all(protected == "t" for _, protected in roles.values())
        assert roles["t"] == ("voter", "t")  # final voter keeps the name

    def test_non_gate_rejected(self, full_adder_circuit):
        with pytest.raises(CircuitError):
            triplicate_gates(full_adder_circuit, ["a"])


class TestLimitFanout:
    def _wide_fanout_circuit(self):
        b = CircuitBuilder("wide")
        a, c = b.inputs("a", "c")
        stem = b.and_(a, c, name="stem")
        outs = [b.not_(stem) for _ in range(5)]
        acc = outs[0]
        for o in outs[1:]:
            acc = b.or_(acc, o)
        b.outputs(acc)
        return b.build()

    def test_function_preserved(self):
        circuit = self._wide_fanout_circuit()
        limited = limit_fanout(circuit, 2)
        assert equivalent(circuit, limited)

    def test_fanout_bound_respected(self):
        circuit = self._wide_fanout_circuit()
        limited = limit_fanout(circuit, 2)
        for gate in limited.gates:
            assert limited.fanout_count(gate) <= 2

    def test_inputs_never_duplicated(self):
        circuit = self._wide_fanout_circuit()
        limited = limit_fanout(circuit, 2)
        assert limited.inputs == circuit.inputs

    def test_bound_validation(self):
        with pytest.raises(ValueError):
            limit_fanout(self._wide_fanout_circuit(), 0)

    def test_noop_below_bound(self, tree_circuit):
        limited = limit_fanout(tree_circuit, 4)
        assert limited.num_gates == tree_circuit.num_gates


class TestStripBuffers:
    def test_buffers_removed(self):
        b = CircuitBuilder("buffy")
        a, c = b.inputs("a", "c")
        g = b.and_(a, c)
        buf1 = b.buf(g)
        buf2 = b.buf(buf1)
        b.outputs(b.not_(buf2, name="y"))
        circuit = b.build()
        stripped = strip_buffers(circuit)
        assert equivalent(circuit, stripped)
        assert stripped.num_gates == 2  # and + not

    def test_output_buffers_kept(self):
        b = CircuitBuilder("obuf")
        a, c = b.inputs("a", "c")
        g = b.and_(a, c)
        b.outputs(y=g)  # adds a named output buffer
        circuit = b.build()
        stripped = strip_buffers(circuit)
        assert stripped.outputs == ["y"]
        assert equivalent(circuit, stripped)
