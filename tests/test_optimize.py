"""Tests for reliability-driven hardening allocation."""

import pytest

from repro.apps import (
    DEFAULT_LADDER,
    HardeningOption,
    allocate_hardening,
    hardening_frontier,
)
from repro.circuits import fig2_circuit, ripple_carry_adder
from repro.incremental import CircuitWorkspace
from repro.reliability import ObservabilityModel, SinglePassAnalyzer


@pytest.fixture(scope="module")
def model():
    return ObservabilityModel(fig2_circuit())


class TestHardeningOption:
    def test_validation(self):
        with pytest.raises(ValueError):
            HardeningOption(eps_factor=1.0, cost=1.0)
        with pytest.raises(ValueError):
            HardeningOption(eps_factor=0.5, cost=0.0)

    def test_default_ladder_monotone(self):
        factors = [o.eps_factor for o in DEFAULT_LADDER]
        costs = [o.cost for o in DEFAULT_LADDER]
        assert factors == sorted(factors, reverse=True)
        assert costs == sorted(costs)


class TestAllocation:
    def test_zero_budget_is_identity(self, model):
        result = allocate_hardening(model, 0.01, budget=0.0)
        assert result.spent == 0.0
        assert result.delta_after == result.delta_before
        assert all(u is None for u in result.upgrades.values())

    def test_budget_respected(self, model):
        result = allocate_hardening(model, 0.01, budget=3.0)
        assert result.spent <= 3.0 + 1e-12

    def test_delta_monotone_in_budget(self, model):
        frontier = hardening_frontier(model, 0.01, [0.0, 1.0, 3.0, 8.0, 50.0])
        deltas = [r.delta_after for _, r in frontier]
        assert all(a >= b - 1e-15 for a, b in zip(deltas, deltas[1:]))

    def test_first_upgrade_goes_to_most_observable_gate(self, model):
        result = allocate_hardening(model, 0.01, budget=1.0)
        upgraded = [g for g, u in result.upgrades.items() if u is not None]
        assert len(upgraded) == 1
        best = max(model.observabilities, key=model.observabilities.get)
        assert upgraded[0] == best

    def test_unlimited_budget_maxes_ladder(self, model):
        result = allocate_hardening(model, 0.01, budget=1e6)
        strongest = min(DEFAULT_LADDER, key=lambda o: o.eps_factor)
        assert all(u == strongest for u in result.upgrades.values())
        for g, e in result.final_eps.items():
            assert e == pytest.approx(0.01 * strongest.eps_factor)

    def test_improvement_metric(self, model):
        result = allocate_hardening(model, 0.01, budget=10.0)
        assert 0.0 < result.improvement < 1.0
        expected = 1.0 - result.delta_after / result.delta_before
        assert result.improvement == pytest.approx(expected)

    def test_negative_budget_rejected(self, model):
        with pytest.raises(ValueError):
            allocate_hardening(model, 0.01, budget=-1.0)

    def test_per_gate_base_eps(self):
        circuit = ripple_carry_adder(2)
        model = ObservabilityModel(circuit, output="cout")
        base = {g: 0.02 for g in circuit.topological_gates()}
        result = allocate_hardening(model, base, budget=5.0)
        assert result.delta_after < result.delta_before


class TestMeasuredAllocation:
    """The workspace path: closed-form choices, single-pass measurement."""

    def test_no_workspace_leaves_measurements_none(self, model):
        result = allocate_hardening(model, 0.01, budget=3.0)
        assert result.measured_before is None
        assert result.measured_after is None

    def test_workspace_measures_the_allocation(self, model):
        circuit = fig2_circuit()
        ws = CircuitWorkspace(circuit, eps=0.01)
        result = allocate_hardening(model, 0.01, budget=3.0, workspace=ws)
        assert result.measured_after < result.measured_before
        # The measurement is a real single-pass run of the final eps map.
        fresh = SinglePassAnalyzer(circuit).run(result.final_eps)
        assert result.measured_after == pytest.approx(fresh.delta(),
                                                      abs=1e-10)
        # The caller's workspace is untouched: the edits went to a fork.
        assert ws.edit_log == []

    def test_zero_budget_measures_identity(self, model):
        ws = CircuitWorkspace(fig2_circuit(), eps=0.01)
        result = allocate_hardening(model, 0.01, budget=0.0, workspace=ws)
        assert result.measured_after == pytest.approx(
            result.measured_before, abs=1e-12)

    def test_frontier_forwards_workspace(self, model):
        ws = CircuitWorkspace(fig2_circuit(), eps=0.01)
        frontier = hardening_frontier(model, 0.01, [0.0, 3.0], workspace=ws)
        for _, result in frontier:
            assert result.measured_before is not None
            assert result.measured_after is not None
        assert ws.edit_log == []
